#!/usr/bin/env python
"""Dynamic balls-and-bins strategies head to head (paper Section 4).

Runs OneChoice, Greedy[2], and Iceberg[2] against the same FIFO-churn
adversary and reports peak loads next to the theory curves of eq. (5),
eq. (6), and Theorem 2. The number that matters for decoupling is the
overhead above the average load λ: it must vanish relative to λ for the
resource augmentation δ to be o(1) — watch Iceberg's column shrink as λ
grows while OneChoice keeps its √(λ log n) gap.

Run:  python examples/ballsbins_demo.py
"""

from repro.ballsbins import (
    BallsAndBinsGame,
    GreedyStrategy,
    IcebergStrategy,
    OneChoiceStrategy,
    fifo_churn,
    greedy_max_load_bound,
    iceberg_max_load_bound,
    one_choice_max_load_bound,
    run_game,
)

N_BINS = 1 << 10

print(f"{N_BINS} bins, FIFO churn at full occupancy, 4x turnover\n")
print(f"{'strategy':<12} {'lam':>5} {'peak':>6} {'theory':>8} {'(peak-lam)/lam':>15}")

for lam in (4, 16, 64, 256):
    m = N_BINS * lam
    rows = [
        ("one-choice", OneChoiceStrategy(), one_choice_max_load_bound(N_BINS, lam)),
        ("greedy[2]", GreedyStrategy(2), greedy_max_load_bound(N_BINS, lam)),
        ("iceberg[2]", IcebergStrategy(lam=lam), iceberg_max_load_bound(N_BINS, lam)),
    ]
    for name, strategy, bound in rows:
        game = BallsAndBinsGame(N_BINS, strategy, seed=lam)
        run_game(game, fifo_churn(m, 4 * m))
        overhead = (game.peak_load - lam) / lam
        print(f"{name:<12} {lam:>5} {game.peak_load:>6} {bound:>8.1f} {overhead:>15.3f}")
    print()

print(
    "Iceberg[2]'s overhead is (1+o(1)) + (log log n)/lam — vanishing in lam.\n"
    "That is what lets Theorem 3 use buckets of size ~log log P and encode a\n"
    "page's location in Theta(log log log P) bits."
)
