#!/usr/bin/env python
"""Workload characterization: stack distances, working sets, policy ratios.

Before picking RAM sizes, TLB reach, or an h_max, characterize the trace:

* the **LRU miss curve** (Mattson stack distances — every cache size from
  one pass) answers "what would RAM size X cost in IOs";
* the same curve over the *huge-page trace* r(p) answers "what TLB reach
  buys at coverage h" (Lemma 1 reduces TLB-miss minimization to paging on
  r(p));
* the **working-set profile** locates the knee the paper's intro blames
  for TLB pain (working sets outgrew TLB coverage);
* empirical **competitive ratios** sanity-check the online policies that
  serve as Theorem 4's X and Y.

Run:  python examples/workload_analysis.py
"""


from repro.analysis import (
    competitive_ratio,
    lru_miss_curve,
    sleator_tarjan_bound,
    working_set_profile,
)
from repro.core import huge_page_trace
from repro.workloads import BimodalWorkload

wl = BimodalWorkload.paper_scaled(1 << 16)
trace = wl.generate(60_000, seed=0)

# --- IO side: the LRU miss curve over base pages -----------------------------
capacities = [2**k for k in range(6, 15)]
curve = lru_miss_curve(trace, capacities)
print("LRU miss curve (base pages) — one Mattson pass, all sizes:")
for c in capacities:
    print(f"  RAM {c:>6} pages: {curve[c]:>7} faults")

# --- TLB side: the same curve over the huge-page trace -----------------------
print("\nTLB-reach curve at a 256-entry TLB (Lemma 1: paging on r(p)):")
for h in (1, 4, 16, 64):
    hp = huge_page_trace(trace, h)
    misses = lru_miss_curve(hp, [256])[256]
    print(f"  coverage h={h:>3}: {misses:>7} TLB misses")

# --- the working-set knee -----------------------------------------------------
profile = working_set_profile(trace, [64, 256, 1024, 4096, 16384])
print("\nworking-set profile |W(tau)| (Denning):")
for tau, size in profile.items():
    print(f"  tau={tau:>6}: {size:>8.1f} pages")
print("the knee sits near the hot-region size — coverage beyond it is wasted")

# --- policies vs OPT -----------------------------------------------------------
print("\nonline policies vs offline OPT (cache = 1024):")
trace_list = trace.tolist()
for name in ("lru", "fifo", "arc"):
    res = competitive_ratio(trace_list, name, 1024)
    print(f"  {name:>5}: {res.policy_faults:>6} faults, ratio {res.ratio:.3f}")
aug = competitive_ratio(trace_list, "lru", 2048, opt_capacity=1024)
print(f"  lru with 2x frames vs OPT: ratio {aug.ratio:.3f} "
      f"(Sleator-Tarjan bound {sleator_tarjan_bound(2048, 1024):.3f})")
