#!/usr/bin/env python
"""Why databases and huge pages have a complicated relationship.

The paper's references [1–4] are Couchbase/MongoDB/Oracle/Percona docs
recommending THP off. This example replays zipf point lookups against a
B-tree index under memory pressure and prices every configuration in the
address-translation cost model — including the work THP does off the books
(migrations, promotion failures) that the vendors' advice is really about.

Run:  python examples/database_index.py
"""

from repro import ATCostModel, BasePageMM, DecoupledMM, PhysicalHugePageMM, simulate
from repro.mmu import THPStyleMM
from repro.workloads import BTreeLookupWorkload

# a 200k-key index, fanout 64 -> 3 levels; RAM holds ~2/3 of the index
index = BTreeLookupWorkload(200_000, fanout=64, zipf_s=0.8)
print(f"index: {index.n_keys} keys, depth {index.depth}, "
      f"{index.va_pages} pages ({index.level_nodes} nodes per level)")

trace = index.generate(120_000, seed=0)
ram = 1 << 11
tlb = 64

model = ATCostModel(epsilon=0.02)
rows = {}
print(f"\n{'configuration':<24} {'IOs':>8} {'TLB misses':>11} {'C(eps=0.02)':>12}")
for label, mm in {
    "base pages": BasePageMM(tlb, ram),
    "physical huge (h=64)": PhysicalHugePageMM(tlb, ram, huge_page_size=64),
    "THP (util 0.75)": THPStyleMM(tlb, ram, huge_page_size=64, promote_utilization=0.75),
    "decoupled": DecoupledMM(tlb, ram, seed=0),
}.items():
    ledger = simulate(mm, trace, warmup=40_000)
    rows[label] = (mm, ledger)
    print(f"{label:<24} {ledger.ios:>8} {ledger.tlb_misses:>11} "
          f"{model.cost(ledger):>12.1f}")

thp_ledger = rows["THP (util 0.75)"][1]
print(
    f"\nTHP's off-the-books work during the measured window: "
    f"{thp_ledger.extra['promotions']} promotions, "
    f"{thp_ledger.extra['migrations']} page migrations, "
    f"{thp_ledger.extra['promotion_failures']} fragmentation failures, "
    f"{thp_ledger.extra['demotions']} wholesale demotions."
)

print("""
reading the table:
 * static physical huge pages are the catastrophe (~80x the IOs): every
   leaf probe drags in a 64-page neighbourhood under pressure — the
   behaviour the vendor docs are defending against;
 * THP does well on a pure index workload (the hot top promotes, leaves
   stay base pages) — but its wins ride on migrations and on finding
   contiguous runs, the machinery that stalls real databases and whose
   failures the fragmentation counter above records;
 * decoupling posts the lowest TLB-miss count with zero migrations and no
   contiguity anywhere — its extra IOs at this toy scale are the (1-delta)
   RAM reservation, which Theorem 3 drives to zero as P grows.
""")
