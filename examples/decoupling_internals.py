#!/usr/bin/env python
"""A guided tour of the decoupling machinery (paper Sections 3-4).

Walks through the objects the theorems are made of, printing what each one
does:

1. a low-associativity allocator (Iceberg[2], k = 3 hashes) placing pages
   into buckets;
2. the compact TLB value codec packing per-page location codes into w bits;
3. the decoupling scheme maintaining phi, psi, and the decoding function f
   with the eq. (4) guarantee;
4. a paging failure, and how Theorem 4's algorithm Z prices it.

Run:  python examples/decoupling_internals.py
"""

from repro import DecouplingScheme, IcebergAllocator, TLBValueCodec

P = 64  # physical frames
W = 64  # TLB value bits

allocator = IcebergAllocator(total_frames=P, n_buckets=8, lam=4.0, seed=7)
print(f"allocator: {P} frames in 8 buckets of {allocator.bucket_size}; "
      f"k = {allocator.strategy.choices} hashes -> associativity "
      f"{allocator.associativity} -> {allocator.address_bits}-bit codes")

codec = TLBValueCodec.for_allocator(W, allocator)
print(f"codec: w = {W} bits / {codec.field_bits}-bit fields -> "
      f"h_max = {codec.hmax} pages per TLB entry")
print(f"  (a classical TLB value holds exactly 1 translation; "
      f"decoupling holds {codec.hmax})\n")

scheme = DecouplingScheme(allocator, codec)

# --- bring a few pages of huge page 0 into RAM ------------------------------
print("RAM-replacement policy inserts pages 0, 2, 5 (all inside huge page 0):")
for vpn in (0, 2, 5):
    frame = scheme.ram_insert(vpn)
    bucket, slot = divmod(frame, allocator.bucket_size)
    choice = allocator.strategy.choice_index(vpn, bucket)
    print(f"  page {vpn}: candidates {allocator.strategy.candidates(vpn)} "
          f"-> bucket {bucket} (hash #{choice}), slot {slot} -> frame {frame}")

value = scheme.psi(0)
print(f"\npsi(huge page 0) = {value:#018x}")
print(f"decoded fields: {codec.decode(value)}   (None = page not in RAM)")

# --- the decoding function f (eq. 4) ----------------------------------------
print("\nTLB-replacement policy loads huge page 0; decoding through f:")
scheme.tlb_insert(0)
for vpn in range(codec.hmax):
    out = scheme.f(vpn, value)
    expect = scheme.frame_of(vpn)
    status = f"frame {out}" if out != -1 else "not present (-1)"
    assert out == (expect if expect is not None else -1)
    print(f"  f(page {vpn}, psi) = {status}")

# --- eviction keeps everything consistent -----------------------------------
scheme.ram_evict(2)
print(f"\nafter evicting page 2: decoded fields = {codec.decode(scheme.psi(0))}")
scheme.check_invariants()
print("scheme invariants verified (phi injective, eq. 4 holds).")

# --- force a paging failure --------------------------------------------------
print("\nForcing paging failures with a tiny allocator (2 buckets x 1 frame):")
tiny = IcebergAllocator(total_frames=2, n_buckets=2, lam=1.0, front_slack=0.0, seed=1)
tiny_scheme = DecouplingScheme(tiny, TLBValueCodec.for_allocator(W, tiny))
for vpn in range(6):
    frame = tiny_scheme.ram_insert(vpn)
    if frame is None:
        print(f"  page {vpn}: PAGING FAILURE (all hashed buckets full) — "
              f"joins F; Theorem 4's Z services it at cost 1 + epsilon")
    else:
        print(f"  page {vpn}: frame {frame}")
print(f"failure set F = {sorted(tiny_scheme.failure_set)}")
