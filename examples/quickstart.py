#!/usr/bin/env python
"""Quickstart: service a paging workload with huge-page decoupling.

Builds the paper's decoupled memory-management algorithm ``Z`` (Theorem 4,
sized by Theorem 3's Iceberg parameters), replays a bimodal workload
through it, and compares the address-translation cost against classical
base pages and physical huge pages.

Run:  python examples/quickstart.py
"""

from repro import (
    ATCostModel,
    BasePageMM,
    BimodalWorkload,
    DecoupledMM,
    PhysicalHugePageMM,
    simulate,
)

# A 2^18-page virtual address space (1 GB at 4 kB pages) with the paper's
# Figure 1a geometry: hot region = VA/64, RAM = VA/4.
workload = BimodalWorkload.paper_scaled(1 << 18)
ram_pages = workload.ram_pages
tlb_entries = 256

trace = workload.generate(200_000, seed=42)
warmup = 100_000

# --- the three competitors -------------------------------------------------
z = DecoupledMM(tlb_entries, ram_pages, seed=0)
print(f"decoupled scheme: {z.params.scheme}, huge-page size h_max = {z.hmax}, "
      f"bucket B = {z.params.bucket_size}, delta = {z.params.delta:.3f}")

algorithms = {
    "base pages (h=1)": BasePageMM(tlb_entries, ram_pages),
    f"physical huge pages (h={z.hmax})": PhysicalHugePageMM(
        tlb_entries, ram_pages, huge_page_size=z.hmax
    ),
    "decoupled Z": z,
}

# --- run -------------------------------------------------------------------
model = ATCostModel(epsilon=0.01)
print(f"\n{'algorithm':<32} {'IOs':>8} {'TLB misses':>11} {'C (eps=0.01)':>13}")
for name, mm in algorithms.items():
    ledger = simulate(mm, trace, warmup=warmup)
    print(f"{name:<32} {ledger.ios:>8} {ledger.tlb_misses:>11} "
          f"{model.cost(ledger):>13.1f}")

print(
    "\nZ pairs the huge-page TLB miss count with the base-page IO count —\n"
    "the paper's 'benefits of huge pages without the downsides' in one table."
)
