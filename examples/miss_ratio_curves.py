#!/usr/bin/env python
"""Miss-ratio curves: what every TLB size and RAM size would cost, at once.

The trace-driven simulator answers one (ℓ, P) point per run; the Mattson
stack-distance engine (`repro.sim.figure1_curves`) answers *all* of them
from a single pass per huge-page size — exact for LRU. This example maps
the full design space of the Figure 1a workload: TLB misses vs TLB entries
and IOs vs RAM size, per huge-page size.

Run:  python examples/miss_ratio_curves.py
"""

from repro.bench.report import ascii_log_chart
from repro.sim import figure1_curves
from repro.workloads import BimodalWorkload

wl = BimodalWorkload.paper_scaled(1 << 16)
trace = wl.generate(80_000, seed=0)
warmup = 40_000
sizes = [1, 8, 64]
curves = figure1_curves(trace, sizes, warmup=warmup)

tlb_grid = [64, 256, 1024, 4096]
print("TLB misses vs TLB entries (rows: huge-page size h):")
header = "".join(f"{c:>10}" for c in tlb_grid)
print(f"  {'h':>5}{header}")
for curve in curves:
    cells = "".join(f"{curve.tlb_misses(c):>10}" for c in tlb_grid)
    print(f"  {curve.h:>5}{cells}")

ram_grid = [1 << 10, 1 << 12, 1 << 14, 1 << 16]
print("\nIOs vs RAM pages (rows: huge-page size h):")
header = "".join(f"{c:>10}" for c in ram_grid)
print(f"  {'h':>5}{header}")
for curve in curves:
    cells = "".join(f"{curve.ios(c):>10}" for c in ram_grid)
    print(f"  {curve.h:>5}{cells}")

print("\nreading the table: going down a column (bigger h) trades the left")
print("table's misses for the right table's IOs — Figure 1 is the diagonal")
print("of this design space at the paper's (1536, VA/4) operating point.\n")

c1 = curves[0]
chart = ascii_log_chart(
    tlb_grid, [max(1, c1.tlb_misses(c)) for c in tlb_grid], label="h=1 TLB misses"
)
print(chart)
