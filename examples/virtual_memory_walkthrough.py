#!/usr/bin/env python
"""End-to-end virtual memory: page table, walker, TLB, and the cost of ε.

Shows the machinery *behind* the address-translation cost model: a 4-level
radix page table, page walks with and without a page-walk cache, huge-page
leaves shortening walks, and the nested-translation blow-up that motivates
the paper's 'virtualization squares the TLB miss cost' remark.

Run:  python examples/virtual_memory_walkthrough.py
"""

from repro.pagetable import PageWalker, RadixPageTable, nested_walk_cost
from repro.tlb import TLB

# --- build a page table with mixed page sizes --------------------------------
table = RadixPageTable(levels=4, bits_per_level=9)
table.map(vpn=0x1234, pfn=0x42)                          # a 4 kB page
table.map(vpn=512 * 7, pfn=512 * 3, page_size=512)       # a 2 MB huge page
print(f"page table: {table.mappings} mappings across {table.nodes} nodes")

t = table.translate(0x1234)
print(f"translate(0x1234) -> pfn {t.pfn:#x}, {t.levels_walked}-level walk")
t = table.translate(512 * 7 + 99)
print(f"translate(huge+99) -> pfn {t.pfn:#x}, {t.levels_walked}-level walk "
      f"(huge leaf: one level shorter)")

# --- page-walk cache ----------------------------------------------------------
for vpn in range(0x2000, 0x2040):
    table.map(vpn, vpn)
cold = PageWalker(table)
warm = PageWalker(table, pwc_entries=64)
for _ in range(4):
    for vpn in range(0x2000, 0x2040):
        cold.walk(vpn)
        warm.walk(vpn)
print(f"\nmean memory touches per walk: {cold.mean_touches:.2f} without PWC, "
      f"{warm.mean_touches:.2f} with a 64-entry PWC")
print("=> epsilon is a few memory accesses per TLB miss — small, but paid on "
      "EVERY miss")

# --- the TLB in front ----------------------------------------------------------
tlb = TLB(entries=4)
for vpn in (0x1234, 0x1234, 512 * 7, 0x1234):
    hit = tlb.lookup(vpn) is not None
    if not hit:
        tlb.fill(vpn, value=table.translate(vpn).pfn)
    print(f"access {vpn:#7x}: {'TLB hit (cost 0)' if hit else 'TLB miss (cost eps)'}")
print(f"TLB miss rate: {tlb.miss_rate:.2f}")

# --- virtualization squares the miss cost --------------------------------------
print(f"\nnested translation worst case (4-level guest over 4-level host): "
      f"{nested_walk_cost(4, 4)} memory touches vs 4 native")
print("TLBs in guests, hosts, GPUs and NICs all face the same problem — the "
      "paper's decoupling applies to each of them.")
