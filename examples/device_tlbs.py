#!/usr/bin/env python
"""TLBs beyond the CPU: GPUs, RDMA NICs, and virtual machines.

The paper's introduction argues its results apply to *every* TLB in a
modern system: GPU address translation (concurrent kernels from distrusting
tenants), RDMA NICs (memory translation/protection tables), and nested
guest/host translation. This example models each device point with the
library's substrates and prices an identical workload on all of them.

Run:  python examples/device_tlbs.py
"""

from repro.core.hardware import estimate_runtime_ns
from repro.mmu import BasePageMM, DecoupledMM, NestedTranslationMM
from repro.sim import simulate
from repro.workloads import InterleavedWorkload, ZipfWorkload

RAM = 1 << 14
N = 80_000

# Three tenants sharing the device — a GPU running unrelated kernels, or
# an RDMA NIC serving several initiators.
workload = InterleavedWorkload(
    [ZipfWorkload(1 << 12, s=1.1, perm_seed=i) for i in range(3)], quantum=8
)
trace = workload.generate(N, seed=0)

DEVICE_TLBS = {
    "CPU core (1536-entry L2 TLB)": 1536,
    "GPU uTLB (64 entries)": 64,
    "RDMA NIC MTT cache (256)": 256,
}

print(f"{'device':<32} {'mapping':<12} {'TLB misses':>11} {'IOs':>7}")
for device, entries in DEVICE_TLBS.items():
    for label, mm in {
        "base": BasePageMM(entries, RAM),
        "decoupled": DecoupledMM(entries, RAM, seed=0),
    }.items():
        ledger = simulate(mm, trace, warmup=N // 3)
        print(f"{device:<32} {label:<12} {ledger.tlb_misses:>11} {ledger.ios:>7}")

print(
    "\nreading the table: decoupling multiplies each device's reach by\n"
    "h_max — the cliff appears where entries x h_max first covers the\n"
    "tenants' hot set (here at the CPU's 1536 entries). For the tiny\n"
    "GPU/NIC TLBs even x8 reach is not enough for three tenants: those\n"
    "devices need the larger h_max that a wider w buys (the paper's S8\n"
    "hardware suggestion).\n"
)

# --- the virtualized CPU: nested walks multiply every miss -------------------
flat = NestedTranslationMM(256, 1 << 30, RAM)  # effectively un-virtualized
nested = NestedTranslationMM(256, 128, RAM)  # real nested TLB pressure
for mm in (flat, nested):
    simulate(mm, trace, warmup=N // 3)
print(f"nested-translation multiplier with a 128-entry nested TLB: "
      f"{nested.effective_epsilon_multiplier:.2f}x the native walk "
      f"(worst case 6x for 4+4 levels)")

# --- and in seconds ----------------------------------------------------------
from repro.core.hardware import OPTANE

base = BasePageMM(1536, RAM)
dec = DecoupledMM(1536, RAM, seed=0)
t_base = estimate_runtime_ns(simulate(base, trace, warmup=N // 3), OPTANE)
t_dec = estimate_runtime_ns(simulate(dec, trace, warmup=N // 3), OPTANE)
print(f"\nestimated translation+paging time on Optane-class storage "
      f"(ε ≈ {OPTANE.epsilon:.2f}): {t_base/1e6:.2f} ms base vs "
      f"{t_dec/1e6:.2f} ms decoupled ({t_base/t_dec:.2f}x) — the faster the "
      f"storage,\nthe more of the bill is translation, the more decoupling "
      f"returns.")
