#!/usr/bin/env python
"""Build your own memory-management algorithm on the library's substrates.

The paper's framework is open-ended: a memory-management algorithm is just
something that controls T, A, φ and f. This example implements a new one —
a *working-set-sized sampler* that measures the trace's working set online
and toggles between base pages and decoupled huge-page coverage per phase —
then races it against the built-ins on a phase-changing workload.

It exercises the public extension surface:
  * subclass `MemoryManagementAlgorithm` (ledger conventions come free);
  * reuse `PageCache`/`TLB` substrates and the decoupling scheme;
  * plug straight into `simulate()` and the bench harness.

Run:  python examples/custom_mm_algorithm.py
"""

from repro import ATCostModel, BasePageMM, DecoupledMM, simulate
from repro.mmu.base import MemoryManagementAlgorithm
from repro.workloads import MarkovPhaseWorkload, SequentialWorkload, ZipfWorkload


class AdaptiveMM(MemoryManagementAlgorithm):
    """Switches between a base-page MM and a decoupled MM by watching the
    recent working set: scans (working set ~ window) route to base pages
    (huge coverage is useless on one-touch data), dense reuse routes to the
    decoupled side.

    Both sub-machines observe every access so their cache state stays warm;
    only the *active* one's costs are charged — modelling a policy that
    chooses how to map each region while the hardware paths stay coherent.
    """

    name = "adaptive"

    def __init__(self, tlb_entries, ram_pages, window=512, seed=0):
        super().__init__()
        self.base = BasePageMM(tlb_entries, ram_pages)
        self.decoupled = DecoupledMM(tlb_entries, ram_pages, seed=seed)
        self.window = window
        self._recent = []
        self._distinct_ratio = 0.0

    def access(self, vpn: int) -> None:
        self._recent.append(vpn)
        if len(self._recent) >= self.window:
            self._distinct_ratio = len(set(self._recent)) / len(self._recent)
            self._recent.clear()
        scanning = self._distinct_ratio > 0.9
        active, passive = (
            (self.base, self.decoupled) if scanning else (self.decoupled, self.base)
        )
        before = active.ledger.as_dict()
        active.access(vpn)
        passive.access(vpn)  # keep state warm, discard its costs
        after = active.ledger.as_dict()
        self.ledger.accesses += 1
        self.ledger.ios += after["ios"] - before["ios"]
        self.ledger.tlb_misses += after["tlb_misses"] - before["tlb_misses"]
        self.ledger.tlb_hits += after["tlb_hits"] - before["tlb_hits"]


def main() -> None:
    hot = ZipfWorkload(1 << 14, s=1.2, perm_seed=0)
    scan = SequentialWorkload(1 << 16)
    workload = MarkovPhaseWorkload([hot, scan], mean_dwell=3000)
    trace = workload.generate(60_000, seed=0)
    ram = 1 << 14

    model = ATCostModel(epsilon=0.05)
    print(f"{'algorithm':<14} {'IOs':>8} {'TLB misses':>11} {'C(eps=0.05)':>12}")
    for mm in (
        BasePageMM(256, ram),
        DecoupledMM(256, ram, seed=0),
        AdaptiveMM(256, ram),
    ):
        ledger = simulate(mm, trace, warmup=20_000)
        print(f"{mm.name:<14} {ledger.ios:>8} {ledger.tlb_misses:>11} "
              f"{model.cost(ledger):>12.1f}")

    print(
        "\nthe adaptive policy lands between its two ingredients — its scan\n"
        "detector trades away some decoupled coverage. The point is the\n"
        "surface: ~40 lines made a new MM algorithm a first-class citizen of\n"
        "simulate(), the cost model, and every bench in this repo. Sharpen\n"
        "the detector (try the analysis package's working-set profile) and\n"
        "see if you can beat pure decoupling."
    )


if __name__ == "__main__":
    main()
