#!/usr/bin/env python
"""The IO/TLB-miss tradeoff of physical huge pages (paper Figure 1).

Sweeps the huge-page size h over {1, 2, ..., 1024} on a scaled Figure 1a
bimodal workload and prints the same two series the paper plots, as tables
and ASCII log-scale charts. Increasing h slashes TLB misses but multiplies
IOs — there is no good h.

Run:  python examples/hugepage_tradeoff.py [--panel a|b|c]
"""

import argparse

from repro.bench import figure1_experiment, figure1_workload, format_figure1

PANEL_SCALE = {"a": 1 << 18, "b": 1 << 16, "c": 14}
PANEL_TITLE = {
    "a": "Figure 1a — bimodal uniform (hot 1/64 of VA, RAM = VA/4)",
    "b": "Figure 1b — Pareto random walk (RAM = VA/2)",
    "c": "Figure 1c — graph500 BFS (cache ≈ touched footprint)",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--panel", choices="abc", default="a")
    parser.add_argument("--accesses", type=int, default=120_000)
    parser.add_argument("--tlb", type=int, default=512)
    args = parser.parse_args()

    workload, ram_pages = figure1_workload(args.panel, PANEL_SCALE[args.panel])
    records = figure1_experiment(
        workload,
        ram_pages=ram_pages,
        tlb_entries=args.tlb,
        n_accesses=args.accesses,
        touched_ram_fraction=0.99 if args.panel == "c" else None,
        seed=0,
    )
    print(format_figure1(records, title=PANEL_TITLE[args.panel]))


if __name__ == "__main__":
    main()
