#!/usr/bin/env python
"""Regenerate the committed perf baselines under benchmarks/baselines/.

Runs the full (non-smoke) bench sweep and the hot-loop microbenchmark
with their preset configs and overwrites ``BENCH_sweep.json`` and
``BENCH_hotloop.json`` in place. Run this whenever a bench preset
changes (new rows, new config keys, retuned sizes) — the check_bench
config gate makes stale baselines fail CI with a MISMATCH — then commit
both files together with the change that invalidated them.

Usage::

    python tools/regen_baselines.py            # both baselines
    python tools/regen_baselines.py --only hotloop
    python tools/regen_baselines.py --jobs 4   # sweep parallelism

Counters in the payloads are machine-independent (seeded streams), but
throughputs are not: regenerating on a slower box than CI loosens the
throughput gate, never tightens correctness.
"""

import argparse
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO / "src"))

BASELINE_DIR = _REPO / "benchmarks" / "baselines"


def regen_sweep(jobs: int) -> Path:
    from repro.bench import bench_sweep, save_bench

    # CI's bench-smoke job measures the --smoke grid, so the committed
    # baseline must be recorded with the same config or the gate MISMATCHes
    records, payload = bench_sweep(smoke=True, jobs=jobs)
    path = save_bench(payload, BASELINE_DIR / "BENCH_sweep.json")
    print(
        f"sweep: {payload['total_accesses']} accesses over "
        f"{len(records)} cells -> {path}"
    )
    return path


def regen_hotloop() -> Path:
    from repro.bench import bench_hotloop, save_bench

    rows, payload = bench_hotloop()
    path = save_bench(payload, BASELINE_DIR / "BENCH_hotloop.json")
    print(
        f"hotloop: {len(rows)} components, geomean "
        f"{payload['geomean_ops_per_s'] / 1e3:.1f} kops/s -> {path}"
    )
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        choices=("sweep", "hotloop"),
        default=None,
        help="regenerate a single baseline instead of both",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the sweep (default: 2, matching CI)",
    )
    args = parser.parse_args(argv)
    if args.only in (None, "sweep"):
        regen_sweep(args.jobs)
    if args.only in (None, "hotloop"):
        regen_hotloop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
