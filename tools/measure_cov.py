#!/usr/bin/env python
"""Measure line coverage of ``src/repro`` without pytest-cov.

CI runs the real thing (``pytest --cov=repro --cov-fail-under=N``); this
tool exists to *choose and re-verify N* in environments where pytest-cov
is not installed. It approximates coverage.py with a ``sys.settrace``
tracer:

* the denominator is every executable line in ``src/repro`` (walking each
  compiled module's code objects via ``co_lines``);
* the numerator is every line hit while the tier-1 suite runs in-process;
* a file whose lines are all hit stops being traced (saturation), so the
  slowdown decays as the suite warms up.

Caveats (all make the reported number *conservative*): subprocess workers
(parallel-runner tests) are not traced, and lines only reachable in other
Python versions count against the total. Pick the CI floor a few points
below this tool's output.

Usage: PYTHONPATH=src python tools/measure_cov.py [pytest args...]
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def executable_lines(path: Path) -> set[int]:
    """All line numbers carrying instructions in *path* (incl. nested code)."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        c = stack.pop()
        lines.update(line for _, _, line in c.co_lines() if line is not None)
        stack.extend(k for k in c.co_consts if isinstance(k, type(code)))
    return lines


def main(argv: list[str]) -> int:
    targets: dict[str, set[int]] = {}
    seen: dict[str, set[int]] = {}
    for path in sorted(SRC.rglob("*.py")):
        targets[str(path)] = executable_lines(path)
        seen[str(path)] = set()

    resolved: dict[str, str | None] = {}  # co_filename -> canonical target key
    saturated: set[str] = set()

    def canon(co_filename: str) -> str | None:
        key = resolved.get(co_filename, False)
        if key is not False:
            return key
        absolute = os.path.abspath(co_filename)
        key = absolute if absolute in targets else None
        resolved[co_filename] = key
        return key

    def local_tracer(frame, event, arg):
        if event == "line":
            key = canon(frame.f_code.co_filename)
            if key is not None and key not in saturated:
                hits = seen[key]
                hits.add(frame.f_lineno)
                if len(hits & targets[key]) >= len(targets[key]):
                    saturated.add(key)
        return local_tracer

    def global_tracer(frame, event, arg):
        if event != "call":
            return None
        key = canon(frame.f_code.co_filename)
        if key is None or key in saturated:
            return None
        return local_tracer

    import pytest

    threading.settrace(global_tracer)
    sys.settrace(global_tracer)
    try:
        exit_code = pytest.main(argv or ["-q", "tests"])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage below reflects a partial run")

    rows = []
    total_hit = total_lines = 0
    for key, lines in sorted(targets.items()):
        hit = len(seen[key] & lines)
        total_hit += hit
        total_lines += len(lines)
        if lines:
            rows.append((hit / len(lines), hit, len(lines), key))
    rows.sort()
    print("\nleast-covered files:")
    for frac, hit, n, key in rows[:15]:
        print(f"  {frac * 100:5.1f}%  {hit:4d}/{n:<4d}  {os.path.relpath(key, REPO)}")
    pct = 100.0 * total_hit / total_lines if total_lines else 0.0
    print(f"\nTOTAL: {total_hit}/{total_lines} lines = {pct:.2f}%")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
