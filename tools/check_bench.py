#!/usr/bin/env python3
"""CI perf-regression gate: compare a fresh bench payload against the
committed baseline.

Usage::

    python tools/check_bench.py benchmarks/baselines/BENCH_sweep.json \\
        BENCH_sweep.json --tolerance 0.25

Handles both payload kinds (baseline and new run must be the same kind):

* ``bench_sweep`` (``repro bench``) — the end-to-end sweep;
* ``bench_hotloop`` (``repro bench --hotloop``) — per-component
  microbenchmarks, gated on ``geomean_ops_per_s``.

Two checks, two exit codes:

* **exit 2 — correctness / comparability.** The configs (grid, seed) must
  match, and the simulated counters (accesses, ios, tlb_misses, ...) of
  every cell/component must be identical — they are deterministic given
  the config. For sweep payloads counter checking is skipped (with a
  note) when the two payloads were produced by different numpy versions,
  whose random streams are not guaranteed identical (``--counters
  always`` overrides, and ``--counters never`` disables); hotloop key
  streams are numpy-free, so their counters are always compared.
* **exit 1 — throughput regression.** The aggregate throughput
  (``accesses_per_s`` / ``geomean_ops_per_s``) may not drop more than
  ``--tolerance`` (fraction) below the baseline. One aggregate number,
  not per-cell timings, to stay tolerant of runner noise; improvements
  and same-speed runs pass.

For hotloop payloads an additional *within-payload* gate compares each
probed row — ``mm+sampled:<name>`` (a ``SamplingProbe`` attached) and
``mm+online:<name>`` (the streaming ``OnlineWorkingSet`` /
``OnlineStackDistance`` probes attached) — against its unprobed
``mm:<name>`` twin in the **new** run: the counters must be identical (a
probe must never perturb the simulation — exit 2), and per prefix the
geometric-mean throughput ratio may not fall below
``1 - --probe-tolerance`` (default 0.10 — the "observability is within
10% of unprobed" contract; exit 1). Within one payload both rows ran on
the same machine moments apart, so the ratio is noise-robust.

The engine-identity gate holds every ``mm@object:<x>`` row to counters
identical to its ``mm:<x>`` twin — including the ``mm:<name>+fail``
paging-failure cells, which must additionally report
``paging_failures > 0`` so the bailout path stays exercised (exit 2
either way).

Stdlib-only on purpose: the gate runs before (and independent of) the
package itself.
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import os
import subprocess
import sys

#: Simulated (deterministic) counters compared cell by cell.
COUNTER_FIELDS = (
    "accesses",
    "ios",
    "tlb_misses",
    "tlb_hits",
    "decoding_misses",
    "paging_failures",
)

OK, REGRESSION, MISMATCH = 0, 1, 2

KNOWN_KINDS = ("bench_sweep", "bench_hotloop")


def load_payload(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("kind") not in KNOWN_KINDS or payload.get("format") != 1:
        raise ValueError(
            f"{path}: not a format-1 {' / '.join(KNOWN_KINDS)} payload"
        )
    return payload


def _cell_key(row: dict) -> tuple:
    return (row.get("algorithm"), row.get("h"))


def _config_mismatch(baseline: dict, new: dict) -> list[str]:
    changed = sorted(
        k
        for k in set(baseline["config"]) | set(new["config"])
        if baseline["config"].get(k) != new["config"].get(k)
    )
    return [
        f"FAIL configs differ ({', '.join(changed)}): the runs are not "
        "comparable — regenerate both baselines with "
        "`python tools/regen_baselines.py` and commit them"
    ]


def _throughput_gate(
    old_tput: float, new_tput: float, tolerance: float, messages: list[str]
) -> int:
    """Append the gate verdict to *messages*; return OK or REGRESSION."""
    if old_tput <= 0:
        messages.append("note: baseline throughput is 0; skipping the gate")
        return OK
    change = new_tput / old_tput - 1.0
    line = (
        f"throughput: {old_tput / 1e3:.1f} -> {new_tput / 1e3:.1f} kacc/s "
        f"({change:+.1%}, tolerance -{tolerance:.0%})"
    )
    if change < -tolerance:
        messages.append(f"FAIL {line}")
        return REGRESSION
    messages.append(f"ok: {line}")
    return OK


#: probed hotloop row prefixes gated against their unprobed twins.
PROBED_PREFIXES = ("mm+sampled:", "mm+online:", "mm+attrib:")


def _unprobed_twin(rows: dict, name: str, prefix: str) -> dict | None:
    """The unprobed twin of a probed row: the object-engine re-run
    (``mm@object:``) when present — probes ride the object fast paths, so
    that is the like-for-like denominator — else the plain ``mm:`` row
    (payloads from before the array engine)."""
    for plain_prefix in ("mm@object:", "mm:"):
        twin = rows.get(name.replace(prefix, plain_prefix, 1))
        if twin is not None:
            return twin
    return None


def _probed_gate(
    payload: dict, probe_tolerance: float, messages: list[str]
) -> int:
    """Gate probed rows against their unprobed twins (one payload).

    Applies to every prefix in :data:`PROBED_PREFIXES` (``mm+sampled:``,
    ``mm+online:`` and ``mm+attrib:``), gated independently. Counters must be identical
    (MISMATCH otherwise: the probe perturbed the simulation) and per
    prefix the geomean probed/unprobed throughput ratio must stay above
    ``1 - probe_tolerance`` (REGRESSION otherwise: the probe knocked an
    algorithm off its fast path or got too expensive).
    """
    rows = {r["component"]: r for r in payload["rows"]}
    code = OK
    for prefix in PROBED_PREFIXES:
        pairs = [
            (name, _unprobed_twin(rows, name, prefix), rows[name])
            for name in sorted(rows)
            if name.startswith(prefix)
            and _unprobed_twin(rows, name, prefix) is not None
        ]
        if not pairs:
            continue
        ratios = []
        for name, plain, probed in pairs:
            if plain.get("counters") != probed.get("counters"):
                code = MISMATCH
                messages.append(
                    f"FAIL {name}: counters differ from its unprobed twin "
                    f"{plain.get('counters')} -> {probed.get('counters')} "
                    "(a probe must never perturb the simulation)"
                )
            ratios.append(probed["ops_per_s"] / plain["ops_per_s"])
        geomean_ratio = math.exp(
            sum(math.log(r) for r in ratios) / len(ratios)
        )
        line = (
            f"{prefix.rstrip(':')} throughput: {geomean_ratio:.1%} of "
            f"unprobed across {len(pairs)} fast-path MMs "
            f"(floor {1 - probe_tolerance:.0%})"
        )
        if geomean_ratio < 1 - probe_tolerance:
            messages.append(f"FAIL {line}")
            code = max(code, REGRESSION)
        else:
            messages.append(f"ok: {line}")
    return code


def _engine_twin_gate(payload: dict, messages: list[str]) -> int:
    """``mm@object:<name>`` rows re-run ``mm:<name>`` on the object engine;
    both replay the same deterministic stream, so any counter divergence
    means the two engines disagree about the simulation (MISMATCH).

    ``*+fail`` components are the paging-failure cells: besides matching
    their twin they must report ``paging_failures > 0`` — a failure row
    that stops failing silently stops exercising the batch engine's
    bailout path, which is exactly what these rows exist to gate
    (MISMATCH as well).
    """
    rows = {r["component"]: r for r in payload["rows"]}
    code = OK
    checked = 0
    for name in sorted(rows):
        if name.endswith("+fail") and not (
            (rows[name].get("counters") or {}).get("paging_failures", 0) > 0
        ):
            code = MISMATCH
            messages.append(
                f"FAIL {name}: failure-path row reports no paging_failures "
                "(the cell no longer exercises the bailout accounting)"
            )
        if not name.startswith("mm@object:"):
            continue
        twin = rows.get(name.replace("mm@object:", "mm:", 1))
        if twin is None:
            continue
        checked += 1
        if rows[name].get("counters") != twin.get("counters"):
            code = MISMATCH
            messages.append(
                f"FAIL {name}: counters differ from its array-engine twin "
                f"{twin.get('counters')} -> {rows[name].get('counters')} "
                "(the engines must simulate identically)"
            )
    if checked and code == OK:
        messages.append(
            f"ok: {checked} engine twin(s), array and object counters "
            "identical (failure rows failing as pinned)"
        )
    return code


def compare(
    baseline: dict,
    new: dict,
    *,
    tolerance: float = 0.25,
    counters: str = "auto",
    probe_tolerance: float = 0.10,
) -> tuple[int, list[str]]:
    """Compare payloads of either kind; return ``(exit_code, messages)``."""
    if baseline.get("kind") != new.get("kind"):
        return MISMATCH, [
            f"FAIL payload kinds differ: {baseline.get('kind')} (baseline) "
            f"vs {new.get('kind')} (new run)"
        ]
    if baseline.get("kind") == "bench_hotloop":
        return compare_hotloop(
            baseline, new, tolerance=tolerance, counters=counters,
            probe_tolerance=probe_tolerance,
        )
    messages: list[str] = []
    code = OK

    if baseline["config"] != new["config"]:
        return MISMATCH, _config_mismatch(baseline, new)

    check_counters = counters == "always" or (
        counters == "auto"
        and baseline["machine"].get("numpy") == new["machine"].get("numpy")
    )
    if counters == "auto" and not check_counters:
        messages.append(
            "note: skipping counter comparison — numpy "
            f"{baseline['machine'].get('numpy')} (baseline) vs "
            f"{new['machine'].get('numpy')} (new); random streams may differ"
        )

    if check_counters:
        old_rows = {_cell_key(r): r for r in baseline["rows"]}
        new_rows = {_cell_key(r): r for r in new["rows"]}
        for key in sorted(set(old_rows) | set(new_rows), key=str):
            a, b = old_rows.get(key), new_rows.get(key)
            if a is None or b is None:
                code = MISMATCH
                messages.append(
                    f"FAIL cell {key}: present only in "
                    f"{'new run' if a is None else 'baseline'}"
                )
                continue
            for metric in COUNTER_FIELDS:
                if a.get(metric) != b.get(metric):
                    code = MISMATCH
                    messages.append(
                        f"FAIL cell {key}: {metric} changed "
                        f"{a.get(metric)} -> {b.get(metric)} (deterministic "
                        "counter; a code change altered simulated behaviour)"
                    )
        if code == OK:
            messages.append(
                f"ok: {len(new['rows'])} cells, all simulated counters identical"
            )

    code = max(
        code,
        _throughput_gate(
            baseline["accesses_per_s"], new["accesses_per_s"], tolerance, messages
        ),
    )
    return code, messages


def compare_hotloop(
    baseline: dict,
    new: dict,
    *,
    tolerance: float = 0.25,
    counters: str = "auto",
    probe_tolerance: float = 0.10,
) -> tuple[int, list[str]]:
    """Compare two ``bench_hotloop`` payloads.

    The per-component counters come from numpy-free key streams, so they
    are compared exactly unless ``--counters never``; the throughput gate
    runs on the geometric mean across components.
    """
    messages: list[str] = []
    code = OK

    if baseline["config"] != new["config"]:
        return MISMATCH, _config_mismatch(baseline, new)

    if counters != "never":
        old_rows = {r["component"]: r for r in baseline["rows"]}
        new_rows = {r["component"]: r for r in new["rows"]}
        for name in sorted(set(old_rows) | set(new_rows)):
            a, b = old_rows.get(name), new_rows.get(name)
            if a is None or b is None:
                code = MISMATCH
                messages.append(
                    f"FAIL component {name}: present only in "
                    f"{'new run' if a is None else 'baseline'}"
                )
                continue
            if a.get("counters") != b.get("counters"):
                code = MISMATCH
                messages.append(
                    f"FAIL component {name}: counters changed "
                    f"{a.get('counters')} -> {b.get('counters')} "
                    "(deterministic; a code change altered simulated behaviour)"
                )
        if code == OK:
            messages.append(
                f"ok: {len(new['rows'])} components, all counters identical"
            )

    code = max(
        code,
        _throughput_gate(
            baseline["geomean_ops_per_s"],
            new["geomean_ops_per_s"],
            tolerance,
            messages,
        ),
    )
    code = max(code, _engine_twin_gate(new, messages))
    code = max(code, _probed_gate(new, probe_tolerance, messages))
    return code, messages


def append_history(payload: dict, history_dir: str) -> str:
    """Append one trajectory record to ``<history_dir>/history.jsonl``.

    Called only after a passing gate, so the stream is a time series of
    *accepted* throughput states: ``{ts, commit, geomean, rows}`` per
    record (``rows`` carries the per-component ops/s of hotloop payloads).
    ``repro report`` renders the stream as the geomean trajectory.
    """
    if payload.get("kind") == "bench_hotloop":
        geomean = payload.get("geomean_ops_per_s", 0.0)
        rows = [
            {"component": r.get("component"), "ops_per_s": r.get("ops_per_s")}
            for r in payload.get("rows", [])
        ]
    else:
        geomean = payload.get("accesses_per_s", 0.0)
        rows = []
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        commit = "unknown"
    record = {
        "kind": "bench_history",
        "ts": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": commit,
        "payload_kind": payload.get("kind"),
        "geomean": geomean,
        "rows": rows,
    }
    os.makedirs(history_dir, exist_ok=True)
    path = os.path.join(history_dir, "history.jsonl")
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", help="committed BENCH_sweep.json / BENCH_hotloop.json"
    )
    parser.add_argument(
        "new", help="freshly measured payload of the same kind"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional throughput drop (default: %(default)s)",
    )
    parser.add_argument(
        "--counters", choices=["auto", "always", "never"], default="auto",
        help="compare deterministic counters: auto = only when numpy "
             "versions match (default), always, never",
    )
    parser.add_argument(
        "--probe-tolerance", type=float, default=0.10,
        help="allowed fractional throughput cost of an attached probe "
             "(sampling or online analysis), gated per prefix within the "
             "new hotloop payload (default: %(default)s)",
    )
    parser.add_argument(
        "--append-history", metavar="DIR", default=None,
        help="after a passing gate, append a {ts, commit, geomean, rows} "
             "record to DIR/history.jsonl — the bench trajectory that "
             "`repro report` plots",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_payload(args.baseline)
        new = load_payload(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"FAIL {exc}", file=sys.stderr)
        return MISMATCH
    code, messages = compare(
        baseline, new, tolerance=args.tolerance, counters=args.counters,
        probe_tolerance=args.probe_tolerance,
    )
    for line in messages:
        print(line)
    if code == OK and args.append_history:
        path = append_history(new, args.append_history)
        print(f"ok: history record appended to {path}")
    return code


if __name__ == "__main__":
    sys.exit(main())
