"""Sparse multi-level radix page table (x86-64-style).

The page table is the in-RAM dictionary that the TLB caches; a TLB miss
triggers a *walk* down this tree, which is why a miss costs the model's ε
(hundreds to thousands of cycles in reality — [8, 29] in the paper).

The default geometry mirrors x86-64: 4 levels of 9 bits each, base pages of
4 kB, with huge-page leaves allowed at interior levels (level 1 leaf =
2 MB = 512 base pages, level 2 leaf = 1 GB = 512² base pages).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check_positive_int

__all__ = ["RadixPageTable", "Translation"]


@dataclass(frozen=True, slots=True)
class Translation:
    """Result of a successful page-table walk."""

    pfn: int  # physical frame of the *base page* asked about
    page_size: int  # granularity of the mapping that answered (base pages)
    levels_walked: int  # tree levels touched, including the leaf


class _Leaf:
    """A terminal mapping: base pfn of an aligned run of `size` frames."""

    __slots__ = ("pfn", "size")

    def __init__(self, pfn: int, size: int) -> None:
        self.pfn = pfn
        self.size = size


class RadixPageTable:
    """Maps virtual page numbers to physical frame numbers.

    Parameters
    ----------
    levels:
        Tree depth (4 for x86-64).
    bits_per_level:
        Radix width; each node has ``2**bits_per_level`` slots.

    Mappings of size ``radix**k`` terminate ``k`` levels early, exactly like
    hardware huge-page leaves. Both ``vpn`` and ``pfn`` of a huge mapping
    must be aligned to its size.
    """

    def __init__(self, levels: int = 4, bits_per_level: int = 9) -> None:
        self.levels = check_positive_int(levels, "levels")
        self.bits_per_level = check_positive_int(bits_per_level, "bits_per_level")
        self.radix = 1 << bits_per_level
        self.max_vpn = self.radix**levels
        self._root: dict[int, object] = {}
        self.mappings = 0
        self.nodes = 1  # the root

    # ----------------------------------------------------------- geometry

    def leaf_level_for(self, page_size: int) -> int:
        """Tree level (1 = deepest) at which a *page_size* mapping terminates.

        Raises ValueError if *page_size* is not a supported power of the
        radix (``radix**k`` for ``0 <= k < levels``).
        """
        size = 1
        for k in range(self.levels):
            if size == page_size:
                return k + 1
            size *= self.radix
        raise ValueError(
            f"page_size {page_size} is not radix**k for k < {self.levels} "
            f"(radix={self.radix})"
        )

    def _indices(self, vpn: int) -> list[int]:
        """Per-level slot indices for *vpn*, topmost first."""
        idx = []
        shift = self.bits_per_level * (self.levels - 1)
        mask = self.radix - 1
        for _ in range(self.levels):
            idx.append((vpn >> shift) & mask)
            shift -= self.bits_per_level
        return idx

    # ------------------------------------------------------------------ api

    def map(self, vpn: int, pfn: int, page_size: int = 1) -> None:
        """Install mapping ``vpn → pfn`` at *page_size* granularity.

        Raises ValueError on misalignment or when the slot is occupied.
        """
        if not (0 <= vpn < self.max_vpn):
            raise ValueError(f"vpn {vpn} out of range [0, {self.max_vpn})")
        if pfn < 0:
            raise ValueError(f"pfn must be non-negative, got {pfn}")
        leaf_level = self.leaf_level_for(page_size)
        if vpn % page_size or pfn % page_size:
            raise ValueError(
                f"vpn {vpn} and pfn {pfn} must be aligned to page_size {page_size}"
            )
        node = self._root
        indices = self._indices(vpn)
        for depth in range(self.levels - leaf_level):
            i = indices[depth]
            child = node.get(i)
            if child is None:
                child = {}
                node[i] = child
                self.nodes += 1
            elif isinstance(child, _Leaf):
                raise ValueError(
                    f"vpn {vpn} is covered by an existing size-{child.size} mapping"
                )
            node = child
        i = indices[self.levels - leaf_level]
        if i in node:
            raise ValueError(f"slot for vpn {vpn} at size {page_size} already mapped")
        node[i] = _Leaf(pfn, page_size)
        self.mappings += 1

    def translate(self, vpn: int) -> Translation | None:
        """Walk the tree for *vpn*; None if unmapped (a page fault)."""
        node = self._root
        indices = self._indices(vpn)
        for depth in range(self.levels):
            entry = node.get(indices[depth])
            if entry is None:
                return None
            if isinstance(entry, _Leaf):
                offset = vpn % entry.size
                return Translation(
                    pfn=entry.pfn + offset,
                    page_size=entry.size,
                    levels_walked=depth + 1,
                )
            node = entry
        raise AssertionError("walk ran past the deepest level")  # pragma: no cover

    def unmap(self, vpn: int) -> None:
        """Remove the mapping covering *vpn*; KeyError if unmapped.

        Empty interior nodes are pruned so ``nodes`` tracks live memory.
        """
        indices = self._indices(vpn)
        path: list[tuple[dict, int]] = []
        node = self._root
        for depth in range(self.levels):
            i = indices[depth]
            entry = node.get(i)
            if entry is None:
                raise KeyError(f"vpn {vpn} is not mapped")
            path.append((node, i))
            if isinstance(entry, _Leaf):
                del node[i]
                self.mappings -= 1
                break
            node = entry
        else:  # pragma: no cover - translate() would have asserted first
            raise KeyError(f"vpn {vpn} is not mapped")
        # prune now-empty interior nodes bottom-up (never the root)
        for parent, i in reversed(path[:-1]):
            child = parent[i]
            if isinstance(child, dict) and not child:
                del parent[i]
                self.nodes -= 1
            else:
                break

    def __contains__(self, vpn: int) -> bool:
        return self.translate(vpn) is not None

    def __len__(self) -> int:
        return self.mappings

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RadixPageTable levels={self.levels} radix={self.radix} "
            f"mappings={self.mappings} nodes={self.nodes}>"
        )
