"""Page-walk cost accounting and a page-walk cache (PWC).

A TLB miss costs ε in the address-translation model; physically that ε is a
radix-tree walk of up to ``levels`` dependent memory reads. Hardware
shortens walks with a *page-walk cache* holding interior (non-leaf) entries
keyed by partial virtual-address prefixes. This module provides a walker
that combines a :class:`~repro.pagetable.radix.RadixPageTable` with an
optional PWC and reports per-walk memory-touch counts — the microscopic
justification for the ε parameter, and the machinery behind nested
(virtualized) translation cost estimates (the "squared miss cost" of the
paper's introduction).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check_positive_int
from ..paging import LRUPolicy, PageCache
from .radix import RadixPageTable, Translation

__all__ = ["PageWalker", "WalkResult", "nested_walk_cost"]


@dataclass(frozen=True, slots=True)
class WalkResult:
    """Outcome of one translation attempt through the walker."""

    translation: Translation | None  # None = page fault
    memory_touches: int  # tree levels actually read from memory
    pwc_hits: int  # levels skipped thanks to the page-walk cache


class PageWalker:
    """Walks a radix page table, optionally through a page-walk cache.

    The PWC caches the deepest interior node reached for a virtual-address
    prefix; on a later walk sharing that prefix, the walker starts below it.
    This models the partial-walk caches (e.g. Intel's PML4/PDPTE caches)
    that make real ε smaller than ``levels`` memory accesses.
    """

    def __init__(self, table: RadixPageTable, pwc_entries: int = 0) -> None:
        self.table = table
        self.pwc: PageCache | None = None
        if pwc_entries:
            check_positive_int(pwc_entries, "pwc_entries")
            self.pwc = PageCache(pwc_entries, LRUPolicy())
        self.walks = 0
        self.total_touches = 0
        self.total_pwc_hits = 0

    def walk(self, vpn: int) -> WalkResult:
        """Translate *vpn*, accounting for memory touches and PWC hits."""
        self.walks += 1
        translation = self.table.translate(vpn)
        levels = translation.levels_walked if translation else self.table.levels
        pwc_hits = 0
        if self.pwc is not None and levels > 1:
            # Prefix keys from the shallowest (level 1 of the walk) to the
            # level just above the leaf; a hit lets the walk resume there.
            bits = self.table.bits_per_level
            top = self.table.levels * bits
            skipped = 0
            for depth in range(1, levels):
                prefix = vpn >> (top - depth * bits)
                if self.pwc.access((depth, prefix)):
                    skipped = depth
            pwc_hits = skipped
        touches = levels - pwc_hits
        self.total_touches += touches
        self.total_pwc_hits += pwc_hits
        return WalkResult(translation, touches, pwc_hits)

    @property
    def mean_touches(self) -> float:
        """Average memory reads per walk so far (0.0 before any walk)."""
        return self.total_touches / self.walks if self.walks else 0.0


def nested_walk_cost(guest_levels: int = 4, host_levels: int = 4) -> int:
    """Worst-case memory touches of a two-dimensional (virtualized) walk.

    Each of the guest's ``guest_levels`` table reads is itself a guest-
    physical address that must be translated by the host's ``host_levels``
    walk, plus the final data translation — the classical
    ``(g+1)·(h+1) − 1`` bound behind the paper's remark that virtualization
    *squares* the TLB-miss cost.
    """
    check_positive_int(guest_levels, "guest_levels")
    check_positive_int(host_levels, "host_levels")
    return (guest_levels + 1) * (host_levels + 1) - 1
