"""Inverted (hashed) page tables — the O(P)-space alternative to radix.

A radix table's size scales with the *mapped virtual* footprint and its
walk depth with the VA width; an inverted table keeps one entry per
*physical* frame plus a hash anchor table, so space is O(P) and a
translation is a hash-chain walk (PowerPC/PA-RISC style; the direction the
paper's citation [48] "Towards O(1) memory" pushes). The walk cost here is
the chain length — the quantity a hashed-translation ε depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check_positive_int
from ..hashing import HashFamily

__all__ = ["InvertedPageTable", "InvertedTranslation"]

_FREE = -1
_NIL = -1


@dataclass(frozen=True, slots=True)
class InvertedTranslation:
    """Result of a hash-chain walk."""

    pfn: int
    chain_steps: int  # entries inspected, >= 1 on success


class InvertedPageTable:
    """One entry per frame, chained from a hash anchor table.

    Parameters
    ----------
    frames:
        Physical frames ``P`` (also the number of table entries).
    anchor_ratio:
        Hash-anchor buckets per frame (1.0 = classic HAT sizing; larger
        shortens chains at the cost of anchor memory).
    seed:
        Anchor hash seed.
    """

    def __init__(self, frames: int, anchor_ratio: float = 1.0, seed=None) -> None:
        self.frames = check_positive_int(frames, "frames")
        if anchor_ratio <= 0:
            raise ValueError(f"anchor_ratio must be positive, got {anchor_ratio}")
        self.n_anchors = max(1, int(frames * anchor_ratio))
        self._hash = HashFamily(1, self.n_anchors, seed=seed)[0]
        self._anchor = [_NIL] * self.n_anchors  # bucket -> first frame in chain
        self._vpn = [_FREE] * self.frames  # frame -> mapped vpn
        self._next = [_NIL] * self.frames  # frame -> next frame in chain
        self.mappings = 0
        self.total_chain_steps = 0
        self.translations = 0

    # ------------------------------------------------------------------ api

    def map(self, vpn: int, pfn: int) -> None:
        """Install ``vpn → pfn``; the frame must be free, the vpn unmapped."""
        self._check_pfn(pfn)
        if self._vpn[pfn] != _FREE:
            raise ValueError(f"frame {pfn} already holds vpn {self._vpn[pfn]}")
        if self.translate(vpn, count_stats=False) is not None:
            raise ValueError(f"vpn {vpn} is already mapped")
        bucket = self._hash(vpn)
        self._vpn[pfn] = vpn
        self._next[pfn] = self._anchor[bucket]
        self._anchor[bucket] = pfn
        self.mappings += 1

    def translate(self, vpn: int, count_stats: bool = True) -> InvertedTranslation | None:
        """Walk the chain for *vpn*; None on a page fault."""
        frame = self._anchor[self._hash(vpn)]
        steps = 0
        while frame != _NIL:
            steps += 1
            if self._vpn[frame] == vpn:
                if count_stats:
                    self.translations += 1
                    self.total_chain_steps += steps
                return InvertedTranslation(pfn=frame, chain_steps=steps)
            frame = self._next[frame]
        if count_stats:
            self.translations += 1
            self.total_chain_steps += steps
        return None

    def unmap(self, vpn: int) -> int:
        """Remove *vpn*'s mapping; returns the freed frame. KeyError if
        unmapped."""
        bucket = self._hash(vpn)
        frame = self._anchor[bucket]
        prev = _NIL
        while frame != _NIL:
            if self._vpn[frame] == vpn:
                if prev == _NIL:
                    self._anchor[bucket] = self._next[frame]
                else:
                    self._next[prev] = self._next[frame]
                self._vpn[frame] = _FREE
                self._next[frame] = _NIL
                self.mappings -= 1
                return frame
            prev, frame = frame, self._next[frame]
        raise KeyError(f"vpn {vpn} is not mapped")

    def __contains__(self, vpn: int) -> bool:
        return self.translate(vpn, count_stats=False) is not None

    def __len__(self) -> int:
        return self.mappings

    # ------------------------------------------------------------- metrics

    @property
    def mean_chain_steps(self) -> float:
        """Average entries inspected per translation so far."""
        return self.total_chain_steps / self.translations if self.translations else 0.0

    @property
    def memory_words(self) -> int:
        """Table footprint in machine words: anchors + 2 per frame —
        independent of the virtual footprint, unlike radix."""
        return self.n_anchors + 2 * self.frames

    def _check_pfn(self, pfn: int) -> None:
        if not (0 <= pfn < self.frames):
            raise ValueError(f"pfn {pfn} out of range [0, {self.frames})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<InvertedPageTable frames={self.frames} mappings={self.mappings} "
            f"mean_chain={self.mean_chain_steps:.2f}>"
        )
