"""Page-table substrate: sparse radix tree, inverted (hashed) table,
walker, and walk-cost models."""

from .inverted import InvertedPageTable, InvertedTranslation
from .radix import RadixPageTable, Translation
from .walk import PageWalker, WalkResult, nested_walk_cost

__all__ = [
    "RadixPageTable",
    "Translation",
    "InvertedPageTable",
    "InvertedTranslation",
    "PageWalker",
    "WalkResult",
    "nested_walk_cost",
]
