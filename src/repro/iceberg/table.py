"""Iceberg hash table — the companion data structure behind Theorem 2.

The paper's reference [34] ("Dynamic balls-and-bins and iceberg hashing")
turns the Iceberg[d] placement rule into a *stable* dynamic dictionary:
once a key is placed in a slot it never moves until deleted, yet space
stays tight and operations stay O(1). The structure has three levels,
mirroring the published IcebergHT design:

* **level 1 (front yard)** — large bins addressed by one hash; holds the
  (1+o(1))·λ bulk of the keys;
* **level 2 (back yard)** — small bins, two hashed choices, greedy by
  load; holds the ``log log n``-scale spill;
* **level 3 (overflow)** — a tiny chained area for the poly-small tail
  (the paging-failure analogue; a correct table must store the key
  *somewhere*).

Stability is what the decoupling application needs: a page's slot is its
physical address, and ``φ`` must not move pages. The table also reports
per-level occupancies so tests can check the iceberg shape.
"""

from __future__ import annotations

from typing import Iterator

from .._util import check_positive_int
from ..hashing import HashFamily

__all__ = ["IcebergHashTable"]

_EMPTY = object()  # slot sentinel (distinct from any user key)


class _Bin:
    """A fixed-size open slot array; slots are stable once assigned."""

    __slots__ = ("keys", "values", "used")

    def __init__(self, size: int) -> None:
        self.keys = [_EMPTY] * size
        self.values = [None] * size
        self.used = 0

    def find(self, key) -> int:
        keys = self.keys
        for i in range(len(keys)):
            if keys[i] is not _EMPTY and keys[i] == key:
                return i
        return -1

    def insert(self, key, value) -> int:
        keys = self.keys
        for i in range(len(keys)):
            if keys[i] is _EMPTY:
                keys[i] = key
                self.values[i] = value
                self.used += 1
                return i
        return -1

    def remove_at(self, i: int) -> None:
        self.keys[i] = _EMPTY
        self.values[i] = None
        self.used -= 1


class IcebergHashTable:
    """A stable, three-level hashed dictionary.

    Parameters
    ----------
    capacity:
        Design capacity (keys). The front yard is provisioned at
        ``capacity / front_bin`` bins and the back yard at
        ``~capacity / (8 · back_bin)`` bins — the published 1 : ⅛ split.
    front_bin / back_bin:
        Bin sizes (64 and 8 in IcebergHT).
    seed:
        Hash seed (three independent functions, as in Iceberg[2]).

    Notes
    -----
    Exceeding *capacity* is allowed — excess lands in level 3 and degrades
    to dict behaviour, exactly like paging failures degrade to extra IOs.
    """

    def __init__(
        self,
        capacity: int,
        *,
        front_bin: int = 64,
        back_bin: int = 8,
        seed=None,
    ) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        self.front_bin = check_positive_int(front_bin, "front_bin")
        self.back_bin = check_positive_int(back_bin, "back_bin")
        n_front = max(1, -(-capacity // front_bin))
        n_back = max(1, -(-capacity // (8 * back_bin)))
        self._front = [_Bin(front_bin) for _ in range(n_front)]
        self._back = [_Bin(back_bin) for _ in range(n_back)]
        self._h_front = HashFamily(1, n_front, seed=seed)
        self._h_back = HashFamily(2, n_back, seed=None if seed is None else seed + 1)
        self._overflow: dict = {}
        self._level_of: dict = {}  # key -> (level, bin index, slot) | (3,)
        self.stats_inserts = 0
        self.stats_spills = 0

    # ------------------------------------------------------------------ api

    def insert(self, key, value) -> None:
        """Insert or overwrite ``key → value`` (stable slot on overwrite)."""
        where = self._level_of.get(key)
        if where is not None:
            self._write(where, key, value)
            return
        self.stats_inserts += 1
        fb = self._h_front[0](hash(key))
        slot = self._front[fb].insert(key, value)
        if slot >= 0:
            self._level_of[key] = (1, fb, slot)
            return
        # level 2: two choices, least loaded first
        b1, b2 = (h(hash(key)) for h in self._h_back.functions)
        first, second = (b1, b2) if self._back[b1].used <= self._back[b2].used else (b2, b1)
        for bb in (first, second):
            slot = self._back[bb].insert(key, value)
            if slot >= 0:
                self._level_of[key] = (2, bb, slot)
                return
        # level 3: overflow
        self._overflow[key] = value
        self._level_of[key] = (3,)
        self.stats_spills += 1

    def get(self, key, default=None):
        """Value of *key*, or *default*."""
        where = self._level_of.get(key)
        if where is None:
            return default
        if where[0] == 3:
            return self._overflow[key]
        _, b, slot = where
        yard = self._front if where[0] == 1 else self._back
        return yard[b].values[slot]

    def delete(self, key) -> None:
        """Remove *key*; KeyError if absent."""
        where = self._level_of.pop(key)  # raises KeyError
        if where[0] == 3:
            del self._overflow[key]
            return
        _, b, slot = where
        yard = self._front if where[0] == 1 else self._back
        yard[b].remove_at(slot)

    def slot_of(self, key) -> tuple | None:
        """The stable (level, bin, slot) coordinate of *key* (None if
        absent; level-3 keys report ``(3,)``). This is the table's analogue
        of a physical address: it never changes while the key is present."""
        return self._level_of.get(key)

    def __getitem__(self, key):
        sentinel = _EMPTY
        out = self.get(key, sentinel)
        if out is sentinel:
            raise KeyError(key)
        return out

    def __setitem__(self, key, value) -> None:
        self.insert(key, value)

    def __delitem__(self, key) -> None:
        self.delete(key)

    def __contains__(self, key) -> bool:
        return key in self._level_of

    def __len__(self) -> int:
        return len(self._level_of)

    def keys(self) -> Iterator:
        return iter(self._level_of)

    def check_invariants(self) -> None:
        """Structural self-check (used by :mod:`repro.check` deep sweeps).

        Asserts the directory and the yards agree exactly: every directory
        entry points at a slot that really holds its key, every occupied
        slot is claimed by exactly one directory entry, per-bin ``used``
        counters match the slots, and each key's hashed bin choices cover
        its recorded bin (placement honoured the hash functions).
        """
        claimed: set[tuple[int, int, int]] = set()
        for key, where in self._level_of.items():
            if where[0] == 3:
                assert key in self._overflow, f"level-3 key {key!r} missing from overflow"
                continue
            level, b, slot = where
            yard = self._front if level == 1 else self._back
            assert yard[b].keys[slot] == key, (
                f"directory says {key!r} is at L{level}[{b}][{slot}], "
                f"slot holds {yard[b].keys[slot]!r}"
            )
            if level == 1:
                assert b == self._h_front[0](hash(key)), (
                    f"key {key!r} sits in front bin {b}, not its hashed bin"
                )
            else:
                choices = {h(hash(key)) for h in self._h_back.functions}
                assert b in choices, (
                    f"key {key!r} sits in back bin {b}, outside its choices {choices}"
                )
            claimed.add((level, b, slot))
        for level, yard in ((1, self._front), (2, self._back)):
            for b, bin_ in enumerate(yard):
                occupied = [i for i, k in enumerate(bin_.keys) if k is not _EMPTY]
                assert bin_.used == len(occupied), (
                    f"L{level}[{b}] used={bin_.used} but {len(occupied)} slots occupied"
                )
                for i in occupied:
                    assert (level, b, i) in claimed, (
                        f"orphan slot L{level}[{b}][{i}] holds {bin_.keys[i]!r} "
                        "with no directory entry"
                    )
        assert len(self._overflow) == sum(
            1 for w in self._level_of.values() if w[0] == 3
        ), "overflow size disagrees with the directory"

    # ------------------------------------------------------------ internals

    def _write(self, where, key, value) -> None:
        if where[0] == 3:
            self._overflow[key] = value
            return
        _, b, slot = where
        yard = self._front if where[0] == 1 else self._back
        yard[b].values[slot] = value

    # ------------------------------------------------------------- metrics

    @property
    def load_factor(self) -> float:
        """Keys stored / design capacity."""
        return len(self._level_of) / self.capacity

    def level_occupancy(self) -> dict[int, int]:
        """Key count per level — the 'iceberg' profile (level 1 holds the
        bulk, level 2 the visible tip's shadow, level 3 nearly nothing)."""
        front = sum(b.used for b in self._front)
        back = sum(b.used for b in self._back)
        return {1: front, 2: back, 3: len(self._overflow)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        occ = self.level_occupancy()
        return (
            f"<IcebergHashTable n={len(self)}/{self.capacity} "
            f"L1={occ[1]} L2={occ[2]} L3={occ[3]}>"
        )
