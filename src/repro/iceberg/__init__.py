"""Iceberg hashing: the stable dynamic dictionary of the paper's companion
work [34], built on the Iceberg[d] balls-and-bins rule of Section 4."""

from .table import IcebergHashTable

__all__ = ["IcebergHashTable"]
