"""The huge-page decoupling scheme (paper Section 3).

A decoupling scheme glues together three parts:

* a **RAM-allocation scheme** choosing ``φ(v)`` (here: any
  :class:`~repro.core.allocation.RAMAllocationScheme`);
* a **TLB-encoding scheme** maintaining the ``w``-bit value ``ψ(u)`` of
  every virtual huge page ``u`` (here: a
  :class:`~repro.core.encoding.TLBValueCodec` plus a hash map from huge
  pages to their current value — the constant-time bookkeeping of
  Theorem 1's proof);
* a **TLB-decoding function** ``f(v, ψ(u))`` returning ``φ(v)`` when
  ``v ∈ A`` and −1 otherwise — eq. (4).

The scheme is *driven* by two oblivious input policies: the
RAM-replacement policy (which pages are in the active set ``A``) and the
TLB-replacement policy (which huge pages are in ``T``). Those policies call
the ``ram_insert`` / ``ram_evict`` / ``tlb_insert`` / ``tlb_evict`` hooks;
the scheme never second-guesses them.

Pages the allocator cannot place join the failure set ``F`` (they are in
``A`` from the replacement policy's point of view but hold no frame); a
failure lasts until the replacement policy evicts the page, exactly as the
paper specifies.
"""

from __future__ import annotations

from typing import Callable

from .allocation import RAMAllocationScheme
from .encoding import TLBValueCodec

__all__ = ["DecouplingScheme", "NOT_PRESENT"]

#: Sentinel returned by the decoding function for pages not in RAM.
NOT_PRESENT = -1


class DecouplingScheme:
    """Maintains ``φ``, ``ψ``, and the failure set ``F`` under policy events.

    Parameters
    ----------
    allocator:
        The RAM-allocation scheme (owns ``φ``).
    codec:
        The value codec; ``codec.hmax`` fixes the huge-page size.
    on_value_update:
        Optional callback ``(hpn, value)`` fired whenever ``ψ(u)`` changes
        for a huge page currently in ``T`` — the hook a hardware TLB uses
        to refresh its resident entry (a free operation in the cost model).
    """

    def __init__(
        self,
        allocator: RAMAllocationScheme,
        codec: TLBValueCodec,
        on_value_update: Callable[[int, int], None] | None = None,
    ) -> None:
        if codec.max_code < allocator.associativity - 1:
            raise ValueError(
                f"codec fields ({codec.field_bits} bits, max code {codec.max_code}) "
                f"cannot address associativity {allocator.associativity}"
            )
        self.allocator = allocator
        self.codec = codec
        self.hmax = codec.hmax
        self.on_value_update = on_value_update
        # ψ(u) for every huge page with at least one present page; absent
        # entries implicitly hold codec.empty. This map is what makes the
        # scheme constant-time: a TLB insert just reads one dict entry.
        self._psi: dict[int, int] = {}
        self._tlb_resident: set[int] = set()  # T
        self._failed: set[int] = set()  # F
        self._active: set[int] = set()  # A (placed pages ∪ F)

    # ----------------------------------------------------------- RAM events

    def ram_insert(self, vpn: int) -> int | None:
        """RAM-replacement policy added *vpn* to ``A``; place it.

        Returns the frame, or None on a paging failure (the page joins
        ``F`` and stays in ``A`` unplaced).
        """
        if vpn in self._active:
            raise ValueError(f"vpn {vpn} is already active")
        self._active.add(vpn)
        frame = self.allocator.allocate(vpn)
        if frame is None:
            self._failed.add(vpn)
            return None
        self._set_psi_field(vpn, self.allocator.encode(vpn))
        return frame

    def ram_evict(self, vpn: int) -> None:
        """RAM-replacement policy removed *vpn* from ``A``."""
        self._active.remove(vpn)  # raises KeyError if not active
        if vpn in self._failed:
            self._failed.remove(vpn)  # the failure ends with the eviction
            return
        self.allocator.free(vpn)
        self._clear_psi_field(vpn)

    def apply_events(
        self, inserts: list[int], evicts: list[int], first_evt: int = 0
    ) -> int | None:
        """Bulk-apply an interleaved ``ram_evict``/``ram_insert`` stream.

        Equivalent to the per-event calls under the batch interleave
        convention (eviction ``k - first_evt`` immediately before insert
        ``k``), with ψ maintenance folded into **one** pass over each
        touched page's final state — a page placed and evicted five times
        in the stream gets one field update, not ten.

        ``on_value_update`` callbacks are suppressed for the whole batch:
        callers owning a TLB must refresh resident values themselves (the
        array engine rebuilds them wholesale during state sync).

        Returns the index of the first failing insert — that insert is
        applied (the page joins ``F``) and everything after it is not —
        ``-1`` for a clean run, or None to decline: pre-existing failures
        (mid-stream evictions of unplaced pages need per-event handling)
        or an allocator without a bulk path.
        """
        if self._failed:
            return None
        bulk = getattr(self.allocator, "bulk_replay", None)
        if bulk is None:
            return None
        out = bulk(inserts, evicts, first_evt)
        if out is None:
            return None
        codes, failed = out
        # last applied event per page wins: a location code (placed),
        # -1 (evicted), or -2 (failed insert)
        last: dict[int, int] = {}
        for k, code in enumerate(codes):
            if k >= first_evt:
                last[evicts[k - first_evt]] = -1
            last[inserts[k]] = -2 if code is None else code
        active = self._active
        callback = self.on_value_update
        self.on_value_update = None
        try:
            for vpn, state in last.items():
                if state >= 0:
                    active.add(vpn)
                    self._set_psi_field(vpn, state)
                elif state == -1:
                    active.discard(vpn)
                    self._clear_psi_field(vpn)
                else:
                    active.add(vpn)
                    self._failed.add(vpn)
                    self._clear_psi_field(vpn)
        finally:
            self.on_value_update = callback
        return failed

    # ----------------------------------------------------------- TLB events

    def tlb_insert(self, hpn: int) -> int:
        """TLB-replacement policy added huge page *hpn* to ``T``; return ψ."""
        if hpn in self._tlb_resident:
            raise ValueError(f"huge page {hpn} is already in the TLB")
        self._tlb_resident.add(hpn)
        return self._psi.get(hpn, self.codec.empty)

    def tlb_evict(self, hpn: int) -> None:
        """TLB-replacement policy removed huge page *hpn* from ``T``."""
        self._tlb_resident.remove(hpn)  # raises KeyError if absent

    # ------------------------------------------------------------- decoding

    def psi(self, hpn: int) -> int:
        """Current encoded value ``ψ(u)`` for huge page *hpn*."""
        return self._psi.get(hpn, self.codec.empty)

    def f(self, vpn: int, value: int) -> int:
        """The TLB-decoding function of eq. (4).

        Pure given the scheme's hash seeds: recomputes the candidate bucket
        from *vpn* and the stored choice/slot code. Returns the frame or
        :data:`NOT_PRESENT`.
        """
        code = self.codec.field(value, vpn % self.hmax)
        if code is None:
            return NOT_PRESENT
        return self.allocator.decode(vpn, code)

    def decode(self, vpn: int) -> int:
        """Translate *vpn* through the TLB: ``f(v, ψ(r(v)))``.

        Raises LookupError if *vpn*'s huge page is not in ``T`` (a real TLB
        would simply miss; callers model that separately).
        """
        hpn = vpn // self.hmax
        if hpn not in self._tlb_resident:
            raise LookupError(f"huge page {hpn} is not in the TLB")
        return self.f(vpn, self.psi(hpn))

    # -------------------------------------------------------------- queries

    @property
    def active_set(self) -> frozenset[int]:
        """The active set ``A`` (placed pages plus failures)."""
        return frozenset(self._active)

    @property
    def tlb_set(self) -> frozenset[int]:
        """The TLB set ``T``."""
        return frozenset(self._tlb_resident)

    @property
    def failure_set(self) -> frozenset[int]:
        """The failure set ``F ⊆ A``."""
        return frozenset(self._failed)

    def is_failed(self, vpn: int) -> bool:
        return vpn in self._failed

    def frame_of(self, vpn: int) -> int | None:
        """``φ(v)`` — the frame of *vpn*, or None (not active, or failed)."""
        return self.allocator.frame_of(vpn)

    # ------------------------------------------------------------ internals

    def _set_psi_field(self, vpn: int, code: int) -> None:
        hpn, idx = divmod(vpn, self.hmax)
        value = self.codec.set_field(self._psi.get(hpn, 0), idx, code)
        self._psi[hpn] = value
        if self.on_value_update is not None and hpn in self._tlb_resident:
            self.on_value_update(hpn, value)

    def _clear_psi_field(self, vpn: int) -> None:
        hpn, idx = divmod(vpn, self.hmax)
        value = self.codec.clear_field(self._psi.get(hpn, 0), idx)
        if value:
            self._psi[hpn] = value
        else:
            self._psi.pop(hpn, None)
        if self.on_value_update is not None and hpn in self._tlb_resident:
            self.on_value_update(hpn, value)

    # ------------------------------------------------------------ validation

    def check_invariants(self) -> None:
        """Assert the Section 3 requirements hold (test/debug helper).

        * ``F ⊆ A``;
        * ``φ`` is injective over placed pages;
        * eq. (4): for every active page whose huge page we probe,
          ``f(v, ψ(r(v)))`` equals ``φ(v)`` (or −1 for failed pages), and
          non-active covered pages decode to −1.
        """
        assert self._failed <= self._active, "F must be a subset of A"
        frames: dict[int, int] = {}
        for vpn in self._active:
            if vpn in self._failed:
                assert self.allocator.frame_of(vpn) is None
                continue
            frame = self.allocator.frame_of(vpn)
            assert frame is not None, f"active page {vpn} has no frame"
            assert frame not in frames, (
                f"φ not injective: frame {frame} held by {frames[frame]} and {vpn}"
            )
            frames[frame] = vpn
            decoded = self.f(vpn, self.psi(vpn // self.hmax))
            assert decoded == frame, f"f({vpn}) = {decoded} != φ = {frame}"
        # every present ψ field must correspond to an active, placed page
        for hpn, value in self._psi.items():
            for idx, _code in self.codec.present_fields(value):
                vpn = hpn * self.hmax + idx
                assert vpn in self._active and vpn not in self._failed, (
                    f"ψ field set for non-present page {vpn}"
                )
