"""Compact TLB-value encodings for huge-page decoupling (paper Section 4).

A decoupled TLB value is an array of ``h_max`` fields packed into ``w``
bits. Field ``i`` describes the ``i``-th base page of the huge page: the
value ``0`` means *not in RAM* (the paper's −1), and any other value is
``1 +`` the page's location code from the RAM-allocation scheme (which of
its ``k`` hashed buckets, and which slot). A field therefore needs
``⌈log₂(associativity + 1)⌉`` bits, and::

    h_max = ⌊ w / ⌈log₂(associativity + 1)⌉ ⌋

which instantiates to ``Θ(w / log log P)`` for the one-choice scheme and
``Θ(w / log log log P)`` for the Iceberg scheme — the paper's eq. (2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .._util import ceil_log2, check_positive_int

__all__ = ["TLBValueCodec", "field_bits_for", "hmax_for"]


def field_bits_for(associativity: int) -> int:
    """Bits per field: location codes ``[0, assoc)`` plus the absent marker."""
    check_positive_int(associativity, "associativity")
    return ceil_log2(associativity + 1)


def hmax_for(w: int, associativity: int) -> int:
    """Largest huge-page size a ``w``-bit value supports at *associativity*.

    Returns 0 when even a single field does not fit (the scheme is
    infeasible at this ``w``).
    """
    check_positive_int(w, "w")
    return w // field_bits_for(associativity)


class TLBValueCodec:
    """Packs/unpacks per-page location fields into a ``w``-bit TLB value.

    Values are plain Python ints, so the codec is allocation-free on the
    hot path; ``0`` (all fields absent) is the natural empty value.

    Parameters
    ----------
    w:
        TLB value width in bits.
    hmax:
        Number of fields (the huge-page size in base pages).
    field_bits:
        Bits per field. ``hmax * field_bits`` must be ≤ ``w``.
    """

    __slots__ = ("w", "hmax", "field_bits", "_field_mask")

    def __init__(self, w: int, hmax: int, field_bits: int) -> None:
        self.w = check_positive_int(w, "w")
        self.hmax = check_positive_int(hmax, "hmax")
        self.field_bits = check_positive_int(field_bits, "field_bits")
        if hmax * field_bits > w:
            raise ValueError(
                f"hmax ({hmax}) × field_bits ({field_bits}) = {hmax * field_bits} "
                f"exceeds the TLB value width w = {w}"
            )
        self._field_mask = (1 << field_bits) - 1

    @classmethod
    def for_allocator(cls, w: int, allocator, hmax: int | None = None) -> "TLBValueCodec":
        """Build a codec sized for *allocator*'s associativity.

        With *hmax* omitted, uses the maximum feasible
        :func:`hmax_for(w, associativity) <hmax_for>`.
        """
        bits = field_bits_for(allocator.associativity)
        if hmax is None:
            hmax = w // bits
            if hmax == 0:
                raise ValueError(
                    f"a single {bits}-bit field does not fit in w = {w} bits"
                )
        return cls(w, hmax, bits)

    # ------------------------------------------------------------------ api

    @property
    def empty(self) -> int:
        """The value with every field absent."""
        return 0

    @property
    def max_code(self) -> int:
        """Largest location code a field can hold (codes are 0-based)."""
        return self._field_mask - 1

    def encode(self, codes: Sequence[int | None]) -> int:
        """Pack *codes* (one per page; None = absent) into a value."""
        if len(codes) != self.hmax:
            raise ValueError(f"expected {self.hmax} fields, got {len(codes)}")
        value = 0
        for i, code in enumerate(codes):
            if code is not None:
                value = self.set_field(value, i, code)
        return value

    def decode(self, value: int) -> list[int | None]:
        """Unpack a value into its ``hmax`` codes (None = absent)."""
        return [self.field(value, i) for i in range(self.hmax)]

    def field(self, value: int, i: int) -> int | None:
        """Code of field *i* in *value*, or None if the page is absent."""
        self._check_index(i)
        raw = (value >> (i * self.field_bits)) & self._field_mask
        return raw - 1 if raw else None

    def set_field(self, value: int, i: int, code: int) -> int:
        """Return *value* with field *i* set to location *code*."""
        self._check_index(i)
        if not (0 <= code <= self.max_code):
            raise ValueError(
                f"code {code} does not fit in a {self.field_bits}-bit field "
                f"(max {self.max_code})"
            )
        shift = i * self.field_bits
        return (value & ~(self._field_mask << shift)) | ((code + 1) << shift)

    def clear_field(self, value: int, i: int) -> int:
        """Return *value* with field *i* marked absent."""
        self._check_index(i)
        return value & ~(self._field_mask << (i * self.field_bits))

    def present_fields(self, value: int) -> Iterable[tuple[int, int]]:
        """Yield ``(index, code)`` for every present field in *value*."""
        mask = self._field_mask
        bits = self.field_bits
        for i in range(self.hmax):
            raw = (value >> (i * bits)) & mask
            if raw:
                yield i, raw - 1

    def _check_index(self, i: int) -> None:
        if not (0 <= i < self.hmax):
            raise IndexError(f"field index {i} out of range [0, {self.hmax})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TLBValueCodec w={self.w} hmax={self.hmax} field_bits={self.field_bits}>"
