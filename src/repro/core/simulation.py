"""Theorem 4 (the Simulation Theorem): building ``Z`` from ``X``, ``Y``, ``D``.

Given a TLB-replacement policy ``X`` (how an arbitrary TLB-optimizing
algorithm manages its ``ℓ`` entries), a RAM-replacement policy ``Y``
operating on ``(1−δ)P`` frames (how an IO-optimizing algorithm manages
RAM), and a huge-page decoupling scheme ``D``, the combined algorithm ``Z``

* keeps ``T_Z = { r(v) : v ∈ T_X }`` — size-``h_max`` huge pages mirroring
  ``X``'s TLB decisions;
* keeps its active set equal to ``Y``'s;
* services a request to a page in ``D``'s failure set with one temporary
  IO plus a decoding miss (cost ``1 + ε``), never encoding it in the TLB.

The cost guarantee (eq. 3)::

    C(Z, σ) ≤ C_TLB(X, σ) + C_IO(Y, σ) + n/poly(P)    w.h.p. in P.

:class:`DecoupledSystem` is the executable construction; its counters feed
a :class:`~repro.core.model.CostLedger` so benches can verify eq. (3)
directly against independently-run ``X`` and ``Y``.
"""

from __future__ import annotations

from .._util import as_int_list, check_positive_int
from ..paging import PageCache, ReplacementPolicy
from ..tlb import TLB
from .decoupling import DecouplingScheme
from .model import CostLedger

__all__ = ["DecoupledSystem"]


class DecoupledSystem:
    """The memory-management algorithm ``Z`` of Theorem 4.

    Parameters
    ----------
    tlb_entries:
        ``ℓ``. The TLB uses *tlb_policy* (``X``'s replacement rule) over
        huge pages of size ``scheme.hmax``.
    ram_capacity:
        ``m = (1−δ)P`` — the occupancy cap ``Y`` must respect. Must not
        exceed the allocator's ``frames_used`` (else failures are
        guaranteed rather than unlikely).
    tlb_policy / ram_policy:
        Fresh replacement-policy instances for ``X`` and ``Y``.
    scheme:
        The decoupling scheme ``D`` (owns the allocator and the codec).

    Notes
    -----
    ``Z`` is online iff both policies are online; with a
    :class:`~repro.paging.BeladyOPT` policy it realizes the offline bound.
    """

    def __init__(
        self,
        tlb_entries: int,
        ram_capacity: int,
        tlb_policy: ReplacementPolicy,
        ram_policy: ReplacementPolicy,
        scheme: DecouplingScheme,
        *,
        io_unit: int = 1,
    ) -> None:
        check_positive_int(tlb_entries, "tlb_entries")
        check_positive_int(ram_capacity, "ram_capacity")
        check_positive_int(io_unit, "io_unit")
        if ram_capacity > scheme.allocator.total_frames:
            raise ValueError(
                f"ram_capacity ({ram_capacity}) exceeds physical frames "
                f"({scheme.allocator.total_frames}); Y must run on (1-δ)P"
            )
        self.scheme = scheme
        self.hmax = scheme.hmax
        #: pages moved per RAM fault. 1 for plain decoupling; the Section 8
        #: hybrid allocates physically-contiguous runs of io_unit base pages,
        #: so each fault costs io_unit IOs.
        self.io_unit = io_unit
        # ψ updates for TLB-resident huge pages are pushed into the TLB's
        # stored values (free in the cost model).
        scheme.on_value_update = self._psi_changed
        self.tlb = TLB(tlb_entries, value_bits=scheme.codec.w, policy=tlb_policy)
        # Y drives RAM; every eviction immediately releases the frame in D.
        self.ram = PageCache(ram_capacity, ram_policy, on_evict=scheme.ram_evict)
        self.ledger = CostLedger()

    # ------------------------------------------------------------------ api

    def access(self, vpn: int) -> None:
        """Service one virtual-page request through ``Z``."""
        ledger = self.ledger
        ledger.accesses += 1
        scheme = self.scheme

        # --- TLB step: ensure a huge page covering vpn is in T_Z.
        hpn = vpn // self.hmax
        value = self.tlb.lookup(hpn)
        if value is None:
            ledger.tlb_misses += 1
            victim = self.tlb.fill(hpn, scheme.psi(hpn))
            if victim is not None:
                scheme.tlb_evict(victim)
            scheme.tlb_insert(hpn)
        else:
            ledger.tlb_hits += 1

        # --- RAM step: ensure vpn is in Y's active set.
        if self.ram.access(vpn):
            # Y considers the page resident. If D failed to place it, every
            # request is serviced with a temporary IO + a decoding miss.
            if scheme.is_failed(vpn):
                ledger.ios += self.io_unit
                ledger.decoding_misses += 1
                ledger.paging_failures += 1
            return
        # Fault in Y: Y has already evicted (callback released the frame)
        # and recorded vpn as resident; now place it in D.
        frame = scheme.ram_insert(vpn)
        ledger.ios += self.io_unit
        if frame is None:
            # Paging failure on arrival: the temporary IO is the one we just
            # counted; the request additionally suffers a decoding miss.
            ledger.decoding_misses += 1
            ledger.paging_failures += 1

    def run(self, trace) -> CostLedger:
        """Service every request in *trace*; return the ledger."""
        access = self.access
        for vpn in as_int_list(trace):
            access(vpn)
        return self.ledger

    def bucket_loads(self):
        """Per-bucket load vector of the underlying allocator (None when the
        allocator is not bucketed) — the observability layer's source for
        ``bucket_load`` histograms."""
        allocator = self.scheme.allocator
        if hasattr(allocator, "bucket_loads"):
            return allocator.bucket_loads()
        return None

    # ------------------------------------------------------------ internals

    def _psi_changed(self, hpn: int, value: int) -> None:
        if hpn in self.tlb:
            self.tlb.update(hpn, value)

    # ------------------------------------------------------------ validation

    def check_invariants(self) -> None:
        """Cross-check Z's components (test helper).

        The TLB's resident set must equal ``T``; every stored TLB value must
        equal the scheme's current ψ; Y's resident set must equal ``A``; and
        the scheme's own invariants (eq. 4, injectivity) must hold.
        """
        assert set(self.tlb.resident()) == set(self.scheme.tlb_set)
        for hpn in self.tlb.resident():
            assert self.tlb.peek(hpn) == self.scheme.psi(hpn), (
                f"stale TLB value for huge page {hpn}"
            )
        assert set(self.ram.resident()) == set(self.scheme.active_set)
        self.scheme.check_invariants()
