"""Closed-form parameter calculators for the paper's theorems.

These functions turn the asymptotic statements of Theorems 1 and 3 into
concrete, runnable scheme parameters at finite ``P`` and ``w``, and expose
the comparison curves that the tests and benchmarks check measured behaviour
against. Where the paper writes Θ(·)/O(·), we fix the natural unit constants
and document them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._util import check_positive_int
from ..ballsbins import (
    greedy_max_load_bound,
    iceberg_max_load_bound,
    one_choice_max_load_bound,
)
from .allocation import (
    GreedyAllocator,
    IcebergAllocator,
    OneChoiceAllocator,
    RAMAllocationScheme,
)
from .encoding import field_bits_for

__all__ = [
    "SchemeParameters",
    "hmax_upper_bound",
    "theorem1_parameters",
    "theorem3_parameters",
    "greedy_parameters",
    "build_allocator",
    "one_choice_max_load_bound",
    "greedy_max_load_bound",
    "iceberg_max_load_bound",
]


def hmax_upper_bound(w: int) -> int:
    """Eq. (1): ``h_max ≤ w`` — each field costs at least one presence bit."""
    return check_positive_int(w, "w")


@dataclass(frozen=True, slots=True)
class SchemeParameters:
    """Concrete sizing of a low-associativity decoupling scheme.

    ``frames_used ≤ P`` is the largest multiple of ``bucket_size`` not
    exceeding the requested physical memory; ``max_pages = (1-δ)·frames_used``
    is the resource-augmented occupancy limit the RAM-replacement policy
    must respect.
    """

    scheme: str  # "one-choice" | "greedy" | "iceberg"
    total_frames: int  # requested P
    frames_used: int  # n_buckets * bucket_size (≤ P)
    n_buckets: int
    bucket_size: int
    lam: float  # target average bucket load m/n
    delta: float  # resource-augmentation parameter
    associativity: int
    field_bits: int
    hmax: int  # fields per w-bit TLB value
    w: int

    @property
    def max_pages(self) -> int:
        """Occupancy cap ``m = ⌊(1−δ)·frames_used⌋`` for the RAM policy."""
        return int((1.0 - self.delta) * self.frames_used)


def _loglog(p: int) -> float:
    return math.log(max(math.e, math.log(max(3, p))))


def _logloglog(p: int) -> float:
    return math.log(max(math.e, _loglog(p)))


def theorem1_parameters(P: int, w: int) -> SchemeParameters:
    """Theorem 1 sizing: one-choice buckets of ``B ≈ (1+δ)·log P·log log P``.

    λ = log P · log log P, δ = 1/√(log log P); the measured max bucket load
    is then below ``B`` w.h.p. (eq. 5, third case), and
    ``h_max = Θ(w / log log P)``.
    """
    check_positive_int(P, "P")
    check_positive_int(w, "w")
    log_p = math.log(max(2, P))
    lam = max(1.0, log_p * _loglog(P))
    delta = min(0.5, 1.0 / math.sqrt(_loglog(P)))
    bucket_size = max(1, math.ceil((1.0 + delta) * lam))
    n_buckets = max(1, P // bucket_size)
    frames_used = n_buckets * bucket_size
    associativity = bucket_size  # k = 1
    bits = field_bits_for(associativity)
    return SchemeParameters(
        scheme="one-choice",
        total_frames=P,
        frames_used=frames_used,
        n_buckets=n_buckets,
        bucket_size=bucket_size,
        lam=lam,
        delta=delta,
        associativity=associativity,
        field_bits=bits,
        hmax=max(0, w // bits),
        w=w,
    )


def theorem3_parameters(P: int, w: int, *, front_slack: float = 0.2) -> SchemeParameters:
    """Theorem 3 (Decoupling Theorem) sizing: Iceberg[2] buckets.

    λ = log log P · log log log P; the bucket must fit the Theorem 2 load
    ``(1+front_slack)·λ + log log n + O(1)``, so
    ``B = ⌈(1+front_slack)·λ + log log n + 2⌉`` and the resulting
    ``δ = B/λ − 1 = o(1)`` as P grows. With ``k = 3`` choices,
    ``h_max = Θ(w / log log log P)``.
    """
    check_positive_int(P, "P")
    check_positive_int(w, "w")
    lam = max(1.0, _loglog(P) * _logloglog(P))
    # n ≈ P/λ; the log log n spill term uses that estimate.
    n_estimate = max(3, int(P / lam))
    loglog_n = math.log(max(math.e, math.log(n_estimate)))
    bucket_size = max(1, math.ceil((1.0 + front_slack) * lam + loglog_n + 2.0))
    n_buckets = max(1, P // bucket_size)
    frames_used = n_buckets * bucket_size
    delta = min(0.5, bucket_size / lam - 1.0) if lam > 0 else 0.5
    delta = max(delta, 0.0)
    associativity = 3 * bucket_size  # k = d + 1 = 3
    bits = field_bits_for(associativity)
    return SchemeParameters(
        scheme="iceberg",
        total_frames=P,
        frames_used=frames_used,
        n_buckets=n_buckets,
        bucket_size=bucket_size,
        lam=lam,
        delta=delta,
        associativity=associativity,
        field_bits=bits,
        hmax=max(0, w // bits),
        w=w,
    )


def greedy_parameters(P: int, w: int, *, d: int = 2) -> SchemeParameters:
    """Greedy[d] sizing at the same λ as Theorem 3 — the instructive failure.

    Per eq. (6) the max load is ``O(λ) + log log n``, so fitting it requires
    ``B ≈ 2λ``, i.e. δ = Ω(1): half of RAM wasted. We size exactly that way
    so benchmarks can demonstrate the gap.
    """
    check_positive_int(P, "P")
    check_positive_int(w, "w")
    lam = max(1.0, _loglog(P) * _logloglog(P))
    n_estimate = max(3, int(P / lam))
    loglog_n = math.log(max(math.e, math.log(n_estimate)))
    bucket_size = max(1, math.ceil(2.0 * lam + loglog_n + 1.0))
    n_buckets = max(1, P // bucket_size)
    frames_used = n_buckets * bucket_size
    # supporting average load λ in buckets sized for a 2λ+… max load wastes
    # the rest of each bucket: δ = 1 − λ/B ≥ 1/2 — the Ω(1) augmentation.
    delta = max(0.0, 1.0 - lam / bucket_size)
    associativity = d * bucket_size
    bits = field_bits_for(associativity)
    return SchemeParameters(
        scheme="greedy",
        total_frames=P,
        frames_used=frames_used,
        n_buckets=n_buckets,
        bucket_size=bucket_size,
        lam=lam,
        delta=delta,
        associativity=associativity,
        field_bits=bits,
        hmax=max(0, w // bits),
        w=w,
    )


def build_allocator(params: SchemeParameters, *, seed=None) -> RAMAllocationScheme:
    """Instantiate the allocator described by *params*."""
    if params.scheme == "one-choice":
        return OneChoiceAllocator(params.frames_used, params.n_buckets, seed=seed)
    if params.scheme == "greedy":
        return GreedyAllocator(params.frames_used, params.n_buckets, seed=seed)
    if params.scheme == "iceberg":
        return IcebergAllocator(
            params.frames_used, params.n_buckets, lam=params.lam, seed=seed
        )
    raise ValueError(f"unknown scheme {params.scheme!r}")
