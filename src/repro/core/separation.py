"""Lemma 1: the two halves of the address-translation problem are classical
paging problems.

* Minimizing ``C_TLB(X, σ)`` ≡ paging on the huge-page request sequence
  ``r(p₁), r(p₂), …`` with cache size ``ℓ``;
* minimizing ``C_IO(Y, σ)`` ≡ paging on ``p₁, p₂, …`` with cache size
  ``(1−δ)P``.

These reductions let us (a) pick any well-understood paging algorithm for
each half, and (b) compute the *offline-optimal* value of each half with
Belady's OPT — the yardstick of the eq. (3) benchmarks.
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive_int
from ..paging import BeladyOPT, PageCache, ReplacementPolicy

__all__ = [
    "huge_page_trace",
    "paging_faults",
    "optimal_faults",
    "optimal_tlb_misses",
    "optimal_ios",
]


def huge_page_trace(trace, hmax: int) -> np.ndarray:
    """Map a base-page trace to the huge-page trace ``r(p_i)/h_max``."""
    check_positive_int(hmax, "hmax")
    return np.asarray(trace, dtype=np.int64) // hmax


def paging_faults(trace, capacity: int, policy: ReplacementPolicy) -> int:
    """Fault count of *policy* on *trace* with a cache of *capacity*."""
    cache = PageCache(capacity, policy)
    access = cache.access
    faults = 0
    for p in trace:
        if not access(int(p)):
            faults += 1
    return faults


def optimal_faults(trace, capacity: int) -> int:
    """Offline-optimal (Belady) fault count — the paging problem's OPT."""
    trace = [int(p) for p in trace]
    return paging_faults(trace, capacity, BeladyOPT(trace))


def optimal_tlb_misses(trace, tlb_entries: int, hmax: int) -> int:
    """Lemma 1, first half: min-possible TLB misses for huge pages of size
    *hmax* and a TLB of *tlb_entries* — OPT on the ``r(p_i)`` sequence."""
    return optimal_faults(huge_page_trace(trace, hmax), tlb_entries)


def optimal_ios(trace, capacity: int) -> int:
    """Lemma 1, second half: min-possible IOs with *capacity* frames —
    OPT on the base-page sequence."""
    return optimal_faults(trace, capacity)
