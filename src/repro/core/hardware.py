"""Deriving the cost-model parameter ε from hardware characteristics.

The address-translation cost model prices a TLB miss at ``ε ∈ (0, 1)``
IO-equivalents. ε is not a free choice: it is (page-walk latency) /
(IO latency). These helpers compute it from first principles so the
ε-sweep benchmarks can be read against real machines, and quantify the
trends the paper's introduction names — faster storage devices *raise*
ε (IOs get cheaper, walks do not), and virtualization multiplies the walk.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pagetable.walk import nested_walk_cost

__all__ = [
    "HardwareProfile",
    "NVME_SSD",
    "SATA_SSD",
    "OPTANE",
    "HDD",
    "estimate_runtime_ns",
]


@dataclass(frozen=True, slots=True)
class HardwareProfile:
    """Latency parameters of one machine configuration.

    All times in nanoseconds. ``pwc_hit_fraction`` is the fraction of walk
    levels skipped thanks to page-walk caches (measure it with
    :class:`~repro.pagetable.PageWalker`).
    """

    name: str
    memory_latency_ns: float = 80.0
    io_latency_ns: float = 10_000.0
    walk_levels: int = 4
    pwc_hit_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.memory_latency_ns <= 0 or self.io_latency_ns <= 0:
            raise ValueError("latencies must be positive")
        if self.walk_levels < 1:
            raise ValueError("walk_levels must be >= 1")
        if not (0.0 <= self.pwc_hit_fraction < 1.0):
            raise ValueError("pwc_hit_fraction must be in [0, 1)")

    @property
    def walk_latency_ns(self) -> float:
        """Mean page-walk time: effective levels × memory latency."""
        effective = self.walk_levels * (1.0 - self.pwc_hit_fraction)
        return max(1.0, effective) * self.memory_latency_ns

    @property
    def epsilon(self) -> float:
        """The model's ε = walk latency / IO latency, clamped to (0, 1)."""
        eps = self.walk_latency_ns / self.io_latency_ns
        return min(0.999999, max(1e-9, eps))

    def virtualized(self) -> "HardwareProfile":
        """The same machine under nested (2-D) translation: the walk grows
        to the ``(g+1)(h+1)−1`` worst case — the paper's 'squares the cost
        of a TLB miss'."""
        nested_levels = nested_walk_cost(self.walk_levels, self.walk_levels)
        return HardwareProfile(
            name=f"{self.name}+virt",
            memory_latency_ns=self.memory_latency_ns,
            io_latency_ns=self.io_latency_ns,
            walk_levels=nested_levels,
            pwc_hit_fraction=self.pwc_hit_fraction,
        )


def estimate_runtime_ns(
    ledger, profile: "HardwareProfile", *, base_access_ns: float = 1.0
) -> float:
    """Translate a :class:`~repro.core.model.CostLedger` into wall time.

    The cost model's abstract units become nanoseconds on *profile*: every
    access pays *base_access_ns* (the TLB-hit fast path), each TLB miss a
    page walk, each decoding miss likewise, and each IO the device
    latency. This closes the loop from "C(Z, σ)" to "seconds saved" — the
    number a systems audience asks for first.
    """
    return (
        ledger.accesses * base_access_ns
        + (ledger.tlb_misses + ledger.decoding_misses) * profile.walk_latency_ns
        + ledger.ios * profile.io_latency_ns
    )


#: Reference profiles (order-of-magnitude device latencies).
HDD = HardwareProfile("hdd", io_latency_ns=5_000_000.0)
SATA_SSD = HardwareProfile("sata-ssd", io_latency_ns=80_000.0)
NVME_SSD = HardwareProfile("nvme-ssd", io_latency_ns=10_000.0)
OPTANE = HardwareProfile("optane", io_latency_ns=1_500.0)
