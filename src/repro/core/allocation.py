"""Stable, online RAM-allocation schemes (paper Sections 3–4).

A RAM-allocation scheme assigns a physical frame ``φ(v)`` to every virtual
page the RAM-replacement policy brings in, subject to two rules: ``φ`` is an
*injection*, and it is *stable* (the frame cannot change until the page is
evicted). Its quality is measured by its **associativity** — how many frames
a given page could possibly occupy — because the TLB encoding needs
``⌈log₂(associativity + 1)⌉`` bits per page.

Low associativity risks **paging failures**: the replacement policy wants a
page in RAM but every legal frame is occupied. The paper's constructions
bound the failure probability by running the balls-and-bins strategies of
:mod:`repro.ballsbins` over buckets of ``B`` consecutive frames:

* :class:`OneChoiceAllocator` — ``k = 1``, ``B = Θ(log P · log log P)``
  (Theorem 1);
* :class:`GreedyAllocator` — ``k = d``, Greedy[d] (the dead end discussed
  after Theorem 1: the Ω(λ) load gap forces δ = Ω(1));
* :class:`IcebergAllocator` — ``k = 3``, Iceberg[2],
  ``B = Θ̃(log log P)`` (Theorem 3, the Decoupling Theorem);
* :class:`FullyAssociativeAllocator` — the classical baseline with
  associativity ``P``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .._util import ceil_log2, check_positive_int
from ..ballsbins import (
    BallsAndBinsGame,
    GreedyStrategy,
    IcebergStrategy,
    OneChoiceStrategy,
    PlacementStrategy,
    replay_game_events,
)

__all__ = [
    "RAMAllocationScheme",
    "FullyAssociativeAllocator",
    "BucketedAllocator",
    "OneChoiceAllocator",
    "GreedyAllocator",
    "IcebergAllocator",
]


class RAMAllocationScheme(ABC):
    """Assigns frames to pages; reports the bits needed to name a frame.

    Concrete schemes must keep ``φ`` injective and stable, and must expose
    ``encode``/``decode`` such that ``decode(vpn, encode(vpn))`` returns
    ``frame_of(vpn)`` for every resident page — this pair is what the TLB
    value codec packs per page.
    """

    #: total number of physical frames ``P``.
    total_frames: int
    #: frames a page could occupy (``k·B`` for bucketed schemes).
    associativity: int
    #: bits of a *present* page's location code: ``⌈log₂(associativity)⌉``.
    address_bits: int

    @abstractmethod
    def allocate(self, vpn: int) -> int | None:
        """Assign a frame to non-resident *vpn*; None on paging failure.

        A failed page is *not* resident afterwards (it joins the failure
        set ``F`` of its caller); retrying after an eviction is allowed.
        """

    @abstractmethod
    def free(self, vpn: int) -> int:
        """Release resident *vpn*'s frame and return it. KeyError if absent."""

    @abstractmethod
    def frame_of(self, vpn: int) -> int | None:
        """Current frame of *vpn*, or None if not resident."""

    @abstractmethod
    def encode(self, vpn: int) -> int:
        """Compact location code of resident *vpn* in ``[0, 2**address_bits)``."""

    @abstractmethod
    def decode(self, vpn: int, code: int) -> int:
        """Frame of *vpn* given its location *code* (pure given the hashes)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of resident pages."""

    @property
    def failures(self) -> int:
        """Total paging failures so far (0 for schemes that cannot fail)."""
        return 0


class FullyAssociativeAllocator(RAMAllocationScheme):
    """Any page may use any frame — associativity ``P``, no failures.

    This is the implicit allocation scheme of the classical paging problem;
    its location codes are full physical addresses of ``⌈log₂ P⌉`` bits, so
    a ``w``-bit TLB value holds only ``w / log P`` of them.
    """

    def __init__(self, total_frames: int) -> None:
        self.total_frames = check_positive_int(total_frames, "total_frames")
        self.associativity = self.total_frames
        self.address_bits = ceil_log2(self.total_frames)
        self._free = list(range(self.total_frames - 1, -1, -1))  # pop() gives frame 0 first
        self._frame_of: dict[int, int] = {}

    def allocate(self, vpn: int) -> int | None:
        if vpn in self._frame_of:
            raise ValueError(f"vpn {vpn} is already resident")
        if not self._free:
            return None  # RAM genuinely full (caller exceeded (1-δ)P)
        frame = self._free.pop()
        self._frame_of[vpn] = frame
        return frame

    def free(self, vpn: int) -> int:
        frame = self._frame_of.pop(vpn)
        self._free.append(frame)
        return frame

    def frame_of(self, vpn: int) -> int | None:
        return self._frame_of.get(vpn)

    def encode(self, vpn: int) -> int:
        return self._frame_of[vpn]

    def decode(self, vpn: int, code: int) -> int:
        if not (0 <= code < self.total_frames):
            raise ValueError(f"code {code} out of range [0, {self.total_frames})")
        return code

    def __len__(self) -> int:
        return len(self._frame_of)


class BucketedAllocator(RAMAllocationScheme):
    """Low-associativity allocation: RAM split into ``n`` buckets of ``B``
    consecutive frames, pages placed by a balls-and-bins strategy.

    The location code of a resident page is ``choice_index · B + offset``:
    which of its ``k`` hashed buckets it landed in, and its slot within the
    bucket — ``⌈log₂(k·B)⌉`` bits, recomputable by any decoder holding the
    same hash seeds.

    Parameters
    ----------
    total_frames:
        ``P``; must be divisible by *n_buckets*.
    n_buckets:
        ``n``; the bucket size is ``B = P / n``.
    strategy:
        A fresh (unbound) placement strategy; the allocator binds it with
        bucket capacity ``B`` and *seed*.
    """

    def __init__(
        self,
        total_frames: int,
        n_buckets: int,
        strategy: PlacementStrategy,
        *,
        seed=None,
    ) -> None:
        self.total_frames = check_positive_int(total_frames, "total_frames")
        self.n_buckets = check_positive_int(n_buckets, "n_buckets")
        if total_frames % n_buckets:
            raise ValueError(
                f"total_frames ({total_frames}) must be divisible by "
                f"n_buckets ({n_buckets})"
            )
        self.bucket_size = total_frames // n_buckets
        self.strategy = strategy
        self.game = BallsAndBinsGame(
            n_buckets, strategy, bin_capacity=self.bucket_size, seed=seed
        )
        self.associativity = strategy.choices * self.bucket_size
        self.address_bits = ceil_log2(self.associativity)
        # Per-bucket free slot offsets; pop()/append() keeps this O(1).
        self._free_slots = [
            list(range(self.bucket_size - 1, -1, -1)) for _ in range(n_buckets)
        ]
        self._frame_of: dict[int, int] = {}

    # ------------------------------------------------------------------ api

    def allocate(self, vpn: int) -> int | None:
        if vpn in self._frame_of:
            raise ValueError(f"vpn {vpn} is already resident")
        bucket = self.game.insert(vpn)
        if bucket is None:
            return None  # paging failure: all k candidate buckets full
        offset = self._free_slots[bucket].pop()
        frame = bucket * self.bucket_size + offset
        self._frame_of[vpn] = frame
        return frame

    def free(self, vpn: int) -> int:
        frame = self._frame_of.pop(vpn)
        bucket, offset = divmod(frame, self.bucket_size)
        self.game.delete(vpn)
        self._free_slots[bucket].append(offset)
        return frame

    def frame_of(self, vpn: int) -> int | None:
        return self._frame_of.get(vpn)

    def encode(self, vpn: int) -> int:
        frame = self._frame_of[vpn]
        bucket, offset = divmod(frame, self.bucket_size)
        choice = self.strategy.choice_index(vpn, bucket)
        return choice * self.bucket_size + offset

    def decode(self, vpn: int, code: int) -> int:
        if not (0 <= code < self.associativity):
            raise ValueError(f"code {code} out of range [0, {self.associativity})")
        choice, offset = divmod(code, self.bucket_size)
        # only the stored choice's hash — this runs on every TLB-hit
        # translation, and the other k-1 candidates are never needed
        bucket = self.strategy.candidate(vpn, choice)
        return bucket * self.bucket_size + offset

    def bulk_replay(self, inserts, evicts, first_evt: int = 0):
        """Apply an interleaved ``allocate``/``free`` event stream in bulk.

        Same interleave convention as
        :func:`repro.ballsbins.batch.replay_game_events`: the eviction
        ``k - first_evt`` (when ``k >= first_evt``) lands immediately before
        insert ``k``. Equivalent to the per-event call sequence — including
        the LIFO slot order of ``_free_slots`` and stopping right after the
        first failing insert.

        Returns ``(codes, failed)``: ``codes[k]`` is the location code the
        TLB encoder stores for applied insert ``k`` (None for the failing
        one), *failed* the failing insert's index or -1. Returns None when
        the strategy has no batch hook (callers replay per-event).
        """
        decisions = replay_game_events(self.game, inserts, evicts, first_evt)
        if decisions is None:
            return None
        bucket_size = self.bucket_size
        free_slots = self._free_slots
        frame_of = self._frame_of
        choices = decisions.choices
        codes: list[int | None] = []
        j = 0
        for k, bucket in enumerate(decisions.bins):
            if k >= first_evt:
                frame = frame_of.pop(evicts[j])
                j += 1
                fb, offset = divmod(frame, bucket_size)
                free_slots[fb].append(offset)
            if bucket < 0:
                codes.append(None)
                break
            offset = free_slots[bucket].pop()
            frame_of[inserts[k]] = bucket * bucket_size + offset
            codes.append(choices[k] * bucket_size + offset)
        return codes, decisions.failed

    def __len__(self) -> int:
        return len(self._frame_of)

    @property
    def failures(self) -> int:
        return self.game.failures

    @property
    def max_bucket_load(self) -> int:
        """Current maximum bucket occupancy (≤ bucket_size by construction)."""
        return self.game.max_load

    def bucket_loads(self):
        """Copy of the current per-bucket load vector (Theorems 1–2 measure
        its max; the observability layer histograms the whole tail)."""
        return self.game.loads.copy()


class OneChoiceAllocator(BucketedAllocator):
    """Theorem 1's warmup scheme: ``k = 1`` hash, associativity ``B``."""

    def __init__(self, total_frames: int, n_buckets: int, *, seed=None) -> None:
        super().__init__(total_frames, n_buckets, OneChoiceStrategy(), seed=seed)


class GreedyAllocator(BucketedAllocator):
    """Greedy[d] allocation — the instructive dead end (Ω(λ) load gap)."""

    def __init__(self, total_frames: int, n_buckets: int, d: int = 2, *, seed=None) -> None:
        super().__init__(total_frames, n_buckets, GreedyStrategy(d), seed=seed)


class IcebergAllocator(BucketedAllocator):
    """Theorem 3's scheme: Iceberg[2] with ``k = 3`` hashes.

    *lam* is the target average bucket load ``m/n``; the front-layer
    capacity is ``(1 + front_slack)·λ`` per bin, and the bucket size must
    leave room for the ``log log n`` spill term (see
    :func:`repro.core.bounds.theorem3_parameters` for theory-derived
    sizing).
    """

    def __init__(
        self,
        total_frames: int,
        n_buckets: int,
        lam: float,
        *,
        d: int = 2,
        front_slack: float = 0.2,
        seed=None,
    ) -> None:
        super().__init__(
            total_frames,
            n_buckets,
            IcebergStrategy(lam=lam, d=d, front_slack=front_slack),
            seed=seed,
        )
