"""The address-translation cost model (paper Section 5).

Servicing a virtual-page request incurs:

* cost **1** per IO — adding a page to the RAM active set ``A``;
* cost **ε ∈ (0, 1)** per TLB miss — adding a huge-page entry to ``T``;
* cost **ε** per *decoding miss* — a covered, RAM-resident page whose TLB
  value decodes to −1 (used to price paging failures in Theorem 4);
* cost **0** per TLB hit, per eviction, and per update of a resident TLB
  value ``ψ(u)``.

For an algorithm ``Z`` and request sequence ``σ``::

    C(Z, σ) = C_TLB(Z, σ) + C_IO(Z, σ) + C_D(Z, σ)

:class:`CostLedger` accumulates the event counts; :class:`ATCostModel`
prices them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ATCostModel", "CostLedger"]


@dataclass(frozen=True, slots=True)
class ATCostModel:
    """Prices for the three chargeable events.

    ``epsilon`` is the TLB-miss (and decoding-miss) cost relative to an IO;
    the paper requires ε ∈ (0, 1) — a TLB miss (a page-table walk, ~100s of
    cycles) is cheaper than an IO (a storage fetch) but not free.
    """

    epsilon: float = 0.01
    io_cost: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.epsilon < 1.0):
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.io_cost <= 0:
            raise ValueError(f"io_cost must be positive, got {self.io_cost}")

    def cost(self, ledger: "CostLedger") -> float:
        """Total cost ``C`` of the events recorded in *ledger*."""
        return self.tlb_cost(ledger) + self.io_cost_of(ledger) + self.decoding_cost(ledger)

    def tlb_cost(self, ledger: "CostLedger") -> float:
        """``C_TLB``: ε per TLB miss (decoding misses excluded, per paper)."""
        return self.epsilon * ledger.tlb_misses

    def io_cost_of(self, ledger: "CostLedger") -> float:
        """``C_IO``: 1 (``io_cost``) per page brought into RAM."""
        return self.io_cost * ledger.ios

    def decoding_cost(self, ledger: "CostLedger") -> float:
        """``C_D``: ε per decoding miss."""
        return self.epsilon * ledger.decoding_misses


@dataclass(slots=True)
class CostLedger:
    """Raw event counts for one run of a memory-management algorithm.

    ``ios`` counts *pages moved into RAM* — so a physical huge page of size
    ``h`` fetched on a fault adds ``h``, exactly the page-fault
    amplification of Section 1. ``accesses`` and the hit counters are
    informational (cost 0) but let reports show hit rates.
    """

    accesses: int = 0
    ios: int = 0
    tlb_misses: int = 0
    tlb_hits: int = 0
    decoding_misses: int = 0
    paging_failures: int = 0
    extra: dict = field(default_factory=dict)

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Return a new ledger summing *self* and *other* (extra dicts merged,
        with numeric values added)."""
        merged_extra = dict(self.extra)
        for k, v in other.extra.items():
            merged_extra[k] = merged_extra.get(k, 0) + v if isinstance(v, (int, float)) else v
        return CostLedger(
            accesses=self.accesses + other.accesses,
            ios=self.ios + other.ios,
            tlb_misses=self.tlb_misses + other.tlb_misses,
            tlb_hits=self.tlb_hits + other.tlb_hits,
            decoding_misses=self.decoding_misses + other.decoding_misses,
            paging_failures=self.paging_failures + other.paging_failures,
            extra=merged_extra,
        )

    def snapshot(self) -> tuple:
        """Cheap immutable counter tuple ``(accesses, ios, tlb_misses,
        tlb_hits, decoding_misses, paging_failures)``.

        Interval-metrics collectors diff consecutive snapshots to get
        per-window deltas without copying ``extra``.
        """
        return (
            self.accesses,
            self.ios,
            self.tlb_misses,
            self.tlb_hits,
            self.decoding_misses,
            self.paging_failures,
        )

    @property
    def tlb_miss_rate(self) -> float:
        """TLB misses per translated access (0.0 before any access)."""
        total = self.tlb_hits + self.tlb_misses
        return self.tlb_misses / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter (the warm-up/measure boundary of Section 6)."""
        self.accesses = 0
        self.ios = 0
        self.tlb_misses = 0
        self.tlb_hits = 0
        self.decoding_misses = 0
        self.paging_failures = 0
        self.extra = {}

    def as_dict(self) -> dict:
        """Plain-dict snapshot (for reports and npz serialization)."""
        return {
            "accesses": self.accesses,
            "ios": self.ios,
            "tlb_misses": self.tlb_misses,
            "tlb_hits": self.tlb_hits,
            "decoding_misses": self.decoding_misses,
            "paging_failures": self.paging_failures,
            **self.extra,
        }
