"""Core of the reproduction: the paper's primary contribution.

* :mod:`~repro.core.model` — the address-translation cost model;
* :mod:`~repro.core.allocation` — stable online low-associativity
  RAM-allocation schemes (Theorems 1 and 3);
* :mod:`~repro.core.encoding` — compact ``w``-bit TLB value codecs;
* :mod:`~repro.core.decoupling` — the huge-page decoupling scheme
  (``φ``, ``ψ``, ``f``, failure set);
* :mod:`~repro.core.simulation` — Theorem 4's combined algorithm ``Z``;
* :mod:`~repro.core.separation` — Lemma 1's reductions to classical paging;
* :mod:`~repro.core.bounds` — concrete theorem parameters and theory curves.
"""

from .allocation import (
    BucketedAllocator,
    FullyAssociativeAllocator,
    GreedyAllocator,
    IcebergAllocator,
    OneChoiceAllocator,
    RAMAllocationScheme,
)
from .bounds import (
    SchemeParameters,
    build_allocator,
    greedy_parameters,
    hmax_upper_bound,
    theorem1_parameters,
    theorem3_parameters,
)
from .decoupling import NOT_PRESENT, DecouplingScheme
from .encoding import TLBValueCodec, field_bits_for, hmax_for
from .model import ATCostModel, CostLedger
from .separation import (
    huge_page_trace,
    optimal_faults,
    optimal_ios,
    optimal_tlb_misses,
    paging_faults,
)
from .simulation import DecoupledSystem

__all__ = [
    "ATCostModel",
    "CostLedger",
    "RAMAllocationScheme",
    "FullyAssociativeAllocator",
    "BucketedAllocator",
    "OneChoiceAllocator",
    "GreedyAllocator",
    "IcebergAllocator",
    "TLBValueCodec",
    "field_bits_for",
    "hmax_for",
    "DecouplingScheme",
    "NOT_PRESENT",
    "DecoupledSystem",
    "SchemeParameters",
    "hmax_upper_bound",
    "theorem1_parameters",
    "theorem3_parameters",
    "greedy_parameters",
    "build_allocator",
    "huge_page_trace",
    "paging_faults",
    "optimal_faults",
    "optimal_tlb_misses",
    "optimal_ios",
]
