"""Command-line interface: run the paper's experiments from a shell.

``python -m repro <command>``:

* ``fig1``      — the Figure 1 sweep (panel a, b, or c; ``--jobs`` shards
  the sizes across worker processes);
* ``bench``     — the fixed benchmark sweep; writes ``BENCH_sweep.json``
  (machine info + per-cell counters + throughput) for
  ``tools/check_bench.py`` to gate regressions against;
* ``trace``     — replay a workload with probes attached; dump the event
  and interval-metrics streams as JSONL;
* ``report``    — render observability artefacts (``BENCH_*.json``,
  snapshot JSON, metrics JSONL, telemetry spools) as a terminal summary
  and, with ``--html-out``, one self-contained HTML file;
* ``top``       — live dashboard tailing a telemetry spool (per-task
  progress, aggregate throughput, cost at ε, ETA); ``--once`` renders a
  single frame for CI logs;
* ``check``     — validated sweep: every registered algorithm × workload
  under the invariant oracle; non-zero exit on any violation;
* ``tenants``   — multi-tenant churn sweep: ASID-striped tenants sharing
  each algorithm under a scheduler, with exit shootdowns; per-cell costs,
  switches, and per-reason shootdown drops; ``--attrib`` adds per-cause
  miss columns and the tenant interference matrix (``--snapshot-out``
  writes the merged observability snapshot);
* ``eq3``       — the Theorem 4 / eq. (3) comparison;
* ``maxload``   — balls-and-bins strategies vs theory;
* ``policies``  — the replacement-policy zoo vs offline OPT;
* ``params``    — Theorem 1/3 scheme parameters for a given (P, w);
* ``epsilon``   — hardware-derived ε for the bundled device profiles.

The global ``--log-level`` flag (before the subcommand) routes the
package's loggers — silent by default, per library convention — to
stderr at the chosen threshold.
"""

from __future__ import annotations

import argparse
import logging
from functools import partial

from .bench import (
    epsilon_sweep,
    figure1_experiment,
    figure1_workload,
    format_figure1,
    format_metrics,
    format_table,
    format_throughput,
    simulation_theorem_experiment,
)

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text}")
    return value


def _jobs(text: str) -> int:
    """``--jobs N``: worker processes; 0 means all CPUs."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (0 = all CPUs), got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Paging and the Address-Translation Problem' (SPAA 2021)",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="emit repro.* log records to stderr at this threshold",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="Figure 1 huge-page-size sweep")
    p.add_argument("--panel", choices="abc", default="a")
    p.add_argument("--scale", type=int, default=None,
                   help="VA pages (a/b) or Kronecker scale (c)")
    p.add_argument("--accesses", type=int, default=120_000)
    p.add_argument("--tlb", type=int, default=512)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--metrics-out", default=None, metavar="FILE.jsonl",
                   help="write per-window interval metrics for every sweep "
                        "point (rows carry an extra 'h' key)")
    p.add_argument("--window", type=_positive_int, default=None,
                   help="metrics window in accesses (default: ~20 windows)")
    p.add_argument("--jobs", type=_jobs, default=1,
                   help="worker processes for the sweep (0 = all CPUs; "
                        "metrics/probes force 1)")
    p.add_argument("--heartbeat-spool", default=None, metavar="FILE.jsonl",
                   help="stream live telemetry records to this spool "
                        "(watch with `repro top FILE.jsonl`)")
    p.add_argument("--heartbeat-interval", type=_positive_int, default=65536,
                   help="accesses between heartbeats (default: %(default)s)")

    p = sub.add_parser(
        "bench",
        help="fixed benchmark sweep; writes BENCH_sweep.json for the CI gate",
    )
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized grid (seconds) instead of the full grid")
    p.add_argument("--hotloop", action="store_true",
                   help="per-component microbenchmarks (TLB, PageCache per "
                        "policy, each MM) instead of the sweep; writes "
                        "BENCH_hotloop.json (--smoke/--jobs/--accesses do "
                        "not apply)")
    p.add_argument("--jobs", type=_jobs, default=1,
                   help="worker processes for the sweep (0 = all CPUs)")
    p.add_argument("--out", default=None, metavar="FILE.json",
                   help="payload path (default: BENCH_sweep.json, or "
                        "BENCH_hotloop.json with --hotloop)")
    p.add_argument("--seed", type=int, default=None,
                   help="override the preset seed (payload becomes "
                        "incomparable to preset baselines)")
    p.add_argument("--accesses", type=int, default=None,
                   help="override the preset trace length (same caveat)")

    p = sub.add_parser(
        "trace",
        help="replay one workload with probes; dump event/metrics streams",
    )
    p.add_argument("--panel", choices="abc", default="a")
    p.add_argument("--scale", type=int, default=None,
                   help="VA pages (a/b) or Kronecker scale (c)")
    p.add_argument("--algorithm", choices=["physical", "base", "decoupled"],
                   default="physical")
    p.add_argument("--h", type=int, default=64,
                   help="huge-page size for --algorithm physical")
    p.add_argument("--accesses", type=int, default=60_000)
    p.add_argument("--warmup-fraction", type=float, default=0.5)
    p.add_argument("--tlb", type=int, default=512)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--window", type=_positive_int, default=None,
                   help="metrics window in accesses (default: ~20 windows)")
    p.add_argument("--metrics-out", default=None, metavar="FILE.jsonl",
                   help="write the per-window metrics stream")
    p.add_argument("--events-out", default=None, metavar="FILE.jsonl",
                   help="write the retained event ring as JSONL")
    p.add_argument("--ring", type=_positive_int, default=65536,
                   help="event ring-buffer capacity")

    p = sub.add_parser(
        "report",
        help="render bench payloads / snapshots / metrics JSONL into a "
             "terminal summary and self-contained HTML",
    )
    p.add_argument("inputs", nargs="+", metavar="FILE",
                   help="BENCH_*.json, obs-snapshot JSON, or metrics JSONL")
    p.add_argument("--html-out", default=None, metavar="FILE.html",
                   help="also write a single self-contained HTML report")
    p.add_argument("--epsilon", type=float, default=0.01,
                   help="eps pricing the cost breakdown (default: %(default)s)")
    p.add_argument("--baseline-dir", default="benchmarks/baselines",
                   metavar="DIR",
                   help="where committed BENCH_* baselines live, for the "
                        "throughput trend (default: %(default)s)")
    p.add_argument("--title", default="repro report",
                   help="HTML document title")

    p = sub.add_parser(
        "top",
        help="dashboard over a live telemetry spool (curses-free; default "
             "refreshes until the run finishes, --once prints one frame)",
    )
    p.add_argument("spool", metavar="FILE.jsonl",
                   help="telemetry spool written via --heartbeat-spool / "
                        "HeartbeatConfig")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (CI-friendly)")
    p.add_argument("--refresh", type=float, default=2.0,
                   help="seconds between frames (default: %(default)s)")
    p.add_argument("--epsilon", type=float, default=0.01,
                   help="eps pricing the cost line (default: %(default)s)")

    p = sub.add_parser(
        "check",
        help="validated sweep: every algorithm × workload under the "
             "invariant oracle (exit 1 on any violation)",
    )
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized grid (seconds) — currently the default grid")
    p.add_argument("--scale", type=_positive_int, default=None,
                   help="VA pages per workload (default: smoke size)")
    p.add_argument("--accesses", type=_positive_int, default=None,
                   help="trace length per cell (default: smoke size)")
    p.add_argument("--tlb", type=_positive_int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--algorithms", nargs="+", default=None, metavar="NAME",
                   help="subset of registered algorithms (default: all)")
    p.add_argument("--workloads", nargs="+", default=None, metavar="NAME",
                   help="subset of grid workloads (default: all)")
    p.add_argument("--deep-every", type=_positive_int, default=None,
                   help="oracle deep-sweep cadence in accesses")
    p.add_argument("--jobs", type=_jobs, default=1,
                   help="worker processes for the grid (0 = all CPUs)")
    p.add_argument("--overhead", action="store_true",
                   help="also run the grid unvalidated and report the "
                        "validation wall-clock ratio")

    p = sub.add_parser(
        "tenants",
        help="multi-tenant churn sweep: algorithms × tenant counts × "
             "schedulers over one shared TLB/RAM",
    )
    p.add_argument("--algorithms", nargs="+", default=None, metavar="NAME",
                   help="subset of registered algorithms (default: all)")
    p.add_argument("--tenants", type=_positive_int, nargs="+",
                   default=[2, 8],
                   help="tenant counts to sweep (default: %(default)s)")
    p.add_argument("--schedulers", nargs="+", default=["round-robin"],
                   metavar="NAME",
                   help="schedulers to sweep (round-robin, jittered, "
                        "priority; default: %(default)s)")
    p.add_argument("--quantum", type=_positive_int, default=64,
                   help="accesses per turn (default: %(default)s)")
    p.add_argument("--accesses", type=_positive_int, default=2000,
                   help="accesses per tenant (default: %(default)s)")
    p.add_argument("--pages", type=_positive_int, default=1024,
                   help="va pages per tenant (default: %(default)s)")
    p.add_argument("--tlb", type=_positive_int, default=64)
    p.add_argument("--ram", type=_positive_int, default=4096)
    p.add_argument("--churn", type=float, default=0.5,
                   help="fraction of the run over which tenant arrivals "
                        "are staggered (default: %(default)s)")
    p.add_argument("--remap-every", type=_positive_int, default=None,
                   metavar="TURNS",
                   help="remap each tenant's phi every TURNS of its own "
                        "turns (a 'phi-change' slice shootdown; "
                        "default: never)")
    p.add_argument("--workload", choices=["zipf", "uniform"], default="zipf")
    p.add_argument("--epsilon", type=float, default=0.01,
                   help="eps pricing the cost column (default: %(default)s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--validate", action="store_true",
                   help="run every cell under the invariant oracle "
                        "(ASID isolation/coverage included)")
    p.add_argument("--attrib", action="store_true",
                   help="attach an AttributionProbe per cell: per-cause "
                        "TLB-miss columns in the table, attrib:*/interf:* "
                        "counters (the interference matrix) in the "
                        "snapshot")
    p.add_argument("--jobs", type=_jobs, default=1,
                   help="worker processes for the grid (0 = all CPUs)")
    p.add_argument("--snapshot-out", default=None, metavar="FILE.json",
                   help="write the merged ObsSnapshot over all cells "
                        "(bit-identical for any --jobs)")

    p = sub.add_parser("eq3", help="Theorem 4 / eq. (3) comparison")
    p.add_argument("--workload", choices=["bimodal", "zipf"], default="bimodal")
    p.add_argument("--frames", type=int, default=1 << 16)
    p.add_argument("--tlb", type=int, default=256)
    p.add_argument("--accesses", type=int, default=120_000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("maxload", help="balls-and-bins max loads vs theory")
    p.add_argument("--bins", type=int, default=1 << 10)
    p.add_argument("--lambdas", type=int, nargs="+", default=[8, 32, 128])

    p = sub.add_parser("policies", help="policy zoo vs offline OPT")
    p.add_argument("--capacity", type=int, default=1 << 10)
    p.add_argument("--accesses", type=int, default=50_000)
    p.add_argument("--zipf", type=float, default=0.8)

    p = sub.add_parser("params", help="Theorem 1/3 scheme parameters")
    p.add_argument("--frames", type=int, default=1 << 22)
    p.add_argument("--w", type=int, default=64)

    sub.add_parser("epsilon", help="hardware-derived epsilon table")

    p = sub.add_parser("describe", help="characterize a workload's trace")
    p.add_argument("--workload",
                   choices=["bimodal", "zipf", "uniform", "sequential",
                            "random-walk", "btree"],
                   default="bimodal")
    p.add_argument("--pages", type=int, default=1 << 16)
    p.add_argument("--accesses", type=int, default=50_000)
    p.add_argument("--h", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        configure_logging(args.log_level)
    handler = _HANDLERS[args.command]
    # handlers return None (success) or a process exit code (``check``
    # returns 1 when a cell violated an invariant)
    return int(handler(args) or 0)


def configure_logging(level: str) -> None:
    """Route the package's ``repro`` logger tree to stderr at *level*.

    Library code never configures handlers (the root ``repro`` logger only
    carries a ``NullHandler``); this is the CLI's opt-in sink.
    """
    logger = logging.getLogger("repro")
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))


def _default_window(measured: int) -> int:
    """~20 windows over the measurement phase (at least 1 access each)."""
    return max(1, measured // 20)


# --------------------------------------------------------------- handlers


def _cmd_fig1(args) -> None:
    scale = (
        args.scale
        if args.scale is not None
        else {"a": 1 << 18, "b": 1 << 16, "c": 14}[args.panel]
    )
    workload, ram_pages = figure1_workload(args.panel, scale, seed=args.seed)
    metrics_every = None
    if args.metrics_out:
        metrics_every = args.window or _default_window(args.accesses // 2)
    heartbeat = None
    if args.heartbeat_spool:
        from .obs import HeartbeatConfig

        heartbeat = HeartbeatConfig(
            spool=args.heartbeat_spool, interval=args.heartbeat_interval
        )
    records = figure1_experiment(
        workload,
        ram_pages=ram_pages,
        tlb_entries=args.tlb,
        n_accesses=args.accesses,
        touched_ram_fraction=0.99 if args.panel == "c" else None,
        seed=args.seed,
        metrics_every=metrics_every,
        heartbeat=heartbeat,
        jobs=args.jobs,
    )
    if args.metrics_out:
        # Write before printing: a closed stdout pipe (| head) must not
        # lose the data file.
        import json

        with open(args.metrics_out, "w") as fh:
            for r in records:
                for window in r.metrics.rows():
                    fh.write(json.dumps({"h": r.params["h"], **window},
                                        sort_keys=True) + "\n")
    print(format_figure1(records, title=f"Figure 1{args.panel}"))
    print()
    print(format_throughput(records))
    if args.metrics_out:
        print(f"\nper-window metrics written to {args.metrics_out}")


def _cmd_bench(args) -> None:
    from .bench import bench_sweep, format_throughput, save_bench

    if args.hotloop:
        return _cmd_bench_hotloop(args)
    records, payload = bench_sweep(
        smoke=args.smoke, jobs=args.jobs, seed=args.seed, accesses=args.accesses
    )
    # Write before printing: a closed stdout pipe (| head) must not lose
    # the payload the CI gate consumes.
    path = save_bench(payload, args.out or "BENCH_sweep.json")
    print(format_throughput(records))
    print(
        f"\n{payload['total_accesses']} measured accesses over "
        f"{len(records)} sweep cells in {payload['wall_elapsed_s'] * 1e3:.1f} ms "
        f"(jobs={args.jobs}) — {payload['accesses_per_s'] / 1e3:.1f} kacc/s end-to-end"
    )
    print(f"payload written to {path}")


def _cmd_bench_hotloop(args) -> None:
    from .bench import bench_hotloop, format_table, save_bench

    rows, payload = bench_hotloop(seed=args.seed)
    path = save_bench(payload, args.out or "BENCH_hotloop.json")
    print(format_table([
        {"component": r["component"], "kops_per_s": f"{r['ops_per_s'] / 1e3:.1f}"}
        for r in rows
    ]))
    print(
        f"\n{len(rows)} components in {payload['wall_elapsed_s'] * 1e3:.1f} ms "
        f"— geomean {payload['geomean_ops_per_s'] / 1e3:.1f} kops/s"
    )
    print(f"payload written to {path}")


def _cmd_trace(args) -> None:
    from .mmu import BasePageMM, DecoupledMM, PhysicalHugePageMM
    from .obs import IntervalMetrics, Timer, TraceRecorder, accesses_per_second
    from .sim import simulate

    scale = (
        args.scale
        if args.scale is not None
        else {"a": 1 << 18, "b": 1 << 16, "c": 14}[args.panel]
    )
    workload, ram_pages = figure1_workload(args.panel, scale, seed=args.seed)
    trace = workload.generate(args.accesses, seed=args.seed)
    warmup = int(len(trace) * args.warmup_fraction)
    measured = len(trace) - warmup

    if args.algorithm == "physical":
        ram_h = (ram_pages // args.h) * args.h
        if ram_h < args.h:
            raise SystemExit(
                f"ram_pages={ram_pages} cannot hold one huge page of h={args.h}"
            )
        mm = PhysicalHugePageMM(args.tlb, ram_h, huge_page_size=args.h)
    elif args.algorithm == "base":
        mm = BasePageMM(args.tlb, ram_pages)
    else:
        mm = DecoupledMM(args.tlb, ram_pages, seed=args.seed)

    recorder = TraceRecorder(capacity=args.ring)
    metrics = IntervalMetrics(every=args.window or _default_window(measured))
    with Timer() as timer:
        ledger = simulate(mm, trace, warmup=warmup, probe=recorder, metrics=metrics)

    # Write the JSONL files before printing: a closed stdout pipe (| head)
    # must not lose the data files.
    events_path = recorder.to_jsonl(args.events_out) if args.events_out else None
    metrics_path = metrics.to_jsonl(args.metrics_out) if args.metrics_out else None

    throughput = accesses_per_second(ledger.accesses, timer.elapsed)
    print(
        f"{mm.name}: {ledger.accesses} measured accesses "
        f"({warmup} warm-up) in {timer.elapsed * 1e3:.1f} ms "
        f"— {throughput / 1e3:.1f} kacc/s"
    )
    print()
    print(format_table([
        {"kind": kind, "events": count}
        for kind, count in recorder.counts.items() if count
    ]))
    print()
    print(format_metrics(metrics.rows()))
    if events_path is not None:
        retained = len(recorder.events())
        print(f"\n{retained} events written to {events_path}"
              + (f" ({recorder.dropped} dropped by the ring)" if recorder.dropped else ""))
    if metrics_path is not None:
        print(f"{len(metrics.windows)} metric windows written to {metrics_path}")


def _cmd_report(args) -> int:
    from pathlib import Path

    from .obs import build_report, load_artifact, render_html, render_text

    try:
        artifacts = [load_artifact(p) for p in args.inputs]
    except (OSError, ValueError) as exc:
        raise SystemExit(f"report: {exc}")
    sections = build_report(
        artifacts, epsilon=args.epsilon, baseline_dir=args.baseline_dir
    )
    # Write the HTML before printing: a closed stdout pipe (| head) must
    # not lose the artifact CI uploads.
    if args.html_out:
        out = Path(args.html_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_html(sections, title=args.title))
    print(render_text(sections))
    if args.html_out:
        print(f"\nHTML report written to {args.html_out}")
    return 0


def _cmd_top(args) -> int:
    import time as _time

    from .obs import aggregate, read_spool, render_top

    def frame() -> tuple[str, bool]:
        summary = aggregate(read_spool(args.spool))
        busy = any(
            t["state"] in ("running", "stalled") for t in summary["tasks"]
        )
        return render_top(summary, epsilon=args.epsilon), busy

    text, busy = frame()
    print(text)
    if args.once:
        return 0
    try:
        while busy:
            _time.sleep(args.refresh)
            text, busy = frame()
            # ANSI home+clear: one frame per refresh without curses
            print("\x1b[H\x1b[2J" + text, flush=True)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def _cmd_check(args) -> int:
    from .check import check_grid, format_check_report
    from .check.runner import SMOKE_ACCESSES, SMOKE_SCALE_PAGES

    report = check_grid(
        args.algorithms,
        args.workloads,
        scale_pages=args.scale or SMOKE_SCALE_PAGES,
        accesses=args.accesses or SMOKE_ACCESSES,
        tlb_entries=args.tlb,
        seed=args.seed,
        deep_every=args.deep_every,
        jobs=args.jobs,
        measure_overhead=args.overhead,
    )
    print(format_check_report(report))
    return 0 if report.ok else 1


def _cmd_tenants(args) -> int:
    from .check import InvariantViolation
    from .mmu.registry import MM_NAMES
    from .tenancy import SCHEDULERS, TenancyCellSpec, run_tenancy_grid

    algorithms = args.algorithms or list(MM_NAMES)
    unknown = [a for a in algorithms if a not in MM_NAMES]
    if unknown:
        raise SystemExit(f"tenants: unknown algorithms {unknown} "
                         f"(registered: {list(MM_NAMES)})")
    bad = [s for s in args.schedulers if s not in SCHEDULERS]
    if bad:
        raise SystemExit(f"tenants: unknown schedulers {bad} "
                         f"(registered: {sorted(SCHEDULERS)})")
    specs = [
        TenancyCellSpec(
            algorithm=algorithm,
            tenants=k,
            scheduler=scheduler,
            quantum=args.quantum,
            accesses_per_tenant=args.accesses,
            va_pages_per_tenant=args.pages,
            tlb_entries=args.tlb,
            ram_pages=args.ram,
            workload=args.workload,
            churn=args.churn,
            remap_every=args.remap_every,
            seed=args.seed,
            validate=args.validate,
            attrib=args.attrib,
        )
        for algorithm in algorithms
        for k in args.tenants
        for scheduler in args.schedulers
    ]
    try:
        rows, merged = run_tenancy_grid(
            specs, jobs=args.jobs, epsilon=args.epsilon
        )
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION: {exc}")
        return 1
    # Write before printing: a closed stdout pipe (| head) must not lose
    # the snapshot file.
    if args.snapshot_out:
        merged.to_json(args.snapshot_out)
    print(format_table([
        {
            "algorithm": r["algorithm"],
            "tenants": r["tenants"],
            "scheduler": r["scheduler"],
            "cost": f"{r['cost']:.2f}",
            "ios": r["ios"],
            "tlb_misses": r["tlb_misses"],
            "switches": r["switches"],
            "shootdowns": r["shootdowns"],
            "drops_exit": r["drops_exit"],
            "drops_remap": r["drops_remap"],
            **(
                {
                    "cold": r["tlb_cold"],
                    "cap_self": r["tlb_capacity_self"],
                    "cap_cross": r["tlb_capacity_cross"],
                    "shoot": r["tlb_shootdown"],
                    "remap": r["tlb_remap"],
                    "promo": r["tlb_promotion_flush"],
                }
                if args.attrib
                else {}
            ),
        }
        for r in rows
    ]))
    print(
        f"\n{len(rows)} cells (quantum={args.quantum}, churn={args.churn}, "
        f"workload={args.workload}, jobs={args.jobs}"
        + (", validated" if args.validate else "")
        + ") — lower cost at equal tenants = better multi-tenant translation"
    )
    if args.snapshot_out:
        print(f"merged snapshot written to {args.snapshot_out}")
    return 0


def _cmd_eq3(args) -> None:
    from .workloads import BimodalWorkload, ZipfWorkload

    wl = (
        BimodalWorkload.paper_scaled(args.frames * 4)
        if args.workload == "bimodal"
        else ZipfWorkload(args.frames * 4, s=0.9)
    )
    out = simulation_theorem_experiment(
        wl,
        ram_pages=args.frames,
        tlb_entries=args.tlb,
        n_accesses=args.accesses,
        seed=args.seed,
    )
    print(f"h_max = {out['hmax']}; references: C_TLB(X) misses = "
          f"{out['x_tlb_misses']}, C_IO(Y) ios = {out['y_ios']}\n")
    print(format_table([r.as_row() for r in out["records"]],
                       ["algorithm", "ios", "tlb_misses", "paging_failures"]))
    print()
    print(format_table(epsilon_sweep(out["records"])))


def _cmd_maxload(args) -> None:
    from .ballsbins import (
        BallsAndBinsGame,
        GreedyStrategy,
        IcebergStrategy,
        OneChoiceStrategy,
        fifo_churn,
        greedy_max_load_bound,
        iceberg_max_load_bound,
        one_choice_max_load_bound,
        run_game,
    )

    rows = []
    for lam in args.lambdas:
        m = args.bins * lam
        for name, strategy, bound in (
            ("one-choice", OneChoiceStrategy(), one_choice_max_load_bound(args.bins, lam)),
            ("greedy[2]", GreedyStrategy(2), greedy_max_load_bound(args.bins, lam)),
            ("iceberg[2]", IcebergStrategy(lam=lam), iceberg_max_load_bound(args.bins, lam)),
        ):
            game = BallsAndBinsGame(args.bins, strategy, seed=lam)
            run_game(game, fifo_churn(m, 2 * m))
            rows.append({"strategy": name, "lam": lam, "peak": game.peak_load,
                         "theory": round(bound, 1)})
    print(format_table(rows))


def _cmd_policies(args) -> None:
    from .core import optimal_faults, paging_faults
    from .paging import POLICIES, make_policy
    from .workloads import ZipfWorkload

    trace = ZipfWorkload(args.capacity * 8, s=args.zipf).generate(
        args.accesses, seed=0
    ).tolist()
    opt = optimal_faults(trace, args.capacity)
    rows = [{"policy": "opt (offline)", "faults": opt, "vs_opt": 1.0}]
    for name in sorted(POLICIES):
        kwargs = {"seed": 0} if name == "random" else {}
        faults = paging_faults(trace, args.capacity, make_policy(name, **kwargs))
        rows.append({"policy": name, "faults": faults,
                     "vs_opt": round(faults / opt, 3)})
    print(format_table(rows))


def _cmd_params(args) -> None:
    from .core import theorem1_parameters, theorem3_parameters
    from .core.bounds import greedy_parameters

    rows = []
    for fn in (theorem1_parameters, greedy_parameters, theorem3_parameters):
        p = fn(args.frames, args.w)
        rows.append({
            "scheme": p.scheme, "B": p.bucket_size, "assoc": p.associativity,
            "field_bits": p.field_bits, "hmax": p.hmax,
            "delta": round(p.delta, 4), "max_pages": p.max_pages,
        })
    print(f"P = {args.frames} frames, w = {args.w} bits\n")
    print(format_table(rows))


def _cmd_epsilon(args) -> None:
    from .core.hardware import HDD, NVME_SSD, OPTANE, SATA_SSD

    rows = []
    for profile in (HDD, SATA_SSD, NVME_SSD, OPTANE):
        virt = profile.virtualized()
        rows.append({
            "device": profile.name,
            "io_ns": profile.io_latency_ns,
            "walk_ns": round(profile.walk_latency_ns, 1),
            "epsilon": round(profile.epsilon, 6),
            "epsilon_virtualized": round(virt.epsilon, 6),
        })
    print(format_table(rows))
    print("\nfaster storage => larger epsilon => translation dominates "
          "(the paper's motivating trend); virtualization multiplies it.")


def _cmd_describe(args) -> None:
    from .analysis import describe_trace
    from .workloads import (
        BimodalWorkload,
        BTreeLookupWorkload,
        RandomWalkWorkload,
        SequentialWorkload,
        UniformWorkload,
        ZipfWorkload,
    )

    # partials, not lambdas: these factories stay picklable, so they can be
    # handed to the parallel runner as-is
    factories = {
        "bimodal": partial(BimodalWorkload.paper_scaled, args.pages),
        "zipf": partial(ZipfWorkload, args.pages, s=1.0),
        "uniform": partial(UniformWorkload, args.pages),
        "sequential": partial(SequentialWorkload, args.pages),
        "random-walk": partial(RandomWalkWorkload, args.pages, graph_seed=args.seed),
        "btree": partial(BTreeLookupWorkload, args.pages, fanout=64, zipf_s=0.9),
    }
    wl = factories[args.workload]()
    trace = wl.generate(args.accesses, seed=args.seed)
    info = describe_trace(trace, huge_page_size=args.h)
    print(f"{args.workload} ({args.accesses} accesses over {wl.va_pages} pages):")
    print(format_table([info]))
    print(
        f"\nhuge_page_density at h={args.h}: 1.0 = coverage is free, "
        f"{1/args.h:.3f} = pure amplification;\n"
        "top_share = access mass on the hottest 1% of touched pages."
    )


_HANDLERS = {
    "fig1": _cmd_fig1,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "top": _cmd_top,
    "check": _cmd_check,
    "tenants": _cmd_tenants,
    "describe": _cmd_describe,
    "eq3": _cmd_eq3,
    "maxload": _cmd_maxload,
    "policies": _cmd_policies,
    "params": _cmd_params,
    "epsilon": _cmd_epsilon,
}
