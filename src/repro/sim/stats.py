"""Derived statistics for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core import ATCostModel, CostLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import IntervalMetrics
    from ..obs.snapshot import ObsSnapshot

__all__ = ["RunRecord"]


@dataclass(slots=True)
class RunRecord:
    """One (algorithm, parameter point) measurement of a sweep.

    ``params`` carries the sweep coordinates (e.g. ``{"h": 64}``) plus any
    timing stamps (``elapsed_s``, ``accesses_per_s``); ``metrics`` holds
    the run's :class:`~repro.obs.metrics.IntervalMetrics` collector when
    the sweep was asked for a time series, and ``snapshot`` the run's
    mergeable :class:`~repro.obs.snapshot.ObsSnapshot` when the runner was
    given a ``snapshot=`` factory. The convenience accessors expose the
    Figure 1 series and the total cost at any ε.
    """

    algorithm: str
    ledger: CostLedger
    params: dict = field(default_factory=dict)
    metrics: "IntervalMetrics | None" = None
    snapshot: "ObsSnapshot | None" = None

    @property
    def ios(self) -> int:
        return self.ledger.ios

    @property
    def tlb_misses(self) -> int:
        return self.ledger.tlb_misses

    def cost(self, epsilon: float) -> float:
        """Total address-translation cost ``C`` at the given ε."""
        return ATCostModel(epsilon=epsilon).cost(self.ledger)

    def as_row(self) -> dict:
        """Flat dict for table printing / npz export.

        Algorithm-specific ``ledger.extra`` counters appear as
        ``extra_<name>`` columns so they survive serialization instead of
        colliding with (or vanishing among) the core counters.
        """
        ledger = self.ledger
        row = {
            "algorithm": self.algorithm,
            **self.params,
            "accesses": ledger.accesses,
            "ios": ledger.ios,
            "tlb_misses": ledger.tlb_misses,
            "tlb_hits": ledger.tlb_hits,
            "decoding_misses": ledger.decoding_misses,
            "paging_failures": ledger.paging_failures,
        }
        for key, value in ledger.extra.items():
            row[f"extra_{key}"] = value
        return row
