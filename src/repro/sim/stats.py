"""Derived statistics for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import ATCostModel, CostLedger

__all__ = ["RunRecord"]


@dataclass(slots=True)
class RunRecord:
    """One (algorithm, parameter point) measurement of a sweep.

    ``params`` carries the sweep coordinates (e.g. ``{"h": 64}``); the
    convenience accessors expose the Figure 1 series and the total cost at
    any ε.
    """

    algorithm: str
    ledger: CostLedger
    params: dict = field(default_factory=dict)

    @property
    def ios(self) -> int:
        return self.ledger.ios

    @property
    def tlb_misses(self) -> int:
        return self.ledger.tlb_misses

    def cost(self, epsilon: float) -> float:
        """Total address-translation cost ``C`` at the given ε."""
        return ATCostModel(epsilon=epsilon).cost(self.ledger)

    def as_row(self) -> dict:
        """Flat dict for table printing / npz export."""
        return {"algorithm": self.algorithm, **self.params, **self.ledger.as_dict()}
