"""Miss-ratio curves: the Figure 1 experiment for *every* cache size at once.

For LRU-managed, fully-associative caches, an access faults iff its
Mattson stack distance reaches the capacity — so a single distance pass
over the huge-page trace ``p // h`` yields the fault count for **all** TLB
sizes and **all** RAM sizes simultaneously. This turns the paper's
two-point experiment (one ℓ, one P) into full curves: how many TLB entries
(or how much RAM) each huge-page size actually needs.

Exact for LRU + LRU; use :func:`repro.sim.sweep_huge_page_sizes` for other
policies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stackdist import COLD, stack_distances
from .._util import check_positive_int

__all__ = ["HugePageCurves", "figure1_curves"]


@dataclass(frozen=True, slots=True)
class HugePageCurves:
    """All-capacities fault curves for one huge-page size.

    ``faults(c)`` is the LRU fault count of the measured window for a
    cache of ``c`` *huge-page* frames; interpret it as TLB misses when
    ``c = ℓ`` and as huge-frame faults when ``c = P/h`` (multiply by ``h``
    for IOs).
    """

    h: int
    n_measured: int
    _cold: int
    _distance_hist: np.ndarray  # hist[d] = measured accesses with distance d

    def faults(self, capacity: int) -> int:
        """Fault count at *capacity* huge-page frames."""
        check_positive_int(capacity, "capacity")
        hist = self._distance_hist
        hits = int(hist[:capacity].sum()) if capacity <= len(hist) else int(hist.sum())
        return self._cold + (self.n_measured - self._cold - hits)

    def tlb_misses(self, tlb_entries: int) -> int:
        return self.faults(tlb_entries)

    def ios(self, ram_pages: int) -> int:
        """IO count with *ram_pages* base-page frames of RAM (amplified ×h)."""
        frames = max(1, ram_pages // self.h)
        return self.faults(frames) * self.h


def figure1_curves(trace, sizes, *, warmup: int = 0) -> list[HugePageCurves]:
    """One :class:`HugePageCurves` per huge-page size in *sizes*.

    The first *warmup* accesses warm the (implicit) caches: their faults
    are excluded, but they contribute recency state — identical semantics
    to ``simulate(..., warmup=...)`` with LRU.
    """
    trace = np.asarray(trace, dtype=np.int64)
    if not (0 <= warmup <= len(trace)):
        raise ValueError(f"warmup {warmup} outside [0, {len(trace)}]")
    out = []
    for h in sizes:
        check_positive_int(h, "huge page size")
        hp = trace // h
        dists = stack_distances(hp)[warmup:]
        cold = int((dists == COLD).sum())
        warm = dists[dists != COLD]
        hist = np.bincount(warm) if len(warm) else np.zeros(1, dtype=np.int64)
        out.append(
            HugePageCurves(
                h=int(h),
                n_measured=len(dists),
                _cold=cold,
                _distance_hist=hist,
            )
        )
    return out
