"""Trace-driven simulation driver (paper Section 6).

``simulate`` replays a trace through any memory-management algorithm with
the paper's warm-up/measure split: the cache state persists across the
boundary but the counters restart, so the reported IOs and TLB misses are
steady-state, exactly as in the Figure 1 experiments.

``sweep_huge_page_sizes`` is the Figure 1 engine: one
:class:`~repro.mmu.hugepage.PhysicalHugePageMM` run per huge-page size
``h ∈ {1, 2, 4, …}``, returning the (IOs, TLB misses) series the paper
plots.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core import CostLedger
from ..mmu import MemoryManagementAlgorithm, PhysicalHugePageMM
from ..paging import LRUPolicy, ReplacementPolicy
from .stats import RunRecord

__all__ = ["simulate", "sweep_huge_page_sizes", "DEFAULT_HUGE_PAGE_SIZES"]

#: The paper's sweep: h ∈ {1, 2, 4, …, 1024}.
DEFAULT_HUGE_PAGE_SIZES: tuple[int, ...] = tuple(2**k for k in range(11))


def simulate(
    mm: MemoryManagementAlgorithm,
    trace,
    *,
    warmup: int = 0,
) -> CostLedger:
    """Replay *trace* through *mm*; counters reset after *warmup* accesses.

    Returns the measurement-phase ledger (which is ``mm.ledger``).
    """
    trace = np.asarray(trace)
    if warmup < 0 or warmup > len(trace):
        raise ValueError(f"warmup {warmup} outside [0, {len(trace)}]")
    if warmup:
        mm.run(trace[:warmup])
        mm.reset_stats()
    return mm.run(trace[warmup:])


def sweep_huge_page_sizes(
    trace,
    *,
    tlb_entries: int,
    ram_pages: int,
    sizes: Sequence[int] = DEFAULT_HUGE_PAGE_SIZES,
    warmup: int = 0,
    tlb_policy_factory: Callable[[], ReplacementPolicy] = LRUPolicy,
    ram_policy_factory: Callable[[], ReplacementPolicy] = LRUPolicy,
) -> list[RunRecord]:
    """Run the Section 6 experiment: one physical-huge-page simulation per
    huge-page size, all on the same trace.

    Returns one :class:`~repro.sim.stats.RunRecord` per size with
    ``params={"h": size}`` — the two Figure 1 series are
    ``[r.ios for r in records]`` and ``[r.tlb_misses for r in records]``.
    """
    records = []
    for h in sizes:
        # round RAM down to a whole number of huge frames (a ≤h-page
        # difference — negligible at every scale we sweep)
        ram_h = (ram_pages // h) * h
        if ram_h < h:
            continue
        mm = PhysicalHugePageMM(
            tlb_entries,
            ram_h,
            huge_page_size=h,
            tlb_policy=tlb_policy_factory(),
            ram_policy=ram_policy_factory(),
        )
        ledger = simulate(mm, trace, warmup=warmup)
        records.append(RunRecord(algorithm=mm.name, ledger=ledger, params={"h": h}))
    return records
