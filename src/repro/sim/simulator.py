"""Trace-driven simulation driver (paper Section 6).

``simulate`` replays a trace through any memory-management algorithm with
the paper's warm-up/measure split: the cache state persists across the
boundary but the counters restart, so the reported IOs and TLB misses are
steady-state, exactly as in the Figure 1 experiments. A
:class:`~repro.obs.events.Probe` and/or an
:class:`~repro.obs.metrics.IntervalMetrics` collector can ride along —
the replay is bit-identical with or without them.

``sweep_huge_page_sizes`` is the Figure 1 engine: one
:class:`~repro.mmu.hugepage.PhysicalHugePageMM` run per huge-page size
``h ∈ {1, 2, 4, …}``, returning the (IOs, TLB misses) series the paper
plots, each record stamped with its wall-clock timing
(``params["elapsed_s"]`` / ``params["accesses_per_s"]``). With
``jobs != 1`` the sizes run concurrently through
:mod:`repro.sim.parallel`; the records are identical to the serial run.
"""

from __future__ import annotations

import logging
from functools import partial
from typing import Callable, Sequence

import numpy as np

from ..core import CostLedger
from ..mmu import MemoryManagementAlgorithm, PhysicalHugePageMM
from ..obs import NULL_PROBE, IntervalMetrics, MultiProbe, Probe
from ..paging import LRUPolicy, ReplacementPolicy
from .parallel import SimTask, run_records
from .stats import RunRecord

__all__ = ["simulate", "sweep_huge_page_sizes", "DEFAULT_HUGE_PAGE_SIZES"]

_log = logging.getLogger(__name__)

#: The paper's sweep: h ∈ {1, 2, 4, …, 1024}.
DEFAULT_HUGE_PAGE_SIZES: tuple[int, ...] = tuple(2**k for k in range(11))


def simulate(
    mm: MemoryManagementAlgorithm,
    trace,
    *,
    warmup: int = 0,
    probe: Probe | None = None,
    metrics: IntervalMetrics | None = None,
    validate: bool = False,
    deep_every: int | None = None,
    engine: str | None = None,
) -> CostLedger:
    """Replay *trace* through *mm*; counters reset after *warmup* accesses.

    *engine* overrides the algorithm's simulation engine for this call and
    beyond (``"object"`` or ``"array"``; ``None`` keeps ``mm.engine``).
    The array engine batch-replays supported algorithms and falls back to
    the object replay otherwise — costs and cache state are identical, so
    probes, metrics, and validation compose with either engine (per-access
    probes and the invariant oracle force the object path by design).

    With *probe* given, the warm-up and measurement phases are announced
    via ``on_phase`` (absolute trace indices) and every serviced request
    emits typed events. With *metrics* given, the collector is bound to the
    measurement-phase ledger, fed every measured access, and finalized (the
    partial tail window is closed). Neither changes the simulated costs.

    With ``validate=True`` the whole replay (warm-up included) runs under
    the :mod:`repro.check` invariant oracle — every access is audited and
    the first broken invariant raises
    :class:`~repro.check.InvariantViolation`. Costs are unchanged (the
    wrapper shares the algorithm's ledger); *deep_every* tunes the full
    structural sweep cadence.

    Returns the measurement-phase ledger (which is ``mm.ledger``).
    """
    trace = np.asarray(trace)
    if warmup < 0 or warmup > len(trace):
        raise ValueError(f"warmup {warmup} outside [0, {len(trace)}]")
    if engine is not None:
        mm.engine = engine
    if validate:
        # local import: check sits above sim in the layering (it imports
        # mmu and obs); importing it lazily keeps the module graph acyclic
        from ..check import ValidatingMM

        if not isinstance(mm, ValidatingMM):
            mm = ValidatingMM(mm, deep_every=deep_every)
    observed = probe is not None or metrics is not None
    try:
        if warmup:
            if probe is not None:
                probe.on_phase(0, "warmup")
                mm.probe = probe
            mm.run(trace[:warmup])
            mm.reset_stats()
        if observed:
            if probe is not None:
                probe.on_phase(warmup, "measure")
            if metrics is not None:
                metrics.bind(mm.ledger)
            attached = [p for p in (probe, metrics) if p is not None]
            mm.probe = attached[0] if len(attached) == 1 else MultiProbe(attached)
        ledger = mm.run(trace[warmup:])
    finally:
        if observed:
            mm.probe = NULL_PROBE
    if metrics is not None:
        metrics.finalize()
    return ledger


def _build_hugepage_mm(
    tlb_entries: int,
    ram_pages: int,
    huge_page_size: int,
    tlb_policy_factory: Callable[[], ReplacementPolicy],
    ram_policy_factory: Callable[[], ReplacementPolicy],
) -> PhysicalHugePageMM:
    """Module-level (hence picklable) factory for one sweep cell."""
    return PhysicalHugePageMM(
        tlb_entries,
        ram_pages,
        huge_page_size=huge_page_size,
        tlb_policy=tlb_policy_factory(),
        ram_policy=ram_policy_factory(),
    )


def sweep_huge_page_sizes(
    trace,
    *,
    tlb_entries: int,
    ram_pages: int,
    sizes: Sequence[int] = DEFAULT_HUGE_PAGE_SIZES,
    warmup: int = 0,
    tlb_policy_factory: Callable[[], ReplacementPolicy] = LRUPolicy,
    ram_policy_factory: Callable[[], ReplacementPolicy] = LRUPolicy,
    probe: Probe | None = None,
    metrics_every: int | None = None,
    epsilon: float = 0.01,
    snapshot=None,
    heartbeat=None,
    jobs: int | None = 1,
    task_timeout: float | None = None,
    validate: bool = False,
    deep_every: int | None = None,
) -> list[RunRecord]:
    """Run the Section 6 experiment: one physical-huge-page simulation per
    huge-page size, all on the same trace.

    Returns one :class:`~repro.sim.stats.RunRecord` per size with
    ``params={"h": size, "elapsed_s": ..., "accesses_per_s": ...}`` — the
    two Figure 1 series are ``[r.ios for r in records]`` and
    ``[r.tlb_misses for r in records]``.

    With *metrics_every* set, each run gets a fresh
    :class:`~repro.obs.metrics.IntervalMetrics` (window = *metrics_every*
    accesses, cost priced at *epsilon*) attached as ``record.metrics``.
    *probe*, if given, observes every run in sequence (phase events mark
    the boundaries).

    *jobs* shards the sizes across worker processes (``None``/``0`` = all
    CPUs) via :func:`repro.sim.parallel.run_tasks`; the records are
    identical to the serial run. A shared *probe* is serial-only, so
    requesting an enabled one forces ``jobs=1``; *metrics_every* and
    *snapshot* (a picklable per-task probe factory — each record then
    carries a mergeable :class:`~repro.obs.snapshot.ObsSnapshot`) compose
    with any ``jobs``. *task_timeout* (seconds, parallel only) bounds each
    cell; a timed-out or crashed cell is retried once and then dropped with
    an error log, like an infeasible size. *heartbeat* (a picklable
    :class:`~repro.obs.live.HeartbeatConfig`) streams live progress
    records from wherever each cell runs to the configured spool — see
    ``repro top``.

    ``validate=True`` runs every cell under the :mod:`repro.check`
    invariant oracle (identical costs; an invariant violation fails the
    cell) — validation is picklable state, so it composes with ``jobs``.
    """
    trace = np.asarray(trace)
    # policy factories are invoked in the worker, so both the factories and
    # the policies they build must be picklable for jobs != 1
    tasks = []
    for i, h in enumerate(sizes):
        # round RAM down to a whole number of huge frames (a ≤h-page
        # difference — negligible at every scale we sweep)
        h = int(h)
        ram_h = (ram_pages // h) * h
        if ram_h < h:
            _log.warning(
                "sweep_huge_page_sizes: skipping h=%d (ram_pages=%d holds no "
                "whole huge frame) — the sweep returns fewer records than "
                "len(sizes)",
                h, ram_pages,
            )
            continue
        tasks.append(
            SimTask(
                key=i,
                mm_factory=partial(
                    _build_hugepage_mm,
                    tlb_entries,
                    ram_h,
                    h,
                    tlb_policy_factory,
                    ram_policy_factory,
                ),
                params={"h": h},
                warmup=warmup,
                validate=validate,
                deep_every=deep_every,
            )
        )
    return run_records(
        tasks,
        trace=trace,
        jobs=jobs,
        probe=probe,
        metrics_every=metrics_every,
        epsilon=epsilon,
        snapshot=snapshot,
        heartbeat=heartbeat,
        task_timeout=task_timeout,
    )
