"""Parallel experiment runner: deterministic sharding of simulation grids.

Every paper experiment is a grid of independent cells — one (algorithm,
huge-page size, workload, seed) simulation each — so the sweeps are
embarrassingly parallel. This module turns a declarative list of
:class:`SimTask` cells into an ordered list of
:class:`~repro.sim.stats.RunRecord` results, sharded across a
``ProcessPoolExecutor``:

* **Determinism** — results are keyed and returned in task order, and every
  task is fully described by its (picklable) spec, so ``jobs=4`` produces
  records identical to ``jobs=1``. Per-task seeds for replicated trials
  come from :func:`spawn_seeds` (``numpy.random.SeedSequence.spawn``), not
  from worker-local state.
* **Chunked dispatch** — tasks are submitted in chunks so a shared trace
  array is pickled once per chunk, not once per cell.
* **Fault tolerance** — a task that raises, times out (in-worker
  ``SIGALRM`` timer), or hard-crashes its worker (``BrokenProcessPool``)
  marks only that cell failed; it is retried once (``retries=1``) in a
  fresh pool and never poisons the other cells.
* **Serial parity** — ``jobs=1`` runs everything in-process with today's
  exact semantics. A *shared* ``probe=`` observes every run in sequence and
  is supported on this path only (live observer state does not cross
  process boundaries); asking for an enabled probe with ``jobs != 1`` falls
  back to serial with a warning.
* **Parallel observability** — ``snapshot=`` takes a picklable zero-arg
  probe factory (e.g. ``partial(SamplingProbe, rate=1/64)``); each task
  builds its own probe *inside the worker* and ships back a mergeable
  :class:`~repro.obs.snapshot.ObsSnapshot` on ``record.snapshot``, so
  instrumented grids fan out across workers and reduce at join
  (``ObsSnapshot.merge_all``) with results bit-identical to ``jobs=1``.
  ``metrics_every`` rides the same path: per-task collectors are built and
  returned by the worker, so interval metrics no longer force serial.

Each record is stamped with its per-task wall-clock timing
(``params["elapsed_s"]`` / ``params["accesses_per_s"]``, measured inside
the worker) so the obs layer's throughput reporting stays meaningful in
parallel runs.
"""

from __future__ import annotations

import logging
import math
import os
import signal
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from ..obs import IntervalMetrics, MultiProbe, Probe, Timer, accesses_per_second
from ..obs.live import HeartbeatConfig, HeartbeatProbe, StallWatcher
from .stats import RunRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mmu import MemoryManagementAlgorithm

__all__ = [
    "SimTask",
    "TaskResult",
    "run_tasks",
    "run_records",
    "run_callables",
    "spawn_seeds",
    "resolve_jobs",
]

_log = logging.getLogger(__name__)


@dataclass(slots=True)
class SimTask:
    """One cell of an experiment grid.

    Every field must be picklable when ``jobs != 1`` — in particular
    ``mm_factory`` must be a module-level function, a ``functools.partial``
    of one, a class, or a picklable callable instance (never a lambda or a
    closure).
    """

    #: zero-argument factory building a fresh MM algorithm for this cell.
    mm_factory: Callable[[], "MemoryManagementAlgorithm"]
    #: unique ordering key within the grid (results come back sorted by
    #: task order; the key names the cell in logs).
    key: int = 0
    #: record label; ``None`` uses the built algorithm's ``name``.
    algorithm: str | None = None
    #: sweep coordinates copied into ``record.params`` (e.g. ``{"h": 64}``).
    params: dict = field(default_factory=dict)
    #: accesses that warm the caches before counters reset.
    warmup: int = 0
    #: per-task trace; ``None`` uses the shared trace given to the runner.
    trace: Any = None
    #: optional picklable ``mm -> dict`` stamping derived coordinates (e.g.
    #: a hybrid's coverage) into ``record.params`` after construction.
    stamp: Callable[["MemoryManagementAlgorithm"], dict] | None = None
    #: run this cell under the :mod:`repro.check` invariant oracle — the
    #: record's costs are unchanged, but a broken invariant fails the cell.
    validate: bool = False
    #: oracle deep-sweep cadence (``None`` = default; meaningful only with
    #: ``validate=True``).
    deep_every: int | None = None
    #: simulation engine for this cell (``None`` keeps the factory-built
    #: algorithm's own ``engine``; see :func:`repro.sim.simulate`).
    engine: str | None = None


@dataclass(slots=True)
class TaskResult:
    """Outcome of one task: a record, or an error string after retries."""

    key: int
    record: RunRecord | None
    error: str | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def spawn_seeds(base_seed, n: int) -> list[int]:
    """*n* statistically independent child seeds derived from *base_seed*.

    Uses ``numpy.random.SeedSequence.spawn`` — the same base seed always
    yields the same children, children never collide with each other or
    with the parent stream, and the expansion is independent of worker
    count or scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(c.generate_state(1, np.uint64)[0]) for c in children]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: ``None``/``0`` mean all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive (or 0/None for all CPUs), got {jobs}")
    return jobs


class _TaskTimeout(Exception):
    """Raised inside a worker when a task exceeds its time budget."""


def _on_alarm(signum, frame):  # pragma: no cover - fires only on slow tasks
    raise _TaskTimeout()


def _null_probe_factory() -> None:
    """Module-level (hence picklable) stand-in for ``snapshot=True``:
    snapshots carry exact counters (and metrics rows) but no probe."""
    return None


def _execute(
    task: SimTask,
    shared_trace,
    *,
    probe: Probe | None = None,
    metrics_every: int | None = None,
    epsilon: float = 0.01,
    snapshot_factory: Callable[[], Probe | None] | None = None,
    heartbeat: HeartbeatConfig | None = None,
) -> RunRecord:
    """Run one task to a timing-stamped record (worker side or serial)."""
    from .simulator import simulate  # local import: avoid a module cycle

    trace = task.trace if task.trace is not None else shared_trace
    if trace is None:
        raise ValueError(f"task {task.key} has no trace and no shared trace was given")
    mm = task.mm_factory()
    stamped = task.stamp(mm) if task.stamp is not None else {}
    metrics = (
        IntervalMetrics(every=metrics_every, epsilon=epsilon) if metrics_every else None
    )
    if snapshot_factory is not None:
        # per-task probe, built where the task runs — its state never has
        # to cross a process boundary, only the snapshot does
        probe = snapshot_factory()
    bus = None
    hb_probe = None
    run_probe = probe
    if heartbeat is not None:
        bus = heartbeat.bus()
        hb_probe = HeartbeatProbe(
            bus,
            interval=heartbeat.interval,
            task=task.key,
            total=len(trace),
        )
        # the heartbeat rides alongside any snapshot/shared probe; the
        # snapshot below still reads the *original* probe, whose collected
        # state the composite forwards into unchanged
        run_probe = (
            hb_probe
            if probe is None or not probe.enabled
            else MultiProbe([probe, hb_probe])
        )
        bus.emit("task_start", task=task.key, total=len(trace))
    try:
        with Timer() as timer:
            ledger = simulate(
                mm,
                trace,
                warmup=task.warmup,
                probe=run_probe,
                metrics=metrics,
                validate=task.validate,
                deep_every=task.deep_every,
                engine=task.engine,
            )
    except Exception as exc:
        if bus is not None:
            bus.emit(
                "task_end",
                task=task.key,
                error=f"{type(exc).__name__}: {exc}",
            )
            bus.close()
        raise
    if bus is not None:
        bus.emit(
            "task_end",
            task=task.key,
            accesses=hb_probe.done,
            counters=dict(hb_probe.counters),
            acc_s=accesses_per_second(hb_probe.done, timer.elapsed),
        )
        bus.close()
    snapshot = None
    if snapshot_factory is not None:
        from ..obs.snapshot import ObsSnapshot

        snapshot = ObsSnapshot.from_run(
            ledger, probe=probe, metrics=metrics, mm=mm, label=task.key
        )
    return RunRecord(
        algorithm=task.algorithm if task.algorithm is not None else mm.name,
        ledger=ledger,
        params={
            **task.params,
            **stamped,
            "elapsed_s": timer.elapsed,
            "accesses_per_s": accesses_per_second(ledger.accesses, timer.elapsed),
        },
        metrics=metrics,
        snapshot=snapshot,
    )


def _run_chunk(
    tasks: list[SimTask],
    shared_trace,
    task_timeout: float | None,
    metrics_every: int | None = None,
    epsilon: float = 0.01,
    snapshot_factory: Callable[[], Probe | None] | None = None,
    heartbeat: HeartbeatConfig | None = None,
) -> list[tuple[int, RunRecord | None, str | None]]:
    """Worker entry point: run a chunk of tasks, isolating per-task errors.

    A task that raises or times out yields ``(key, None, error)``; the rest
    of the chunk still runs. Timeouts are enforced *inside* the worker with
    an interval timer (POSIX), so a slow cell cannot wedge the pool.
    """
    has_alarm = task_timeout is not None and hasattr(signal, "setitimer")
    out: list[tuple[int, RunRecord | None, str | None]] = []
    for task in tasks:
        old_handler = None
        if has_alarm:
            old_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, task_timeout)
        try:
            record = _execute(
                task,
                shared_trace,
                metrics_every=metrics_every,
                epsilon=epsilon,
                snapshot_factory=snapshot_factory,
                heartbeat=heartbeat,
            )
            out.append((task.key, record, None))
        except _TaskTimeout:
            out.append((task.key, None, f"timed out after {task_timeout:g}s"))
        except Exception as exc:
            out.append((task.key, None, f"{type(exc).__name__}: {exc}"))
        finally:
            if has_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, old_handler)
    return out


def run_tasks(
    tasks: Sequence[SimTask],
    *,
    trace=None,
    jobs: int | None = 1,
    probe: Probe | None = None,
    metrics_every: int | None = None,
    epsilon: float = 0.01,
    snapshot: Callable[[], Probe | None] | bool | None = None,
    heartbeat: HeartbeatConfig | None = None,
    task_timeout: float | None = None,
    retries: int = 1,
    chunksize: int | None = None,
    mp_context=None,
) -> list[TaskResult]:
    """Run every task; return one :class:`TaskResult` per task, in task order.

    *trace* is the shared access trace for tasks whose own ``trace`` is
    ``None`` (pickled once per dispatch chunk). ``jobs=1`` runs serially
    in-process; ``jobs=None`` or ``0`` uses every CPU.

    *probe* is a single **shared** observer of every run in sequence; live
    observer state does not cross process boundaries, so requesting an
    *enabled* shared probe with ``jobs != 1`` logs a warning and falls back
    to serial (a disabled/null probe costs nothing and forces nothing).

    *snapshot* is the parallel-safe alternative: a **picklable zero-arg
    factory** (e.g. ``functools.partial(SamplingProbe, rate=1/64)``)
    building one fresh probe per task inside the worker; each record comes
    back with a mergeable :class:`~repro.obs.snapshot.ObsSnapshot` on
    ``record.snapshot`` (reduce with ``ObsSnapshot.merge_all``), and the
    merged result is bit-identical to the serial run. ``snapshot=True``
    snapshots counters (and metrics rows) without any probe. *snapshot*
    and *probe* are mutually exclusive.

    *metrics_every* builds one per-task ``IntervalMetrics`` where the task
    runs and returns it on ``record.metrics`` — it composes with any
    ``jobs`` (the collector is plain picklable state).

    *heartbeat* is a picklable :class:`~repro.obs.live.HeartbeatConfig`:
    each task (worker side or serial) opens its own
    :class:`~repro.obs.live.TelemetryBus` on the shared spool and streams
    ``task_start`` / periodic ``heartbeat`` / ``task_end`` records while
    it runs; retries emit structured ``task_retry`` records from the
    parent, and (on the pooled path) a parent-side
    :class:`~repro.obs.live.StallWatcher` flags silent workers with
    ``task_stall`` records. Heartbeats compose with *snapshot* probes via
    :class:`~repro.obs.events.MultiProbe` and keep the vectorized fast
    paths enabled (the probe is batch-safe with a ``batch_interval``);
    combining with a *non*-batch-safe probe (``TraceRecorder``, detail
    sampling) still runs but suppresses the periodic flushes, since the
    per-access path has no batch boundaries to flush on.

    Fault tolerance: a failing cell (exception, per-task *task_timeout*, or
    worker crash) is retried up to *retries* times — crash retries get a
    fresh pool and chunks of one — and ends as ``TaskResult.error`` if it
    keeps failing; successful cells are never affected.
    """
    tasks = list(tasks)
    keys = [t.key for t in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique within a grid")
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if snapshot is not None and probe is not None:
        raise ValueError(
            "snapshot= and probe= are mutually exclusive: a shared probe "
            "observes runs in sequence, a snapshot factory builds one probe "
            "per task"
        )
    snapshot_factory: Callable[[], Probe | None] | None
    if snapshot is True:
        snapshot_factory = _null_probe_factory
    elif snapshot is False:
        snapshot_factory = None
    else:
        snapshot_factory = snapshot
    jobs = resolve_jobs(jobs)
    if jobs != 1 and probe is not None and probe.enabled:
        _log.warning(
            "run_tasks: a shared probe is serial-only; forcing jobs=1 "
            "(was jobs=%d) — pass snapshot= for parallel-safe observability",
            jobs,
        )
        jobs = 1
    if not tasks:
        return []
    if jobs == 1:
        return _run_serial(
            tasks,
            trace,
            probe=probe,
            metrics_every=metrics_every,
            epsilon=epsilon,
            snapshot_factory=snapshot_factory,
            heartbeat=heartbeat,
            retries=retries,
        )
    return _run_pooled(
        tasks,
        trace,
        jobs=jobs,
        metrics_every=metrics_every,
        epsilon=epsilon,
        snapshot_factory=snapshot_factory,
        heartbeat=heartbeat,
        task_timeout=task_timeout,
        retries=retries,
        chunksize=chunksize,
        mp_context=mp_context,
    )


def _call(fn):
    """Module-level trampoline so ``executor.map`` stays picklable."""
    return fn()


def run_callables(
    fns: Sequence[Callable[[], Any]],
    *,
    jobs: int | None = 1,
    chunksize: int | None = None,
    mp_context=None,
) -> list[Any]:
    """Run zero-arg callables, returning their results in input order.

    The generic sibling of :func:`run_tasks` for grids that are not plain
    ``simulate()`` cells (e.g. multi-tenant sweeps): each *fn* must be
    picklable when ``jobs != 1`` (module-level function or
    ``functools.partial`` of one) and fully describe its cell, so
    ``jobs=4`` returns results identical to ``jobs=1``. Exceptions
    propagate — callers wanting per-cell fault tolerance should catch
    inside the callable.
    """
    fns = list(fns)
    jobs = resolve_jobs(jobs)
    if not fns:
        return []
    if jobs == 1:
        return [fn() for fn in fns]
    csize = chunksize or _default_chunksize(len(fns), jobs)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(fns)), mp_context=mp_context
    ) as pool:
        return list(pool.map(_call, fns, chunksize=csize))


def run_records(tasks: Sequence[SimTask], **kwargs) -> list[RunRecord]:
    """Like :func:`run_tasks`, but return just the records, in task order.

    Cells that still fail after retries are dropped with an error log — the
    result list then has fewer entries than *tasks*, mirroring how the
    sweeps skip infeasible grid points.
    """
    records = []
    for result in run_tasks(tasks, **kwargs):
        if result.ok:
            records.append(result.record)
        else:
            _log.error(
                "run_records: task %d failed after %d attempt(s): %s — "
                "dropping its cell from the results",
                result.key, result.attempts, result.error,
            )
    return records


# ------------------------------------------------------------- internals


def _emit_retry(
    heartbeat: HeartbeatConfig | None, task_key: int, attempt: int, error: str
) -> None:
    """Structured retry event: one ``task_retry`` spool record (when a bus
    is configured) plus a structured log record — so ``repro top`` and log
    processors both see (task, attempt, error), not just free text."""
    if heartbeat is not None:
        with heartbeat.bus(worker="parent") as bus:
            bus.emit("task_retry", task=task_key, attempt=attempt, error=error)
    _log.warning(
        "task %d failed on attempt %d (%s); retrying",
        task_key, attempt, error,
        extra={"event": {
            "kind": "task_retry", "task": task_key,
            "attempt": attempt, "error": error,
        }},
    )


def _run_serial(
    tasks: list[SimTask],
    trace,
    *,
    probe,
    metrics_every,
    epsilon,
    snapshot_factory,
    heartbeat: HeartbeatConfig | None = None,
    retries: int,
) -> list[TaskResult]:
    """In-process path: today's sweep semantics, bit-for-bit.

    The shared probe (if any) observes every run in sequence, and each task
    gets its own metrics collector and snapshot probe, exactly as the
    workers would build them.
    """
    results = []
    for task in tasks:
        attempts = 0
        while True:
            attempts += 1
            try:
                record = _execute(
                    task, trace, probe=probe, metrics_every=metrics_every,
                    epsilon=epsilon, snapshot_factory=snapshot_factory,
                    heartbeat=heartbeat,
                )
            except Exception as exc:
                if attempts <= retries:
                    _emit_retry(
                        heartbeat, task.key, attempts,
                        f"{type(exc).__name__}: {exc}",
                    )
                    continue
                results.append(
                    TaskResult(task.key, None,
                               error=f"{type(exc).__name__}: {exc}",
                               attempts=attempts)
                )
            else:
                results.append(TaskResult(task.key, record, attempts=attempts))
            break
    return results


def _default_chunksize(n_tasks: int, jobs: int) -> int:
    """~4 chunks per worker: big enough to amortize trace pickling, small
    enough that a crash retries few innocent neighbours."""
    return max(1, math.ceil(n_tasks / (jobs * 4)))


def _run_pooled(
    tasks: list[SimTask],
    trace,
    *,
    jobs: int,
    metrics_every: int | None,
    epsilon: float,
    snapshot_factory,
    heartbeat: HeartbeatConfig | None = None,
    task_timeout: float | None,
    retries: int,
    chunksize: int | None,
    mp_context,
) -> list[TaskResult]:
    by_key = {t.key: t for t in tasks}
    results: dict[int, TaskResult] = {}
    attempts = {t.key: 0 for t in tasks}
    pending = list(tasks)
    round_idx = 0

    def note_failure(task: SimTask, error: str, requeue: list[SimTask]) -> None:
        if attempts[task.key] <= retries:
            _emit_retry(heartbeat, task.key, attempts[task.key], error)
            requeue.append(task)
        else:
            results[task.key] = TaskResult(
                task.key, None, error=error, attempts=attempts[task.key]
            )

    watcher = None
    if heartbeat is not None:
        watcher = StallWatcher(
            heartbeat.spool,
            heartbeat.bus(worker="parent"),
            stall_factor=heartbeat.stall_factor,
            grace_s=heartbeat.grace_s,
        ).start()
    try:
        return _pooled_rounds(
            tasks, trace, by_key, results, attempts, pending, round_idx,
            note_failure,
            jobs=jobs, metrics_every=metrics_every, epsilon=epsilon,
            snapshot_factory=snapshot_factory, heartbeat=heartbeat,
            task_timeout=task_timeout, chunksize=chunksize,
            mp_context=mp_context,
        )
    finally:
        if watcher is not None:
            watcher.stop()
            watcher.bus.close()


def _pooled_rounds(
    tasks, trace, by_key, results, attempts, pending, round_idx, note_failure,
    *,
    jobs, metrics_every, epsilon, snapshot_factory, heartbeat,
    task_timeout, chunksize, mp_context,
) -> list[TaskResult]:
    while pending:
        for t in pending:
            attempts[t.key] += 1
        requeue: list[SimTask] = []
        if round_idx:
            # retry rounds: one fresh single-worker pool per cell, so a
            # repeat-crasher cannot take innocent neighbours down with it
            _isolated_round(
                pending, trace, task_timeout, mp_context, results, attempts,
                note_failure, requeue,
                metrics_every=metrics_every, epsilon=epsilon,
                snapshot_factory=snapshot_factory, heartbeat=heartbeat,
            )
            pending = requeue
            round_idx += 1
            continue
        csize = chunksize or _default_chunksize(len(pending), jobs)
        chunks = [pending[i:i + csize] for i in range(0, len(pending), csize)]
        # parent-side backstop: the in-worker alarm should fire first, so
        # only a wedged worker (e.g. stuck in C code) trips this
        budget = None if task_timeout is None else task_timeout * len(pending) * 2 + 30
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(chunks)),
                                   mp_context=mp_context)
        futures = {
            pool.submit(
                _run_chunk, chunk, trace, task_timeout,
                metrics_every, epsilon, snapshot_factory, heartbeat,
            ): chunk
            for chunk in chunks
        }
        consumed: set = set()
        try:
            for fut in as_completed(futures, timeout=budget):
                try:
                    rows = fut.result()
                except BrokenProcessPool:
                    # not marked consumed: the recovery sweep below requeues
                    # this chunk's tasks along with the truly unfinished ones
                    raise
                except Exception as exc:  # e.g. result unpickling failure
                    consumed.add(fut)
                    for t in futures[fut]:
                        note_failure(t, f"{type(exc).__name__}: {exc}", requeue)
                    continue
                consumed.add(fut)
                for key, record, error in rows:
                    if error is None:
                        results[key] = TaskResult(
                            key, record, attempts=attempts[key]
                        )
                    else:
                        note_failure(by_key[key], error, requeue)
        except (BrokenProcessPool, FuturesTimeoutError) as exc:
            # the pool died (worker crash) or the round blew its budget:
            # harvest chunks that did finish, requeue the rest
            reason = (
                "worker crashed (pool broken)"
                if isinstance(exc, BrokenProcessPool)
                else f"round exceeded its {budget:g}s budget"
            )
            for fut, chunk in futures.items():
                if fut in consumed:
                    continue
                if fut.done() and fut.exception() is None:
                    for key, record, error in fut.result():
                        if error is None:
                            results[key] = TaskResult(
                                key, record, attempts=attempts[key]
                            )
                        else:
                            note_failure(by_key[key], error, requeue)
                else:
                    for t in chunk:
                        if t.key not in results:
                            note_failure(t, reason, requeue)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        pending = requeue
        round_idx += 1

    return [results[t.key] for t in tasks]


def _isolated_round(
    pending: list[SimTask],
    trace,
    task_timeout: float | None,
    mp_context,
    results: dict,
    attempts: dict,
    note_failure,
    requeue: list[SimTask],
    *,
    metrics_every: int | None = None,
    epsilon: float = 0.01,
    snapshot_factory=None,
    heartbeat: HeartbeatConfig | None = None,
) -> None:
    """Run each task in its own single-worker pool (crash isolation)."""
    budget = None if task_timeout is None else task_timeout * 2 + 30
    for task in pending:
        pool = ProcessPoolExecutor(max_workers=1, mp_context=mp_context)
        fut = pool.submit(
            _run_chunk, [task], trace, task_timeout,
            metrics_every, epsilon, snapshot_factory, heartbeat,
        )
        try:
            rows = fut.result(timeout=budget)
        except BrokenProcessPool:
            note_failure(task, "worker crashed (pool broken)", requeue)
            continue
        except FuturesTimeoutError:
            note_failure(task, f"exceeded its {budget:g}s budget", requeue)
            continue
        except Exception as exc:
            note_failure(task, f"{type(exc).__name__}: {exc}", requeue)
            continue
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        for key, record, error in rows:
            if error is None:
                results[key] = TaskResult(key, record, attempts=attempts[key])
            else:
                note_failure(task, error, requeue)
