"""Trace-driven simulator: driver, physical-memory model, run statistics."""

from .curves import HugePageCurves, figure1_curves
from .memory import OutOfMemoryError, PhysicalMemory
from .simulator import DEFAULT_HUGE_PAGE_SIZES, simulate, sweep_huge_page_sizes
from .stats import RunRecord
from .tuning import best_static_h, static_h_costs

__all__ = [
    "PhysicalMemory",
    "OutOfMemoryError",
    "simulate",
    "sweep_huge_page_sizes",
    "DEFAULT_HUGE_PAGE_SIZES",
    "RunRecord",
    "figure1_curves",
    "HugePageCurves",
    "best_static_h",
    "static_h_costs",
]
