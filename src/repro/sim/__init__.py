"""Trace-driven simulator: driver, parallel runner, physical-memory model,
run statistics."""

from .curves import HugePageCurves, figure1_curves
from .memory import OutOfMemoryError, PhysicalMemory
from .parallel import (
    SimTask,
    TaskResult,
    resolve_jobs,
    run_callables,
    run_records,
    run_tasks,
    spawn_seeds,
)
from .simulator import DEFAULT_HUGE_PAGE_SIZES, simulate, sweep_huge_page_sizes
from .stats import RunRecord
from .tuning import best_static_h, static_h_costs

__all__ = [
    "PhysicalMemory",
    "OutOfMemoryError",
    "simulate",
    "sweep_huge_page_sizes",
    "DEFAULT_HUGE_PAGE_SIZES",
    "RunRecord",
    "SimTask",
    "TaskResult",
    "run_tasks",
    "run_records",
    "run_callables",
    "spawn_seeds",
    "resolve_jobs",
    "figure1_curves",
    "HugePageCurves",
    "best_static_h",
    "static_h_costs",
]
