"""Physical-memory substrate: frames, contiguous runs, fragmentation.

Physical huge pages need *physically contiguous* frame runs; this module
models the machine's frame map so experiments can quantify the
fragmentation effect (the paper's third IO cost of huge pages): after a
workload mixes allocation sizes, the largest free run shrinks even when
plenty of total memory is free, and a huge-page allocation then requires
evictions.

Runs are allocated first-fit over an explicit free-run index (a sorted dict
of start → length), so allocation and free are O(log F) with coalescing.
"""

from __future__ import annotations

import bisect

from .._util import check_positive_int

__all__ = ["PhysicalMemory", "OutOfMemoryError"]


class OutOfMemoryError(Exception):
    """No free run long enough for the requested allocation."""


class PhysicalMemory:
    """A frame allocator supporting aligned contiguous runs.

    Parameters
    ----------
    frames:
        Total number of physical frames.

    Notes
    -----
    ``allocate(n, align)`` returns the start frame of a free run of length
    ``n`` whose start is a multiple of ``align`` (hardware huge pages must
    be size-aligned). ``free(start, n)`` releases it, coalescing neighbours.
    """

    def __init__(self, frames: int) -> None:
        self.frames = check_positive_int(frames, "frames")
        # sorted, disjoint, coalesced free runs
        self._starts: list[int] = [0]
        self._lengths: dict[int, int] = {0: frames}
        self._allocated: dict[int, int] = {}  # start -> length
        self.free_frames = frames

    # ------------------------------------------------------------------ api

    def allocate(self, n: int = 1, align: int = 1) -> int:
        """First-fit allocate an *align*-aligned run of *n* frames.

        Raises :class:`OutOfMemoryError` when no (aligned) run fits — even
        if ``free_frames >= n`` (external fragmentation).
        """
        check_positive_int(n, "n")
        check_positive_int(align, "align")
        for i, start in enumerate(self._starts):
            length = self._lengths[start]
            aligned = -(-start // align) * align  # round start up to align
            waste = aligned - start
            if length - waste >= n:
                self._take(i, start, aligned, n)
                self._allocated[aligned] = n
                self.free_frames -= n
                return aligned
        raise OutOfMemoryError(
            f"no aligned free run of {n} frames (free={self.free_frames}, "
            f"largest={self.largest_free_run()})"
        )

    def free(self, start: int) -> None:
        """Release the run previously returned by :meth:`allocate`."""
        n = self._allocated.pop(start)  # raises KeyError if not allocated
        self.free_frames += n
        self._insert_run(start, n)

    def is_allocated(self, start: int) -> bool:
        return start in self._allocated

    # ---------------------------------------------------------- diagnostics

    def largest_free_run(self) -> int:
        """Length of the longest free run (0 when memory is full)."""
        return max(self._lengths.values(), default=0)

    def external_fragmentation(self) -> float:
        """``1 − largest_free_run / free_frames`` (0.0 when nothing is free
        or the free space is one run) — the classic fragmentation metric."""
        if self.free_frames == 0:
            return 0.0
        return 1.0 - self.largest_free_run() / self.free_frames

    def free_run_count(self) -> int:
        return len(self._starts)

    # ------------------------------------------------------------ internals

    def _take(self, i: int, start: int, aligned: int, n: int) -> None:
        """Carve [aligned, aligned+n) out of the free run at index *i*."""
        length = self._lengths.pop(start)
        del self._starts[i]
        if aligned > start:  # leading remainder
            self._insert_run(start, aligned - start, coalesce=False)
        tail = (start + length) - (aligned + n)
        if tail > 0:  # trailing remainder
            self._insert_run(aligned + n, tail, coalesce=False)

    def _insert_run(self, start: int, length: int, *, coalesce: bool = True) -> None:
        i = bisect.bisect_left(self._starts, start)
        if coalesce:
            # merge with successor
            if i < len(self._starts) and self._starts[i] == start + length:
                nxt = self._starts[i]
                length += self._lengths.pop(nxt)
                del self._starts[i]
            # merge with predecessor
            if i > 0:
                prev = self._starts[i - 1]
                if prev + self._lengths[prev] == start:
                    self._lengths[prev] += length
                    return
        self._starts.insert(i, start)
        self._lengths[start] = length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PhysicalMemory frames={self.frames} free={self.free_frames} "
            f"runs={len(self._starts)} largest={self.largest_free_run()}>"
        )
