"""Choosing the cost-optimal static huge-page size — and why it's fragile.

Given a trace and machine parameters, the Mattson curves of
:func:`~repro.sim.curves.figure1_curves` price every huge-page size
exactly (for LRU); :func:`best_static_h` returns the argmin. The paper's
argument is that this argmin is a moving target (it shifts with ε, with
RAM, and with the workload — see ``bench_sensitivity``), which is why a
decoupled scheme that never has to choose wins.
"""

from __future__ import annotations

from ..core.model import ATCostModel
from .curves import figure1_curves
from .simulator import DEFAULT_HUGE_PAGE_SIZES

__all__ = ["best_static_h", "static_h_costs"]


def static_h_costs(
    trace,
    *,
    tlb_entries: int,
    ram_pages: int,
    epsilon: float,
    sizes=DEFAULT_HUGE_PAGE_SIZES,
    warmup: int = 0,
) -> dict[int, float]:
    """Total address-translation cost of each static huge-page size."""
    model = ATCostModel(epsilon=epsilon)
    out = {}
    for curve in figure1_curves(trace, sizes, warmup=warmup):
        from ..core.model import CostLedger

        ledger = CostLedger(
            ios=curve.ios(ram_pages), tlb_misses=curve.tlb_misses(tlb_entries)
        )
        out[curve.h] = model.cost(ledger)
    return out


def best_static_h(
    trace,
    *,
    tlb_entries: int,
    ram_pages: int,
    epsilon: float,
    sizes=DEFAULT_HUGE_PAGE_SIZES,
    warmup: int = 0,
) -> tuple[int, float]:
    """The cost-minimizing static huge-page size and its cost."""
    costs = static_h_costs(
        trace,
        tlb_entries=tlb_entries,
        ram_pages=ram_pages,
        epsilon=epsilon,
        sizes=sizes,
        warmup=warmup,
    )
    h = min(costs, key=costs.get)
    return h, costs[h]
