"""Tenancy sweeps: algorithms × tenant counts × schedulers, in parallel.

Each cell is one :class:`~.sim.MultiTenantSim` run — a churn of tenants
with staggered arrivals multiplexed over one shared registry algorithm —
and is fully described by a picklable :class:`TenancyCellSpec`, so
``jobs=4`` produces rows (and merged snapshots) bit-identical to
``jobs=1`` via :func:`repro.sim.parallel.run_callables`.

The headline measurement is the paper's compressed-TLB-value story under
multi-tenancy: decoupling's ``h_max``-page TLB entries keep their coverage
while tenants churn and shootdowns flush slices, whereas physical huge
pages pay amplification per re-fault — compare the ``cost`` column across
``algorithm`` at fixed ``tenants``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import partial
from typing import Sequence

from ..core import ATCostModel
from ..mmu.registry import make_mm
from ..obs.attribution import AttributionProbe
from ..obs.snapshot import ObsSnapshot
from ..sim.parallel import run_callables, spawn_seeds
from ..workloads import UniformWorkload, ZipfWorkload
from .sim import MultiTenantSim, MultiTenantResult
from .tenant import Tenant

__all__ = [
    "TenancyCellSpec",
    "build_tenants",
    "run_tenancy_cell",
    "run_tenancy_grid",
]

_WORKLOADS = ("zipf", "uniform")


@dataclass(frozen=True)
class TenancyCellSpec:
    """One tenancy-sweep cell, picklable and self-contained."""

    algorithm: str
    tenants: int = 4
    scheduler: str = "round-robin"
    quantum: int = 64
    accesses_per_tenant: int = 2000
    va_pages_per_tenant: int = 1024
    tlb_entries: int = 64
    ram_pages: int = 4096
    warmup: int = 0
    workload: str = "zipf"
    #: fraction of the run over which arrivals are staggered (0 = all at
    #: t=0; 0.5 = arrivals spread over the first half) — tenant churn.
    churn: float = 0.0
    #: φ-remap cadence: shoot down a tenant's slice (reason "phi-change")
    #: every this-many of its own turns; None = never remap.
    remap_every: int | None = None
    seed: int = 0
    validate: bool = False
    engine: str | None = None
    #: run under an :class:`~repro.obs.AttributionProbe`: the row gains
    #: per-cause miss counters and the snapshot carries the ``attrib:*`` /
    #: ``interf:*`` interference matrix.
    attrib: bool = False

    def __post_init__(self) -> None:
        if self.workload not in _WORKLOADS:
            raise ValueError(
                f"unknown sweep workload {self.workload!r}; "
                f"choose one of {_WORKLOADS}"
            )
        if not (0.0 <= self.churn < 1.0):
            raise ValueError(f"churn must be in [0, 1), got {self.churn}")
        if self.remap_every is not None and self.remap_every < 1:
            raise ValueError(
                f"remap_every must be >= 1, got {self.remap_every}"
            )


def build_tenants(spec: TenancyCellSpec) -> list[Tenant]:
    """The cell's tenant mix — deterministic in ``spec.seed`` alone."""
    seeds = spawn_seeds(spec.seed, spec.tenants)
    total = spec.tenants * spec.accesses_per_tenant
    tenants = []
    for i in range(spec.tenants):
        if spec.workload == "zipf":
            wl = ZipfWorkload(spec.va_pages_per_tenant, s=1.0)
        else:
            wl = UniformWorkload(spec.va_pages_per_tenant)
        # arrivals staggered evenly over the churn window, so at any
        # instant only part of the population competes for the TLB
        arrival = int(spec.churn * total * i / spec.tenants)
        tenants.append(
            Tenant(
                f"t{i}",
                workload=wl,
                accesses=spec.accesses_per_tenant,
                arrival=arrival,
                seed=seeds[i],
            )
        )
    return tenants


def run_tenancy_cell(
    spec: TenancyCellSpec, *, epsilon: float = 0.01
) -> tuple[dict, ObsSnapshot]:
    """Run one cell; return its summary row and mergeable snapshot.

    The row carries the spec's coordinates plus the machine-wide counters,
    the AT cost at *epsilon*, and the tenancy-specific outcomes (switches,
    shootdowns, entries dropped). The snapshot is the merge of the
    per-tenant snapshots — merging rows across cells (or across jobs)
    stays bit-identical because every summand is exact counters.
    """
    mm = make_mm(
        spec.algorithm, spec.tlb_entries, spec.ram_pages, seed=spec.seed
    )
    probe = AttributionProbe() if spec.attrib else None
    sim = MultiTenantSim(
        mm,
        build_tenants(spec),
        spec.scheduler,
        quantum=spec.quantum,
        warmup=spec.warmup,
        remap_every=spec.remap_every,
        validate=spec.validate,
        engine=spec.engine,
        attrib=probe,
    )
    result: MultiTenantResult = sim.run()
    result.verify_counter_sums()
    ledger = result.ledger
    cost = ATCostModel(epsilon=epsilon)
    drops = result.shootdown_drops_by_reason
    row = {
        **{
            k: v
            for k, v in asdict(spec).items()
            if k not in ("validate", "engine", "attrib")
        },
        "stride": result.stride,
        "accesses": ledger.accesses,
        "ios": ledger.ios,
        "tlb_misses": ledger.tlb_misses,
        "decoding_misses": ledger.decoding_misses,
        "cost": cost.cost(ledger),
        "cost_per_access": (
            cost.cost(ledger) / ledger.accesses if ledger.accesses else 0.0
        ),
        "switches": result.switches,
        "turns": result.turns,
        "shootdowns": len(result.shootdowns),
        "shootdown_drops": result.shootdown_drops,
        "drops_exit": drops.get("exit", 0),
        "drops_remap": drops.get("phi-change", 0),
    }
    if probe is not None:
        for cause, n in sorted(probe.cause_totals("tlb").items()):
            row[f"tlb_{cause}"] = n
    return row, result.aggregate_snapshot()


def run_tenancy_grid(
    specs: Sequence[TenancyCellSpec],
    *,
    jobs: int | None = 1,
    epsilon: float = 0.01,
) -> tuple[list[dict], ObsSnapshot]:
    """Run every cell (sharded over *jobs* workers); rows in spec order,
    plus one merged snapshot over all cells — identical for any *jobs*."""
    results = run_callables(
        [partial(run_tenancy_cell, spec, epsilon=epsilon) for spec in specs],
        jobs=jobs,
    )
    rows = [row for row, _snap in results]
    merged = ObsSnapshot.merge_all(snap for _row, snap in results)
    return rows, merged
