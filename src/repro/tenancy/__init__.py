"""Multi-tenant address-space simulation (the intro's shared-TLB setting).

Tenants — each an address space with its own workload, φ/ψ view, and cost
slice — are multiplexed over one shared memory-management algorithm via
the ASID contract of :mod:`repro.mmu.base`: per-tenant page striding in a
shared translation structure, tagged lookups, and TLB shootdowns on exit.
Schedulers pick who runs each quantum; sweeps compare the registry
algorithms under tenant churn.
"""

from .scheduler import (
    SCHEDULERS,
    JitteredScheduler,
    PriorityScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from .sim import MultiTenantResult, MultiTenantSim, ShootdownEvent, TenantRecord
from .sweep import (
    TenancyCellSpec,
    build_tenants,
    run_tenancy_cell,
    run_tenancy_grid,
)
from .tenant import Tenant

__all__ = [
    "Tenant",
    "MultiTenantSim",
    "MultiTenantResult",
    "TenantRecord",
    "ShootdownEvent",
    "Scheduler",
    "RoundRobinScheduler",
    "JitteredScheduler",
    "PriorityScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "TenancyCellSpec",
    "build_tenants",
    "run_tenancy_cell",
    "run_tenancy_grid",
]
