"""Multi-tenant simulation: ASID-striped tenants sharing one machine.

:class:`MultiTenantSim` context-switches a set of :class:`~.tenant.Tenant`
streams over **one** shared memory-management algorithm, using the ASID
contract of :class:`~repro.mmu.base.MemoryManagementAlgorithm`: tenant
``i`` becomes ASID ``i``, its pages live in slice
``[i·stride, (i+1)·stride)`` of the global space, and every access goes
through ``run_asid`` — so the shared TLB, RAM, and (for decoupled schemes)
the allocator genuinely multiplex the tenants, exactly as a tagged TLB
multiplexes address spaces in hardware.

Cost attribution is by counter deltas: each quantum's ledger delta is
credited to the tenant that ran, so per-tenant ledgers sum **exactly** to
the machine's global ledger (``MultiTenantResult.verify_counter_sums``).
A tenant that finishes exits with a TLB shootdown of its slice — the
flush events the paper's context-switch discussion prices.

Single-tenant parity: one tenant with ``arrival=0`` replays bit-identically
(ledger and cache state) to ``simulate(mm, trace, warmup=...)`` — ASID 0
is the identity mapping and segmented ``run`` calls are contractually
identical to one unsegmented call, so the multi-tenant driver is a strict
generalization of the single-stream one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core import CostLedger
from ..mmu import MemoryManagementAlgorithm
from ..obs.attribution import REASON_REMAP, REASON_SHOOTDOWN, AttributionProbe
from ..obs.snapshot import ObsSnapshot
from .scheduler import Scheduler, make_scheduler
from .tenant import Tenant

__all__ = ["MultiTenantSim", "MultiTenantResult", "TenantRecord", "ShootdownEvent"]

#: counter names in ``CostLedger.snapshot()`` order — the attribution unit.
_COUNTERS = (
    "accesses",
    "ios",
    "tlb_misses",
    "tlb_hits",
    "decoding_misses",
    "paging_failures",
)


@dataclass(slots=True)
class ShootdownEvent:
    """One TLB shootdown: when, whose slice, how many entries dropped."""

    clock: int
    asid: int
    dropped: int
    reason: str = "exit"


@dataclass(slots=True)
class TenantRecord:
    """Final accounting for one tenant."""

    name: str
    asid: int
    arrival: int
    finished: int  #: global clock when the last access was issued
    turns: int
    ledger: CostLedger
    #: TLB entries this tenant's shootdowns dropped, keyed by reason
    #: (``"exit"`` / ``"phi-change"``).
    drops: dict = field(default_factory=dict)
    #: this tenant's miss-cause / interference counters (sufferer = this
    #: ASID), as flat ``attrib:*`` / ``interf:*`` keys — filled when the
    #: sim ran with an :class:`~repro.obs.AttributionProbe`.
    causes: dict = field(default_factory=dict)

    def snapshot(self) -> ObsSnapshot:
        snap = ObsSnapshot.from_run(self.ledger, label=self.name)
        for reason in sorted(self.drops):
            snap.counters[f"shootdown_drops:{reason}"] = self.drops[reason]
        for key in sorted(self.causes):
            snap.counters[key] = self.causes[key]
        return snap


@dataclass(slots=True)
class MultiTenantResult:
    """Outcome of one multi-tenant run."""

    records: list[TenantRecord]
    ledger: CostLedger  #: the shared machine's (measurement-phase) ledger
    switches: int
    turns: int
    clock: int
    stride: int
    shootdowns: list[ShootdownEvent] = field(default_factory=list)

    @property
    def shootdown_drops(self) -> int:
        """Total TLB entries dropped by shootdowns."""
        return sum(e.dropped for e in self.shootdowns)

    @property
    def shootdown_drops_by_reason(self) -> dict[str, int]:
        """Entries dropped per shootdown reason (``exit`` / ``phi-change``)."""
        out: dict[str, int] = {}
        for e in self.shootdowns:
            out[e.reason] = out.get(e.reason, 0) + e.dropped
        return out

    def tenant_snapshots(self) -> list[ObsSnapshot]:
        return [r.snapshot() for r in self.records]

    def aggregate_snapshot(self) -> ObsSnapshot:
        """Merge of the per-tenant snapshots — counters equal the global
        ledger's by construction (see :meth:`verify_counter_sums`)."""
        return ObsSnapshot.merge_all(self.tenant_snapshots())

    def verify_counter_sums(self) -> None:
        """Assert Σ per-tenant counters == global counters, field by field."""
        sums = [0] * len(_COUNTERS)
        for record in self.records:
            for i, v in enumerate(record.ledger.snapshot()):
                sums[i] += v
        got = list(self.ledger.snapshot())
        assert sums == got, (
            "per-tenant ledgers do not sum to the global ledger: "
            + ", ".join(
                f"{name} {s} != {g}"
                for name, s, g in zip(_COUNTERS, sums, got)
                if s != g
            )
        )


class MultiTenantSim:
    """Drive tenant streams through one shared algorithm under a scheduler.

    Parameters
    ----------
    mm:
        The shared algorithm. Its ASID space is bound here (stride = the
        widest tenant's ``va_pages``, rounded up to a power of two and to
        the algorithm's translation alignment).
    tenants:
        The tenant processes; list order assigns ASIDs ``0, 1, …``
        (ASIDs are never reused).
    scheduler:
        A :class:`~.scheduler.Scheduler` instance or registry name
        (``"round-robin"``, ``"jittered"``, ``"priority"``).
    quantum:
        Quantum for a registry-name scheduler (ignored when an instance
        is passed).
    warmup:
        Global accesses before counters reset — the same warm-up/measure
        split as :func:`repro.sim.simulate`, applied machine-wide (cache
        state persists, global and per-tenant counters restart).
    shootdown_on_exit:
        Shoot down a tenant's slice when it issues its last access
        (default). Disabling leaves the dead tenant's entries to age out,
        modelling ASID-generation reuse without flush.
    remap_every:
        Remap a tenant's φ every this-many of **its own** turns (None =
        never): the OS relocates the tenant's pages (compaction,
        migration), so every translation cached for its slice goes stale
        and the slice is shot down with reason ``"phi-change"``. Like all
        shootdowns here the flush itself is ledger-free — its price is the
        TLB refill misses the tenant pays on its next turns, attributed to
        that tenant by the usual delta accounting.
    validate:
        Run under the :mod:`repro.check` invariant oracle: every access
        audited, plus per-quantum ASID-isolation and per-exit
        ASID-coverage checks. Costs are unchanged.
    deep_every:
        Oracle deep-sweep cadence (with ``validate=True``).
    engine:
        Simulation engine override (``"object"`` / ``"array"``; ``None``
        keeps ``mm.engine``). Engines are bit-identical, so either may
        serve a multi-tenant run; engines without ASID-aware batch kernels
        silently fall back per ``run``'s own contract.
    attrib:
        An :class:`~repro.obs.AttributionProbe` to observe the shared
        machine (``None`` = no attribution). The sim binds the probe to
        its ASID stride, points ``shootdown_reason`` at the right code
        around each shootdown (``"phi-change"`` → remap, otherwise
        shootdown), resets it at the warm-up boundary alongside the
        ledgers, and copies each tenant's cause/interference counters onto
        its :class:`TenantRecord` at the end of the run.
    """

    def __init__(
        self,
        mm: MemoryManagementAlgorithm,
        tenants: Sequence[Tenant],
        scheduler: Scheduler | str = "round-robin",
        *,
        quantum: int = 64,
        warmup: int = 0,
        shootdown_on_exit: bool = True,
        remap_every: int | None = None,
        validate: bool = False,
        deep_every: int | None = None,
        engine: str | None = None,
        attrib: AttributionProbe | None = None,
    ) -> None:
        tenants = list(tenants)
        if not tenants:
            raise ValueError("need at least one tenant")
        total = sum(t.accesses for t in tenants)
        if warmup < 0 or warmup > total:
            raise ValueError(f"warmup {warmup} outside [0, {total}]")
        if remap_every is not None and remap_every < 1:
            raise ValueError(f"remap_every must be >= 1, got {remap_every}")
        if engine is not None:
            mm.engine = engine
        if validate:
            # local import: check sits above mmu/obs in the layering
            from ..check import ValidatingMM

            if not isinstance(mm, ValidatingMM):
                mm = ValidatingMM(mm, deep_every=deep_every)
        self.mm = mm
        self.tenants = tenants
        self.scheduler = (
            scheduler
            if isinstance(scheduler, Scheduler)
            else make_scheduler(scheduler, quantum)
        )
        self.warmup = warmup
        self.shootdown_on_exit = shootdown_on_exit
        self.remap_every = remap_every
        self.validate = validate
        self.stride = mm.bind_asid_space(max(t.va_pages for t in tenants))
        self.attrib = attrib
        if attrib is not None:
            attrib.observe(mm, stride=self.stride)
        self._oracle = mm.oracle if validate else None
        self._clock = 0
        self._shootdowns: list[ShootdownEvent] = []
        self._ran = False

    # ------------------------------------------------------------------ run

    def shootdown_tenant(self, asid: int, reason: str = "phi-change") -> int:
        """Shoot down *asid*'s slice now (e.g. after a φ remap); returns the
        entries dropped and records the event. Free in the cost model —
        like every shootdown here, it touches the TLB, never the ledger."""
        attrib = self.attrib
        if attrib is not None:
            # φ-change flushes classify as "remap", everything else (exit,
            # explicit calls) as "shootdown"
            attrib.shootdown_reason = (
                REASON_REMAP if reason == "phi-change" else REASON_SHOOTDOWN
            )
        try:
            dropped = self.mm.shootdown_asid(asid)
        finally:
            if attrib is not None:
                attrib.shootdown_reason = REASON_SHOOTDOWN
        self._shootdowns.append(
            ShootdownEvent(self._clock, asid, dropped, reason=reason)
        )
        return dropped

    def run(self) -> MultiTenantResult:
        """Drive every tenant to completion; one result, fully attributed."""
        if self._ran:
            raise RuntimeError(
                "MultiTenantSim.run() already consumed its tenant streams; "
                "build a fresh sim (and fresh tenants) to rerun"
            )
        self._ran = True
        mm, tenants, scheduler = self.mm, self.tenants, self.scheduler
        scheduler.bind(tenants)
        live = set(range(len(tenants)))  # arrived-or-not, not yet exited
        finished_at: dict[int, int] = {}
        turns_of = [0] * len(tenants)
        warmed = self.warmup == 0
        switches = 0
        turns = 0
        last_asid: int | None = None

        while live:
            clock = self._clock
            runnable = sorted(
                a for a in live if tenants[a].arrival <= clock and not tenants[a].done
            )
            if not runnable:
                # idle gap: jump to the next arrival (no accesses issued)
                clock = min(
                    tenants[a].arrival for a in live if tenants[a].arrival > clock
                )
                self._clock = clock
                if not warmed and clock >= self.warmup:
                    warmed = self._reset_counters()
                continue
            asid, q = scheduler.pick(runnable, clock)
            if asid not in runnable:
                raise RuntimeError(
                    f"{scheduler.name} picked asid {asid} outside the "
                    f"runnable set {runnable}"
                )
            tenant = tenants[asid]
            if not warmed:
                q = min(q, self.warmup - clock)  # land exactly on the boundary
            chunk = tenant.take(q)
            if self._oracle is not None:
                self._oracle.check_asid_isolation(self.stride, asid, chunk)
            before = mm.ledger.snapshot()
            mm.run_asid(asid, chunk)
            after = mm.ledger.snapshot()
            for name, b, a in zip(_COUNTERS, before, after):
                setattr(tenant.ledger, name, getattr(tenant.ledger, name) + a - b)
            self._clock = clock = clock + len(chunk)
            turns += 1
            turns_of[asid] += 1
            if last_asid is not None and asid != last_asid:
                switches += 1
            last_asid = asid
            if not warmed and clock >= self.warmup:
                warmed = self._reset_counters()
            if (
                self.remap_every is not None
                and not tenant.done
                and turns_of[asid] % self.remap_every == 0
            ):
                # the OS relocated this tenant's pages (φ remap —
                # compaction/migration), so every translation cached for
                # its slice is stale: shoot the slice down. ψ-side state
                # survives, so refills decode the post-remap frames; the
                # remap's price is exactly those refill misses.
                self.shootdown_tenant(asid, reason="phi-change")
                if self._oracle is not None:
                    # the remap guarantee: nothing of the remapped slice
                    # survives the flush
                    self._oracle.check_asid_coverage(
                        self.stride, live - {asid}, t=clock
                    )
            if tenant.done:
                live.discard(asid)
                finished_at[asid] = clock
                if self.shootdown_on_exit:
                    self.shootdown_tenant(asid, reason="exit")
                    if self._oracle is not None:
                        # the exit guarantee: nothing of the dead slice
                        # survives, and no unit straddles a slice boundary
                        self._oracle.check_asid_coverage(
                            self.stride, live, t=clock
                        )

        drops_of: list[dict] = [{} for _ in tenants]
        for event in self._shootdowns:
            d = drops_of[event.asid]
            d[event.reason] = d.get(event.reason, 0) + event.dropped
        attrib = self.attrib
        records = [
            TenantRecord(
                name=t.name,
                asid=asid,
                arrival=t.arrival,
                finished=finished_at[asid],
                turns=turns_of[asid],
                ledger=t.ledger,
                drops=drops_of[asid],
                causes=attrib.tenant_counters(asid) if attrib is not None else {},
            )
            for asid, t in enumerate(tenants)
        ]
        return MultiTenantResult(
            records=records,
            ledger=mm.ledger,
            switches=switches,
            turns=turns,
            clock=self._clock,
            stride=self.stride,
            shootdowns=self._shootdowns,
        )

    def _reset_counters(self) -> bool:
        """The warm-up/measure boundary: machine-wide and per-tenant counter
        reset, cache state untouched — :func:`repro.sim.simulate` parity."""
        self.mm.reset_stats()
        for t in self.tenants:
            t.ledger.reset()
        if self.attrib is not None:
            # same boundary semantics: counters restart, ghost tags (cache
            # state) persist
            self.attrib.reset()
        return True
