"""Tenant schedulers: who runs next, and for how many accesses.

A scheduler answers one question per turn — *(which runnable ASID, what
quantum)* — from nothing but the runnable set and the global clock, so a
given (scheduler, tenant mix) pair replays identically on every engine
and job count. Three policies cover the sweeps:

* :class:`RoundRobinScheduler` — fixed quantum, strict cyclic order (the
  deterministic baseline; one tenant degenerates to a single stream).
* :class:`JitteredScheduler` — round-robin order with geometrically
  jittered quantum lengths, mirroring
  :class:`~repro.workloads.InterleavedWorkload`'s trace-level jitter so
  trace-generated and simulator-driven interleavings are comparable.
* :class:`PriorityScheduler` — stride scheduling: each tenant accumulates
  virtual time at rate ``1/priority``; the lowest pass runs next, so CPU
  share is proportional to priority without starvation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from .._util import as_rng, check_positive_int
from .tenant import Tenant

__all__ = [
    "Scheduler",
    "RoundRobinScheduler",
    "JitteredScheduler",
    "PriorityScheduler",
    "SCHEDULERS",
    "make_scheduler",
]


class Scheduler(ABC):
    """Turn-by-turn tenant selection policy."""

    #: short registry name, set by subclasses.
    name: str = "abstract"

    def __init__(self, quantum: int = 64) -> None:
        self.quantum = check_positive_int(quantum, "quantum")

    def bind(self, tenants: Sequence[Tenant]) -> None:
        """Called once by the driver before the first turn; policies that
        use static tenant attributes (priority) capture them here."""

    @abstractmethod
    def pick(self, runnable: Sequence[int], clock: int) -> tuple[int, int]:
        """Choose ``(asid, quantum)`` from the non-empty *runnable* ASIDs.

        *runnable* is sorted ascending; *clock* is the accesses issued
        machine-wide so far. The returned quantum is a request — the
        driver clips it to the tenant's remaining accesses (and to the
        warmup boundary), and feeds the next turn accordingly.
        """


class RoundRobinScheduler(Scheduler):
    """Strict cyclic order over the runnable set, fixed quantum."""

    name = "round-robin"

    def __init__(self, quantum: int = 64) -> None:
        super().__init__(quantum)
        self._last: int | None = None

    def _next_cyclic(self, runnable: Sequence[int]) -> int:
        last = self._last
        if last is not None:
            for asid in runnable:
                if asid > last:
                    self._last = asid
                    return asid
        self._last = runnable[0]
        return runnable[0]

    def pick(self, runnable: Sequence[int], clock: int) -> tuple[int, int]:
        return self._next_cyclic(runnable), self.quantum


class JitteredScheduler(RoundRobinScheduler):
    """Cyclic order with geometrically jittered quantum lengths.

    Each turn ends early with per-access probability *jitter* — the same
    ``min(quantum, Geometric(jitter))`` draw as
    :class:`~repro.workloads.InterleavedWorkload`, so a trace generated
    there and a simulator-driven run here see the same switch statistics.
    """

    name = "jittered"

    def __init__(self, quantum: int = 64, jitter: float = 0.25, seed=None) -> None:
        super().__init__(quantum)
        if not (0.0 <= jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.jitter = jitter
        self._rng = as_rng(seed)

    def pick(self, runnable: Sequence[int], clock: int) -> tuple[int, int]:
        asid = self._next_cyclic(runnable)
        q = self.quantum
        if self.jitter and q > 1:
            q = min(q, int(self._rng.geometric(self.jitter)))
        return asid, q


class PriorityScheduler(Scheduler):
    """Stride scheduling: proportional share by tenant priority.

    Tenant ``i``'s *pass* advances by ``quantum / priority_i`` each time it
    runs; the runnable tenant with the lowest pass (ties to the lowest
    ASID) runs next. Long-run CPU share converges to
    ``priority_i / Σ priority`` and nobody starves.
    """

    name = "priority"

    def __init__(self, quantum: int = 64) -> None:
        super().__init__(quantum)
        self._priority: dict[int, int] = {}
        self._pass: dict[int, float] = {}

    def bind(self, tenants: Sequence[Tenant]) -> None:
        self._priority = {asid: t.priority for asid, t in enumerate(tenants)}

    def pick(self, runnable: Sequence[int], clock: int) -> tuple[int, int]:
        # late arrivals join at the minimum live pass, not zero, so they
        # cannot monopolize the machine paying back virtual time they
        # never owed
        floor = min(
            (self._pass[a] for a in runnable if a in self._pass), default=0.0
        )
        for asid in runnable:
            if asid not in self._pass:
                self._pass[asid] = floor
        asid = min(runnable, key=lambda a: (self._pass[a], a))
        self._pass[asid] += self.quantum / self._priority.get(asid, 1)
        return asid, self.quantum


SCHEDULERS = {
    cls.name: cls
    for cls in (RoundRobinScheduler, JitteredScheduler, PriorityScheduler)
}


def make_scheduler(name: str, quantum: int = 64, **kwargs) -> Scheduler:
    """Build a registry scheduler by name (see :data:`SCHEDULERS`)."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose one of {sorted(SCHEDULERS)}"
        ) from None
    return cls(quantum, **kwargs)
