"""A tenant: one address space with its own workload and cost slice.

Each tenant owns a private virtual address space (its workload's
``va_pages``), a deterministic request stream, and a
:class:`~repro.core.model.CostLedger` that accumulates exactly its share
of the shared machine's costs. The ASID and the slice of the global page
space the tenant occupies are assigned by
:class:`~repro.tenancy.sim.MultiTenantSim`; the tenant itself only speaks
tenant-local page numbers.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .._util import check_positive_int
from ..core import CostLedger
from ..workloads import Workload

__all__ = ["Tenant"]


class Tenant:
    """One tenant process: a request stream plus per-tenant accounting.

    Parameters
    ----------
    name:
        Label used in records and snapshots.
    workload:
        The tenant's private :class:`~repro.workloads.Workload`; its trace
        is generated lazily (and deterministically from *seed*) on first
        use. Mutually exclusive with *trace*.
    trace:
        Explicit tenant-local trace (any int sequence); page numbers must
        be non-negative. Mutually exclusive with *workload*.
    accesses:
        Total requests the tenant issues before exiting. Required with
        *workload*; defaults to ``len(trace)`` with *trace* (and must not
        exceed it).
    arrival:
        Global clock (accesses issued machine-wide) at which the tenant
        becomes runnable — staggered arrivals model churn.
    priority:
        Weight for priority schedulers (higher = more CPU share).
    seed:
        Workload generation seed.
    """

    def __init__(
        self,
        name: str,
        *,
        workload: Workload | None = None,
        trace: Any = None,
        accesses: int | None = None,
        arrival: int = 0,
        priority: int = 1,
        seed=None,
    ) -> None:
        if (workload is None) == (trace is None):
            raise ValueError("provide exactly one of workload= or trace=")
        self.name = str(name)
        self.workload = workload
        if arrival < 0:
            raise ValueError(f"arrival must be non-negative, got {arrival}")
        self.arrival = int(arrival)
        self.priority = check_positive_int(priority, "priority")
        self.seed = seed
        if trace is not None:
            trace = np.asarray(trace, dtype=np.int64)
            if trace.ndim != 1:
                raise ValueError("trace must be one-dimensional")
            if len(trace) == 0:
                raise ValueError("trace must be non-empty")
            if int(trace.min()) < 0:
                raise ValueError("trace page numbers must be non-negative")
            if accesses is None:
                accesses = len(trace)
            elif accesses > len(trace):
                raise ValueError(
                    f"accesses {accesses} exceeds trace length {len(trace)}"
                )
        elif accesses is None:
            raise ValueError("accesses= is required with workload=")
        self.accesses = check_positive_int(accesses, "accesses")
        self._trace: np.ndarray | None = trace
        self._pos = 0
        #: this tenant's slice of the shared machine's costs, maintained by
        #: the multi-tenant driver (counter deltas of its own quanta).
        self.ledger = CostLedger()

    # ---------------------------------------------------------------- stream

    @property
    def va_pages(self) -> int:
        """Tenant-local address-space size in base pages."""
        if self.workload is not None:
            return self.workload.va_pages
        return int(self._trace.max()) + 1

    @property
    def trace(self) -> np.ndarray:
        """The tenant's full (tenant-local) request stream."""
        if self._trace is None:
            self._trace = self.workload.generate(self.accesses, seed=self.seed)
        return self._trace

    @property
    def issued(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return self.accesses - self._pos

    @property
    def done(self) -> bool:
        return self._pos >= self.accesses

    def take(self, n: int) -> np.ndarray:
        """The next ``min(n, remaining)`` tenant-local requests."""
        check_positive_int(n, "n")
        n = min(n, self.remaining)
        chunk = self.trace[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def reset(self) -> None:
        """Rewind the stream and zero the ledger (fresh run)."""
        self._pos = 0
        self.ledger.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        src = self.workload.name if self.workload is not None else "trace"
        return (
            f"<Tenant {self.name!r} {src} accesses={self.accesses} "
            f"issued={self._pos} arrival={self.arrival}>"
        )
