"""Live telemetry bus: heartbeat spooling, stall detection, and `repro top`.

A long sweep (or a ``jobs=8`` grid) is a black box until it returns. This
module makes it observable *while it runs*, with three cooperating pieces:

:class:`TelemetryBus`
    A JSONL spool writer. Every record is one ``json.dumps`` line written
    with a **single** ``os.write`` on an ``O_APPEND`` descriptor, which
    POSIX guarantees is atomic — so any number of worker processes can
    share one spool file and a concurrent reader never sees interleaved
    or torn lines. Records carry the worker id, a per-bus sequence
    number, and a ``time.monotonic()`` stamp (``CLOCK_MONOTONIC`` is
    system-wide on Linux, so stamps from different processes share one
    time axis).

:class:`HeartbeatProbe`
    A batch-safe probe with a ``batch_interval``: the MM runner flushes
    it at least every *interval* accesses **without** leaving the
    vectorized fast paths (see ``MemoryManagementAlgorithm._run_intervaled``).
    Each flush appends one ``heartbeat`` record — progress, instantaneous
    accesses/s, and cumulative :class:`~repro.core.model.CostLedger`
    counters — to the bus.

:func:`read_spool` / :func:`aggregate` / :func:`render_top`
    The reader side: tail the spool (tolerating a torn final line from a
    writer that is mid-``write`` on a non-POSIX filesystem), reduce the
    records to per-task progress plus run-wide totals, and render the
    ``repro top`` dashboard — plain text, curses-free, one frame per
    call, so it works in CI logs (``repro top --once``) as well as in a
    terminal loop.

:class:`StallWatcher`
    Parent-side liveness monitor for :func:`~repro.sim.parallel.run_tasks`:
    a daemon thread polling the spool; a worker whose last heartbeat is
    older than ``stall_factor ×`` its observed flush period (with a grace
    floor for slow starters) gets one structured ``task_stall`` record on
    the bus and one structured log warning — hung cells surface in
    ``repro top`` instead of silently eating the pool.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from .._util import check_positive_int
from .attribution import ATTRIB_PREFIX, CAUSES
from .events import Probe
from .sampling import COUNTER_FIELDS

__all__ = [
    "TelemetryBus",
    "HeartbeatProbe",
    "HeartbeatConfig",
    "StallWatcher",
    "read_spool",
    "aggregate",
    "render_top",
]

_log = logging.getLogger(__name__)

#: record kinds a spool may contain (readers ignore unknown kinds).
RECORD_KINDS: tuple[str, ...] = (
    "heartbeat",
    "phase",
    "task_start",
    "task_end",
    "task_retry",
    "task_stall",
)


class TelemetryBus:
    """Append-only JSONL telemetry spool shared across processes.

    One bus per (process, spool) pair; the file is opened lazily with
    ``O_APPEND | O_CREAT`` and every :meth:`emit` is a single atomic
    ``os.write``. The bus never reads the spool — readers live in
    :func:`read_spool`.

    With *max_bytes* set, an emit that would push the spool past the bound
    first rotates it: one ``os.replace`` renames the live spool to
    ``<spool>.1`` (clobbering any previous ``.1``) and the write lands in a
    fresh file, so an unattended sweep's spool is bounded at roughly
    ``2 × max_bytes`` on disk. Rotation is crash-safe (rename is atomic)
    and multi-writer-safe: a bus that finds its descriptor pointing at a
    rotated-away inode follows the rename and reopens the live path.
    Readers (:func:`read_spool`) stitch ``.1`` + live back together and
    tolerate a rotation happening between the two reads.
    """

    __slots__ = ("path", "worker", "max_bytes", "_fd", "_seq")

    def __init__(
        self,
        path,
        *,
        worker: str | int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.path = Path(path)
        #: spool-wide writer id; defaults to this process's pid.
        self.worker = str(worker if worker is not None else os.getpid())
        #: rotate the spool when an emit would push it past this size
        #: (``None`` = grow without bound, the historical behaviour).
        self.max_bytes = (
            None if max_bytes is None else check_positive_int(max_bytes, "max_bytes")
        )
        self._fd: int | None = None
        self._seq = 0

    def _open(self) -> int:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        return os.open(
            str(self.path), os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )

    def _maybe_rotate(self, incoming: int) -> None:
        """Rotate (or follow another writer's rotation) before *incoming* bytes."""
        assert self._fd is not None
        try:
            live_ino = os.stat(self.path).st_ino
        except FileNotFoundError:
            live_ino = None  # spool vanished: reopen recreates it
        if live_ino != os.fstat(self._fd).st_ino:
            os.close(self._fd)
            self._fd = self._open()
        if os.fstat(self._fd).st_size + incoming <= self.max_bytes:
            return
        os.replace(self.path, str(self.path) + ".1")
        os.close(self._fd)
        self._fd = self._open()

    def emit(self, kind: str, **fields) -> dict:
        """Append one *kind* record (plus ``worker``/``seq``/``wall``)."""
        if self._fd is None:
            self._fd = self._open()
        self._seq += 1
        record = {
            "kind": kind,
            "worker": self.worker,
            "seq": self._seq,
            "wall": time.monotonic(),
            **fields,
        }
        data = (json.dumps(record, sort_keys=True) + "\n").encode()
        if self.max_bytes is not None:
            self._maybe_rotate(len(data))
        os.write(self._fd, data)
        return record

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "TelemetryBus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TelemetryBus {self.path} worker={self.worker} seq={self._seq}>"


@dataclass(frozen=True)
class HeartbeatConfig:
    """Picklable heartbeat wiring for :func:`~repro.sim.parallel.run_tasks`.

    Workers rebuild their own :class:`TelemetryBus` from this config (file
    descriptors do not cross process boundaries), all appending to the
    same *spool*.
    """

    #: spool file every worker appends to.
    spool: str
    #: accesses between heartbeat flushes (the probe's ``batch_interval``).
    interval: int = 65536
    #: a worker silent for > ``stall_factor ×`` its observed flush period
    #: is reported stalled (the "k" of the structured stall warning).
    stall_factor: float = 4.0
    #: stall grace floor in seconds (covers startup and slow first flushes).
    grace_s: float = 5.0
    #: per-spool rotation bound (``TelemetryBus(max_bytes=...)``); ``None``
    #: keeps the spool unbounded.
    max_bytes: int | None = None

    def bus(self, worker: str | int | None = None) -> TelemetryBus:
        """A fresh bus on this config's spool."""
        return TelemetryBus(self.spool, worker=worker, max_bytes=self.max_bytes)


class HeartbeatProbe(Probe):
    """Batch-safe probe streaming periodic progress records to a bus.

    Parameters
    ----------
    bus:
        The :class:`TelemetryBus` to emit on.
    interval:
        Flush period in accesses — becomes the probe's ``batch_interval``,
        so the MM runner segments the replay but keeps the vectorized
        fast paths enabled within each segment.
    task:
        Task label stamped into every record (e.g. the grid key).
    total:
        Expected total accesses (warm-up + measure), for progress/ETA;
        ``None`` leaves progress open-ended.
    attrib:
        An attached :class:`~repro.obs.attribution.AttributionProbe` whose
        flat ``attrib:*`` / ``interf:*`` counters ride along in every
        heartbeat — ``repro top`` then shows live per-cause columns.

    Composable with other batch-safe probes via
    :class:`~repro.obs.events.MultiProbe`, whose ``batch_interval`` is the
    minimum over its children.
    """

    __slots__ = (
        "bus",
        "task",
        "total",
        "attrib",
        "batch_interval",
        "done",
        "counters",
        "_start_wall",
        "_last_wall",
        "_last_done",
    )

    batch_safe = True

    def __init__(
        self,
        bus: TelemetryBus,
        *,
        interval: int = 65536,
        task: str | int = "",
        total: int | None = None,
        attrib=None,
    ) -> None:
        self.bus = bus
        self.batch_interval = check_positive_int(interval, "interval")
        self.task = str(task)
        self.total = None if total is None else int(total)
        self.attrib = attrib
        self.done = 0
        self.counters: dict[str, int] = {k: 0 for k in COUNTER_FIELDS}
        self._start_wall = time.monotonic()
        self._last_wall = self._start_wall
        self._last_done = 0

    def on_batch(self, t0: int, vpns, ledger, before) -> None:
        for name, a, b in zip(COUNTER_FIELDS, before, ledger.snapshot()):
            self.counters[name] += b - a
        self.done += len(vpns)
        now = time.monotonic()
        dt = now - self._last_wall
        acc_s = (self.done - self._last_done) / dt if dt > 0 else 0.0
        self._last_wall = now
        self._last_done = self.done
        counters = dict(self.counters)
        if self.attrib is not None:
            # cumulative, so "latest heartbeat wins" aggregation stays exact
            counters.update(self.attrib.attrib_counters())
        self.bus.emit(
            "heartbeat",
            task=self.task,
            done=self.done,
            total=self.total,
            acc_s=acc_s,
            counters=counters,
        )

    def on_phase(self, t: int, name: str) -> None:
        self.bus.emit("phase", task=self.task, label=name, t=t)


# ---------------------------------------------------------------- reader side


def read_spool(path) -> list[dict]:
    """Parse a telemetry spool, oldest record first.

    Tolerant by design: a line that fails to parse (a writer mid-append on
    a filesystem without atomic ``O_APPEND``, or a truncated tail) is
    skipped, not fatal — the spool is advisory telemetry, never the source
    of truth for results.

    A rotated spool (``TelemetryBus(max_bytes=...)``) is stitched back
    together: the ``.1`` generation is read first, then the live file, and
    a live line byte-identical to one in ``.1`` (a rotation racing the two
    reads) is dropped. Only cross-generation duplicates are dropped —
    ``seq`` restarts per bus, so it cannot serve as a record identity.
    """
    path = Path(path)
    records: list[dict] = []
    rotated_lines: set[bytes] = set()
    for generation, p in enumerate((Path(str(path) + ".1"), path)):
        try:
            raw = p.read_bytes()
        except FileNotFoundError:
            continue
        for line in raw.splitlines():
            if not line.strip():
                continue
            if generation and line in rotated_lines:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not (isinstance(record, dict) and "kind" in record):
                continue
            if not generation:
                rotated_lines.add(line)
            records.append(record)
    return records


def aggregate(records: list[dict]) -> dict:
    """Reduce spool records into the ``repro top`` summary dict.

    Returns ``{"tasks": [...], "workers": {...}, "totals": {...},
    "stalls": [...], "retries": [...]}`` where each task row carries the
    latest known progress, instantaneous rate, and state
    (``running`` / ``done`` / ``failed`` / ``stalled``).
    """
    tasks: dict[str, dict] = {}
    workers: dict[str, dict] = {}
    stalls: list[dict] = []
    retries: list[dict] = []
    first_wall = last_wall = None
    for rec in records:
        wall = rec.get("wall")
        if isinstance(wall, (int, float)):
            first_wall = wall if first_wall is None else min(first_wall, wall)
            last_wall = wall if last_wall is None else max(last_wall, wall)
        kind = rec.get("kind")
        worker = str(rec.get("worker", "?"))
        task_id = str(rec.get("task", ""))
        if kind == "heartbeat":
            row = tasks.setdefault(
                task_id,
                {"task": task_id, "state": "running", "done": 0, "total": None,
                 "acc_s": 0.0, "counters": {}, "worker": worker, "wall": wall},
            )
            row.update(
                done=rec.get("done", row["done"]),
                total=rec.get("total", row["total"]),
                acc_s=rec.get("acc_s", 0.0),
                counters=rec.get("counters", row["counters"]),
                worker=worker,
                wall=wall,
            )
            if row["state"] == "stalled":
                row["state"] = "running"  # it spoke again
            w = workers.setdefault(worker, {"heartbeats": 0, "wall": wall})
            w["heartbeats"] += 1
            w["wall"] = wall
        elif kind == "task_start":
            tasks.setdefault(
                task_id,
                {"task": task_id, "state": "running", "done": 0,
                 "total": rec.get("total"), "acc_s": 0.0, "counters": {},
                 "worker": worker, "wall": wall},
            )["state"] = "running"
        elif kind == "task_end":
            row = tasks.setdefault(
                task_id,
                {"task": task_id, "state": "done", "done": 0, "total": None,
                 "acc_s": 0.0, "counters": {}, "worker": worker, "wall": wall},
            )
            row["state"] = "failed" if rec.get("error") else "done"
            if rec.get("counters"):
                row["counters"] = rec["counters"]
            if rec.get("accesses") is not None:
                row["done"] = rec["accesses"]
            if rec.get("acc_s") is not None:
                row["acc_s"] = rec["acc_s"]
            row["wall"] = wall
        elif kind == "task_retry":
            retries.append(rec)
        elif kind == "task_stall":
            stalls.append(rec)
            stalled = str(rec.get("task", ""))
            if stalled in tasks and tasks[stalled]["state"] == "running":
                tasks[stalled]["state"] = "stalled"
    running = [t for t in tasks.values() if t["state"] in ("running", "stalled")]
    done_counters: dict[str, int] = {}
    for t in tasks.values():
        for k, v in (t.get("counters") or {}).items():
            done_counters[k] = done_counters.get(k, 0) + v
    agg_rate = sum(t["acc_s"] for t in running)
    remaining = sum(
        t["total"] - t["done"]
        for t in running
        if t["total"] is not None and t["total"] > t["done"]
    )
    eta_s = remaining / agg_rate if agg_rate > 0 and remaining else None
    return {
        "tasks": sorted(tasks.values(), key=lambda t: _task_order(t["task"])),
        "workers": workers,
        "totals": {
            "counters": done_counters,
            "acc_s": agg_rate,
            "remaining": remaining,
            "eta_s": eta_s,
            "elapsed_s": (
                last_wall - first_wall
                if first_wall is not None and last_wall is not None
                else 0.0
            ),
        },
        "stalls": stalls,
        "retries": retries,
    }


def _task_order(task: str) -> tuple:
    """Numeric task ids sort numerically (so task "10" follows "9")."""
    try:
        return (0, int(task), "")
    except ValueError:
        return (1, 0, task)


def _bar(frac: float, width: int = 20) -> str:
    frac = min(1.0, max(0.0, frac))
    filled = int(round(frac * width))
    return "#" * filled + "." * (width - filled)


def _si(value: float) -> str:
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= scale:
            return f"{value / scale:.2f}{suffix}"
    return f"{value:.0f}"


def render_top(summary: dict, *, epsilon: float = 0.01) -> str:
    """One plain-text ``repro top`` frame from an :func:`aggregate` summary."""
    tasks = summary["tasks"]
    totals = summary["totals"]
    states = {s: sum(1 for t in tasks if t["state"] == s)
              for s in ("running", "done", "failed", "stalled")}
    lines = [
        "repro top — "
        + ", ".join(f"{n} {s}" for s, n in states.items() if n)
        if tasks
        else "repro top — spool is empty (no heartbeats yet)",
    ]
    if tasks:
        lines.append(
            f"{'TASK':<10} {'WORKER':<8} {'STATE':<8} "
            f"{'PROGRESS':<29} {'ACC/S':>8}"
        )
        for t in tasks:
            total = t["total"]
            if total:
                frac = t["done"] / total
                progress = f"{_bar(frac)} {frac:6.1%}"
            else:
                progress = f"{t['done']:>10} acc"
            lines.append(
                f"{t['task']:<10.10} {t['worker']:<8.8} {t['state']:<8} "
                f"{progress:<29} {_si(t['acc_s']):>8}"
            )
        c = totals["counters"]
        accesses = c.get("accesses", 0)
        ios = c.get("ios", 0)
        misses = c.get("tlb_misses", 0)
        dmisses = c.get("decoding_misses", 0)
        cost = ios + epsilon * (misses + dmisses)
        lines.append(
            f"aggregate: {_si(totals['acc_s'])} acc/s | "
            f"accesses {accesses:,} | ios {ios:,} | tlb_misses {misses:,} | "
            f"cost@eps={epsilon:g} {cost:,.1f}"
        )
        # miss-attribution cause columns, when any task streamed them
        families: dict[str, dict[str, int]] = {}
        for key, v in c.items():
            if key.startswith(ATTRIB_PREFIX):
                fam, _, cause = key[len(ATTRIB_PREFIX):].partition(":")
                families.setdefault(fam, {})[cause] = v
        for fam in sorted(families):
            causes = families[fam]
            lines.append(
                f"attrib {fam}: "
                + " | ".join(
                    f"{cause} {causes[cause]:,}"
                    for cause in CAUSES
                    if causes.get(cause)
                )
            )
        eta = totals["eta_s"]
        lines.append(
            f"elapsed {totals['elapsed_s']:.1f}s | "
            + (f"ETA {eta:.1f}s" if eta is not None else "ETA —")
        )
    for rec in summary["stalls"][-3:]:
        lines.append(
            f"STALL task={rec.get('task')} worker={rec.get('stalled_worker')} "
            f"silent {rec.get('silent_s', 0.0):.1f}s"
        )
    for rec in summary["retries"][-3:]:
        lines.append(
            f"RETRY task={rec.get('task')} attempt={rec.get('attempt')} "
            f"({rec.get('error', '')})"
        )
    return "\n".join(lines)


class StallWatcher:
    """Daemon thread flagging workers that stopped heartbeating.

    Polls *spool* every *poll_s* seconds; a worker whose newest record is
    older than ``stall_factor × `` its observed inter-heartbeat period
    (never less than *grace_s*) gets one structured ``task_stall`` record
    emitted on *bus* and one structured warning log. A worker that speaks
    again is re-armed, so an intermittent stall is reported per episode.
    """

    def __init__(
        self,
        spool,
        bus: TelemetryBus,
        *,
        stall_factor: float = 4.0,
        grace_s: float = 5.0,
        poll_s: float = 0.5,
    ) -> None:
        self.spool = Path(spool)
        self.bus = bus
        self.stall_factor = float(stall_factor)
        self.grace_s = float(grace_s)
        self.poll_s = float(poll_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: worker -> seq of the record already reported stalled.
        self._reported: dict[str, int] = {}

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "StallWatcher":
        self._thread = threading.Thread(
            target=self._run, name="repro-stall-watcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StallWatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # --------------------------------------------------------------- polling

    def _run(self) -> None:
        while not self._stop.wait(self.poll_s):
            try:
                self.check(time.monotonic())
            except Exception:  # pragma: no cover - never kill the parent
                _log.exception("stall watcher poll failed")

    def check(self, now: float) -> list[dict]:
        """One poll (factored out of the thread loop for direct testing)."""
        latest: dict[str, dict] = {}
        period: dict[str, float] = {}
        for rec in read_spool(self.spool):
            if rec.get("kind") not in (
                "heartbeat", "phase", "task_start", "task_end",
            ):
                continue
            worker = str(rec.get("worker", "?"))
            prev = latest.get(worker)
            if prev is not None and rec.get("kind") == "heartbeat":
                gap = rec.get("wall", 0.0) - prev.get("wall", 0.0)
                if gap > 0:
                    period[worker] = gap
            latest[worker] = rec
        stalls: list[dict] = []
        for worker, rec in latest.items():
            if rec.get("kind") != "heartbeat":
                continue  # finished or not yet measuring
            allowed = max(
                self.grace_s, self.stall_factor * period.get(worker, 0.0)
            )
            silent = now - rec.get("wall", now)
            seq = rec.get("seq", 0)
            if silent <= allowed:
                self._reported.pop(worker, None)
                continue
            if self._reported.get(worker) == seq:
                continue  # this episode is already on the bus
            self._reported[worker] = seq
            stall = self.bus.emit(
                "task_stall",
                task=rec.get("task", ""),
                stalled_worker=worker,
                silent_s=silent,
                allowed_s=allowed,
                last_seq=seq,
            )
            stalls.append(stall)
            _log.warning(
                "worker %s silent for %.1fs (allowed %.1fs) on task %s",
                worker, silent, allowed, rec.get("task", ""),
            )
        return stalls
