"""Observability: structured event tracing, interval metrics, run profiling.

Three orthogonal pieces, all optional and all zero-overhead when unused:

* :mod:`repro.obs.events` — the :class:`Probe` protocol (``NullProbe``
  default), :class:`TraceRecorder` (typed events → ring buffer → JSONL),
  :class:`MultiProbe`;
* :mod:`repro.obs.metrics` — :class:`IntervalMetrics`, per-window time
  series (IO rate, TLB miss rate, working set, cost at ε) from
  :class:`~repro.core.model.CostLedger` deltas;
* :mod:`repro.obs.profile` — ``perf_counter`` timers, the ``@timed``
  decorator, and throughput helpers.

Attach via ``simulate(mm, trace, probe=..., metrics=...)`` or the CLI's
``repro trace`` subcommand.
"""

from .events import (
    EVENT_KINDS,
    NULL_PROBE,
    Event,
    MultiProbe,
    NullProbe,
    Probe,
    TraceRecorder,
)
from .metrics import METRICS_FIELDS, IntervalMetrics
from .profile import (
    PROFILE,
    ProfileRegistry,
    Timer,
    TimerStats,
    accesses_per_second,
    timed,
)

__all__ = [
    "EVENT_KINDS",
    "Event",
    "Probe",
    "NullProbe",
    "NULL_PROBE",
    "TraceRecorder",
    "MultiProbe",
    "IntervalMetrics",
    "METRICS_FIELDS",
    "Timer",
    "TimerStats",
    "ProfileRegistry",
    "PROFILE",
    "timed",
    "accesses_per_second",
]
