"""Observability: event tracing, sampling, snapshots, metrics, profiling.

Orthogonal pieces, all optional and all zero-overhead when unused:

* :mod:`repro.obs.events` — the :class:`Probe` protocol (``NullProbe``
  default, ``batch_safe`` granularity contract), :class:`TraceRecorder`
  (typed events → ring buffer → JSONL), :class:`MultiProbe`;
* :mod:`repro.obs.hist` — :class:`LogHistogram`, mergeable log₂-bucketed
  counter histograms (record / merge / percentile);
* :mod:`repro.obs.sampling` — :class:`SamplingProbe`, deterministic
  stride + hashed-VPN sampling with unbiased scale-up; batch-safe, so the
  ``mmu`` fast paths stay enabled under it;
* :mod:`repro.obs.attribution` — :class:`AttributionProbe`, eviction
  provenance via bounded ghost lists: every TLB/page miss classified into
  the :data:`CAUSES` taxonomy plus an ASID × ASID interference matrix;
* :mod:`repro.obs.snapshot` — :class:`ObsSnapshot`, the picklable,
  associatively mergeable unit (counters + histograms + metrics rows)
  that lets ``run_tasks`` fan instrumented tasks across workers;
* :mod:`repro.obs.metrics` — :class:`IntervalMetrics`, per-window time
  series (IO rate, TLB miss rate, working set, cost at ε) from
  :class:`~repro.core.model.CostLedger` deltas;
* :mod:`repro.obs.online` — :class:`OnlineWorkingSet` /
  :class:`OnlineStackDistance`, streaming (batch-safe) twins of the
  offline ``analysis/`` tools — reuse structure without materializing
  the trace;
* :mod:`repro.obs.live` — :class:`TelemetryBus` (atomic JSONL spool),
  :class:`HeartbeatProbe` / :class:`HeartbeatConfig` (periodic progress
  records that keep the fast paths enabled), :class:`StallWatcher`, and
  the ``repro top`` reader (:func:`read_spool` / :func:`aggregate` /
  :func:`render_top`);
* :mod:`repro.obs.report` — render snapshots / bench payloads / metrics
  JSONL into a terminal summary and self-contained HTML (``repro report``);
* :mod:`repro.obs.profile` — ``perf_counter`` timers, the ``@timed``
  decorator, and throughput helpers.

Attach via ``simulate(mm, trace, probe=..., metrics=...)``,
``run_tasks(..., snapshot=...)``, or the CLI's ``repro trace`` /
``repro report`` subcommands.
"""

from .attribution import (
    ATTRIB_PREFIX,
    CAUSES,
    INTERF_PREFIX,
    REASON_CAPACITY,
    REASON_PROMOTION,
    REASON_REMAP,
    REASON_SHOOTDOWN,
    AttributionProbe,
)
from .events import (
    EVENT_KINDS,
    NULL_PROBE,
    Event,
    MultiProbe,
    NullProbe,
    Probe,
    TraceRecorder,
)
from .hist import LogHistogram
from .live import (
    HeartbeatConfig,
    HeartbeatProbe,
    StallWatcher,
    TelemetryBus,
    aggregate,
    read_spool,
    render_top,
)
from .metrics import METRICS_FIELDS, IntervalMetrics
from .online import OnlineStackDistance, OnlineWorkingSet
from .profile import (
    PROFILE,
    ProfileRegistry,
    Timer,
    TimerStats,
    accesses_per_second,
    timed,
)
from .report import build_report, load_artifact, render_html, render_text
from .sampling import SamplingProbe
from .snapshot import ObsSnapshot

__all__ = [
    "EVENT_KINDS",
    "Event",
    "Probe",
    "NullProbe",
    "NULL_PROBE",
    "TraceRecorder",
    "MultiProbe",
    "LogHistogram",
    "SamplingProbe",
    "AttributionProbe",
    "CAUSES",
    "REASON_CAPACITY",
    "REASON_SHOOTDOWN",
    "REASON_REMAP",
    "REASON_PROMOTION",
    "ATTRIB_PREFIX",
    "INTERF_PREFIX",
    "ObsSnapshot",
    "IntervalMetrics",
    "METRICS_FIELDS",
    "OnlineWorkingSet",
    "OnlineStackDistance",
    "TelemetryBus",
    "HeartbeatProbe",
    "HeartbeatConfig",
    "StallWatcher",
    "read_spool",
    "aggregate",
    "render_top",
    "load_artifact",
    "build_report",
    "render_text",
    "render_html",
    "Timer",
    "TimerStats",
    "ProfileRegistry",
    "PROFILE",
    "timed",
    "accesses_per_second",
]
