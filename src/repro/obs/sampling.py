"""Sampling observability: a probe cheap enough for the batched fast paths.

Full event tracing (:class:`~repro.obs.events.TraceRecorder`) needs one
callback per event and therefore forces the original per-access replay —
the PR 4 vectorized fast paths in ``mmu/hugepage|decoupled|hybrid|thp``
self-disable. :class:`SamplingProbe` is the batch-safe alternative: it
declares ``batch_safe = True`` and consumes one :meth:`on_batch` callback
per ``run()``, folding the *exact* ledger counter delta and a deterministic
*sample* of the replayed VPNs, so the fast paths stay enabled and the
measured overhead is a few percent instead of an order of magnitude.

Two deterministic sampling schemes run side by side (both seeded, both
identical between the scalar and the vectorized code path):

stride sampling
    Access index ``t`` is sampled iff ``t % stride == 0`` with
    ``stride = round(1/rate)``. Systematic sampling over the time axis —
    the estimator ``sampled · stride`` is unbiased for the access count and
    exact up to the last partial stride.

hashed-VPN sampling
    Page ``v`` is *tracked* iff ``splitmix64(v ⊕ salt) < rate · 2⁶⁴``. Every
    page is kept or dropped consistently for the whole run, so per-page
    statistics (reuse distance, distinct-page counts) are computed on an
    unbiased ~``rate`` fraction of the page population and scale up by
    ``1/rate``.

``detail=True`` additionally collects per-event histograms (inter-miss
gaps, IO batch sizes, eviction batch sizes); those need per-access event
ordering, so detail mode sets ``batch_safe = False`` on the instance and
deliberately gives the fast paths back.
"""

from __future__ import annotations

import numpy as np

from .events import Probe
from .hist import LogHistogram

__all__ = ["SamplingProbe", "splitmix64"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

#: ledger-snapshot counter names, in ``CostLedger.snapshot()`` order.
COUNTER_FIELDS: tuple[str, ...] = (
    "accesses",
    "ios",
    "tlb_misses",
    "tlb_hits",
    "decoding_misses",
    "paging_failures",
)

#: histograms collected on every path / only on the per-access detail path.
BATCH_HISTS: tuple[str, ...] = ("reuse_distance",)
DETAIL_HISTS: tuple[str, ...] = ("tlb_miss_gap", "io_batch", "eviction_batch")


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer — scalar twin of the vectorized mix below."""
    z = (x + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def _splitmix64_many(xs: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64, bit-identical to :func:`splitmix64`."""
    with np.errstate(over="ignore"):
        z = xs + np.uint64(_GOLDEN)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
        return z ^ (z >> np.uint64(31))


class SamplingProbe(Probe):
    """Deterministic sampling probe with unbiased scale-up.

    Parameters
    ----------
    rate:
        Target sampling fraction in ``(0, 1]``. Drives both schemes:
        stride sampling uses ``stride = round(1/rate)`` and hashed-VPN
        sampling keeps pages whose 64-bit hash falls below ``rate · 2⁶⁴``.
    seed:
        Salts the VPN hash; two probes with the same seed track the same
        pages (required for cross-shard merges to mean anything).
    detail:
        Collect the per-event histograms (``tlb_miss_gap``, ``io_batch``,
        ``eviction_batch``) as well. This needs per-access events, so it
        sets ``batch_safe = False`` and disables the fast paths — detail
        mode is a debugging depth, not the steady-state configuration.

    The probe resets its collection at the ``measure`` phase boundary, so
    after :func:`~repro.sim.simulator.simulate` with a warm-up the reported
    statistics cover the measurement phase only (matching the ledger).

    ``counters`` accumulates exact ledger deltas on the batch path; on the
    per-access detail path it is derived from events, where ``tlb_hits``
    and ``paging_failures`` are not evented and stay 0.
    """

    __slots__ = (
        "rate",
        "stride",
        "seed",
        "detail",
        "batch_safe",
        "counters",
        "hists",
        "sampled_accesses",
        "tracked_accesses",
        "_salt",
        "_threshold",
        "_last_seen",
        "_last_miss_t",
    )

    def __init__(
        self, rate: float = 1 / 64, *, seed: int = 0, detail: bool = False
    ) -> None:
        if not (0.0 < rate <= 1.0):
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self.stride = max(1, round(1 / rate))
        self.seed = int(seed)
        self.detail = bool(detail)
        # instance slot shadows the Probe class attribute: detail mode needs
        # per-access event ordering and must force the per-access path
        self.batch_safe = not self.detail
        self._salt = splitmix64(self.seed)
        self._threshold = min(_MASK64, int(self.rate * 2.0**64))
        self.counters: dict[str, int] = {}
        self.hists: dict[str, LogHistogram] = {}
        self.sampled_accesses = 0
        self.tracked_accesses = 0
        self._last_seen: dict[int, int] = {}
        self._last_miss_t: int | None = None
        self.reset()

    # -------------------------------------------------------------- lifecycle

    def reset(self) -> None:
        """Drop all collected state (fires automatically at ``measure``)."""
        self.counters = {k: 0 for k in COUNTER_FIELDS}
        names = BATCH_HISTS + (DETAIL_HISTS if self.detail else ())
        self.hists = {name: LogHistogram() for name in names}
        self.sampled_accesses = 0
        self.tracked_accesses = 0
        self._last_seen = {}
        self._last_miss_t = None

    def on_phase(self, t: int, name: str) -> None:
        if name == "measure":
            self.reset()

    # ------------------------------------------------------------- batch path

    def on_batch(self, t0: int, vpns, ledger, before) -> None:
        for name, a, b in zip(COUNTER_FIELDS, before, ledger.snapshot()):
            self.counters[name] += b - a
        n = len(vpns)
        if n == 0:
            return
        # stride sampling: indices t0..t0+n-1 hitting t % stride == 0
        first = (-t0) % self.stride
        if first < n:
            self.sampled_accesses += (n - 1 - first) // self.stride + 1
        # hashed-VPN sampling, vectorized; the survivors (~rate·n of them)
        # are walked in Python for reuse distances — cheap at real rates
        keys = np.asarray(vpns, dtype=np.uint64) ^ np.uint64(self._salt)
        tracked = np.nonzero(_splitmix64_many(keys) < np.uint64(self._threshold))[0]
        self.tracked_accesses += len(tracked)
        last_seen = self._last_seen
        reuse = self.hists["reuse_distance"]
        for i in tracked.tolist():
            vpn = int(vpns[i])
            t = t0 + i
            prev = last_seen.get(vpn)
            if prev is not None:
                reuse.record(t - prev)
            last_seen[vpn] = t

    # -------------------------------------------------- per-access (detail)

    def _tracks(self, vpn: int) -> bool:
        return splitmix64(vpn ^ self._salt) < self._threshold

    def on_access(self, t: int, vpn: int) -> None:
        self.counters["accesses"] += 1
        if t % self.stride == 0:
            self.sampled_accesses += 1
        if self._tracks(vpn):
            self.tracked_accesses += 1
            prev = self._last_seen.get(vpn)
            if prev is not None:
                self.hists["reuse_distance"].record(t - prev)
            self._last_seen[vpn] = t

    def on_tlb_miss(self, t: int, vpn: int) -> None:
        self.counters["tlb_misses"] += 1
        if self.detail:
            if self._last_miss_t is not None:
                self.hists["tlb_miss_gap"].record(t - self._last_miss_t)
            self._last_miss_t = t

    def on_io(self, t: int, vpn: int, pages: int) -> None:
        self.counters["ios"] += pages
        if self.detail:
            self.hists["io_batch"].record(pages)

    def on_eviction(self, t: int, count: int) -> None:
        if self.detail:
            self.hists["eviction_batch"].record(count)

    def on_decoding_miss(self, t: int, vpn: int) -> None:
        self.counters["decoding_misses"] += 1

    # -------------------------------------------------------------- estimates

    def estimates(self) -> dict[str, float]:
        """Unbiased scale-ups of the sampled statistics.

        * ``accesses_from_stride`` — ``sampled · stride``; systematic
          estimator of the access count (exact up to one stride).
        * ``accesses_from_hash`` — ``tracked / rate``; page-population
          estimator of the same quantity.
        * ``distinct_pages_from_hash`` — ``|tracked pages| / rate``; each
          distinct page is tracked independently with probability ``rate``.
        """
        return {
            "accesses_from_stride": float(self.sampled_accesses * self.stride),
            "accesses_from_hash": self.tracked_accesses / self.rate,
            "distinct_pages_from_hash": len(self._last_seen) / self.rate,
        }

    def as_dict(self) -> dict:
        """JSON-ready summary (configuration, counters, estimates, hists)."""
        return {
            "rate": self.rate,
            "stride": self.stride,
            "seed": self.seed,
            "detail": self.detail,
            "counters": dict(self.counters),
            "sampled_accesses": self.sampled_accesses,
            "tracked_accesses": self.tracked_accesses,
            "tracked_pages": len(self._last_seen),
            "estimates": self.estimates(),
            "hists": {name: h.as_dict() for name, h in self.hists.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SamplingProbe rate=1/{self.stride} seed={self.seed} "
            f"detail={self.detail} sampled={self.sampled_accesses}>"
        )
