"""Structured event tracing: the probe protocol and the trace recorder.

A :class:`Probe` observes a simulation as it unfolds — one callback per
typed event — without perturbing it: the cost model charges nothing for
observation, and the hot path is untouched when no probe is attached
(:class:`~repro.mmu.base.MemoryManagementAlgorithm.run` checks
``probe.enabled`` once per replay and falls back to the original tight
loop).

Event kinds mirror the chargeable (and near-chargeable) events of the
cost model:

========================  ====================================================
``access``                one virtual-page request was serviced
``tlb_miss``              the request missed in the TLB (cost ε)
``io``                    pages moved into RAM (cost 1 each; huge-page
                          faults report ``pages = h`` at once)
``eviction``              the active set evicted resident unit(s) (cost 0)
``decoding_miss``         a covered, resident page decoded to −1 (cost ε)
``phase``                 a driver boundary — ``warmup`` / ``measure``
========================  ====================================================

:class:`TraceRecorder` is the standard probe: it keeps the last
``capacity`` events in a ring buffer (total counts are exact even after
the ring wraps) and exports JSONL — one event object per line.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .._util import check_positive_int

__all__ = [
    "EVENT_KINDS",
    "Event",
    "Probe",
    "NullProbe",
    "NULL_PROBE",
    "TraceRecorder",
    "MultiProbe",
]

#: Every kind a probe can observe, in rough hot-path order.
EVENT_KINDS: tuple[str, ...] = (
    "access",
    "tlb_miss",
    "io",
    "eviction",
    "decoding_miss",
    "phase",
)


@dataclass(frozen=True, slots=True)
class Event:
    """One observed simulation event.

    ``t`` is the access index within the current phase (``phase`` events
    instead carry the absolute trace position of the boundary). ``vpn`` is
    the virtual page involved where applicable, ``pages`` the IO/eviction
    multiplicity, and ``label`` the phase name.
    """

    kind: str
    t: int
    vpn: int | None = None
    pages: int | None = None
    label: str | None = None

    def as_dict(self) -> dict:
        """Plain dict with ``None`` fields dropped (the JSONL row)."""
        row: dict = {"kind": self.kind, "t": self.t}
        if self.vpn is not None:
            row["vpn"] = self.vpn
        if self.pages is not None:
            row["pages"] = self.pages
        if self.label is not None:
            row["label"] = self.label
        return row


class Probe:
    """Observer interface for simulation events; every callback is a no-op.

    Subclass and override the kinds you care about. ``enabled`` is checked
    *once per replay* by the instrumented runner — a probe whose class sets
    it to ``False`` costs literally nothing per access.

    ``batch_safe`` declares the probe's granularity contract: a batch-safe
    probe only needs :meth:`on_batch` — one callback per ``run()`` with the
    replayed VPNs and the ledger delta — and therefore keeps the batched /
    vectorized fast paths in ``mmu/hugepage|decoupled|hybrid|thp`` (and the
    base tight loop) enabled. Probes that need per-access event ordering
    (``TraceRecorder``, ``StreamTap``, ``IntervalMetrics``) leave it False
    and force the original per-access path.

    ``batch_interval`` refines the batch contract for *live* observers: a
    batch-safe probe that sets it to ``N`` asks ``run()`` to flush
    :meth:`on_batch` at least every ``N`` accesses instead of once per
    replay. The runner then slices the trace into ``N``-access segments and
    replays each through the *same* vectorized fast path (see
    ``MemoryManagementAlgorithm._run_intervaled``), so interval flushing
    costs one extra Python-level loop per segment, not per access —
    heartbeat telemetry (:mod:`repro.obs.live`) rides this. ``None`` (the
    default) keeps the one-flush-per-run behaviour.
    """

    __slots__ = ()

    #: class-level switch: False routes run() to the uninstrumented loop.
    enabled: bool = True

    #: True iff on_batch-level granularity suffices — keeps fast paths on.
    batch_safe: bool = False

    #: max accesses between on_batch flushes (None = one flush per run()).
    batch_interval: int | None = None

    def on_access(self, t: int, vpn: int) -> None:
        """A request for *vpn* was serviced (fires for every access)."""

    def on_tlb_miss(self, t: int, vpn: int) -> None:
        """The request for *vpn* missed in the TLB."""

    def on_io(self, t: int, vpn: int, pages: int) -> None:
        """Servicing *vpn* moved *pages* base pages into RAM."""

    def on_eviction(self, t: int, count: int) -> None:
        """The active set evicted *count* resident unit(s)."""

    def on_decoding_miss(self, t: int, vpn: int) -> None:
        """A covered, RAM-resident *vpn* decoded to −1 (Theorem 4 failure)."""

    def on_phase(self, t: int, name: str) -> None:
        """The driver crossed a phase boundary at absolute trace index *t*."""

    def on_batch(self, t0: int, vpns, ledger, before) -> None:
        """A batched replay serviced *vpns* starting at access index *t0*.

        Fires once per ``run()`` on batch-safe probes, after the batch
        completes. *ledger* is the live :class:`~repro.core.model.CostLedger`
        (post-batch) and *before* its :meth:`snapshot` tuple from just
        before the batch, so the batch's exact counter deltas are
        ``tuple(b - a for a, b in zip(before, ledger.snapshot()))``.
        *vpns* is the replayed trace slice (list or ndarray) — treat it as
        read-only.
        """


class NullProbe(Probe):
    """The default probe: observes nothing, costs nothing."""

    __slots__ = ()

    enabled = False


#: Shared default instance — ``mm.probe is NULL_PROBE`` means "not observed".
NULL_PROBE = NullProbe()


class TraceRecorder(Probe):
    """Capture typed events into a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Ring size: only the most recent *capacity* events are retained
        (``dropped`` counts the overflow). Per-kind ``counts`` are exact
        regardless of ring wrap.
    kinds:
        Optional whitelist of event kinds to record (default: all).
    """

    __slots__ = ("capacity", "counts", "dropped", "_buf", "_kinds")

    def __init__(
        self, capacity: int = 65536, kinds: Sequence[str] | None = None
    ) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        if kinds is not None:
            unknown = set(kinds) - set(EVENT_KINDS)
            if unknown:
                raise ValueError(f"unknown event kinds: {sorted(unknown)}")
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._buf: deque[Event] = deque(maxlen=self.capacity)
        self.counts: dict[str, int] = {k: 0 for k in EVENT_KINDS}
        self.dropped = 0

    # ------------------------------------------------------------- callbacks

    def on_access(self, t: int, vpn: int) -> None:
        self._push(Event("access", t, vpn=vpn))

    def on_tlb_miss(self, t: int, vpn: int) -> None:
        self._push(Event("tlb_miss", t, vpn=vpn))

    def on_io(self, t: int, vpn: int, pages: int) -> None:
        self._push(Event("io", t, vpn=vpn, pages=pages))

    def on_eviction(self, t: int, count: int) -> None:
        self._push(Event("eviction", t, pages=count))

    def on_decoding_miss(self, t: int, vpn: int) -> None:
        self._push(Event("decoding_miss", t, vpn=vpn))

    def on_phase(self, t: int, name: str) -> None:
        self._push(Event("phase", t, label=name))

    # ------------------------------------------------------------------- api

    def _push(self, event: Event) -> None:
        if self._kinds is not None and event.kind not in self._kinds:
            return
        self.counts[event.kind] += 1
        if len(self._buf) == self.capacity:
            self.dropped += 1
        self._buf.append(event)

    @property
    def total_events(self) -> int:
        """Events observed (recorded + dropped)."""
        return sum(self.counts.values())

    def events(self) -> list[Event]:
        """The retained events, oldest first."""
        return list(self._buf)

    def clear(self) -> None:
        """Drop the buffer and zero the counters."""
        self._buf.clear()
        self.counts = {k: 0 for k in EVENT_KINDS}
        self.dropped = 0

    def to_jsonl(self, path) -> Path:
        """Write the retained events as JSONL (one object per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for event in self._buf:
                fh.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
        return path


class MultiProbe(Probe):
    """Fan one event stream out to several probes (e.g. recorder + metrics).

    The composite is batch-safe only when *every* child is — a single
    per-access child forces the per-access path for the whole group, since
    events can only be derived once per replay. Its ``batch_interval`` is
    the smallest interval any child asks for (``None`` when no child sets
    one), so a heartbeat child keeps flushing even when combined with a
    plain sampling probe.
    """

    __slots__ = ("probes", "batch_safe", "batch_interval")

    def __init__(self, probes: Iterable[Probe]) -> None:
        self.probes = tuple(p for p in probes if p.enabled)
        self.batch_safe = bool(self.probes) and all(
            p.batch_safe for p in self.probes
        )
        intervals = [
            p.batch_interval for p in self.probes if p.batch_interval is not None
        ]
        self.batch_interval = min(intervals) if intervals else None

    def on_access(self, t: int, vpn: int) -> None:
        for p in self.probes:
            p.on_access(t, vpn)

    def on_tlb_miss(self, t: int, vpn: int) -> None:
        for p in self.probes:
            p.on_tlb_miss(t, vpn)

    def on_io(self, t: int, vpn: int, pages: int) -> None:
        for p in self.probes:
            p.on_io(t, vpn, pages)

    def on_eviction(self, t: int, count: int) -> None:
        for p in self.probes:
            p.on_eviction(t, count)

    def on_decoding_miss(self, t: int, vpn: int) -> None:
        for p in self.probes:
            p.on_decoding_miss(t, vpn)

    def on_phase(self, t: int, name: str) -> None:
        for p in self.probes:
            p.on_phase(t, name)

    def on_batch(self, t0: int, vpns, ledger, before) -> None:
        for p in self.probes:
            p.on_batch(t0, vpns, ledger, before)
