"""``repro report``: render observability artefacts for humans.

One renderer for every serialized artefact the toolchain produces:

* ``obs_snapshot`` JSON (:meth:`~repro.obs.snapshot.ObsSnapshot.as_dict`,
  standalone or embedded in a sweep payload) — exact counters, the
  ε-priced cost breakdown, unbiased sampling estimates, and one table per
  log₂ histogram;
* ``bench_sweep`` / ``bench_hotloop`` JSON (``repro bench``) — per-cell /
  per-component throughput, the probed-vs-unprobed ratio table, and the
  throughput trend against the committed baseline in ``--baseline-dir``;
* interval-metrics JSONL (``repro trace --metrics-out`` / ``repro fig1``)
  — the window table plus a per-task/per-phase cost attribution;
* telemetry spool JSONL (``repro fig1 --heartbeat-spool`` /
  :class:`~repro.obs.live.TelemetryBus`) — the ``repro top`` run summary
  plus a throughput-over-time timeline per worker.

The output is a terminal summary (aligned monospace tables) and,
optionally, a single self-contained HTML file (inline CSS, no external
assets) fit for a CI artifact. Rendering never recomputes simulation
results: everything shown is read from the artefacts, so the report is a
pure function of its inputs.

This module sits in ``obs`` and must not import ``bench``/``sim`` (they
import ``obs``); it therefore carries its own small table formatter.
"""

from __future__ import annotations

import html
import json
from pathlib import Path

from .attribution import ATTRIB_PREFIX, CAUSES, INTERF_PREFIX
from .hist import LogHistogram
from .live import RECORD_KINDS, aggregate
from .snapshot import SNAPSHOT_KIND, ObsSnapshot

__all__ = [
    "load_artifact",
    "build_report",
    "render_text",
    "render_html",
    "cost_breakdown",
]

#: percentiles shown in every histogram summary.
_PERCENTILES = (0.50, 0.90, 0.99)

#: payload kinds this renderer understands.
_BENCH_KINDS = ("bench_sweep", "bench_hotloop")


# ------------------------------------------------------------------ loading


def load_artifact(path) -> dict:
    """Read one input file and classify it.

    ``*.jsonl`` → ``{"kind": "metrics_jsonl", "rows": [...]}``, or
    ``telemetry_jsonl`` when the rows are telemetry-spool records (their
    ``kind`` field is one of :data:`~repro.obs.live.RECORD_KINDS`), or
    ``bench_history_jsonl`` when they are ``tools/check_bench.py
    --append-history`` trajectory records; ``*.json`` must carry a known
    ``kind`` (``bench_sweep``, ``bench_hotloop``, ``obs_snapshot``). The
    returned dict always has ``kind`` and ``path``.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        rows = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        if rows and all(
            isinstance(r, dict) and r.get("kind") in RECORD_KINDS
            for r in rows
        ):
            return {"kind": "telemetry_jsonl", "rows": rows,
                    "path": str(path)}
        if rows and all(
            isinstance(r, dict) and r.get("kind") == "bench_history"
            for r in rows
        ):
            return {"kind": "bench_history_jsonl", "rows": rows,
                    "path": str(path)}
        return {"kind": "metrics_jsonl", "rows": rows, "path": str(path)}
    payload = json.loads(path.read_text())
    kind = payload.get("kind")
    if kind not in (*_BENCH_KINDS, SNAPSHOT_KIND):
        raise ValueError(
            f"{path}: unknown payload kind {kind!r} (expected one of "
            f"{(*_BENCH_KINDS, SNAPSHOT_KIND)} or a .jsonl metrics stream)"
        )
    payload["path"] = str(path)
    return payload


# ------------------------------------------------------------ section build


def cost_breakdown(counters: dict, epsilon: float) -> list[dict]:
    """The paper's cost split at ε: ``C = ios + ε·(tlb + decoding misses)``.

    Matches :class:`~repro.obs.metrics.IntervalMetrics` pricing, so the
    totals here agree with the summed ``cost`` column of a metrics stream
    taken at the same ε.
    """
    ios = counters.get("ios", 0)
    misses = counters.get("tlb_misses", 0) + counters.get("decoding_misses", 0)
    translation = epsilon * misses
    total = ios + translation
    return [
        {"component": "paging (IOs)", "events": ios, "cost": float(ios),
         "share": ios / total if total else 0.0},
        {"component": f"translation (eps={epsilon:g})", "events": misses,
         "cost": translation, "share": translation / total if total else 0.0},
        {"component": "total", "events": ios + misses, "cost": total,
         "share": 1.0 if total else 0.0},
    ]


def _hist_tables(hists: dict) -> list[tuple[str, list[dict]]]:
    """One summary row + one bucket table per histogram, sorted by name."""
    tables = []
    summary = []
    for name in sorted(hists):
        h = hists[name]
        if isinstance(h, dict):
            h = LogHistogram.from_dict(h)
        row = {"histogram": name, "n": h.n, "mean": round(h.mean, 2),
               "min": h.min, "max": h.max}
        for q in _PERCENTILES:
            row[f"p{int(q * 100)}"] = h.percentile(q)
        summary.append(row)
        if h.n:
            tables.append((f"histogram: {name}", h.rows()))
    if summary:
        tables.insert(0, ("histogram summary", summary))
    return tables


def _attribution(rows: list[dict]) -> list[dict] | None:
    """Group metrics rows by their tag (``task`` / ``h``) and sum costs."""
    key = next((k for k in ("task", "h") if rows and k in rows[0]), None)
    if key is None:
        return None
    groups: dict = {}
    for row in rows:
        g = groups.setdefault(row.get(key), {
            "windows": 0, "accesses": 0, "ios": 0, "tlb_misses": 0, "cost": 0.0
        })
        g["windows"] += 1
        for field in ("accesses", "ios", "tlb_misses", "cost"):
            g[field] += row.get(field, 0)
    total_cost = sum(g["cost"] for g in groups.values()) or 1.0
    return [
        {key: tag, **g, "cost": round(g["cost"], 3),
         "cost_share": g["cost"] / total_cost}
        for tag, g in sorted(groups.items(), key=lambda kv: str(kv[0]))
    ]


def _subsample(rows: list, max_rows: int = 24) -> list:
    if len(rows) <= max_rows:
        return list(rows)
    step = -(-len(rows) // max_rows)
    return rows[::step]


def _attrib_tables(counters: dict) -> list[tuple[str, list[dict]]]:
    """Miss-attribution tables for any counter dict carrying ``attrib:*`` /
    ``interf:*`` keys (from an :class:`~repro.obs.attribution.AttributionProbe`
    folded into a snapshot): the per-family cause breakdown and the
    sufferer × evictor interference heatmap (``share`` renders as an inline
    bar in HTML, so the hottest tenant pairs jump out)."""
    families: dict[str, dict[str, int]] = {}
    matrix: dict[tuple[int, int], int] = {}
    for key, value in counters.items():
        if key.startswith(ATTRIB_PREFIX):
            fam, _, cause = key[len(ATTRIB_PREFIX):].partition(":")
            families.setdefault(fam, {})[cause] = value
        elif key.startswith(INTERF_PREFIX):
            suf, _, ev = key[len(INTERF_PREFIX):].partition(":")
            matrix[(int(suf), int(ev))] = value
    tables: list[tuple[str, list[dict]]] = []
    if families:
        rows = []
        for fam in sorted(families):
            causes = families[fam]
            total = sum(causes.values()) or 1
            for cause in CAUSES:
                n = causes.get(cause, 0)
                if n:
                    rows.append({"family": fam, "cause": cause,
                                 "misses": n, "share": n / total})
        tables.append(("miss attribution (family x cause)", rows))
    if matrix:
        total = sum(matrix.values()) or 1
        rows = [
            {"sufferer": f"asid {suf}", "evictor": f"asid {ev}",
             "misses": n, "share": n / total}
            for (suf, ev), n in sorted(
                matrix.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        tables.append((
            "interference heatmap (non-cold misses, sufferer x evictor)",
            rows,
        ))
    return tables


def _snapshot_sections(payload: dict, epsilon: float, title: str) -> list[dict]:
    """Sections for one obs_snapshot payload (standalone or embedded)."""
    snap = ObsSnapshot.from_dict(payload)
    section = {"title": title, "tables": [], "notes": []}
    section["notes"].append(
        f"{snap.meta.get('runs', 0)} run(s) merged; "
        + ", ".join(f"{k}={v}" for k, v in sorted(snap.meta.items())
                    if k != "runs")
    )
    section["tables"].append((
        "exact counters",
        [{"counter": k, "value": snap.counters[k]}
         for k in sorted(snap.counters)
         # attribution counters get their own tables below
         if not k.startswith((ATTRIB_PREFIX, INTERF_PREFIX))],
    ))
    section["tables"].append((
        f"cost breakdown at eps={epsilon:g}",
        cost_breakdown(snap.counters, epsilon),
    ))
    section["tables"].extend(_attrib_tables(snap.counters))
    estimates = snap.estimates()
    if estimates:
        section["tables"].append((
            "sampling estimates (unbiased scale-ups)",
            [{"estimate": k, "value": round(v, 1)}
             for k, v in sorted(estimates.items())],
        ))
    section["tables"].extend(_hist_tables(snap.hists))
    sections = [section]
    if snap.rows:
        sections.extend(_metrics_sections(snap.rows, f"{title} — metrics"))
    return sections


def _metrics_sections(rows: list[dict], title: str) -> list[dict]:
    section = {"title": title, "tables": [], "notes": []}
    attribution = _attribution(rows)
    if attribution is not None:
        section["tables"].append(("per-task cost attribution", attribution))
    shown = _subsample(rows)
    if len(shown) < len(rows):
        section["notes"].append(
            f"window table subsampled: {len(shown)} of {len(rows)} rows shown"
        )
    section["tables"].append(("windows", shown))
    return [section]


def _telemetry_sections(rows: list[dict], title: str) -> list[dict]:
    """Run summary + per-worker throughput timeline for a telemetry spool.

    Mirrors ``repro top --once`` (same :func:`~repro.obs.live.aggregate`
    pass over the records), then adds what a one-shot dashboard cannot
    show: throughput over time, one timeline table per worker, built from
    the heartbeat stream. Wall clocks are rebased to the spool's first
    record so timelines from different workers share an origin.
    """
    section = {"title": title, "tables": [], "notes": []}
    summary = aggregate(rows)
    totals = summary["totals"]
    # totals["acc_s"] sums *running* tasks only; a finished spool reads 0
    # there, so fall back to overall accesses / elapsed.
    rate = totals["acc_s"] or (
        totals["counters"].get("accesses", 0) / totals["elapsed_s"]
        if totals["elapsed_s"]
        else 0.0
    )
    section["notes"].append(
        f"{len(summary['tasks'])} task(s), {len(summary['workers'])} "
        f"worker(s); aggregate {rate / 1e3:.1f} kacc/s over "
        f"{totals['elapsed_s']:.2f}s"
    )
    if summary["tasks"]:
        section["tables"].append((
            "tasks",
            [{k: t.get(k) for k in
              ("task", "worker", "state", "done", "total", "acc_s")}
             for t in summary["tasks"]],
        ))
    if totals["counters"]:
        section["tables"].append((
            "aggregate counters",
            [{"counter": k, "value": totals["counters"][k]}
             for k in sorted(totals["counters"])],
        ))
    heartbeats = [r for r in rows if r.get("kind") == "heartbeat"]
    if heartbeats:
        t0 = min(
            r["wall"] for r in rows if isinstance(r.get("wall"), (int, float))
        )
        by_worker: dict = {}
        for r in heartbeats:
            by_worker.setdefault(str(r.get("worker")), []).append(r)
        for worker in sorted(by_worker):
            timeline = [
                {"t_s": round(r["wall"] - t0, 3), "task": r.get("task"),
                 "done": r.get("done"),
                 "kacc_per_s": round(r.get("acc_s", 0.0) / 1e3, 1)}
                for r in by_worker[worker]
            ]
            shown = _subsample(timeline)
            if len(shown) < len(timeline):
                section["notes"].append(
                    f"worker {worker} timeline subsampled: "
                    f"{len(shown)} of {len(timeline)} heartbeats shown"
                )
            section["tables"].append((
                f"throughput timeline — worker {worker}", shown
            ))
    for label in ("stalls", "retries"):
        if summary[label]:
            section["tables"].append((label, summary[label]))
    return [section]


def _trend_note(payload: dict, baseline_dir, field: str) -> str | None:
    """Throughput trend vs the committed baseline of the same kind."""
    if baseline_dir is None:
        return None
    name = {"bench_sweep": "BENCH_sweep.json",
            "bench_hotloop": "BENCH_hotloop.json"}[payload["kind"]]
    base_path = Path(baseline_dir) / name
    if not base_path.exists():
        return f"no baseline at {base_path}; trend skipped"
    try:
        baseline = json.loads(base_path.read_text())
    except (ValueError, OSError) as exc:
        return f"baseline {base_path} unreadable ({exc}); trend skipped"
    if baseline.get("kind") != payload["kind"]:
        return f"baseline {base_path} is a different kind; trend skipped"
    old, new = baseline.get(field, 0.0), payload.get(field, 0.0)
    if not old:
        return f"baseline {base_path} has no {field}; trend skipped"
    return (
        f"throughput trend vs {base_path}: "
        f"{old / 1e3:.1f} -> {new / 1e3:.1f} kops/s ({new / old - 1:+.1%})"
    )


def _sweep_sections(payload: dict, epsilon: float, baseline_dir) -> list[dict]:
    section = {"title": f"bench sweep — {payload.get('path', '')}",
               "tables": [], "notes": []}
    machine = payload.get("machine", {})
    section["notes"].append(
        f"config: {json.dumps(payload.get('config', {}), sort_keys=True)}"
    )
    section["notes"].append(
        f"machine: python {machine.get('python')}, numpy "
        f"{machine.get('numpy')}, {machine.get('cpu_count')} CPUs; "
        f"jobs={payload.get('jobs')}"
    )
    section["notes"].append(
        f"end-to-end: {payload.get('total_accesses', 0)} accesses at "
        f"{payload.get('accesses_per_s', 0.0) / 1e3:.1f} kacc/s"
    )
    trend = _trend_note(payload, baseline_dir, "accesses_per_s")
    if trend:
        section["notes"].append(trend)
    columns = ("h", "algorithm", "accesses", "ios", "tlb_misses",
               "tlb_hits", "decoding_misses")
    section["tables"].append((
        "sweep cells",
        [{c: row.get(c) for c in columns} for row in payload.get("rows", [])],
    ))
    sections = [section]
    if "snapshot" in payload:
        sections.extend(_snapshot_sections(
            payload["snapshot"], epsilon,
            "merged sweep snapshot (SamplingProbe)",
        ))
    return sections


def _hotloop_sections(payload: dict, baseline_dir) -> list[dict]:
    section = {"title": f"bench hotloop — {payload.get('path', '')}",
               "tables": [], "notes": []}
    section["notes"].append(
        f"geomean {payload.get('geomean_ops_per_s', 0.0) / 1e3:.1f} kops/s "
        f"over {len(payload.get('rows', []))} components"
    )
    trend = _trend_note(payload, baseline_dir, "geomean_ops_per_s")
    if trend:
        section["notes"].append(trend)
    rows = payload.get("rows", [])
    section["tables"].append((
        "components",
        [{"component": r["component"],
          "kops_per_s": round(r["ops_per_s"] / 1e3, 1)} for r in rows],
    ))
    byname = {r["component"]: r for r in rows}
    probed = []
    for name, row in sorted(byname.items()):
        prefix = next(
            (p for p in ("mm+sampled:", "mm+online:", "mm+attrib:")
             if name.startswith(p)),
            None,
        )
        if prefix is None:
            continue
        twin = byname.get(name.replace(prefix, "mm:", 1))
        if twin is None:
            continue
        probed.append({
            "mm": name.removeprefix(prefix),
            "probe": prefix[len("mm+"):-1],
            "unprobed_kops_per_s": round(twin["ops_per_s"] / 1e3, 1),
            "probed_kops_per_s": round(row["ops_per_s"] / 1e3, 1),
            "ratio": round(row["ops_per_s"] / twin["ops_per_s"], 3),
            "counters_equal": row.get("counters") == twin.get("counters"),
        })
    if probed:
        section["tables"].append(("probe overhead", probed))
    return [section]


def _history_sections(rows: list[dict], title: str) -> list[dict]:
    """Bench-trajectory sections for a ``--append-history`` JSONL stream:
    one geomean-over-time table (``rel`` is each record's geomean relative
    to the stream's best, rendered as an inline bar in HTML — the plot)
    plus the per-record deltas."""
    section = {"title": title, "tables": [], "notes": []}
    records = [r for r in rows if isinstance(r.get("geomean"), (int, float))]
    if not records:
        section["notes"].append("no bench_history records with a geomean")
        return [section]
    peak = max(r["geomean"] for r in records) or 1.0
    first = records[0]["geomean"] or 1.0
    table = []
    prev = None
    for r in records:
        g = r["geomean"]
        table.append({
            "ts": r.get("ts", ""),
            "commit": r.get("commit", ""),
            "kops_per_s": round(g / 1e3, 1),
            "vs_prev": (g / prev - 1) if prev else 0.0,
            "vs_first": g / first - 1,
            "share": g / peak,  # the trajectory "plot": bar vs best-ever
        })
        prev = g
    section["notes"].append(
        f"{len(records)} gate-passing record(s); best "
        f"{peak / 1e3:.1f} kops/s, latest "
        f"{records[-1]['geomean'] / 1e3:.1f} kops/s "
        f"({records[-1]['geomean'] / peak - 1:+.1%} vs best)"
    )
    shown = _subsample(table, 40)
    if len(shown) < len(table):
        section["notes"].append(
            f"trajectory subsampled: {len(shown)} of {len(table)} records shown"
        )
    section["tables"].append(("hotloop geomean trajectory", shown))
    return [section]


def build_report(
    artifacts,
    *,
    epsilon: float = 0.01,
    baseline_dir=None,
) -> list[dict]:
    """Sections (``{"title", "notes", "tables"}``) for *artifacts*.

    *artifacts* are dicts from :func:`load_artifact`; *epsilon* prices the
    cost breakdown; *baseline_dir* enables the throughput-trend notes on
    bench payloads.
    """
    sections: list[dict] = []
    for payload in artifacts:
        kind = payload["kind"]
        if kind == SNAPSHOT_KIND:
            sections.extend(_snapshot_sections(
                payload, epsilon, f"snapshot — {payload.get('path', '')}"
            ))
        elif kind == "bench_sweep":
            sections.extend(_sweep_sections(payload, epsilon, baseline_dir))
        elif kind == "bench_hotloop":
            sections.extend(_hotloop_sections(payload, baseline_dir))
        elif kind == "telemetry_jsonl":
            sections.extend(_telemetry_sections(
                payload["rows"], f"telemetry — {payload.get('path', '')}"
            ))
        elif kind == "bench_history_jsonl":
            sections.extend(_history_sections(
                payload["rows"], f"bench history — {payload.get('path', '')}"
            ))
        else:  # metrics_jsonl
            sections.extend(_metrics_sections(
                payload["rows"], f"metrics — {payload.get('path', '')}"
            ))
    return sections


# --------------------------------------------------------------- rendering


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    if value is None:
        return ""
    return str(value)


def _table(rows, columns=None) -> str:
    """Aligned monospace table (local twin of ``bench.format_table`` —
    ``obs`` cannot import ``bench`` without a cycle)."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(r[i].rjust(widths[i]) for i in range(len(columns)))
        for r in cells
    )
    return f"{header}\n{sep}\n{body}"


def render_text(sections: list[dict]) -> str:
    """The terminal summary: every section, notes then tables."""
    parts = []
    for section in sections:
        block = [f"== {section['title']} =="]
        block.extend(f"  {note}" for note in section["notes"])
        for subtitle, rows in section["tables"]:
            block.append(f"\n-- {subtitle} --")
            block.append(_table(rows))
        parts.append("\n".join(block))
    return "\n\n".join(parts) if parts else "(nothing to report)"


_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; padding: 0 1rem; color: #1a2433; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2.5rem;
     border-bottom: 2px solid #d7dde6; padding-bottom: .3rem; }
h3 { font-size: .95rem; margin-bottom: .3rem; color: #40506a; }
p.note { margin: .15rem 0; color: #40506a; font-size: .9rem; }
table { border-collapse: collapse; margin: .4rem 0 1.2rem; }
th, td { border: 1px solid #d7dde6; padding: .25rem .6rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eef1f6; } td:first-child, th:first-child
{ text-align: left; }
td .bar { display: inline-block; height: .6rem; background: #6b8fc9;
          vertical-align: baseline; }
"""


def _html_cell(column: str, value) -> str:
    text = html.escape(_fmt(value))
    # fraction columns double as inline bars, HDR-viewer style
    if column in ("share", "cum_frac", "cost_share") and isinstance(
        value, (int, float)
    ):
        width = max(0.0, min(1.0, float(value))) * 7.0
        return f'<td><span class="bar" style="width:{width:.2f}rem"></span> {text}</td>'
    return f"<td>{text}</td>"


def render_html(sections: list[dict], *, title: str = "repro report") -> str:
    """One self-contained HTML document (inline CSS, no external assets)."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head>",
        f"<body><h1>{html.escape(title)}</h1>",
    ]
    for section in sections:
        parts.append(f"<h2>{html.escape(section['title'])}</h2>")
        for note in section["notes"]:
            parts.append(f"<p class='note'>{html.escape(note)}</p>")
        for subtitle, rows in section["tables"]:
            parts.append(f"<h3>{html.escape(subtitle)}</h3>")
            rows = list(rows)
            if not rows:
                parts.append("<p class='note'>(no rows)</p>")
                continue
            columns = list(rows[0].keys())
            parts.append("<table><tr>")
            parts.extend(f"<th>{html.escape(str(c))}</th>" for c in columns)
            parts.append("</tr>")
            for row in rows:
                parts.append("<tr>")
                parts.extend(_html_cell(c, row.get(c)) for c in columns)
                parts.append("</tr>")
            parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)
