"""Wall-clock run profiling: timers, a ``@timed`` decorator, and throughput.

``time.perf_counter`` based, so results are monotonic and sub-microsecond;
nothing here touches the simulated cost model — this measures the
*simulator itself* (accesses/second per MM algorithm and per sweep point),
the number the ROADMAP's hot-path work optimizes.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from time import perf_counter

__all__ = [
    "Timer",
    "TimerStats",
    "ProfileRegistry",
    "PROFILE",
    "timed",
    "accesses_per_second",
]


class Timer:
    """Context-manager stopwatch; reusable (``elapsed`` accumulates).

    >>> with Timer() as t:
    ...     work()
    >>> t.elapsed  # seconds
    """

    __slots__ = ("elapsed", "_t0")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._t0: float | None = None

    def __enter__(self) -> "Timer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += perf_counter() - self._t0
        self._t0 = None


@dataclass(slots=True)
class TimerStats:
    """Accumulated timings of one named code path."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    min_s: float = field(default=float("inf"))
    max_s: float = 0.0

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def as_row(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.calls else 0.0,
            "max_s": self.max_s,
        }


class ProfileRegistry:
    """Named :class:`TimerStats`, shared by every ``@timed`` call site."""

    __slots__ = ("stats",)

    def __init__(self) -> None:
        self.stats: dict[str, TimerStats] = {}

    def record(self, name: str, seconds: float) -> None:
        stats = self.stats.get(name)
        if stats is None:
            stats = self.stats[name] = TimerStats(name)
        stats.record(seconds)

    def rows(self) -> list[dict]:
        """Flat rows sorted by total time, hottest first."""
        return [
            s.as_row()
            for s in sorted(self.stats.values(), key=lambda s: -s.total_s)
        ]

    def reset(self) -> None:
        self.stats.clear()


#: Process-wide default registry (``repro.obs.PROFILE.rows()`` to inspect).
PROFILE = ProfileRegistry()


def timed(fn=None, *, name: str | None = None, registry: ProfileRegistry = PROFILE):
    """Decorator recording each call's wall time under *name* (default:
    the function's qualified name) in *registry*.

    Usable bare (``@timed``) or configured (``@timed(name="sweep")``).
    """

    def deco(func):
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            t0 = perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                registry.record(label, perf_counter() - t0)

        wrapper.profile_name = label
        return wrapper

    return deco if fn is None else deco(fn)


def accesses_per_second(accesses: int, seconds: float) -> float:
    """Throughput with a zero-duration guard (0.0 when nothing ran)."""
    return accesses / seconds if seconds > 0 and accesses else 0.0
