"""Interval time-series metrics from :class:`~repro.core.model.CostLedger`
deltas.

The paper's experiments report one (IOs, TLB misses) pair per run, but a
single scalar hides *when* the cost is paid: a workload whose miss rate
spikes during a phase change looks identical to one that misses uniformly.
:class:`IntervalMetrics` closes a window every ``every`` accesses and
records the ledger's *delta* over the window — IO rate, TLB miss rate,
working-set size, and the ε-priced cost — so Figure-1-style runs emit
curves instead of two scalars (cf. the time-resolved breakdowns that
motivate Victima, arXiv:2310.04158).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .._util import check_positive_int
from ..core import ATCostModel, CostLedger
from .events import Probe

__all__ = ["IntervalMetrics", "METRICS_FIELDS"]

#: Column order of one window row (the JSONL schema).
METRICS_FIELDS: tuple[str, ...] = (
    "window",
    "start",
    "end",
    "accesses",
    "ios",
    "tlb_misses",
    "tlb_hits",
    "decoding_misses",
    "io_rate",
    "tlb_miss_rate",
    "working_set",
    "cost",
    "wall",
)


class IntervalMetrics(Probe):
    """Per-window time series collected while a probe-aware runner replays.

    Use via ``simulate(mm, trace, metrics=IntervalMetrics(every=1000))`` or
    the ``metrics_every=`` convenience on the sweep/bench entry points; the
    driver binds the collector to the measurement-phase ledger and
    finalizes the partial tail window.

    Parameters
    ----------
    every:
        Window length in accesses. A trace of ``n`` measured accesses
        yields ``ceil(n / every)`` windows; the last may be short.
    epsilon:
        ε used to price each window's cost (``C = ios + ε·(misses + dmisses)``).
    """

    __slots__ = ("every", "model", "windows", "_ledger", "_last", "_n", "_pages")

    def __init__(self, every: int = 1000, epsilon: float = 0.01) -> None:
        self.every = check_positive_int(every, "every")
        self.model = ATCostModel(epsilon=epsilon)
        #: closed windows, oldest first (one dict per window; see METRICS_FIELDS).
        self.windows: list[dict] = []
        self._ledger: CostLedger | None = None
        self._last: tuple = ()
        self._n = 0
        self._pages: set[int] = set()

    # ------------------------------------------------------------- lifecycle

    def bind(self, ledger: CostLedger) -> None:
        """Start observing *ledger* (call at the measure-phase boundary);
        previously closed windows are kept, so one collector can span runs."""
        self._ledger = ledger
        self._last = ledger.snapshot()
        self._n = 0
        self._pages.clear()

    def finalize(self) -> None:
        """Close the partial tail window, if any accesses are pending."""
        if self._ledger is not None and self._n % self.every:
            self._close()

    # ------------------------------------------------------------- callbacks

    def on_access(self, t: int, vpn: int) -> None:
        if self._ledger is None:
            raise RuntimeError("IntervalMetrics.bind(ledger) must run first")
        self._pages.add(vpn)
        self._n += 1
        if self._n % self.every == 0:
            self._close()

    # ------------------------------------------------------------- internals

    def _close(self) -> None:
        snap = self._ledger.snapshot()
        accesses, ios, misses, hits, dmisses, _ = (
            b - a for a, b in zip(self._last, snap)
        )
        if accesses == 0:
            # nothing happened since the last close (e.g. repeated
            # finalize()); never emit empty windows
            return
        translated = hits + misses
        self.windows.append(
            {
                "window": len(self.windows),
                "start": self._n - accesses,
                "end": self._n,
                "accesses": accesses,
                "ios": ios,
                "tlb_misses": misses,
                "tlb_hits": hits,
                "decoding_misses": dmisses,
                "io_rate": ios / accesses if accesses else 0.0,
                "tlb_miss_rate": misses / translated if translated else 0.0,
                "working_set": len(self._pages),
                "cost": self.model.io_cost * ios
                + self.model.epsilon * (misses + dmisses),
                # monotonic close time: lets live streams and merged
                # cross-worker snapshots be aligned on one time axis
                # (CLOCK_MONOTONIC is system-wide, so stamps from
                # different worker processes are comparable)
                "wall": time.monotonic(),
            }
        )
        self._last = snap
        self._pages.clear()

    # ------------------------------------------------------------------- api

    def rows(self) -> list[dict]:
        """The closed windows as flat dicts (shared column order)."""
        return list(self.windows)

    def series(self, field: str) -> list:
        """One column across windows, e.g. ``series("tlb_miss_rate")``."""
        if field not in METRICS_FIELDS:
            raise KeyError(f"unknown metrics field {field!r}; see METRICS_FIELDS")
        return [w[field] for w in self.windows]

    def to_jsonl(self, path) -> Path:
        """Write one JSON object per window (the metrics JSONL stream)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for w in self.windows:
                fh.write(json.dumps(w, sort_keys=True) + "\n")
        return path
