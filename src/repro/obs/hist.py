"""Log₂-bucketed counter histograms (HDR-style): record, merge, percentile.

The address-translation cost model lives on *distributions*, not just
totals — Theorems 1–2 bound tail bucket loads, and the paper's
amplification story is about IO burst sizes, not the IO sum. A
:class:`LogHistogram` keeps one counter per power-of-two bucket
(``0``, ``1``, ``2–3``, ``4–7``, …), so recording is two integer ops, the
memory footprint is ~64 counters regardless of stream length, and two
histograms recorded on disjoint shards merge into exactly the histogram of
the combined stream — the property the parallel snapshot reduction
(:mod:`repro.obs.snapshot`) is built on.

Accuracy: any reported quantile is exact to within its bucket (a factor of
two), which is the right resolution for the log-scale quantities we track
(inter-miss gaps, reuse distances, IO/eviction batch sizes, bucket loads).
The count ``n``, ``sum``, ``min`` and ``max`` are exact.
"""

from __future__ import annotations

__all__ = ["LogHistogram", "bucket_index", "bucket_bounds", "bucket_label"]


def bucket_index(value: int) -> int:
    """Bucket holding *value*: 0 → 0, 1 → 1, 2–3 → 2, 4–7 → 3, …"""
    if value < 0:
        raise ValueError(f"LogHistogram records non-negative ints, got {value}")
    return value.bit_length()


def bucket_bounds(index: int) -> tuple[int, int]:
    """Inclusive ``(lo, hi)`` value range of bucket *index*."""
    if index <= 0:
        return (0, 0)
    return (1 << (index - 1), (1 << index) - 1)


def bucket_label(index: int) -> str:
    """Human-readable range label for bucket *index* (``"4-7"``)."""
    lo, hi = bucket_bounds(index)
    return str(lo) if lo == hi else f"{lo}-{hi}"


class LogHistogram:
    """A mergeable histogram of non-negative integers with log₂ buckets.

    ``record`` is O(1) and allocation-free once a bucket exists; ``merge``
    is bucket-wise addition, hence associative and commutative
    (``merge(a, merge(b, c)) == merge(merge(a, b), c)``), which the fuzz
    tests pin. Equality compares the full observable state.
    """

    __slots__ = ("counts", "n", "total", "min", "max")

    def __init__(self) -> None:
        #: sparse bucket → count mapping (only non-empty buckets appear).
        self.counts: dict[int, int] = {}
        #: number of recorded values.
        self.n = 0
        #: exact sum of recorded values.
        self.total = 0
        #: exact extremes (``None`` while empty).
        self.min: int | None = None
        self.max: int | None = None

    # ------------------------------------------------------------- recording

    def record(self, value: int, count: int = 1) -> None:
        """Record *value* (``count`` times)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        b = bucket_index(value)
        self.counts[b] = self.counts.get(b, 0) + count
        self.n += count
        self.total += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values) -> None:
        """Record every value in *values* (ints; e.g. allocator bucket loads)."""
        for v in values:
            self.record(int(v))

    # --------------------------------------------------------------- merging

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """A new histogram equal to recording both input streams."""
        out = LogHistogram()
        out.counts = dict(self.counts)
        for b, c in other.counts.items():
            out.counts[b] = out.counts.get(b, 0) + c
        out.n = self.n + other.n
        out.total = self.total + other.total
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        out.min = min(mins) if mins else None
        out.max = max(maxs) if maxs else None
        return out

    # ------------------------------------------------------------- summaries

    def percentile(self, q: float) -> int | None:
        """Smallest bucket upper bound covering fraction *q* of the mass.

        Exact to within the bucket (factor of two); ``None`` while empty.
        The reported value is clamped to the exact ``[min, max]`` range
        (so ``percentile(1.0)`` is exactly ``max``).
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.n == 0:
            return None
        need = max(1, -(-q * self.n // 1))  # ceil(q * n), at least one value
        seen = 0
        for b in sorted(self.counts):
            seen += self.counts[b]
            if seen >= need:
                hi = bucket_bounds(b)[1]
                return max(self.min, min(self.max, hi))
        return self.max  # pragma: no cover - q <= 1 always lands above

    @property
    def mean(self) -> float:
        """Exact mean of the recorded values (0.0 while empty)."""
        return self.total / self.n if self.n else 0.0

    def rows(self) -> list[dict]:
        """One dict per non-empty bucket, ascending — the report table."""
        out = []
        seen = 0
        for b in sorted(self.counts):
            c = self.counts[b]
            seen += c
            out.append(
                {
                    "bucket": bucket_label(b),
                    "count": c,
                    "cum_frac": seen / self.n,
                }
            )
        return out

    # ---------------------------------------------------------- serialization

    def as_dict(self) -> dict:
        """JSON-ready state (bucket keys become strings)."""
        return {
            "counts": {str(b): c for b, c in sorted(self.counts.items())},
            "n": self.n,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LogHistogram":
        """Inverse of :meth:`as_dict`."""
        out = cls()
        out.counts = {int(b): int(c) for b, c in payload["counts"].items()}
        out.n = int(payload["n"])
        out.total = int(payload["total"])
        out.min = None if payload["min"] is None else int(payload["min"])
        out.max = None if payload["max"] is None else int(payload["max"])
        return out

    # ----------------------------------------------------------------- dunder

    def __eq__(self, other) -> bool:
        if not isinstance(other, LogHistogram):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.n == other.n
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
        )

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.n == 0:
            return "<LogHistogram empty>"
        return (
            f"<LogHistogram n={self.n} min={self.min} max={self.max} "
            f"p50={self.percentile(0.5)} p99={self.percentile(0.99)}>"
        )
