"""Miss attribution: eviction provenance and a per-tenant cause taxonomy.

The cost model charges every TLB/page miss uniformly, but tuning decisions
(tenant-aware replacement, THP policy knobs, second-level translation
caches) hinge on *why* each miss happened and *who caused it*. This module
answers both with bounded ghost lists: every eviction or invalidation in a
:class:`~repro.paging.cache.PageCache` or :class:`~repro.tlb.TLB` leaves a
tag ``(reason, evictor page)`` behind for its victim, and the next miss on
that key consumes the tag and classifies itself:

==================  ==========================================================
``cold``            never seen before (or the tag aged out of the ghost list)
``capacity_self``   evicted by demand pressure from the *same* address space
``capacity_cross``  evicted by demand pressure from *another* tenant
``shootdown``       invalidated by an exit/explicit TLB shootdown
``remap``           invalidated by a φ-change (``remap_every``) shootdown
``promotion_flush``  flushed by a THP base→huge promotion
==================  ==========================================================

:class:`AttributionProbe` owns the counters: ``counts`` keyed by
``(asid, family, cause)`` where *family* names the structure (``tlb`` /
``ram``), and an ``asid × asid`` interference ``matrix`` counting, for every
non-cold miss, (sufferer, evictor) pairs. Both are exact — on the golden
streams the per-cause counts for the ``tlb`` family sum bit-identically to
``ledger.tlb_misses`` — and both fold into :class:`~repro.obs.ObsSnapshot`
counters (``attrib:{family}:{cause}`` / ``interf:{sufferer}:{evictor}``)
whose merge is associative, so sharded runs reduce bit-identically.

The probe is ``batch_safe``: classification rides the structures' own miss
paths, not per-access probe events, so the vectorized MM fast paths stay
enabled. The array engine replays provenance sparsely from its kernels'
eviction death positions for the base-page/physical-huge family and
silently falls back to the object engine elsewhere (pinned by a contract
test).

ASIDs are derived from the page striding of
:meth:`~repro.mmu.base.MemoryManagementAlgorithm.bind_asid_space`: under a
power-of-two stride both the sufferer and the evictor of a miss follow from
cache keys alone (``page // stride``), so provenance needs no per-access
ASID plumbing. Unstrided (single-tenant) machines attribute everything to
ASID 0.
"""

from __future__ import annotations

from .._util import check_positive_int
from .events import Probe

__all__ = [
    "CAUSES",
    "REASON_CAPACITY",
    "REASON_SHOOTDOWN",
    "REASON_REMAP",
    "REASON_PROMOTION",
    "ATTRIB_PREFIX",
    "INTERF_PREFIX",
    "AttributionProbe",
]

#: every cause a miss can be assigned, in reporting order.
CAUSES: tuple[str, ...] = (
    "cold",
    "capacity_self",
    "capacity_cross",
    "shootdown",
    "remap",
    "promotion_flush",
)

#: provenance reason codes recorded in ghost tags.
REASON_CAPACITY = 0
REASON_SHOOTDOWN = 1
REASON_REMAP = 2
REASON_PROMOTION = 3

#: non-capacity reasons map straight to their cause name.
_REASON_CAUSE = {
    REASON_SHOOTDOWN: "shootdown",
    REASON_REMAP: "remap",
    REASON_PROMOTION: "promotion_flush",
}

#: flat-counter key prefixes used in ObsSnapshot / telemetry payloads.
ATTRIB_PREFIX = "attrib:"
INTERF_PREFIX = "interf:"

#: shared single-tenant capacity tag (the evictor page is unused at stride 0).
_CAPACITY_TAG = (REASON_CAPACITY, 0)

#: the single-tenant interference cell (every pair is ASID 0 → ASID 0).
_ORIGIN = (0, 0)


class _SiteGhost:
    """Bounded ghost list attached to one cache structure (``_ghost`` slot).

    The owning structure calls :meth:`miss` on every demand miss (before
    any eviction of the same access), :meth:`evicted` after every capacity
    eviction, and the machine's shootdown/promotion paths call
    :meth:`invalidated` for each dropped entry. Tags are FIFO-bounded at
    *cap* entries, so a ghost list can never outgrow a long run — an aged
    -out tag just degrades that miss to ``cold``.
    """

    __slots__ = (
        "probe",
        "family",
        "page_of",
        "cap",
        "_tags",
        "_pop",
        "_counts",
        "_matrix",
        "_cold_key",
        "_single_keys",
    )

    def __init__(self, probe: "AttributionProbe", family, page_of, cap) -> None:
        self.probe = probe
        self.family = family
        self.page_of = page_of
        self.cap = cap
        self._tags: dict = {}
        # bound once: the tag dict is never replaced, and the probe's
        # tally dicts are cleared in place by reset(), so the hot hooks
        # skip the attribute hops and method binding per event
        self._pop = self._tags.pop
        self._counts = probe.counts
        self._matrix = probe.matrix
        # precomputed stride-0 counter keys: on a single-tenant machine the
        # sufferer is always ASID 0, so the hot hooks skip page_of and the
        # per-event key-tuple allocation entirely
        self._cold_key = (0, family, "cold")
        self._single_keys = {
            REASON_CAPACITY: (0, family, "capacity_self"),
            **{r: (0, family, c) for r, c in _REASON_CAUSE.items()},
        }

    def miss(self, key) -> None:
        """Classify a demand miss on *key*, consuming its provenance tag."""
        tag = self._pop(key, None)
        stride = self.probe.asid_stride
        counts = self._counts
        if not stride:
            if tag is None:
                ck = self._cold_key
            else:
                ck = self._single_keys[tag[0]]
                matrix = self._matrix
                matrix[_ORIGIN] = matrix.get(_ORIGIN, 0) + 1
            counts[ck] = counts.get(ck, 0) + 1
            return
        sufferer = self.page_of(key) // stride
        if tag is None:
            cause = "cold"
        else:
            reason, evictor_page = tag
            evictor = evictor_page // stride
            if reason == REASON_CAPACITY:
                cause = "capacity_self" if evictor == sufferer else "capacity_cross"
            else:
                cause = _REASON_CAUSE[reason]
            matrix = self._matrix
            pair = (sufferer, evictor)
            matrix[pair] = matrix.get(pair, 0) + 1
        ck = (sufferer, self.family, cause)
        counts[ck] = counts.get(ck, 0) + 1

    def replay(self, miss_keys, victims) -> None:
        """Bulk-classify one batch: every key of *miss_keys* missed in
        order, and the last ``len(victims)`` misses each evicted the
        corresponding entry of *victims* (a full cache stays full, so
        evictions align with the tail of the miss sequence).

        Bit-identical to the per-event hook order — classify each miss,
        then record the eviction that miss caused. Both batched feeders
        (:meth:`~repro.paging.cache.PageCache.access_many` and the array
        engine's kernel replay) route through here, so the engines cannot
        drift apart.
        """
        first_evt = len(miss_keys) - len(victims)
        if self.probe.asid_stride:
            miss = self.miss
            evicted = self.evicted
            for j, key in enumerate(miss_keys):
                miss(key)
                e = j - first_evt
                if e >= 0:
                    evicted(victims[e], key)
            return
        # single-tenant fast path: sufferer/evictor are always ASID 0, so
        # the loops run on hoisted dict primitives with shared tag tuples,
        # tally per-reason counts in a local list, and fold every dict bump
        # in once at the end (the counters are plain sums, so the batch
        # fold equals the per-event bumps)
        pop = self._pop
        tags = self._tags
        cap = self.cap
        cold = 0
        reasons = [0, 0, 0, 0]
        for key in miss_keys[:first_evt]:
            tag = pop(key, None)
            if tag is None:
                cold += 1
            else:
                reasons[tag[0]] += 1
        for key, victim in zip(miss_keys[first_evt:], victims):
            tag = pop(key, None)
            if tag is None:
                cold += 1
            else:
                reasons[tag[0]] += 1
            pop(victim, None)  # re-tag refreshes FIFO position
            tags[victim] = _CAPACITY_TAG
            if len(tags) > cap:
                del tags[next(iter(tags))]
        counts = self._counts
        if cold:
            ck = self._cold_key
            counts[ck] = counts.get(ck, 0) + cold
        attributed = 0
        for reason, n in enumerate(reasons):
            if n:
                ck = self._single_keys[reason]
                counts[ck] = counts.get(ck, 0) + n
                attributed += n
        if attributed:
            matrix = self._matrix
            matrix[_ORIGIN] = matrix.get(_ORIGIN, 0) + attributed

    def evicted(self, victim, incoming) -> None:
        """Record a capacity eviction: *incoming*'s owner displaced *victim*."""
        tags = self._tags
        self._pop(victim, None)  # re-tag refreshes FIFO position
        # stride 0: the evictor page is never consulted — share one tag
        tags[victim] = (
            (REASON_CAPACITY, self.page_of(incoming))
            if self.probe.asid_stride
            else _CAPACITY_TAG
        )
        if len(tags) > self.cap:
            del tags[next(iter(tags))]

    def invalidated(self, key, reason: int | None = None) -> None:
        """Record an invalidation of *key* (shootdown / remap / promotion).

        *reason* defaults to the probe's current ``shootdown_reason`` —
        :class:`~repro.tenancy.MultiTenantSim` points it at ``REASON_REMAP``
        around φ-change shootdowns and back at ``REASON_SHOOTDOWN``
        otherwise.
        """
        probe = self.probe
        if reason is None:
            reason = probe.shootdown_reason
        tags = self._tags
        tags.pop(key, None)
        tags[key] = (reason, self.page_of(key) if probe.asid_stride else 0)
        if len(tags) > self.cap:
            del tags[next(iter(tags))]


class AttributionProbe(Probe):
    """Batch-safe probe collecting miss causes and tenant interference.

    Attach with :meth:`observe`, which installs one :class:`_SiteGhost` per
    structure the algorithm exposes via
    :meth:`~repro.mmu.base.MemoryManagementAlgorithm.attribution_sites` and
    marks the machine as provenance-observed (``mm._provenance``) so the
    array engine knows when to replay provenance (hugepage family) or
    decline to the object engine (everything else).

    The probe may also be installed as ``mm.probe`` (e.g. by the hot-loop
    harness): it is ``batch_safe`` with a no-op :meth:`on_batch`, so every
    vectorized fast path stays enabled and classification still flows
    through the ghosts.

    Parameters
    ----------
    ghost_capacity:
        FIFO bound on each ghost list. Tags older than the bound degrade to
        ``cold`` — with the default (64k entries per site) this never fires
        on the committed workloads.
    """

    __slots__ = (
        "counts",
        "matrix",
        "asid_stride",
        "ghost_capacity",
        "shootdown_reason",
        "_ghosts",
    )

    batch_safe = True

    def __init__(self, *, ghost_capacity: int = 65536) -> None:
        self.ghost_capacity = check_positive_int(ghost_capacity, "ghost_capacity")
        self.counts: dict[tuple[int, str, str], int] = {}
        self.matrix: dict[tuple[int, int], int] = {}
        self.asid_stride = 0
        self.shootdown_reason = REASON_SHOOTDOWN
        self._ghosts: tuple = ()

    # -------------------------------------------------------------- lifecycle

    def observe(self, mm, stride: int | None = None) -> "AttributionProbe":
        """Install ghosts on *mm*'s eviction sites; return self.

        *mm* may be a :class:`~repro.check.ValidatingMM` wrapper — the
        ghosts land on the wrapped algorithm's real structures either way.
        *stride* is the ASID page stride (defaults to the machine's
        ``asid_stride`` from :meth:`bind_asid_space`; 0 means single-tenant).
        """
        target = getattr(mm, "inner", None)
        if target is None:
            target = mm
        sites = target.attribution_sites()
        if not sites:
            raise ValueError(
                f"algorithm {getattr(target, 'name', target)!r} exposes no "
                "attribution sites"
            )
        if stride is None:
            stride = getattr(target, "asid_stride", 0) or 0
        self.asid_stride = int(stride)
        ghosts = []
        for family, struct, page_of in sites:
            ghost = _SiteGhost(self, family, page_of, self.ghost_capacity)
            struct._ghost = ghost
            ghosts.append((struct, ghost))
        self._ghosts = tuple(ghosts)
        target._provenance = self
        if target is not mm:
            mm._provenance = self
        return self

    def detach(self, mm=None) -> None:
        """Remove this probe's ghosts (and provenance marks, if *mm* given)."""
        for struct, ghost in self._ghosts:
            if getattr(struct, "_ghost", None) is ghost:
                struct._ghost = None
        self._ghosts = ()
        if mm is not None:
            for obj in (mm, getattr(mm, "inner", None)):
                if obj is not None and getattr(obj, "_provenance", None) is self:
                    obj._provenance = None

    def reset(self) -> None:
        """Zero the collected counters; ghost tags persist (caches stay warm).

        Clears in place — the installed ghosts hold bound references to
        these dicts, so rebinding would silently disconnect them.
        """
        self.counts.clear()
        self.matrix.clear()

    def on_phase(self, t: int, name: str) -> None:
        if name == "measure":
            self.reset()

    # counts flow through the ghosts, not the batch callback — the no-op
    # keeps every batched/vectorized run path enabled.
    def on_batch(self, t0, vpns, ledger, before) -> None:  # noqa: D102
        pass

    # -------------------------------------------------------------- summaries

    def cause_totals(self, family: str | None = None) -> dict[str, int]:
        """Per-cause totals over every ASID (optionally one *family*)."""
        out = {c: 0 for c in CAUSES}
        for (_asid, fam, cause), n in self.counts.items():
            if family is None or fam == family:
                out[cause] += n
        return out

    def family_total(self, family: str) -> int:
        """Every classified miss of *family* — the conservation left side."""
        return sum(
            n for (_asid, fam, _cause), n in self.counts.items() if fam == family
        )

    def attrib_counters(self) -> dict[str, int]:
        """Flat snapshot counters: ``attrib:{family}:{cause}`` (+ matrix)."""
        out: dict[str, int] = {}
        for (_asid, fam, cause), n in self.counts.items():
            key = f"{ATTRIB_PREFIX}{fam}:{cause}"
            out[key] = out.get(key, 0) + n
        for (suf, ev), n in self.matrix.items():
            key = f"{INTERF_PREFIX}{suf}:{ev}"
            out[key] = out.get(key, 0) + n
        return out

    def tenant_counters(self, asid: int) -> dict[str, int]:
        """The flat counters restricted to sufferer *asid* (per-tenant rows)."""
        out: dict[str, int] = {}
        for (a, fam, cause), n in self.counts.items():
            if a == asid:
                key = f"{ATTRIB_PREFIX}{fam}:{cause}"
                out[key] = out.get(key, 0) + n
        for (suf, ev), n in self.matrix.items():
            if suf == asid:
                out[f"{INTERF_PREFIX}{suf}:{ev}"] = n
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        classified = sum(self.counts.values())
        return (
            f"<AttributionProbe sites={len(self._ghosts)} "
            f"classified={classified} stride={self.asid_stride}>"
        )
