"""Picklable, mergeable observability snapshots.

An :class:`ObsSnapshot` is the unit of observability that crosses process
boundaries: exact counters (from the run's :class:`~repro.core.model.CostLedger`),
log₂ histograms (from a batch-safe probe such as
:class:`~repro.obs.sampling.SamplingProbe`), and interval-metrics rows —
all plain data, so a worker process can build one per task and ship it back
pickled, and :func:`~repro.sim.parallel.run_tasks` can reduce the shards at
join with :meth:`merge`.

``merge`` is **associative** (counters add key-wise, histograms merge
bucket-wise, rows concatenate, and ``meta`` sums ``runs`` while requiring
every other key to agree), so any reduction tree over the same ordered
shard list yields the same snapshot — the property that makes
``jobs=4`` bit-identical to ``jobs=1``. The same reduction serves
per-tenant attribution: :class:`~repro.tenancy.MultiTenantSim` builds one
snapshot per tenant ledger and merges them into an aggregate whose
counters equal the shared machine's ledger field for field.

Counters come from the ledger, not from sampling, so they are exact; the
sampled quantities (``sampled_accesses``, ``tracked_accesses``,
``tracked_pages``) ride along as ordinary counters and scale up through
:meth:`estimates` using the probe configuration recorded in ``meta``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .hist import LogHistogram

__all__ = ["ObsSnapshot", "SNAPSHOT_KIND", "SNAPSHOT_FORMAT"]

SNAPSHOT_KIND = "obs_snapshot"
SNAPSHOT_FORMAT = 1

#: meta keys that add up across merges (everything else must agree).
_SUMMED_META = ("runs",)

#: probe configuration lifted into meta when present on the probe.
_PROBE_META = ("rate", "stride", "seed", "detail")

#: probe sample tallies lifted into counters when present on the probe.
_PROBE_COUNTERS = ("sampled_accesses", "tracked_accesses")


class ObsSnapshot:
    """Counters + histograms + metrics rows from one or more runs."""

    __slots__ = ("counters", "hists", "rows", "meta")

    def __init__(
        self,
        counters: dict | None = None,
        hists: dict | None = None,
        rows: list | None = None,
        meta: dict | None = None,
    ) -> None:
        self.counters: dict[str, int | float] = dict(counters or {})
        self.hists: dict[str, LogHistogram] = dict(hists or {})
        self.rows: list[dict] = list(rows or [])
        self.meta: dict = dict(meta) if meta is not None else {"runs": 0}
        self.meta.setdefault("runs", 0)

    # ------------------------------------------------------------ construction

    @classmethod
    def from_run(
        cls, ledger, *, probe=None, metrics=None, mm=None, label=None
    ) -> "ObsSnapshot":
        """Snapshot one finished run.

        *ledger* provides the exact counters (numeric ``extra`` entries
        included). *probe*, when it exposes ``hists`` /
        ``sampled_accesses`` / ``rate`` (duck-typed — ``SamplingProbe``
        does), contributes its histograms, sample tallies, and
        configuration. *metrics* contributes its closed windows as rows,
        each tagged with *label* when given. *mm*, when its inspector
        exposes ``bucket_loads()``, contributes a ``bucket_load``
        histogram of the allocator's current per-bucket occupancy.
        """
        counters = {
            k: v for k, v in ledger.as_dict().items() if isinstance(v, (int, float))
        }
        hists: dict[str, LogHistogram] = {}
        meta: dict = {"runs": 1}
        if probe is not None:
            for name, h in getattr(probe, "hists", {}).items():
                hists[name] = LogHistogram.from_dict(h.as_dict())  # defensive copy
            for key in _PROBE_COUNTERS:
                value = getattr(probe, key, None)
                if value is not None:
                    counters[key] = counters.get(key, 0) + value
            tracked = getattr(probe, "_last_seen", None)
            if tracked is not None:
                counters["tracked_pages"] = counters.get("tracked_pages", 0) + len(
                    tracked
                )
            for key in _PROBE_META:
                value = getattr(probe, key, None)
                if value is not None:
                    meta[key] = value
            # miss-attribution probes contribute their flat cause/
            # interference counters (attrib:{family}:{cause},
            # interf:{sufferer}:{evictor}) — exact ints, so merging across
            # shards stays bit-identical
            attrib = getattr(probe, "attrib_counters", None)
            if attrib is not None:
                for key, value in attrib().items():
                    counters[key] = counters.get(key, 0) + value
        if mm is not None:
            loads = mm.inspector().bucket_loads()
            if loads is not None:
                bucket_hist = hists.setdefault("bucket_load", LogHistogram())
                bucket_hist.record_many(loads)
        rows: list[dict] = []
        if metrics is not None:
            for window in metrics.rows():
                row = dict(window)
                if label is not None:
                    row["task"] = label
                rows.append(row)
        return cls(counters, hists, rows, meta)

    # ----------------------------------------------------------------- merging

    def merge(self, other: "ObsSnapshot") -> "ObsSnapshot":
        """A new snapshot covering both inputs' runs.

        Associative and (rows aside) commutative; ``meta`` keys other than
        the summed ones must agree, which guards against merging snapshots
        taken under different probe configurations.
        """
        counters = dict(self.counters)
        for k, v in other.counters.items():
            counters[k] = counters.get(k, 0) + v
        hists = dict(self.hists)
        for k, h in other.hists.items():
            hists[k] = hists[k].merge(h) if k in hists else h
        meta: dict = {}
        for k in set(self.meta) | set(other.meta):
            if k in _SUMMED_META:
                meta[k] = self.meta.get(k, 0) + other.meta.get(k, 0)
                continue
            mine, theirs = self.meta.get(k), other.meta.get(k)
            if mine is not None and theirs is not None and mine != theirs:
                raise ValueError(
                    f"cannot merge snapshots: meta[{k!r}] differs "
                    f"({mine!r} vs {theirs!r})"
                )
            meta[k] = mine if mine is not None else theirs
        return ObsSnapshot(counters, hists, self.rows + other.rows, meta)

    @classmethod
    def merge_all(cls, snapshots) -> "ObsSnapshot":
        """Left-fold ``merge`` over *snapshots* (empty input → empty snapshot)."""
        out = cls()
        for snap in snapshots:
            if snap is not None:
                out = out.merge(snap)
        return out

    # --------------------------------------------------------------- summaries

    def estimates(self) -> dict[str, float]:
        """Unbiased scale-ups of the sampled tallies (see ``SamplingProbe``)."""
        out: dict[str, float] = {}
        stride = self.meta.get("stride")
        rate = self.meta.get("rate")
        if stride:
            out["accesses_from_stride"] = float(
                self.counters.get("sampled_accesses", 0) * stride
            )
        if rate:
            out["accesses_from_hash"] = self.counters.get("tracked_accesses", 0) / rate
            out["tracked_pages_scaled"] = self.counters.get("tracked_pages", 0) / rate
        return out

    # ------------------------------------------------------------ serialization

    def as_dict(self) -> dict:
        """JSON-ready payload (``kind`` marks it for the report loader)."""
        return {
            "kind": SNAPSHOT_KIND,
            "format": SNAPSHOT_FORMAT,
            "counters": dict(self.counters),
            "hists": {k: h.as_dict() for k, h in sorted(self.hists.items())},
            "rows": list(self.rows),
            "meta": dict(self.meta),
            "estimates": self.estimates(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ObsSnapshot":
        """Inverse of :meth:`as_dict` (``estimates`` are derived, not stored)."""
        if payload.get("kind") not in (None, SNAPSHOT_KIND):
            raise ValueError(f"not an obs_snapshot payload: kind={payload.get('kind')!r}")
        return cls(
            payload.get("counters"),
            {k: LogHistogram.from_dict(h) for k, h in payload.get("hists", {}).items()},
            payload.get("rows"),
            payload.get("meta"),
        )

    def to_json(self, path) -> Path:
        """Write the snapshot as a JSON file (parents created as needed)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path

    # ------------------------------------------------------------------- dunder

    def __eq__(self, other) -> bool:
        if not isinstance(other, ObsSnapshot):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.hists == other.hists
            and self.rows == other.rows
            and self.meta == other.meta
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ObsSnapshot runs={self.meta.get('runs', 0)} "
            f"counters={len(self.counters)} hists={sorted(self.hists)} "
            f"rows={len(self.rows)}>"
        )
