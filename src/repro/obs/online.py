"""Streaming online analyses: working-set size and stack distance, live.

The offline tools in :mod:`repro.analysis` (``workingset.py``,
``stackdist.py``) answer "what is this workload's reuse structure?" but
need the whole trace in RAM. The probes here compute the same quantities
*online* — one bounded-state pass, batch-safe, results folded into
mergeable :class:`~repro.obs.hist.LogHistogram`\\ s — so a production-scale
stream can be characterized while it plays, and live telemetry
(:mod:`repro.obs.live`) can report reuse structure mid-run.

Both probes declare ``batch_safe = True`` and consume :meth:`on_batch`
only, so the vectorized fast paths in ``mmu/hugepage|decoupled|hybrid|thp``
stay enabled under them (the same contract as
:class:`~repro.obs.sampling.SamplingProbe`, and gated by the same
``check_bench.py --probe-tolerance`` floor).

Fidelity contract (pinned by ``tests/obs/test_online.py`` over the golden
streams):

* :class:`OnlineWorkingSet` with ``rate=1, sample_every=1`` records
  exactly :func:`repro.analysis.workingset.working_set_sizes` — every
  ``|W(t, τ)|``, windows clipped at 0.
* :class:`OnlineStackDistance` with ``rate=1`` records exactly the warm
  distances of :func:`repro.analysis.stackdist.stack_distances` (cold
  first-touches are counted in ``cold_accesses`` instead, mirroring the
  offline ``COLD`` sentinel).
* With ``rate < 1`` both use the SHARDS-style hashed-VPN scheme of
  ``SamplingProbe`` (page ``v`` tracked iff ``splitmix64(v ⊕ salt) <
  rate · 2⁶⁴``) and scale recorded values by ``1/rate`` — unbiased in
  expectation, exact to within the histogram's factor-of-two buckets.
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive_int
from .events import Probe
from .hist import LogHistogram
from .sampling import _MASK64, _splitmix64_many, splitmix64

__all__ = ["OnlineWorkingSet", "OnlineStackDistance"]

#: smallest Fenwick capacity OnlineStackDistance allocates after a compaction.
_MIN_FENWICK = 1024


def _hash_threshold(rate: float) -> int | None:
    """Hashed-VPN keep threshold, or ``None`` for the track-everything case.

    ``rate=1`` is special-cased to ``None`` (track all pages exactly)
    rather than ``2⁶⁴ − 1`` so the exactness contract holds with
    probability 1, not ``1 − 2⁻⁶⁴`` per page.
    """
    if not (0.0 < rate <= 1.0):
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if rate >= 1.0:
        return None
    return min(_MASK64, int(rate * 2.0**64))


class OnlineWorkingSet(Probe):
    """Streaming Denning working-set sizes ``|W(t, τ)|``.

    Parameters
    ----------
    tau:
        Window length ``τ`` in accesses (the window is ``(t−τ, t]``,
        clipped at the trace start, exactly as in
        :func:`~repro.analysis.workingset.working_set_sizes`).
    sample_every:
        Evaluate the window at every ``sample_every``-th access (those
        ``t`` with ``(t+1) % sample_every == 0``). ``1`` evaluates every
        access (exact offline parity); production streams use a large
        stride so the per-window ``np.unique`` stays off the hot path.
    rate, seed:
        Hashed-VPN sampling: distinct *tracked* pages in the window,
        scaled by ``round(1/rate)``. ``rate=1`` counts every page.

    State is one carry buffer of the last ``τ − 1`` VPNs plus the
    histogram — independent of stream length.
    """

    __slots__ = (
        "tau",
        "sample_every",
        "rate",
        "seed",
        "hists",
        "windows",
        "tracked_accesses",
        "_salt",
        "_threshold",
        "_scale",
        "_carry",
        "_t",
    )

    batch_safe = True

    def __init__(
        self,
        tau: int,
        *,
        sample_every: int = 1,
        rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.tau = check_positive_int(tau, "tau")
        self.sample_every = check_positive_int(sample_every, "sample_every")
        self.rate = float(rate)
        self.seed = int(seed)
        self._salt = splitmix64(self.seed)
        self._threshold = _hash_threshold(self.rate)
        self._scale = max(1, round(1 / self.rate))
        self.hists: dict[str, LogHistogram] = {}
        self.windows = 0
        self.tracked_accesses = 0
        self._carry = np.empty(0, dtype=np.int64)
        self._t = 0
        self.reset()

    # -------------------------------------------------------------- lifecycle

    def reset(self) -> None:
        """Drop all collected state (fires automatically at ``measure``)."""
        self.hists = {"working_set": LogHistogram()}
        self.windows = 0
        self.tracked_accesses = 0
        self._carry = np.empty(0, dtype=np.int64)
        self._t = 0

    def on_phase(self, t: int, name: str) -> None:
        if name == "measure":
            self.reset()

    # ------------------------------------------------------------- batch path

    def on_batch(self, t0: int, vpns, ledger, before) -> None:
        arr = np.asarray(vpns, dtype=np.int64)
        n = arr.size
        if n == 0:
            return
        m = self._carry.size
        concat = np.concatenate((self._carry, arr)) if m else arr
        if self._threshold is None:
            mask = None
            self.tracked_accesses += n
        else:
            keys = concat.astype(np.uint64) ^ np.uint64(self._salt)
            mask = _splitmix64_many(keys) < np.uint64(self._threshold)
            self.tracked_accesses += int(mask[m:].sum())
        hist = self.hists["working_set"]
        # t = self._t + p is sampled iff (t+1) % sample_every == 0
        first = (-(self._t + 1)) % self.sample_every
        if mask is None:
            for p in range(first, n, self.sample_every):
                pos = m + p
                lo = max(0, pos - self.tau + 1)
                win = concat[lo : pos + 1]
                hist.record(int(np.unique(win).size) * self._scale)
                self.windows += 1
        elif first < n:
            # Sampled case: windows only see tracked positions, so compress
            # to the tracked substream once and resolve each window to a
            # substream span via searchsorted — tiny python sets instead of
            # tau-length slices keep this off the hot path.
            tracked_pos = np.nonzero(mask)[0]
            tracked_vals = concat[tracked_pos].tolist()
            ps = np.arange(m + first, m + n, self.sample_every)
            los = np.maximum(0, ps - self.tau + 1)
            starts = np.searchsorted(tracked_pos, los, side="left")
            stops = np.searchsorted(tracked_pos, ps, side="right")
            scale = self._scale
            for a, b in zip(starts.tolist(), stops.tolist()):
                hist.record(len(set(tracked_vals[a:b])) * scale)
            self.windows += len(ps)
        self._t += n
        # max(0, ...): a negative start would *wrap* and silently drop the
        # stream head while concat is still shorter than the carry window
        keep = self.tau - 1
        self._carry = (
            concat[max(0, concat.size - keep) :].copy()
            if keep
            else concat[:0]
        )

    # -------------------------------------------------------------- summaries

    def as_dict(self) -> dict:
        """JSON-ready summary (configuration, tallies, histogram)."""
        return {
            "tau": self.tau,
            "sample_every": self.sample_every,
            "rate": self.rate,
            "seed": self.seed,
            "windows": self.windows,
            "tracked_accesses": self.tracked_accesses,
            "hists": {name: h.as_dict() for name, h in self.hists.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<OnlineWorkingSet tau={self.tau} every={self.sample_every} "
            f"rate={self.rate:g} windows={self.windows}>"
        )


class OnlineStackDistance(Probe):
    """Streaming Mattson/LRU stack distances over a sampled page population.

    The same Fenwick-tree-over-timestamps recurrence as
    :func:`~repro.analysis.stackdist.stack_distances`, made streaming: the
    tree is periodically *compacted* — live markers (one per tracked
    distinct page) are renumbered in timestamp order into a fresh tree —
    so memory is O(distinct tracked pages), not O(stream length), and
    prefix-sum *differences* (the distances) are untouched because
    compaction preserves marker order and only removes dead slots.

    With ``rate < 1`` this is the SHARDS estimator: distances are computed
    among tracked pages only and scaled by ``1/rate`` before recording.
    First-ever touches of a tracked page are counted in ``cold_accesses``
    (the offline ``COLD`` rows), not recorded in the histogram.
    """

    __slots__ = (
        "rate",
        "seed",
        "hists",
        "cold_accesses",
        "tracked_accesses",
        "_salt",
        "_threshold",
        "_last_seen",
        "_tree",
        "_cap",
        "_n",
    )

    batch_safe = True

    def __init__(self, rate: float = 1.0, *, seed: int = 0) -> None:
        self.rate = float(rate)
        self.seed = int(seed)
        self._salt = splitmix64(self.seed)
        self._threshold = _hash_threshold(self.rate)
        self.hists: dict[str, LogHistogram] = {}
        self.cold_accesses = 0
        self.tracked_accesses = 0
        self._last_seen: dict[int, int] = {}
        self._tree: list[int] = []
        self._cap = 0
        self._n = 0
        self.reset()

    # -------------------------------------------------------------- lifecycle

    def reset(self) -> None:
        """Drop all collected state (fires automatically at ``measure``)."""
        self.hists = {"stack_distance": LogHistogram()}
        self.cold_accesses = 0
        self.tracked_accesses = 0
        self._last_seen = {}
        self._cap = _MIN_FENWICK
        self._tree = [0] * (self._cap + 1)
        self._n = 0

    def on_phase(self, t: int, name: str) -> None:
        if name == "measure":
            self.reset()

    # ---------------------------------------------------------------- fenwick

    def _add(self, i: int, delta: int) -> None:
        i += 1
        tree = self._tree
        cap = self._cap
        while i <= cap:
            tree[i] += delta
            i += i & (-i)

    def _prefix(self, i: int) -> int:
        """Sum of slots [0, i]."""
        i += 1
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    def _compact(self) -> None:
        """Renumber live markers in timestamp order into a fresh tree.

        Order-preserving, dead slots dropped — every future prefix-sum
        difference over the live markers is unchanged, so the reported
        distances are bit-identical to the never-compacted run.
        """
        live = sorted(self._last_seen.items(), key=lambda kv: kv[1])
        self._last_seen = {vpn: i for i, (vpn, _) in enumerate(live)}
        self._n = len(live)
        self._cap = max(_MIN_FENWICK, 2 * self._n)
        self._tree = [0] * (self._cap + 1)
        for i in range(self._n):
            self._add(i, 1)

    # ------------------------------------------------------------- batch path

    def _observe(self, vpn: int) -> None:
        # _add/_prefix inlined: this is the per-tracked-access hot loop, and
        # the three Fenwick walks dominate it at python call granularity.
        tree = self._tree
        cap = self._cap
        prev = self._last_seen.get(vpn)
        if prev is None:
            self.cold_accesses += 1
        else:
            # distinct tracked pages touched since prev = live markers after
            # it; the full prefix sum is just the live-marker count, so only
            # the prefix up to prev needs the tree.
            i = prev + 1
            total = 0
            while i > 0:
                total += tree[i]
                i -= i & (-i)
            d = len(self._last_seen) - total
            self.hists["stack_distance"].record(int(round(d / self.rate)))
            i = prev + 1
            while i <= cap:
                tree[i] -= 1
                i += i & (-i)
        i = self._n + 1
        while i <= cap:
            tree[i] += 1
            i += i & (-i)
        self._last_seen[vpn] = self._n
        self._n += 1
        if self._n == cap:
            self._compact()

    def on_batch(self, t0: int, vpns, ledger, before) -> None:
        if len(vpns) == 0:
            return
        if self._threshold is None:
            self.tracked_accesses += len(vpns)
            for vpn in vpns:
                self._observe(int(vpn))
            return
        arr = np.asarray(vpns, dtype=np.int64)
        keys = arr.astype(np.uint64) ^ np.uint64(self._salt)
        tracked = np.nonzero(_splitmix64_many(keys) < np.uint64(self._threshold))[0]
        self.tracked_accesses += len(tracked)
        for vpn in arr[tracked].tolist():
            self._observe(int(vpn))

    # -------------------------------------------------------------- summaries

    def estimates(self) -> dict[str, float]:
        """Unbiased scale-ups: cold (compulsory) accesses and distinct pages."""
        return {
            "cold_accesses_scaled": self.cold_accesses / self.rate,
            "distinct_pages_from_hash": len(self._last_seen) / self.rate,
        }

    def as_dict(self) -> dict:
        """JSON-ready summary (configuration, tallies, estimates, histogram)."""
        return {
            "rate": self.rate,
            "seed": self.seed,
            "cold_accesses": self.cold_accesses,
            "tracked_accesses": self.tracked_accesses,
            "tracked_pages": len(self._last_seen),
            "estimates": self.estimates(),
            "hists": {name: h.as_dict() for name, h in self.hists.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<OnlineStackDistance rate={self.rate:g} seed={self.seed} "
            f"tracked={self.tracked_accesses} cold={self.cold_accesses}>"
        )
