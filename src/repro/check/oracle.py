"""Runtime invariant oracle: cross-validate an algorithm's bookkeeping.

Theorem 1's guarantee is structural — it only holds if the memory manager
really maintains the state it claims: every resident page's frame lies in
one of its hashed buckets and decodes back through ``f`` to the true ``φ``
(eq. 4), bucket occupancy never exceeds ``B``, RAM never holds more than
``m`` pages, and the TLB never holds more than ``ℓ`` entries. None of that
is visible in aggregate miss counts, so a refactor can silently break the
model while every end-to-end test stays green.

:class:`InvariantOracle` is the correctness layer: it shadows a run of any
:class:`~repro.mmu.MemoryManagementAlgorithm` through the algorithm's
:class:`~repro.mmu.MMInspector` surface and raises a structured
:class:`InvariantViolation` the moment an invariant breaks. Checks run at
two cadences:

* **per access** (O(1) on the touched page): ledger-delta coherence
  (exactly one access and one TLB outcome per request, IO deltas in
  multiples of the algorithm's quantum, monotone evictions), TLB coverage
  of the touched page, decode-consistency ``f(v, ψ(r(v))) = φ(v)``, and a
  ``φ``-stability shadow — if no eviction occurred since the oracle last
  saw ``v``, its frame cannot have moved (stable allocation, Section 3);
* **deep sweeps** (every *deep_every* accesses and at the end of every
  replay): capacity bounds ``|T| ≤ ℓ`` and ``|A| ≤ m``, bucket occupancy
  ``≤ B``, and the algorithm's own full structural self-check
  (``ψ``/``φ`` agreement over the whole active set, injectivity, policy
  bookkeeping).

:class:`ValidatingMM` packages the oracle as a drop-in wrapper: replaying a
trace through ``ValidatingMM(mm)`` produces bit-identical costs (the
ledger is shared with the wrapped algorithm) plus validation. Wire it in
via ``simulate(..., validate=True)``, ``SimTask(validate=True)`` for
sharded grids, or the ``repro check`` CLI sweep.
"""

from __future__ import annotations

from .._util import check_positive_int
from ..mmu.base import MemoryManagementAlgorithm, MMInspector

__all__ = ["InvariantViolation", "InvariantOracle", "ValidatingMM"]

#: deep-sweep cadence when the caller does not choose one.
DEFAULT_DEEP_EVERY = 4096


class InvariantViolation(AssertionError):
    """A structural invariant failed during a validated replay.

    Parameters
    ----------
    invariant:
        Machine-readable name (``"decode-consistency"``, ``"tlb-capacity"``,
        …) — tests assert on it.
    message:
        Human-readable description of the breakage.
    algorithm / t / vpn:
        The offending run's algorithm name, access index within the current
        phase, and the virtual page being serviced (None for deep sweeps
        not tied to one page).
    snapshot:
        Small state snapshot at failure time (occupancies + ledger).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        algorithm: str | None = None,
        t: int | None = None,
        vpn: int | None = None,
        snapshot: dict | None = None,
    ) -> None:
        self.invariant = invariant
        self.algorithm = algorithm
        self.t = t
        self.vpn = vpn
        self.snapshot = snapshot or {}
        where = f" at t={t}" if t is not None else ""
        page = f" vpn={vpn}" if vpn is not None else ""
        alg = f" [{algorithm}]" if algorithm else ""
        super().__init__(f"{invariant}{alg}{where}{page}: {message}")


class InvariantOracle:
    """Shadow model of ``(T, A, φ, f)`` replayed against a live algorithm.

    The oracle does not reimplement the algorithm; it audits it. Cheap
    coherence checks run on every access, full structural sweeps every
    *deep_every* accesses (``0`` disables periodic sweeps; :meth:`deep_check`
    can still be called explicitly, e.g. at the end of a replay).
    """

    def __init__(
        self, mm: MemoryManagementAlgorithm, *, deep_every: int | None = None
    ) -> None:
        if deep_every is None:
            deep_every = DEFAULT_DEEP_EVERY
        elif deep_every != 0:
            check_positive_int(deep_every, "deep_every")
        self.mm = mm
        self.inspector: MMInspector = mm.inspector()
        self.deep_every = deep_every
        #: accesses validated (across resets — the oracle never resets).
        self.accesses_checked = 0
        #: deep sweeps executed.
        self.deep_checks = 0
        # φ-stability shadow: vpn -> (frame, eviction count when recorded).
        # If the eviction counter has not moved since the entry was
        # recorded, the page cannot have left A, so its frame must match.
        self._phi_shadow: dict[int, tuple[int, int]] = {}
        self._placement = self.inspector.models_placement()

    # ------------------------------------------------------------ validation

    def check_access(self, vpn: int) -> None:
        """Service *vpn* through the wrapped algorithm, then audit it."""
        mm = self.mm
        ins = self.inspector
        ledger = mm.ledger
        accesses0 = ledger.accesses
        hits0 = ledger.tlb_hits
        misses0 = ledger.tlb_misses
        ios0 = ledger.ios
        ev0 = ins.evictions()

        mm.access(vpn)

        t = ledger.accesses - 1
        if ledger.accesses != accesses0 + 1:
            self._fail(
                "ledger-coherence",
                f"accesses moved {accesses0} -> {ledger.accesses} on one request",
                t=t, vpn=vpn,
            )
        if (ledger.tlb_hits - hits0) + (ledger.tlb_misses - misses0) != 1 or (
            ledger.tlb_hits < hits0 or ledger.tlb_misses < misses0
        ):
            self._fail(
                "ledger-coherence",
                "expected exactly one TLB outcome per request "
                f"(hits {hits0}->{ledger.tlb_hits}, misses {misses0}->{ledger.tlb_misses})",
                t=t, vpn=vpn,
            )
        io_delta = ledger.ios - ios0
        quantum = ins.io_quantum
        if io_delta < 0 or io_delta % quantum:
            self._fail(
                "io-accounting",
                f"IO delta {io_delta} is not a multiple of the quantum {quantum}",
                t=t, vpn=vpn,
            )
        if ins.max_io_per_access is not None and io_delta > ins.max_io_per_access:
            self._fail(
                "io-accounting",
                f"IO delta {io_delta} exceeds the per-access bound {ins.max_io_per_access}",
                t=t, vpn=vpn,
            )
        ev = ins.evictions()
        if ev < ev0:
            self._fail(
                "eviction-coherence",
                f"eviction counter went backwards ({ev0} -> {ev})", t=t, vpn=vpn,
            )

        covered = ins.tlb_covers(vpn)
        if covered is False:
            self._fail(
                "tlb-coverage",
                "the just-serviced page's translation unit is not TLB-resident",
                t=t, vpn=vpn,
            )
        if self._placement:
            self._check_translation(vpn, t, ev)

        self.accesses_checked += 1
        if self.deep_every and self.accesses_checked % self.deep_every == 0:
            self.deep_check(t=t)

    def _check_translation(self, vpn: int, t: int, ev: int) -> None:
        """Decode-consistency and φ-stability for the page just serviced."""
        ins = self.inspector
        frame = ins.frame_of(vpn)
        decoded = ins.decode(vpn)
        if ins.is_failed(vpn):
            if frame is not None or decoded is not None:
                self._fail(
                    "failure-set",
                    f"failed page has φ={frame}, f={decoded} (both must be absent)",
                    t=t, vpn=vpn,
                )
            return
        if frame is None:
            self._fail(
                "placement",
                "serviced page is neither placed nor in the failure set",
                t=t, vpn=vpn,
            )
        if decoded != frame:
            self._fail(
                "decode-consistency",
                f"f(v, ψ(r(v))) = {decoded} but φ(v) = {frame}", t=t, vpn=vpn,
            )
        shadow = self._phi_shadow.get(vpn)
        if shadow is not None and shadow[1] == ev and shadow[0] != frame:
            self._fail(
                "phi-stability",
                f"frame moved {shadow[0]} -> {frame} with no eviction in between",
                t=t, vpn=vpn,
            )
        self._phi_shadow[vpn] = (frame, ev)

    # ------------------------------------------------------- asid invariants

    def check_asid_isolation(self, stride: int, asid: int, vpns) -> None:
        """φ-isolation: a tenant-local request stream stays in its slice.

        *vpns* are tenant-local page numbers about to be (or just) serviced
        under *asid*; every one must fall in ``[0, stride)``, else the
        striding contract would install a translation in another tenant's
        slice. O(len) on a numpy trace (one min/max pair).
        """
        if len(vpns) == 0:
            return
        if hasattr(vpns, "min"):
            lo, hi = int(vpns.min()), int(vpns.max())
        else:
            lo, hi = min(vpns), max(vpns)
        if lo < 0 or hi >= stride:
            bad = lo if lo < 0 else hi
            self._fail(
                "phi-isolation",
                f"asid {asid} requested local page {bad} outside its "
                f"slice of {stride} pages",
                vpn=bad,
            )

    def check_asid_coverage(self, stride: int, live_asids, t: int | None = None) -> None:
        """ASID-coverage: every resident translation lies in a live slice.

        Audits the inspector's :meth:`~repro.mmu.MMInspector.translation_spans`
        surface (skipped when the algorithm does not enumerate its TLB):
        no unit straddles a slice boundary, and no unit belongs to an ASID
        outside *live_asids* — i.e. shootdowns never leave stale entries.
        """
        spans = self.inspector.translation_spans()
        if spans is None:
            return
        live = set(live_asids)
        for lo, hi in spans:
            asid = lo // stride
            if (hi - 1) // stride != asid:
                self._fail(
                    "asid-coverage",
                    f"translation unit [{lo}, {hi}) straddles the slice "
                    f"boundary at stride {stride}",
                    t=t, vpn=lo,
                )
            if asid not in live:
                self._fail(
                    "asid-coverage",
                    f"stale translation unit [{lo}, {hi}) for dead asid "
                    f"{asid} (shootdown missed it)",
                    t=t, vpn=lo,
                )

    def deep_check(self, t: int | None = None) -> None:
        """Full structural sweep (capacities, buckets, self-checks)."""
        ins = self.inspector
        self.deep_checks += 1
        tlb_len = ins.tlb_entries()
        if (
            tlb_len is not None
            and ins.tlb_capacity is not None
            and tlb_len > ins.tlb_capacity
        ):
            self._fail(
                "tlb-capacity", f"|T| = {tlb_len} exceeds ℓ = {ins.tlb_capacity}", t=t
            )
        ram_pages = ins.ram_pages_resident()
        if (
            ram_pages is not None
            and ins.ram_page_capacity is not None
            and ram_pages > ins.ram_page_capacity
        ):
            self._fail(
                "ram-capacity",
                f"|A| = {ram_pages} pages exceeds m = {ins.ram_page_capacity}",
                t=t,
            )
        occupancy = ins.bucket_occupancy()
        if occupancy is not None:
            load, cap = occupancy
            if load > cap:
                self._fail(
                    "bucket-capacity",
                    f"max bucket load {load} exceeds B = {cap}", t=t,
                )
        try:
            ins.deep_check()
        except InvariantViolation:
            raise
        except AssertionError as exc:
            self._fail("structural", str(exc) or type(exc).__name__, t=t)

    # ------------------------------------------------------------- internals

    def _fail(self, invariant, message, *, t=None, vpn=None) -> None:
        raise InvariantViolation(
            invariant,
            message,
            algorithm=self.mm.name,
            t=t,
            vpn=vpn,
            snapshot=self._snapshot(),
        )

    def _snapshot(self) -> dict:
        ins = self.inspector
        return {
            "tlb_entries": ins.tlb_entries(),
            "tlb_capacity": ins.tlb_capacity,
            "ram_pages": ins.ram_pages_resident(),
            "ram_page_capacity": ins.ram_page_capacity,
            "evictions": ins.evictions(),
            "bucket_occupancy": ins.bucket_occupancy(),
            "ledger": self.mm.ledger.as_dict(),
        }


class ValidatingMM(MemoryManagementAlgorithm):
    """Drop-in wrapper replaying every request under the invariant oracle.

    Costs are bit-identical to the wrapped algorithm's (the ledger is
    shared), so a validated run can replace an unvalidated one anywhere —
    sweeps, probes, and interval metrics all see the same numbers. The
    first violated invariant raises :class:`InvariantViolation`.

    Parameters
    ----------
    inner:
        The algorithm to validate.
    deep_every:
        Full-sweep cadence in accesses; ``None`` uses the default
        (:data:`DEFAULT_DEEP_EVERY`), ``0`` restricts deep sweeps to the
        end of each :meth:`run` call.
    """

    def __init__(
        self,
        inner: MemoryManagementAlgorithm,
        *,
        deep_every: int | None = None,
    ) -> None:
        if isinstance(inner, ValidatingMM):
            raise TypeError("refusing to validate a ValidatingMM (already validated)")
        super().__init__()
        self.inner = inner
        self.name = f"validated:{inner.name}"
        self.ledger = inner.ledger  # shared: identical costs, one source of truth
        self.oracle = InvariantOracle(inner, deep_every=deep_every)

    def access(self, vpn: int) -> None:
        self.oracle.check_access(vpn)

    def run(self, trace):
        ledger = super().run(trace)
        # end-of-replay sweep: even with deep_every=0 every run is audited
        self.oracle.deep_check()
        return ledger

    def _eviction_count(self) -> int:
        return self.inner._eviction_count()

    def inspector(self) -> MMInspector:
        return self.inner.inspector()

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    # asid contract: stride bookkeeping lives on the inner algorithm (its
    # access() is the one replayed), mirrored here so run_asid/access_asid
    # on the wrapper stride identically.
    def translation_alignment(self) -> int:
        return self.inner.translation_alignment()

    def bind_asid_space(self, va_pages: int) -> int:
        self.asid_stride = self.inner.bind_asid_space(va_pages)
        return self.asid_stride

    def shootdown(self, lo: int, hi: int) -> int:
        return self.inner.shootdown(lo, hi)

    def attribution_sites(self) -> tuple:
        # miss-attribution ghosts belong on the inner algorithm's real
        # structures — the wrapper adds no caches of its own
        return self.inner.attribution_sites()

    def check_invariants(self) -> None:
        """Explicit full sweep (mirrors the inner algorithms' helpers)."""
        self.oracle.deep_check()
