"""Cross-validation subsystem: invariant oracle + differential checker.

Two independent correctness layers over the simulators (see
``docs/TESTING.md``):

* :mod:`repro.check.oracle` — :class:`ValidatingMM` replays every access
  under an :class:`InvariantOracle` that audits the paper's structural
  invariants (TLB/RAM capacities, decode-consistency ``f = φ``, bucket
  loads ``≤ B``, ``φ``-stability) and raises a structured
  :class:`InvariantViolation` on the first break;
* :mod:`repro.check.differential` — replay two algorithms (or one
  algorithm vs a recorded golden run) on the same trace and report the
  first per-access event divergence.

Entry points: ``simulate(..., validate=True)``,
``SimTask(validate=True)`` for sharded grids, and the ``repro check``
CLI/CI sweep (:func:`check_grid`).
"""

from .differential import (
    ROW_FIELDS,
    DiffReport,
    Divergence,
    EngineDiff,
    StreamTap,
    diff_against_golden,
    diff_engine_ledgers,
    diff_mms,
    first_divergence,
    golden_totals,
    load_golden,
    record_stream,
    save_golden,
)
from .oracle import InvariantOracle, InvariantViolation, ValidatingMM
from .runner import (
    WORKLOAD_NAMES,
    CheckCell,
    CheckReport,
    check_grid,
    format_check_report,
)

__all__ = [
    "InvariantOracle",
    "InvariantViolation",
    "ValidatingMM",
    "ROW_FIELDS",
    "StreamTap",
    "Divergence",
    "DiffReport",
    "record_stream",
    "first_divergence",
    "diff_mms",
    "EngineDiff",
    "diff_engine_ledgers",
    "golden_totals",
    "save_golden",
    "load_golden",
    "diff_against_golden",
    "WORKLOAD_NAMES",
    "CheckCell",
    "CheckReport",
    "check_grid",
    "format_check_report",
]
