"""Differential checker: compare two runs event-by-event, not just in total.

Aggregate counters can agree by accident; per-access event streams cannot.
The differential harness replays the same trace through two memory
managers (or one manager and a recorded *golden* run) and reports the
**first divergence** between their per-access event rows — the exact
access index and field where behaviour split, which is where debugging
starts.

The tap rides the :class:`~repro.obs.events.Probe` protocol, so the
differential path reuses the observability layer's instrumented replay:
no hot-path changes, zero overhead when no comparison is running, and the
streams being compared are exactly what ``repro trace`` exports.

Each access folds into one :data:`ROW_FIELDS` tuple
``(t, vpn, tlb_misses, io_pages, decoding_misses, evicted_units)`` —
the chargeable events of the cost model, bucketed by the access that
caused them. Golden runs serialize these rows as JSONL
(:func:`save_golden` / :func:`load_golden`) so a known-good stream can be
pinned in version control and future refactors diffed against it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..mmu.base import MemoryManagementAlgorithm
from ..obs.events import Probe

__all__ = [
    "ROW_FIELDS",
    "StreamTap",
    "Divergence",
    "DiffReport",
    "EngineDiff",
    "record_stream",
    "first_divergence",
    "diff_mms",
    "diff_engine_ledgers",
    "golden_totals",
    "save_golden",
    "load_golden",
    "diff_against_golden",
]

#: One row per access: the access coordinates plus every chargeable event
#: it triggered. ``t`` restarts at the warm-up boundary (phase-local index).
ROW_FIELDS: tuple[str, ...] = (
    "t",
    "vpn",
    "tlb_misses",
    "io_pages",
    "decoding_misses",
    "evicted_units",
)

#: golden-file format version (bumped on any row-shape change).
GOLDEN_FORMAT = 1


class StreamTap(Probe):
    """Fold the typed event stream into one row per access.

    The instrumented runner emits ``on_access`` first, then any
    ``tlb_miss`` / ``io`` / ``decoding_miss`` / ``eviction`` events for the
    same access, so the tap simply accumulates into the latest row. Phase
    boundaries are kept aside (``phases``) and excluded from comparison —
    two runs may legitimately label phases at different absolute indices.
    """

    __slots__ = ("rows", "phases")

    def __init__(self) -> None:
        self.rows: list[list[int]] = []
        self.phases: list[tuple[int, str]] = []

    def on_access(self, t: int, vpn: int) -> None:
        self.rows.append([t, vpn, 0, 0, 0, 0])

    def on_tlb_miss(self, t: int, vpn: int) -> None:
        self.rows[-1][2] += 1

    def on_io(self, t: int, vpn: int, pages: int) -> None:
        self.rows[-1][3] += pages

    def on_decoding_miss(self, t: int, vpn: int) -> None:
        self.rows[-1][4] += 1

    def on_eviction(self, t: int, count: int) -> None:
        self.rows[-1][5] += count

    def on_phase(self, t: int, name: str) -> None:
        self.phases.append((t, name))

    def as_tuples(self) -> list[tuple[int, ...]]:
        """The recorded rows as immutable tuples (comparison/serialization)."""
        return [tuple(row) for row in self.rows]


@dataclass(frozen=True, slots=True)
class Divergence:
    """The first point where two event streams disagree.

    ``index`` is the position in the row lists (trace order). ``fields``
    names the row components that differ (``("length",)`` when one stream
    simply ends first, in which case the shorter side's row is ``None``).
    """

    index: int
    fields: tuple[str, ...]
    left: tuple[int, ...] | None
    right: tuple[int, ...] | None

    def describe(self) -> str:
        if self.fields == ("length",):
            side = "left" if self.left is None else "right"
            return f"streams differ in length: {side} stream ends at row {self.index}"
        parts = []
        for name in self.fields:
            i = ROW_FIELDS.index(name)
            parts.append(f"{name}: {self.left[i]} vs {self.right[i]}")
        return f"first divergence at row {self.index}: " + ", ".join(parts)


@dataclass(slots=True)
class DiffReport:
    """Outcome of a differential run: both streams plus their first split."""

    left_name: str
    right_name: str
    left_rows: list[tuple[int, ...]]
    right_rows: list[tuple[int, ...]]
    divergence: Divergence | None
    #: fields actually compared (a subset of :data:`ROW_FIELDS`).
    compared: tuple[str, ...] = field(default=ROW_FIELDS)

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        head = f"{self.left_name} vs {self.right_name}"
        if self.divergence is None:
            return f"{head}: {len(self.left_rows)} rows, streams identical"
        return f"{head}: {self.divergence.describe()}"


def record_stream(
    mm: MemoryManagementAlgorithm, trace, *, warmup: int = 0
) -> list[tuple[int, ...]]:
    """Replay *trace* through *mm* with a :class:`StreamTap`; return the rows.

    Only the measurement phase is recorded (the tap is attached after the
    warm-up replay), matching how every sweep reports costs.
    """
    from ..sim.simulator import simulate  # local import: sim imports check lazily

    tap = StreamTap()
    if warmup:
        mm.run(trace[:warmup])
        mm.reset_stats()
    simulate(mm, trace[warmup:], probe=tap)
    return tap.as_tuples()


def first_divergence(
    left_rows,
    right_rows,
    *,
    fields: tuple[str, ...] | None = None,
) -> Divergence | None:
    """Find the first row where the two streams disagree (``None`` = never).

    *fields* restricts the comparison to a subset of :data:`ROW_FIELDS` —
    e.g. ``("t", "vpn", "tlb_misses")`` to compare TLB behaviour while
    allowing IO behaviour to differ.
    """
    if fields is None:
        indices = tuple(range(len(ROW_FIELDS)))
        names = ROW_FIELDS
    else:
        unknown = set(fields) - set(ROW_FIELDS)
        if unknown:
            raise ValueError(f"unknown row fields: {sorted(unknown)}")
        names = tuple(fields)
        indices = tuple(ROW_FIELDS.index(name) for name in names)
    n = min(len(left_rows), len(right_rows))
    for i in range(n):
        lrow, rrow = tuple(left_rows[i]), tuple(right_rows[i])
        bad = tuple(
            name for name, j in zip(names, indices) if lrow[j] != rrow[j]
        )
        if bad:
            return Divergence(i, bad, lrow, rrow)
    if len(left_rows) != len(right_rows):
        longer_left = len(left_rows) > len(right_rows)
        return Divergence(
            n,
            ("length",),
            tuple(left_rows[n]) if longer_left else None,
            tuple(right_rows[n]) if not longer_left else None,
        )
    return None


def diff_mms(
    left: MemoryManagementAlgorithm,
    right: MemoryManagementAlgorithm,
    trace,
    *,
    warmup: int = 0,
    fields: tuple[str, ...] | None = None,
) -> DiffReport:
    """Replay *trace* through both algorithms; report the first divergence.

    Both replays share the identical trace (and warm-up split), so any
    divergence is behavioural, not environmental.
    """
    left_rows = record_stream(left, trace, warmup=warmup)
    right_rows = record_stream(right, trace, warmup=warmup)
    return DiffReport(
        left_name=left.name,
        right_name=right.name,
        left_rows=left_rows,
        right_rows=right_rows,
        divergence=first_divergence(left_rows, right_rows, fields=fields),
        compared=tuple(fields) if fields is not None else ROW_FIELDS,
    )


@dataclass(slots=True)
class EngineDiff:
    """Ledger-level parity verdict between two simulation engines.

    The array engine emits no per-access events (that is the point), so
    engine parity is checked on the full final ledger — every counter,
    including the algorithm-specific ``extra`` entries. ``mismatches``
    maps each differing counter to its ``(left, right)`` values.
    """

    left_engine: str
    right_engine: str
    left_counters: dict
    right_counters: dict
    mismatches: dict

    @property
    def identical(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        head = f"{self.left_engine} vs {self.right_engine}"
        if not self.mismatches:
            return f"{head}: ledgers identical"
        parts = ", ".join(
            f"{k}: {a} vs {b}" for k, (a, b) in sorted(self.mismatches.items())
        )
        return f"{head}: ledgers diverge — {parts}"


def diff_engine_ledgers(
    mm_factory,
    trace,
    *,
    warmup: int = 0,
    left: str = "object",
    right: str = "array",
) -> EngineDiff:
    """Replay *trace* through two factory-built algorithms, one per engine,
    and compare their final ledgers counter by counter.

    *mm_factory* is a zero-arg factory (e.g. the result of
    :func:`repro.mmu.mm_factory`), so both sides start from identical
    fresh state and any divergence is the engines disagreeing about the
    simulation itself.
    """
    from ..sim.simulator import simulate  # local import: sim imports check lazily

    left_led = simulate(mm_factory(), trace, warmup=warmup, engine=left)
    right_led = simulate(mm_factory(), trace, warmup=warmup, engine=right)
    lc, rc = left_led.as_dict(), right_led.as_dict()
    mismatches = {
        key: (lc.get(key), rc.get(key))
        for key in sorted(set(lc) | set(rc))
        if lc.get(key) != rc.get(key)
    }
    return EngineDiff(
        left_engine=left,
        right_engine=right,
        left_counters=lc,
        right_counters=rc,
        mismatches=mismatches,
    )


def golden_totals(rows) -> dict:
    """Aggregate a golden event stream into ledger-comparable totals.

    Sums the chargeable per-access events so an engine that cannot emit
    events (the array engine) can still be diffed against a committed
    golden stream: its measurement-phase ledger must show exactly these
    ``accesses`` / ``tlb_misses`` / ``ios`` / ``decoding_misses``.
    """
    return {
        "accesses": len(rows),
        "tlb_misses": sum(r[2] for r in rows),
        "ios": sum(r[3] for r in rows),
        "decoding_misses": sum(r[4] for r in rows),
        "evictions": sum(r[5] for r in rows),
    }


def save_golden(path, rows, *, algorithm: str, meta: dict | None = None) -> Path:
    """Pin an event stream as a golden JSONL file.

    Line 1 is a header object (format version, algorithm, row schema, any
    *meta* the caller wants to stamp — trace parameters, seed); every
    following line is one row array.
    """
    path = Path(path)
    header = {
        "format": GOLDEN_FORMAT,
        "kind": "golden_stream",
        "algorithm": algorithm,
        "fields": list(ROW_FIELDS),
        **(meta or {}),
    }
    with path.open("w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for row in rows:
            fh.write(json.dumps(list(row)) + "\n")
    return path


def load_golden(path) -> tuple[dict, list[tuple[int, ...]]]:
    """Load a golden stream; returns ``(header, rows)``."""
    path = Path(path)
    with path.open() as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty golden file")
        header = json.loads(header_line)
        if header.get("kind") != "golden_stream":
            raise ValueError(f"{path}: not a golden stream file")
        if header.get("format") != GOLDEN_FORMAT:
            raise ValueError(
                f"{path}: golden format {header.get('format')} "
                f"(this reader understands {GOLDEN_FORMAT})"
            )
        if header.get("fields") != list(ROW_FIELDS):
            raise ValueError(f"{path}: golden row schema does not match {ROW_FIELDS}")
        rows = [tuple(json.loads(line)) for line in fh if line.strip()]
    return header, rows


def diff_against_golden(
    mm: MemoryManagementAlgorithm,
    trace,
    golden_path,
    *,
    warmup: int = 0,
    fields: tuple[str, ...] | None = None,
) -> DiffReport:
    """Replay *trace* through *mm* and diff it against a recorded golden run."""
    header, golden_rows = load_golden(golden_path)
    rows = record_stream(mm, trace, warmup=warmup)
    return DiffReport(
        left_name=mm.name,
        right_name=f"golden:{header.get('algorithm', '?')}",
        left_rows=rows,
        right_rows=golden_rows,
        divergence=first_divergence(rows, golden_rows, fields=fields),
        compared=tuple(fields) if fields is not None else ROW_FIELDS,
    )
