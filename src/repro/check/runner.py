"""Validated grid sweeps: every registered algorithm × workload, audited.

:func:`check_grid` is the engine behind ``repro check`` and the CI
validation gate: it replays a seeded workload grid through every
registered memory-management algorithm (``repro.mmu.MM_NAMES``) under the
invariant oracle and reports, per cell, whether the run survived. Cells
ride :class:`~repro.sim.SimTask` with ``validate=True``, so the grid
shards across worker processes exactly like any other sweep
(``jobs != 1``), and a violated invariant fails only its own cell.

With ``measure_overhead=True`` the same grid additionally runs once
*unvalidated* and the report carries the wall-clock ratio — the number the
acceptance bar "validation ≤ 3× unvalidated" is checked against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

from .._util import check_positive_int
from ..mmu import MM_NAMES, make_mm
from ..obs import Timer
from ..sim.parallel import SimTask, run_tasks, spawn_seeds
from ..workloads import (
    BimodalWorkload,
    MarkovPhaseWorkload,
    UniformWorkload,
    ZipfWorkload,
)

__all__ = [
    "WORKLOAD_NAMES",
    "CheckCell",
    "CheckReport",
    "check_grid",
    "format_check_report",
]

#: smoke-grid defaults (sized for CI: the full validated grid in seconds).
SMOKE_SCALE_PAGES = 1 << 14
SMOKE_ACCESSES = 20_000


def _make_bimodal(scale_pages: int):
    return BimodalWorkload.paper_scaled(scale_pages)


def _make_zipf(scale_pages: int):
    return ZipfWorkload(scale_pages, s=1.0)


def _make_uniform(scale_pages: int):
    return UniformWorkload(scale_pages)


def _make_markov(scale_pages: int):
    return MarkovPhaseWorkload(
        [ZipfWorkload(scale_pages, s=1.0), UniformWorkload(scale_pages)],
        mean_dwell=500,
    )


_WORKLOADS = {
    "bimodal": _make_bimodal,
    "zipf": _make_zipf,
    "uniform": _make_uniform,
    "markov": _make_markov,
}

#: workload axis of the validation grid, in deterministic order.
WORKLOAD_NAMES: tuple[str, ...] = tuple(sorted(_WORKLOADS))


@dataclass(frozen=True, slots=True)
class CheckCell:
    """One validated grid cell: did (algorithm, workload) survive the oracle?"""

    algorithm: str
    workload: str
    ok: bool
    error: str | None = None
    accesses: int = 0
    elapsed_s: float = 0.0

    @property
    def invariant(self) -> str | None:
        """The violated invariant's name, parsed from the failure (if any)."""
        if self.error is None or not self.error.startswith("InvariantViolation: "):
            return None
        return self.error.removeprefix("InvariantViolation: ").split(" ", 1)[0]


@dataclass(slots=True)
class CheckReport:
    """Outcome of one validated grid sweep."""

    cells: list[CheckCell]
    config: dict = field(default_factory=dict)
    wall_elapsed_s: float = 0.0
    #: wall-clock of the identical unvalidated grid (measure_overhead only).
    baseline_elapsed_s: float | None = None

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def violations(self) -> list[CheckCell]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def overhead(self) -> float | None:
        """Validated / unvalidated wall-clock ratio (``None`` if unmeasured)."""
        if self.baseline_elapsed_s is None or self.baseline_elapsed_s <= 0:
            return None
        return self.wall_elapsed_s / self.baseline_elapsed_s


def _grid_tasks(
    names: Sequence[str],
    workload_names: Sequence[str],
    *,
    scale_pages: int,
    accesses: int,
    tlb_entries: int,
    seed: int,
    warmup: int,
    validate: bool,
    deep_every: int | None,
) -> tuple[list[SimTask], list[tuple[str, str]]]:
    """One task per (workload, algorithm); each cell carries its own trace."""
    # one independent child seed per cell: trace generation and any
    # algorithm-internal randomness (hashed buckets) never share streams
    cell_seeds = spawn_seeds(seed, len(workload_names) * (1 + len(names)))
    seeds = iter(cell_seeds)
    tasks: list[SimTask] = []
    coords: list[tuple[str, str]] = []
    for wl_name in workload_names:
        workload = _WORKLOADS[wl_name](scale_pages)
        trace = workload.generate(accesses, seed=next(seeds))
        ram_pages = getattr(workload, "ram_pages", None) or max(64, scale_pages // 4)
        for mm_name in names:
            tasks.append(
                SimTask(
                    key=len(tasks),
                    mm_factory=partial(
                        make_mm, mm_name, tlb_entries, ram_pages, seed=next(seeds)
                    ),
                    algorithm=mm_name,
                    params={"workload": wl_name},
                    warmup=warmup,
                    trace=trace,
                    validate=validate,
                    deep_every=deep_every,
                )
            )
            coords.append((mm_name, wl_name))
    return tasks, coords


def check_grid(
    names: Sequence[str] | None = None,
    workloads: Sequence[str] | None = None,
    *,
    scale_pages: int = SMOKE_SCALE_PAGES,
    accesses: int = SMOKE_ACCESSES,
    tlb_entries: int = 256,
    seed: int = 0,
    warmup_fraction: float = 0.5,
    deep_every: int | None = None,
    jobs: int | None = 1,
    measure_overhead: bool = False,
) -> CheckReport:
    """Run the validated cross-product grid; return a :class:`CheckReport`.

    *names* defaults to every registered algorithm, *workloads* to
    :data:`WORKLOAD_NAMES`. Each cell replays ``accesses`` requests
    (``warmup_fraction`` of them warming the caches) under the invariant
    oracle; a cell whose run violates an invariant is reported with the
    violation message, and the other cells are unaffected.
    """
    names = list(names) if names is not None else list(MM_NAMES)
    workload_names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    unknown = set(workload_names) - set(_WORKLOADS)
    if unknown:
        raise ValueError(
            f"unknown workloads: {sorted(unknown)}; known: {', '.join(WORKLOAD_NAMES)}"
        )
    check_positive_int(accesses, "accesses")
    if not 0 <= warmup_fraction < 1:
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    warmup = int(accesses * warmup_fraction)

    grid = dict(
        scale_pages=scale_pages,
        accesses=accesses,
        tlb_entries=tlb_entries,
        seed=seed,
        warmup=warmup,
    )
    tasks, coords = _grid_tasks(
        names, workload_names, validate=True, deep_every=deep_every, **grid
    )

    with Timer() as wall:
        # retries=0: an invariant violation is deterministic — retrying it
        # would only double the time to the same red cell
        results = run_tasks(tasks, jobs=jobs, retries=0)
    cells = []
    for result, (mm_name, wl_name) in zip(results, coords):
        if result.ok:
            cells.append(
                CheckCell(
                    algorithm=mm_name,
                    workload=wl_name,
                    ok=True,
                    accesses=result.record.ledger.accesses,
                    elapsed_s=result.record.params.get("elapsed_s", 0.0),
                )
            )
        else:
            cells.append(
                CheckCell(
                    algorithm=mm_name, workload=wl_name, ok=False, error=result.error
                )
            )
    report = CheckReport(
        cells=cells,
        config={
            **grid,
            "deep_every": deep_every,
            "algorithms": names,
            "workloads": workload_names,
        },
        wall_elapsed_s=wall.elapsed,
    )

    if measure_overhead:
        base_tasks, _ = _grid_tasks(
            names, workload_names, validate=False, deep_every=None, **grid
        )
        with Timer() as base_wall:
            run_tasks(base_tasks, jobs=jobs, retries=0)
        report.baseline_elapsed_s = base_wall.elapsed
    return report


def format_check_report(report: CheckReport) -> str:
    """Human-readable summary: one line per cell, violations spelled out."""
    lines = []
    for cell in report.cells:
        status = "ok" if cell.ok else "FAIL"
        timing = f"{cell.elapsed_s * 1e3:7.1f} ms" if cell.ok else " " * 10
        lines.append(
            f"  {status:4s} {cell.algorithm:20s} {cell.workload:10s} {timing}"
        )
        if not cell.ok:
            lines.append(f"       {cell.error}")
    n_bad = len(report.violations)
    verdict = (
        f"{len(report.cells)} cells validated, 0 violations"
        if report.ok
        else f"{n_bad}/{len(report.cells)} cells violated an invariant"
    )
    lines.append(f"{verdict} in {report.wall_elapsed_s:.2f} s")
    if report.overhead is not None:
        lines.append(
            f"validation overhead: {report.overhead:.2f}x "
            f"(unvalidated grid: {report.baseline_elapsed_s:.2f} s)"
        )
    return "\n".join(lines)
