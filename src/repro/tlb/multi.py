"""Multi-size TLB: dedicated TLBs per page size, as in real hardware.

The paper's footnote 1 notes that real systems split the TLB by page size
(e.g. Cascade Lake: a 1536-entry L2 TLB for 4 kB/2 MB pages and a separate
16-entry TLB for 1 GB pages). This model lets benchmarks quantify how much
of a huge page's coverage gain survives when the dedicated TLB is tiny.
"""

from __future__ import annotations

from .._util import check_positive_int, is_power_of_two
from ..paging import LRUPolicy
from .tlb import TLB

__all__ = ["MultiSizeTLB", "CASCADE_LAKE_L2"]

#: Cascade Lake-like L2 dTLB layout: page size (in 4 kB base pages) → entries.
CASCADE_LAKE_L2: dict[int, int] = {1: 1536, 512: 1536, 512 * 512: 16}


class MultiSizeTLB:
    """A bank of per-page-size TLBs sharing one hit/miss ledger.

    Parameters
    ----------
    layout:
        Mapping from huge-page size (in base pages, powers of two) to the
        number of entries in that size's dedicated TLB.
    value_bits:
        Payload width shared by all banks.
    """

    def __init__(
        self,
        layout: dict[int, int],
        value_bits: int = 64,
        policy_factory=LRUPolicy,
    ) -> None:
        if not layout:
            raise ValueError("layout must name at least one page size")
        self.banks: dict[int, TLB] = {}
        for size, entries in sorted(layout.items()):
            check_positive_int(size, "page size")
            if not is_power_of_two(size):
                raise ValueError(f"page sizes must be powers of two, got {size}")
            self.banks[size] = TLB(entries, value_bits, policy_factory())

    def bank_for(self, page_size: int) -> TLB:
        """The dedicated TLB for *page_size*; KeyError if unsupported."""
        try:
            return self.banks[page_size]
        except KeyError:
            raise KeyError(
                f"no TLB bank for page size {page_size}; "
                f"supported sizes: {sorted(self.banks)}"
            ) from None

    def lookup(self, vpn: int, page_size: int) -> int | None:
        """Translate base page *vpn* mapped at *page_size* granularity."""
        return self.bank_for(page_size).lookup(vpn // page_size)

    def fill(self, vpn: int, page_size: int, value: int = 0) -> int | None:
        """Install the translation covering *vpn* at *page_size* granularity."""
        return self.bank_for(page_size).fill(vpn // page_size, value)

    def invalidate(self, vpn: int, page_size: int) -> None:
        self.bank_for(page_size).invalidate(vpn // page_size)

    @property
    def hits(self) -> int:
        return sum(b.hits for b in self.banks.values())

    @property
    def misses(self) -> int:
        return sum(b.misses for b in self.banks.values())

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        for b in self.banks.values():
            b.reset_stats()
