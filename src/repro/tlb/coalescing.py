"""Coalescing TLB — the CoLT / Translation-Ranger family (paper Section 7).

Instead of architectural huge pages, these designs let one TLB entry cover
a *run* of translations whenever the OS happened to map virtually
contiguous pages to physically contiguous frames ("incidental
contiguity"). Coverage is therefore opportunistic: sequential allocation
gives long runs; hashed low-associativity placement (the paper's
decoupling substrate) gives none — which is exactly the contrast our
benchmarks draw.

An entry is ``(start_vpn, length, start_pfn)`` with ``length ≤
max_coalesce``; a fill extends an adjacent entry when the new translation
continues its arithmetic progression, else starts a fresh entry.
"""

from __future__ import annotations

from collections import OrderedDict

from .._util import check_positive_int

__all__ = ["CoalescingTLB"]


class _Run:
    __slots__ = ("vpn", "pfn", "length")

    def __init__(self, vpn: int, pfn: int, length: int = 1) -> None:
        self.vpn = vpn
        self.pfn = pfn
        self.length = length

    def covers(self, vpn: int) -> bool:
        return self.vpn <= vpn < self.vpn + self.length

    def translate(self, vpn: int) -> int:
        return self.pfn + (vpn - self.vpn)


class CoalescingTLB:
    """An LRU TLB whose entries cover contiguous translation runs.

    Parameters
    ----------
    entries:
        Number of run entries (each costs one tag, like CoLT).
    max_coalesce:
        Longest run a single entry may cover (hardware: 4–8 for CoLT,
        larger for range TLBs).
    """

    def __init__(self, entries: int, max_coalesce: int = 8) -> None:
        self.entries = check_positive_int(entries, "entries")
        self.max_coalesce = check_positive_int(max_coalesce, "max_coalesce")
        self._runs: OrderedDict[int, _Run] = OrderedDict()  # start vpn -> run
        self._cover: dict[int, _Run] = {}  # vpn -> run
        self.hits = 0
        self.misses = 0
        self.coalesces = 0

    # ------------------------------------------------------------------ api

    def lookup(self, vpn: int) -> int | None:
        """Translate *vpn*: its pfn on a hit (refreshing LRU), else None."""
        run = self._cover.get(vpn)
        if run is None:
            self.misses += 1
            return None
        self.hits += 1
        self._runs.move_to_end(run.vpn)
        return run.translate(vpn)

    def fill(self, vpn: int, pfn: int) -> None:
        """Install the translation *vpn* → *pfn*, coalescing if contiguous.

        Raises ValueError if *vpn* is already covered.
        """
        if vpn in self._cover:
            raise ValueError(f"vpn {vpn} already covered")
        # extend a preceding run ending exactly at (vpn, pfn)?
        prev = self._cover.get(vpn - 1)
        if (
            prev is not None
            and prev.length < self.max_coalesce
            and prev.translate(vpn - 1) + 1 == pfn
        ):
            prev.length += 1
            self._cover[vpn] = prev
            self._runs.move_to_end(prev.vpn)
            self.coalesces += 1
            return
        # extend a following run starting exactly at (vpn+1, pfn+1)?
        nxt = self._cover.get(vpn + 1)
        if nxt is not None and nxt.length < self.max_coalesce and nxt.pfn == pfn + 1:
            del self._runs[nxt.vpn]
            nxt.vpn = vpn
            nxt.pfn = pfn
            nxt.length += 1
            self._cover[vpn] = nxt
            self._runs[vpn] = nxt
            self._runs.move_to_end(vpn)
            self.coalesces += 1
            return
        # fresh entry
        if len(self._runs) >= self.entries:
            _, victim = self._runs.popitem(last=False)
            self._drop_cover(victim)
        run = _Run(vpn, pfn)
        self._runs[vpn] = run
        self._cover[vpn] = run

    def invalidate(self, vpn: int) -> None:
        """Shoot down the whole run covering *vpn* (as real coalesced TLBs
        must — per-page invalidation splits are not implemented in
        hardware). KeyError if not covered."""
        run = self._cover[vpn]
        del self._runs[run.vpn]
        self._drop_cover(run)

    def _drop_cover(self, run: _Run) -> None:
        for v in range(run.vpn, run.vpn + run.length):
            self._cover.pop(v, None)

    # --------------------------------------------------------------- queries

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._cover

    def __len__(self) -> int:
        """Number of run entries in use (≤ entries)."""
        return len(self._runs)

    @property
    def coverage(self) -> int:
        """Total translations currently covered (Σ run lengths)."""
        return len(self._cover)

    @property
    def mean_run_length(self) -> float:
        """Average translations per entry — the 'reach multiplier'."""
        return self.coverage / len(self._runs) if self._runs else 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.coalesces = 0
