"""Translation prefetching — the TEMPO-cited direction (paper [10]).

A TLB miss on huge page ``u`` often predicts an imminent miss on ``u+1``
(scans, BFS frontiers); prefetching the next translation while the walker
is already active hides the second walk. But a prefetch occupies an entry,
so pollution hurts irregular workloads — and the paper's citation [10]
observes that the more huge pages are used, the less prefetching helps
(coverage already absorbed the sequential misses). This wrapper makes both
effects measurable.

``PrefetchingTLB`` wraps a :class:`~repro.tlb.tlb.TLB`; on each demand
fill it also installs the next ``degree`` huge pages' translations,
obtained from a caller-supplied translation function.
"""

from __future__ import annotations

from typing import Callable

from .._util import check_positive_int
from ..paging import LRUPolicy, ReplacementPolicy
from .tlb import TLB

__all__ = ["PrefetchingTLB"]


class PrefetchingTLB:
    """Next-N sequential translation prefetcher over a plain TLB.

    Parameters
    ----------
    entries:
        TLB size.
    translate:
        ``translate(hpn) -> int`` returning the value to install for a
        prefetched huge page (the page-table walk the prefetcher rides on).
    degree:
        Translations prefetched per demand miss.
    """

    def __init__(
        self,
        entries: int,
        translate: Callable[[int], int],
        degree: int = 1,
        value_bits: int = 64,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        check_positive_int(degree, "degree")
        self._tlb = TLB(entries, value_bits, policy or LRUPolicy())
        self._translate = translate
        self.degree = degree
        self.prefetches = 0
        self.useful_prefetches = 0
        self._prefetched: set[int] = set()

    def lookup(self, hpn: int) -> int | None:
        value = self._tlb.lookup(hpn)
        if value is not None and hpn in self._prefetched:
            self._prefetched.discard(hpn)
            self.useful_prefetches += 1
        return value

    def fill(self, hpn: int, value: int = 0) -> None:
        """Demand fill + sequential prefetch of the next *degree* entries."""
        self._demand_fill(hpn, value)
        for nxt in range(hpn + 1, hpn + 1 + self.degree):
            if nxt in self._tlb:
                continue
            self._demand_fill(nxt, self._translate(nxt))
            self._prefetched.add(nxt)
            self.prefetches += 1

    def _demand_fill(self, hpn: int, value: int) -> None:
        victim = self._tlb.fill(hpn, value)
        if victim is not None:
            self._prefetched.discard(victim)

    # --------------------------------------------------------------- metrics

    @property
    def hits(self) -> int:
        return self._tlb.hits

    @property
    def misses(self) -> int:
        return self._tlb.misses

    @property
    def miss_rate(self) -> float:
        return self._tlb.miss_rate

    @property
    def accuracy(self) -> float:
        """Fraction of prefetches that were later hit before eviction."""
        return self.useful_prefetches / self.prefetches if self.prefetches else 0.0

    def __contains__(self, hpn: int) -> bool:
        return hpn in self._tlb

    def __len__(self) -> int:
        return len(self._tlb)
