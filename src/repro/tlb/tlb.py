"""Software model of a translation lookaside buffer.

The TLB is a small key-value cache: keys are virtual huge-page addresses,
values are ``w``-bit payloads (a physical huge-page address, or a packed
decoupled encoding). The paper models it as a fully-associative cache of
``ℓ`` entries with an arbitrary replacement policy (Section 6 uses LRU with
``ℓ = 1536``); real TLBs are set-associative, so a set-associative variant
is provided for ablations.

Updating a resident entry's value (``ψ(u)``) is free in the
address-translation cost model — only *adding* an entry costs ε.
"""

from __future__ import annotations

from typing import Iterator

from .._util import check_positive_int
from ..paging import LRUPolicy, ReplacementPolicy

__all__ = ["TLB", "SetAssociativeTLB"]


class TLB:
    """Fully-associative TLB with a pluggable replacement policy.

    Parameters
    ----------
    entries:
        Number of entries ``ℓ``.
    value_bits:
        Payload width ``w`` in bits; values are range-checked against it.
    policy:
        Replacement policy over huge-page keys (default: a fresh LRU).
    """

    __slots__ = (
        "entries",
        "value_bits",
        "policy",
        "_values",
        "_get",
        "_record",
        "_ghost",
        "hits",
        "misses",
        "fills",
        "_clock",
        "_last_stamp",
    )

    def __init__(
        self,
        entries: int,
        value_bits: int = 64,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        self.entries = check_positive_int(entries, "entries")
        self.value_bits = check_positive_int(value_bits, "value_bits")
        self.policy = policy if policy is not None else LRUPolicy()
        if len(self.policy) != 0:
            raise ValueError("policy must start empty")
        self.policy.bind(self.entries)
        self._values: dict[int, int] = {}
        # bound once: neither the value dict nor the policy object is ever
        # replaced, so the hot lookup pays two calls and no attribute hops
        self._get = self._values.get
        self._record = self.policy.record_access
        # optional miss-attribution ghost (obs/attribution installs one)
        self._ghost = None
        self.hits = 0
        self.misses = 0
        self.fills = 0
        # 0-based index of the current lookup; policies that need trace
        # positions (BeladyOPT) rely on it being exactly the access index.
        self._clock = 0
        # recency stamp of the most recent fill (strict monotonicity floor).
        self._last_stamp = -1

    # ------------------------------------------------------------------ api

    def lookup(self, hpn: int) -> int | None:
        """Translate huge page *hpn*: its value on a hit, None on a miss."""
        t = self._clock
        self._clock = t + 1
        value = self._get(hpn)
        if value is None:
            self.misses += 1
            if self._ghost is not None:
                self._ghost.miss(hpn)
            return None
        self.hits += 1
        self._record(hpn, t)
        return value

    def fill(self, hpn: int, value: int = 0) -> int | None:
        """Install (*hpn* → *value*), evicting if full; return the victim hpn.

        Raises ValueError if *hpn* is already resident (use :meth:`update`)
        or *value* does not fit in ``value_bits``.
        """
        if hpn in self._values:
            raise ValueError(f"huge page {hpn} already resident; use update()")
        self._check_value(value)
        victim = None
        if len(self._values) >= self.entries:
            victim = self.policy.evict(hpn)
            del self._values[victim]
            if self._ghost is not None:
                self._ghost.evicted(victim, hpn)
        # a fill normally follows a missing lookup for the same huge page
        # and is attributed to that access's index — but an access that
        # installs several entries (prefetch, promotion) must not stamp
        # ties: recency-stamped policies would otherwise order the extra
        # entries arbitrarily, so later fills bump strictly past the last
        t = self._clock - 1
        if t <= self._last_stamp:
            t = self._last_stamp + 1
        self._last_stamp = t
        self.policy.insert(hpn, t)
        self._values[hpn] = value
        self.fills += 1
        return victim

    def update(self, hpn: int, value: int) -> None:
        """Rewrite the value of resident *hpn* — free in the cost model."""
        if hpn not in self._values:
            raise KeyError(f"huge page {hpn} not resident")
        self._check_value(value)
        self._values[hpn] = value

    def invalidate(self, hpn: int) -> None:
        """Drop resident *hpn* (a TLB shootdown). KeyError if absent."""
        del self._values[hpn]
        self.policy.remove(hpn)

    def peek(self, hpn: int) -> int | None:
        """Read *hpn*'s value without touching stats or recency."""
        return self._values.get(hpn)

    def _check_value(self, value: int) -> None:
        if not (0 <= value < (1 << self.value_bits)):
            raise ValueError(
                f"value {value} does not fit in w={self.value_bits} bits"
            )

    # --------------------------------------------------------------- queries

    def __contains__(self, hpn: int) -> bool:
        return hpn in self._values

    def __len__(self) -> int:
        return len(self._values)

    def resident(self) -> Iterator[int]:
        """Iterate over resident huge-page numbers."""
        return iter(self._values)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0.0 when no lookups yet)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0

    def check_invariants(self) -> None:
        """Assert the TLB's structural invariants (test/oracle helper).

        At most ``ℓ`` entries are resident, the value map and the
        replacement policy track exactly the same key set, and every stored
        value fits in ``w`` bits.
        """
        assert len(self._values) <= self.entries, (
            f"TLB over capacity: {len(self._values)} > {self.entries}"
        )
        policy_keys = set(self.policy.resident())
        assert policy_keys == set(self._values), (
            "TLB value map and replacement policy disagree: "
            f"{sorted(set(self._values) ^ policy_keys)[:8]} …"
        )
        limit = 1 << self.value_bits
        for hpn, value in self._values.items():
            assert 0 <= value < limit, (
                f"stored value {value} for huge page {hpn} exceeds w={self.value_bits} bits"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TLB entries={self.entries} w={self.value_bits} size={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )


class SetAssociativeTLB:
    """Set-associative TLB: ``entries / associativity`` sets, each a small
    fully-associative TLB indexed by the huge page's low-order bits.

    Hardware TLBs have associativity 4–12; this variant quantifies the gap
    to the paper's fully-associative model.

    The counter/inspection surface mirrors :class:`TLB` (``hits`` /
    ``misses`` / ``fills`` aggregates, ``value_bits``,
    ``check_invariants()``, ``reset_stats()``), so memory-management code
    written against the fully-associative model — including ``validate=True``
    audits and reset-stats sweeps — runs unchanged over either.
    """

    __slots__ = ("entries", "associativity", "n_sets", "value_bits", "_sets")

    def __init__(
        self,
        entries: int,
        associativity: int,
        value_bits: int = 64,
        policy_factory=LRUPolicy,
    ) -> None:
        self.entries = check_positive_int(entries, "entries")
        self.associativity = check_positive_int(associativity, "associativity")
        if entries % associativity != 0:
            raise ValueError(
                f"entries ({entries}) must be divisible by associativity ({associativity})"
            )
        self.n_sets = entries // associativity
        self.value_bits = check_positive_int(value_bits, "value_bits")
        self._sets = [
            TLB(associativity, value_bits, policy_factory()) for _ in range(self.n_sets)
        ]

    def _set_of(self, hpn: int) -> TLB:
        return self._sets[hpn % self.n_sets]

    def lookup(self, hpn: int) -> int | None:
        return self._set_of(hpn).lookup(hpn)

    def fill(self, hpn: int, value: int = 0) -> int | None:
        return self._set_of(hpn).fill(hpn, value)

    def update(self, hpn: int, value: int) -> None:
        self._set_of(hpn).update(hpn, value)

    def invalidate(self, hpn: int) -> None:
        self._set_of(hpn).invalidate(hpn)

    def peek(self, hpn: int) -> int | None:
        return self._set_of(hpn).peek(hpn)

    def __contains__(self, hpn: int) -> bool:
        return hpn in self._set_of(hpn)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident(self) -> Iterator[int]:
        for s in self._sets:
            yield from s.resident()

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._sets)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._sets)

    @property
    def fills(self) -> int:
        return sum(s.fills for s in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        for s in self._sets:
            s.reset_stats()

    def check_invariants(self) -> None:
        """Assert the TLB's structural invariants (test/oracle helper).

        Every set holds :class:`TLB`'s invariants, every resident key
        actually indexes to the set holding it, and the aggregate occupancy
        never exceeds ``entries``.
        """
        n_sets = self.n_sets
        for i, s in enumerate(self._sets):
            s.check_invariants()
            for hpn in s.resident():
                assert hpn % n_sets == i, (
                    f"huge page {hpn} stored in set {i}, indexes to set {hpn % n_sets}"
                )
        assert len(self) <= self.entries, (
            f"TLB over capacity: {len(self)} > {self.entries}"
        )
