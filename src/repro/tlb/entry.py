"""TLB entry representation.

A TLB entry maps a *virtual huge-page address* (the high-order bits of a
virtual address) to a ``w``-bit *value*. Classically the value is one
physical huge-page address; under huge-page decoupling it is the packed
array of per-base-page locations produced by
:mod:`repro.core.encoding`. The entry's *coverage* is the set of base-page
translations it can answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import check_positive_int, is_power_of_two

__all__ = ["TLBEntry", "huge_page_of", "coverage_range"]


def huge_page_of(vpn: int, h: int) -> int:
    """Virtual huge-page number containing base page *vpn* for huge-page
    size ``h`` (the paper's ``r(v)`` divided by ``h``)."""
    return vpn // h


def coverage_range(hpn: int, h: int) -> range:
    """Base-page numbers covered by huge page *hpn* of size *h*."""
    return range(hpn * h, (hpn + 1) * h)


@dataclass(frozen=True, slots=True)
class TLBEntry:
    """An immutable (huge page, size, value) triple.

    ``page_size`` is the huge-page size in base pages (a power of two,
    1 = base page). ``value`` is the raw ``w``-bit payload.
    """

    hpn: int
    page_size: int
    value: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.page_size, "page_size")
        if not is_power_of_two(self.page_size):
            raise ValueError(f"page_size must be a power of two, got {self.page_size}")
        if self.hpn < 0:
            raise ValueError(f"hpn must be non-negative, got {self.hpn}")
        if self.value < 0:
            raise ValueError(f"value must be non-negative, got {self.value}")

    @property
    def coverage(self) -> range:
        """Base-page numbers this entry can translate."""
        return coverage_range(self.hpn, self.page_size)

    def covers(self, vpn: int) -> bool:
        """True iff base page *vpn* falls inside this entry's huge page."""
        return self.hpn == vpn // self.page_size
