"""Context switches and the TLB: flushing vs ASID tagging.

The paper's introduction notes that modern TLBs hold translations for
multiple applications simultaneously. Hardware got there in two steps:
legacy TLBs *flushed* on every context switch (each tenant restarts cold),
while tagged TLBs attach an address-space identifier (ASID) to each entry
and let tenants' entries compete for capacity instead. These two wrappers
make the difference measurable on interleaved traces.

Both wrap the plain :class:`~repro.tlb.tlb.TLB` and present a
``lookup(asid, hpn)`` / ``fill(asid, hpn, value)`` interface.
"""

from __future__ import annotations

from ..paging import LRUPolicy, ReplacementPolicy
from .tlb import TLB

__all__ = ["AsidTaggedTLB", "FlushingTLB"]


class AsidTaggedTLB:
    """Entries tagged by (ASID, huge page); switches cost nothing, capacity
    is shared."""

    def __init__(
        self,
        entries: int,
        value_bits: int = 64,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        self._tlb = TLB(entries, value_bits, policy or LRUPolicy())
        self.switches = 0
        self._current_asid: int | None = None

    def lookup(self, asid: int, hpn: int) -> int | None:
        if asid != self._current_asid:
            self.switches += self._current_asid is not None
            self._current_asid = asid
        return self._tlb.lookup((asid, hpn))

    def fill(self, asid: int, hpn: int, value: int = 0) -> None:
        self._tlb.fill((asid, hpn), value)

    @property
    def hits(self) -> int:
        return self._tlb.hits

    @property
    def misses(self) -> int:
        return self._tlb.misses

    @property
    def miss_rate(self) -> float:
        return self._tlb.miss_rate

    def __len__(self) -> int:
        return len(self._tlb)


class FlushingTLB:
    """Legacy behaviour: the whole TLB is invalidated on every ASID change."""

    def __init__(
        self,
        entries: int,
        value_bits: int = 64,
        policy_factory=LRUPolicy,
    ) -> None:
        self.entries = entries
        self.value_bits = value_bits
        self._policy_factory = policy_factory
        self._tlb = TLB(entries, value_bits, policy_factory())
        self._current_asid: int | None = None
        self.switches = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, asid: int, hpn: int) -> int | None:
        if asid != self._current_asid:
            if self._current_asid is not None:
                self.switches += 1
                # flush: new empty TLB, stats carried over externally
                self._tlb = TLB(self.entries, self.value_bits, self._policy_factory())
            self._current_asid = asid
        out = self._tlb.lookup(hpn)
        if out is None:
            self.misses += 1
        else:
            self.hits += 1
        return out

    def fill(self, asid: int, hpn: int, value: int = 0) -> None:
        if asid != self._current_asid:
            raise ValueError("fill must follow a lookup for the same ASID")
        self._tlb.fill(hpn, value)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def __len__(self) -> int:
        return len(self._tlb)
