"""Context switches and the TLB: flushing vs ASID tagging.

The paper's introduction notes that modern TLBs hold translations for
multiple applications simultaneously. Hardware got there in two steps:
legacy TLBs *flushed* on every context switch (each tenant restarts cold),
while tagged TLBs attach an address-space identifier (ASID) to each entry
and let tenants' entries compete for capacity instead. These two wrappers
make the difference measurable on interleaved traces.

Both wrap the plain :class:`~repro.tlb.tlb.TLB` and present a
``lookup(asid, hpn)`` / ``fill(asid, hpn, value)`` interface, plus the
full statistics/maintenance surface of :class:`~repro.tlb.tlb.TLB`
(``fills``, ``accesses``, ``reset_stats``, ``resident``, ``peek``,
``invalidate``, ``check_invariants``) so tests and probes can treat any
of the three interchangeably.

These wrappers study the *tagging policy* in isolation. Whole-system
multi-tenant runs instead use the first-class ASID contract on
:class:`~repro.mmu.base.MemoryManagementAlgorithm` (``bind_asid_space`` /
``run_asid`` / ``shootdown_asid``), where the stride encodes the ASID into
the translation unit number itself — the same tag, realised in address
space rather than in a tuple key, which is what lets every registered
algorithm participate without changing its TLB type.
"""

from __future__ import annotations

from ..paging import LRUPolicy, ReplacementPolicy
from .tlb import TLB

__all__ = ["AsidTaggedTLB", "FlushingTLB"]


class AsidTaggedTLB:
    """Entries tagged by (ASID, huge page); switches cost nothing, capacity
    is shared."""

    def __init__(
        self,
        entries: int,
        value_bits: int = 64,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        self.entries = entries
        self.value_bits = value_bits
        self._tlb = TLB(entries, value_bits, policy or LRUPolicy())
        self.switches = 0
        self._current_asid: int | None = None

    def lookup(self, asid: int, hpn: int) -> int | None:
        if asid != self._current_asid:
            self.switches += self._current_asid is not None
            self._current_asid = asid
        return self._tlb.lookup((asid, hpn))

    def fill(self, asid: int, hpn: int, value: int = 0) -> tuple[int, int] | None:
        """Install the tagged entry; return the evicted ``(asid, hpn)`` key
        (possibly another tenant's — capacity is shared) or None."""
        return self._tlb.fill((asid, hpn), value)

    def update(self, asid: int, hpn: int, value: int) -> None:
        self._tlb.update((asid, hpn), value)

    def invalidate(self, asid: int, hpn: int) -> None:
        """Drop one tagged entry (a single-page shootdown)."""
        self._tlb.invalidate((asid, hpn))

    def invalidate_asid(self, asid: int) -> int:
        """Shoot down every entry of *asid*; return how many were dropped.

        Other tenants' entries are untouched — the tagged TLB's selling
        point over a flush."""
        victims = [key for key in self._tlb.resident() if key[0] == asid]
        for key in victims:
            self._tlb.invalidate(key)
        return len(victims)

    def peek(self, asid: int, hpn: int) -> int | None:
        return self._tlb.peek((asid, hpn))

    def resident(self):
        """Iterate over resident ``(asid, hpn)`` keys."""
        return self._tlb.resident()

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._tlb

    @property
    def hits(self) -> int:
        return self._tlb.hits

    @property
    def misses(self) -> int:
        return self._tlb.misses

    @property
    def fills(self) -> int:
        return self._tlb.fills

    @property
    def accesses(self) -> int:
        return self._tlb.accesses

    @property
    def miss_rate(self) -> float:
        return self._tlb.miss_rate

    def reset_stats(self) -> None:
        self._tlb.reset_stats()
        self.switches = 0

    def check_invariants(self) -> None:
        """The inner TLB's structural invariants, plus: every key is an
        ``(asid, hpn)`` pair of non-negative ints."""
        self._tlb.check_invariants()
        for key in self._tlb.resident():
            assert (
                isinstance(key, tuple)
                and len(key) == 2
                and key[0] >= 0
                and key[1] >= 0
            ), f"malformed tagged key {key!r}"

    def __len__(self) -> int:
        return len(self._tlb)


class FlushingTLB:
    """Legacy behaviour: the whole TLB is invalidated on every ASID change.

    Statistics (``hits``/``misses``/``fills``/``switches``) live on the
    wrapper and survive flushes; the inner TLB is rebuilt empty on each
    ASID change.
    """

    def __init__(
        self,
        entries: int,
        value_bits: int = 64,
        policy_factory=LRUPolicy,
    ) -> None:
        self.entries = entries
        self.value_bits = value_bits
        self._policy_factory = policy_factory
        self._tlb = TLB(entries, value_bits, policy_factory())
        self._current_asid: int | None = None
        self.switches = 0
        self.hits = 0
        self.misses = 0
        self.fills = 0

    def lookup(self, asid: int, hpn: int) -> int | None:
        if asid != self._current_asid:
            if self._current_asid is not None:
                self.switches += 1
                # flush: new empty TLB, stats carried over externally
                self._tlb = TLB(self.entries, self.value_bits, self._policy_factory())
            self._current_asid = asid
        out = self._tlb.lookup(hpn)
        if out is None:
            self.misses += 1
        else:
            self.hits += 1
        return out

    def fill(self, asid: int, hpn: int, value: int = 0) -> int | None:
        if asid != self._current_asid:
            raise ValueError("fill must follow a lookup for the same ASID")
        victim = self._tlb.fill(hpn, value)
        self.fills += 1
        return victim

    def update(self, asid: int, hpn: int, value: int) -> None:
        if asid != self._current_asid:
            raise KeyError(f"asid {asid} has no resident entries (flushed)")
        self._tlb.update(hpn, value)

    def invalidate(self, asid: int, hpn: int) -> None:
        """Drop one entry of the *current* ASID; entries of any other ASID
        were already flushed, so asking for them is an error."""
        if asid != self._current_asid:
            raise KeyError(f"asid {asid} has no resident entries (flushed)")
        self._tlb.invalidate(hpn)

    def invalidate_asid(self, asid: int) -> int:
        """Shoot down *asid*'s entries; a no-op unless it is current (any
        other tenant's entries are gone by construction)."""
        if asid != self._current_asid:
            return 0
        dropped = len(self._tlb)
        if dropped:
            self._tlb = TLB(self.entries, self.value_bits, self._policy_factory())
        return dropped

    def peek(self, asid: int, hpn: int) -> int | None:
        if asid != self._current_asid:
            return None
        return self._tlb.peek(hpn)

    def resident(self):
        """Iterate over resident ``(asid, hpn)`` keys (current ASID only —
        everything else has been flushed)."""
        asid = self._current_asid
        return iter(()) if asid is None else ((asid, hpn) for hpn in self._tlb.resident())

    def __contains__(self, key: tuple[int, int]) -> bool:
        asid, hpn = key
        return asid == self._current_asid and hpn in self._tlb

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self._tlb.reset_stats()
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.switches = 0

    def check_invariants(self) -> None:
        """The live inner TLB's invariants, plus capacity."""
        self._tlb.check_invariants()
        assert len(self._tlb) <= self.entries

    def __len__(self) -> int:
        return len(self._tlb)
