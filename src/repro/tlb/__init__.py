"""TLB substrate: fully-associative, set-associative, multi-size, and
coalescing models."""

from .asid import AsidTaggedTLB, FlushingTLB
from .coalescing import CoalescingTLB
from .entry import TLBEntry, coverage_range, huge_page_of
from .hierarchy import TwoLevelTLB
from .prefetch import PrefetchingTLB
from .multi import CASCADE_LAKE_L2, MultiSizeTLB
from .tlb import TLB, SetAssociativeTLB

__all__ = [
    "TLB",
    "SetAssociativeTLB",
    "MultiSizeTLB",
    "CASCADE_LAKE_L2",
    "CoalescingTLB",
    "AsidTaggedTLB",
    "FlushingTLB",
    "TwoLevelTLB",
    "PrefetchingTLB",
    "TLBEntry",
    "huge_page_of",
    "coverage_range",
]
