"""Two-level TLB hierarchy (L1/L2), as shipped in every modern core.

Real translation caching is hierarchical: a tiny, fully-associative L1
(tens of entries, ~1 cycle) backed by a large L2 (~1536 entries, ~7
cycles), with the page walk only on an L2 miss. The paper's single-ε model
corresponds to pricing only the L2 miss; this model exposes all three
outcomes so the *effective* ε of a hierarchy can be measured::

    eps_effective = (l1_cost·l1_misses + walk_cost·l2_misses) / accesses

Inclusive policy: an L2 victim's L1 entry is invalidated (as on Intel
cores); fills install into both levels.
"""

from __future__ import annotations

from .._util import check_positive_int
from ..paging import LRUPolicy
from .tlb import TLB

__all__ = ["TwoLevelTLB"]


class TwoLevelTLB:
    """Inclusive L1/L2 TLB pair with per-level hit counters.

    Parameters
    ----------
    l1_entries / l2_entries:
        Sizes of the two levels; ``l1_entries < l2_entries`` expected.
    value_bits:
        Payload width (both levels store the same value).
    """

    def __init__(self, l1_entries: int, l2_entries: int, value_bits: int = 64) -> None:
        check_positive_int(l1_entries, "l1_entries")
        check_positive_int(l2_entries, "l2_entries")
        if l1_entries > l2_entries:
            raise ValueError(
                f"inclusive hierarchy needs l1 ({l1_entries}) <= l2 ({l2_entries})"
            )
        self.l1 = TLB(l1_entries, value_bits, LRUPolicy())
        self.l2 = TLB(l2_entries, value_bits, LRUPolicy())
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ api

    def lookup(self, hpn: int) -> int | None:
        """Translate *hpn*: L1, then L2 (promoting into L1), else None."""
        value = self.l1.lookup(hpn)
        if value is not None:
            self.l1_hits += 1
            return value
        value = self.l2.lookup(hpn)
        if value is not None:
            self.l2_hits += 1
            self._promote(hpn, value)
            return value
        self.misses += 1
        return None

    def fill(self, hpn: int, value: int = 0) -> None:
        """Install a translation into both levels (after a walk)."""
        victim = self.l2.fill(hpn, value)
        if victim is not None and victim in self.l1:
            self.l1.invalidate(victim)  # inclusion
        self._promote(hpn, value)

    def invalidate(self, hpn: int) -> None:
        """Shootdown from both levels (no error if absent)."""
        if hpn in self.l1:
            self.l1.invalidate(hpn)
        if hpn in self.l2:
            self.l2.invalidate(hpn)

    def _promote(self, hpn: int, value: int) -> None:
        if hpn in self.l1:
            self.l1.update(hpn, value)
            return
        self.l1.fill(hpn, value)  # L1 victim stays in L2 (inclusive)

    # --------------------------------------------------------------- metrics

    @property
    def accesses(self) -> int:
        return self.l1_hits + self.l2_hits + self.misses

    def effective_epsilon(self, l1_miss_cost: float, walk_cost: float) -> float:
        """Mean translation cost per access, in the same unit as the two
        cost arguments (e.g. IO-equivalents): L1 hits are free, an L1 miss
        that hits L2 costs *l1_miss_cost*, an L2 miss costs
        *l1_miss_cost + walk_cost*."""
        total = self.accesses
        if total == 0:
            return 0.0
        return (
            l1_miss_cost * (self.l2_hits + self.misses) + walk_cost * self.misses
        ) / total

    def __contains__(self, hpn: int) -> bool:
        return hpn in self.l2

    def __len__(self) -> int:
        return len(self.l2)

    def reset_stats(self) -> None:
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        self.l1.reset_stats()
        self.l2.reset_stats()
