"""Plain-text reporting: aligned tables and log-scale ASCII charts.

The benchmark scripts print the same rows/series the paper plots; the ASCII
chart gives the log-log *shape* of Figure 1 directly in the terminal.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..sim import RunRecord

__all__ = [
    "format_table",
    "format_figure1",
    "ascii_log_chart",
    "format_throughput",
    "format_metrics",
]


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(r[i].rjust(widths[i]) for i in range(len(columns))) for r in cells)
    return f"{header}\n{sep}\n{body}"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_figure1(records: Sequence[RunRecord], title: str = "") -> str:
    """The Figure 1 table: huge-page size, IOs, TLB misses (+ ratios to
    the h=1 row, making the orders-of-magnitude statement explicit)."""
    base_ios = next((r.ios for r in records if r.params.get("h") == 1), None)
    base_misses = next((r.tlb_misses for r in records if r.params.get("h") == 1), None)
    rows = []
    for r in records:
        row = {
            "h": r.params.get("h"),
            "IOs": r.ios,
            "TLB misses": r.tlb_misses,
        }
        if base_ios:
            row["IO xh1"] = round(r.ios / base_ios, 3) if base_ios else ""
        if base_misses:
            row["miss xh1"] = round(r.tlb_misses / base_misses, 4) if base_misses else ""
        rows.append(row)
    table = format_table(rows)
    chart_ios = ascii_log_chart(
        [r.params["h"] for r in records], [r.ios for r in records], label="IOs"
    )
    chart_miss = ascii_log_chart(
        [r.params["h"] for r in records],
        [r.tlb_misses for r in records],
        label="TLB misses",
    )
    parts = [title, table, chart_ios, chart_miss] if title else [table, chart_ios, chart_miss]
    return "\n\n".join(parts)


def format_throughput(records: Sequence[RunRecord]) -> str:
    """Per-run simulator throughput (the ``elapsed_s`` / ``accesses_per_s``
    stamps the sweep drivers put in ``params``)."""
    rows = []
    for r in records:
        row = {"algorithm": r.algorithm}
        if "h" in r.params:
            row["h"] = r.params["h"]
        row["accesses"] = r.ledger.accesses
        row["elapsed_ms"] = round(r.params.get("elapsed_s", 0.0) * 1e3, 2)
        row["kacc/s"] = round(r.params.get("accesses_per_s", 0.0) / 1e3, 1)
        rows.append(row)
    return format_table(rows)


def format_metrics(
    windows: Sequence[dict],
    columns: Sequence[str] = (
        "window", "start", "end", "accesses", "ios", "tlb_misses",
        "io_rate", "tlb_miss_rate", "working_set", "cost",
    ),
    max_rows: int = 24,
) -> str:
    """Render :class:`~repro.obs.metrics.IntervalMetrics` windows as a
    table (evenly subsampled past *max_rows*, so long runs stay legible)."""
    windows = list(windows)
    if len(windows) > max_rows:
        step = -(-len(windows) // max_rows)  # ceil division
        windows = windows[::step]
    return format_table(windows, columns)


def ascii_log_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    label: str = "y",
    width: int = 48,
) -> str:
    """A horizontal log-scale bar chart (one row per x)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    logs = [math.log10(y) if y > 0 else 0.0 for y in ys]
    lo = min(logs, default=0.0)
    hi = max(logs, default=1.0)
    span = (hi - lo) or 1.0
    lines = [f"{label} (log scale, {10**lo:.2g} .. {10**hi:.2g})"]
    for x, y, ly in zip(xs, ys, logs):
        bar = "#" * max(1, round((ly - lo) / span * width)) if y > 0 else ""
        lines.append(f"  h={x:>5}  |{bar:<{width}}| {y:.3g}")
    return "\n".join(lines)
