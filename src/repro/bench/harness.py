"""Benchmark harness: the experiments behind every figure and ablation.

Each function is a *library* entry point — the ``benchmarks/`` scripts call
these with paper-shaped parameters and print the resulting tables, so the
same experiment can also be run programmatically at any scale.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core import ATCostModel, huge_page_trace, paging_faults
from ..mmu import BasePageMM, DecoupledMM, HybridMM, MemoryManagementAlgorithm
from ..obs import IntervalMetrics, Probe, Timer, accesses_per_second
from ..paging import LRUPolicy
from ..sim import DEFAULT_HUGE_PAGE_SIZES, RunRecord, simulate, sweep_huge_page_sizes
from ..workloads import BimodalWorkload, Graph500Workload, RandomWalkWorkload, Workload

__all__ = [
    "figure1_experiment",
    "figure1_workload",
    "compare_algorithms",
    "epsilon_sweep",
    "simulation_theorem_experiment",
    "hybrid_sweep",
]


def figure1_workload(which: str, scale_pages: int = 1 << 18, seed=0):
    """Build the Figure 1 workload *which* ∈ {"a", "b", "c"} plus its
    paper-ratio cache size, scaled to ``scale_pages`` of VA (panels a/b) or
    the given Kronecker scale (panel c, where *scale_pages* is interpreted
    as the graph scale exponent if < 64).

    Returns ``(workload, ram_pages)``.
    """
    if which == "a":
        wl = BimodalWorkload.paper_scaled(scale_pages)
        return wl, wl.ram_pages
    if which == "b":
        wl = RandomWalkWorkload.paper_scaled(scale_pages, graph_seed=seed)
        return wl, wl.ram_pages
    if which == "c":
        graph_scale = scale_pages if scale_pages < 64 else 14
        # skip the hub-dominated early levels: the paper's trace window is
        # "a period of high memory pressure and high TLB miss rate"
        wl = Graph500Workload(scale=graph_scale, graph_seed=seed, skip_fraction=0.75)
        return wl, wl.ram_pages(0.99)
    raise ValueError(f"unknown Figure 1 panel {which!r}; use 'a', 'b' or 'c'")


def figure1_experiment(
    workload: Workload,
    *,
    ram_pages: int,
    tlb_entries: int = 1536,
    n_accesses: int = 200_000,
    warmup_fraction: float = 0.5,
    sizes: Sequence[int] = DEFAULT_HUGE_PAGE_SIZES,
    touched_ram_fraction: float | None = None,
    seed=0,
    probe: Probe | None = None,
    metrics_every: int | None = None,
) -> list[RunRecord]:
    """IOs and TLB misses vs huge-page size — the Figure 1 measurement.

    One trace is generated and replayed through a physical-huge-page
    simulator per size; the first ``warmup_fraction`` of accesses warms the
    caches (the paper warms with as many accesses as it measures).

    With *touched_ram_fraction* set, ``ram_pages`` is recomputed as that
    fraction of the trace's *touched* page count — the Figure 1c regime,
    where the paper sets the cache just below the pages the windowed trace
    actually touches (520 MB of 525 MB) while the graph is far larger.

    *probe* / *metrics_every* are forwarded to
    :func:`~repro.sim.simulator.sweep_huge_page_sizes`; every record comes
    back stamped with its wall-clock throughput.
    """
    trace = workload.generate(n_accesses, seed=seed)
    if touched_ram_fraction is not None:
        touched = len(np.unique(trace))
        ram_pages = max(1, int(touched * touched_ram_fraction))
    warmup = int(len(trace) * warmup_fraction)
    return sweep_huge_page_sizes(
        trace,
        tlb_entries=tlb_entries,
        ram_pages=ram_pages,
        sizes=sizes,
        warmup=warmup,
        probe=probe,
        metrics_every=metrics_every,
    )


def compare_algorithms(
    trace,
    algorithms: dict[str, MemoryManagementAlgorithm],
    *,
    warmup: int = 0,
    probe: Probe | None = None,
    metrics_every: int | None = None,
) -> list[RunRecord]:
    """Replay one trace through several algorithms; one record each.

    Each record's ``params`` carries per-run throughput (``elapsed_s``,
    ``accesses_per_s``); *probe* / *metrics_every* attach observability as
    in :func:`~repro.sim.simulator.sweep_huge_page_sizes`.
    """
    records = []
    for label, mm in algorithms.items():
        metrics = IntervalMetrics(every=metrics_every) if metrics_every else None
        with Timer() as timer:
            ledger = simulate(mm, trace, warmup=warmup, probe=probe, metrics=metrics)
        records.append(
            RunRecord(
                algorithm=label,
                ledger=ledger,
                params={
                    "elapsed_s": timer.elapsed,
                    "accesses_per_s": accesses_per_second(
                        ledger.accesses, timer.elapsed
                    ),
                },
                metrics=metrics,
            )
        )
    return records


def epsilon_sweep(
    records: Sequence[RunRecord],
    epsilons: Sequence[float] = (0.001, 0.01, 0.1),
) -> list[dict]:
    """Total cost ``C`` of each record at each ε — the crossover table.

    Returns rows ``{"algorithm", "epsilon", "cost"}`` sorted by ε then cost.
    """
    rows = []
    for eps in epsilons:
        model = ATCostModel(epsilon=eps)
        for r in records:
            rows.append(
                {"algorithm": r.algorithm, "epsilon": eps, "cost": model.cost(r.ledger)}
            )
    rows.sort(key=lambda row: (row["epsilon"], row["cost"]))
    return rows


def simulation_theorem_experiment(
    workload: Workload,
    *,
    ram_pages: int,
    tlb_entries: int = 64,
    n_accesses: int = 100_000,
    warmup_fraction: float = 0.3,
    physical_h: int | None = None,
    w: int = 64,
    seed=0,
) -> dict:
    """Eq. (3) end to end: Z versus its own ingredients and both pure
    strategies.

    Runs, on one trace:

    * ``Z`` — :class:`~repro.mmu.DecoupledMM` (Theorem 3 parameters);
    * ``base`` — :class:`~repro.mmu.BasePageMM` (IO-optimal flavour);
    * ``huge`` — physical huge pages of *physical_h* (TLB-optimal flavour).
      Theorem 4 compares against algorithms using huge pages of size at
      most ``h_max``, so *physical_h* defaults to Z's ``h_max``;
    * the reference counts ``C_TLB(X)`` (LRU over Z's huge pages, ℓ
      entries) and ``C_IO(Y)`` (LRU over base pages, ``(1−δ)P`` frames).

    Returns a dict with the three records, the reference counts, and Z's
    measured slack against the eq. (3) right-hand side.
    """
    from ..mmu import PhysicalHugePageMM  # local import to avoid cycle noise

    trace = workload.generate(n_accesses, seed=seed)
    warmup = int(len(trace) * warmup_fraction)

    z = DecoupledMM(tlb_entries, ram_pages, w=w, scheme="iceberg", seed=seed)
    if physical_h is None:
        physical_h = z.hmax
    base = BasePageMM(tlb_entries, ram_pages)
    huge = PhysicalHugePageMM(
        tlb_entries, (ram_pages // physical_h) * physical_h, huge_page_size=physical_h
    )
    records = compare_algorithms(
        trace, {"decoupled-Z": z, "base-page": base, f"physical-h{physical_h}": huge},
        warmup=warmup,
    )

    measured = trace[warmup:]
    # References must see the warmed state too: replay warmup first.
    hmax = z.hmax
    m = z.params.max_pages
    x_misses = _warmed_faults(huge_page_trace(trace, hmax), warmup, tlb_entries)
    y_ios = _warmed_faults(np.asarray(trace), warmup, m)

    return {
        "records": records,
        "hmax": hmax,
        "x_tlb_misses": x_misses,
        "y_ios": y_ios,
        "n_measured": len(measured),
    }


def _warmed_faults(trace: np.ndarray, warmup: int, capacity: int) -> int:
    """LRU faults on ``trace[warmup:]`` with state warmed on ``trace[:warmup]``."""
    from ..paging import PageCache

    cache = PageCache(capacity, LRUPolicy())
    for p in trace[:warmup]:
        cache.access(int(p))
    cache.reset_stats()
    for p in trace[warmup:]:
        cache.access(int(p))
    return cache.misses


def hybrid_sweep(
    workload: Workload,
    *,
    ram_pages: int,
    tlb_entries: int = 64,
    n_accesses: int = 100_000,
    warmup_fraction: float = 0.3,
    chunks: Sequence[int] = (1, 2, 4, 8, 16),
    w: int = 64,
    seed=0,
) -> list[RunRecord]:
    """Section 8 hybrid ablation: coverage and IO cost vs chunk size."""
    trace = workload.generate(n_accesses, seed=seed)
    warmup = int(len(trace) * warmup_fraction)
    records = []
    for chunk in chunks:
        if ram_pages % chunk:
            continue
        mm = HybridMM(tlb_entries, ram_pages, chunk, w=w, seed=seed)
        ledger = simulate(mm, trace, warmup=warmup)
        records.append(
            RunRecord(
                algorithm=mm.name,
                ledger=ledger,
                params={"chunk": chunk, "coverage": mm.coverage},
            )
        )
    return records
