"""Benchmark harness: the experiments behind every figure and ablation.

Each function is a *library* entry point — the ``benchmarks/`` scripts call
these with paper-shaped parameters and print the resulting tables, so the
same experiment can also be run programmatically at any scale.

Every sweep here accepts ``jobs=``: the grid cells are sharded across
worker processes by :mod:`repro.sim.parallel`, with results identical to
the serial run. Algorithm construction goes through the module-level
``make_*_mm`` factories (or any other picklable zero-argument callable) so
the specs survive the trip into a ``ProcessPoolExecutor`` worker.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np

from ..core import ATCostModel, huge_page_trace
from ..mmu import (
    BasePageMM,
    DecoupledMM,
    HybridMM,
    MemoryManagementAlgorithm,
    PhysicalHugePageMM,
)
from ..obs import Probe
from ..paging import LRUPolicy
from ..sim import (
    DEFAULT_HUGE_PAGE_SIZES,
    RunRecord,
    SimTask,
    run_records,
    sweep_huge_page_sizes,
)
from ..workloads import BimodalWorkload, Graph500Workload, RandomWalkWorkload, Workload

__all__ = [
    "figure1_experiment",
    "figure1_workload",
    "compare_algorithms",
    "epsilon_sweep",
    "simulation_theorem_experiment",
    "hybrid_sweep",
    "make_base_mm",
    "make_physical_mm",
    "make_decoupled_mm",
    "make_hybrid_mm",
]


# ------------------------------------------------------- picklable factories
#
# Module-level factory builders (never lambdas/closures): the partials they
# return pickle by reference to these functions, so a grid spec built from
# them survives ProcessPoolExecutor dispatch regardless of start method.


def make_base_mm(tlb_entries: int, ram_pages: int):
    """Picklable zero-arg factory for :class:`~repro.mmu.BasePageMM`."""
    return partial(BasePageMM, tlb_entries, ram_pages)


def make_physical_mm(tlb_entries: int, ram_pages: int, huge_page_size: int):
    """Picklable zero-arg factory for :class:`~repro.mmu.PhysicalHugePageMM`
    (RAM rounded down to whole huge frames)."""
    ram_h = (ram_pages // huge_page_size) * huge_page_size
    return partial(
        PhysicalHugePageMM, tlb_entries, ram_h, huge_page_size=huge_page_size
    )


def make_decoupled_mm(tlb_entries: int, ram_pages: int, **kwargs):
    """Picklable zero-arg factory for :class:`~repro.mmu.DecoupledMM`."""
    return partial(DecoupledMM, tlb_entries, ram_pages, **kwargs)


def make_hybrid_mm(tlb_entries: int, ram_pages: int, chunk: int, **kwargs):
    """Picklable zero-arg factory for :class:`~repro.mmu.HybridMM`."""
    return partial(HybridMM, tlb_entries, ram_pages, chunk, **kwargs)


def _prebuilt_mm(mm: MemoryManagementAlgorithm) -> MemoryManagementAlgorithm:
    """Identity factory wrapping an already-constructed algorithm.

    Serially this hands back the caller's instance (today's semantics: the
    caller can inspect it after the run); in a worker the instance arrives
    as a pickled copy, so the parent's object stays untouched.
    """
    return mm


def _as_factory(mm):
    if isinstance(mm, MemoryManagementAlgorithm):
        return partial(_prebuilt_mm, mm)
    if callable(mm):
        return mm
    raise TypeError(
        f"expected a MemoryManagementAlgorithm or a zero-arg factory, got {mm!r}"
    )


# ---------------------------------------------------------------- experiments


def figure1_workload(which: str, scale_pages: int = 1 << 18, seed=0):
    """Build the Figure 1 workload *which* ∈ {"a", "b", "c"} plus its
    paper-ratio cache size, scaled to ``scale_pages`` of VA (panels a/b) or
    the given Kronecker scale (panel c, where *scale_pages* is interpreted
    as the graph scale exponent if < 64).

    Returns ``(workload, ram_pages)``.
    """
    if which == "a":
        wl = BimodalWorkload.paper_scaled(scale_pages)
        return wl, wl.ram_pages
    if which == "b":
        wl = RandomWalkWorkload.paper_scaled(scale_pages, graph_seed=seed)
        return wl, wl.ram_pages
    if which == "c":
        graph_scale = scale_pages if scale_pages < 64 else 14
        # skip the hub-dominated early levels: the paper's trace window is
        # "a period of high memory pressure and high TLB miss rate"
        wl = Graph500Workload(scale=graph_scale, graph_seed=seed, skip_fraction=0.75)
        return wl, wl.ram_pages(0.99)
    raise ValueError(f"unknown Figure 1 panel {which!r}; use 'a', 'b' or 'c'")


def figure1_experiment(
    workload: Workload,
    *,
    ram_pages: int,
    tlb_entries: int = 1536,
    n_accesses: int = 200_000,
    warmup_fraction: float = 0.5,
    sizes: Sequence[int] = DEFAULT_HUGE_PAGE_SIZES,
    touched_ram_fraction: float | None = None,
    seed=0,
    probe: Probe | None = None,
    metrics_every: int | None = None,
    heartbeat=None,
    jobs: int | None = 1,
    task_timeout: float | None = None,
) -> list[RunRecord]:
    """IOs and TLB misses vs huge-page size — the Figure 1 measurement.

    One trace is generated and replayed through a physical-huge-page
    simulator per size; the first ``warmup_fraction`` of accesses warms the
    caches (the paper warms with as many accesses as it measures).

    With *touched_ram_fraction* set, ``ram_pages`` is recomputed as that
    fraction of the trace's *touched* page count — the Figure 1c regime,
    where the paper sets the cache just below the pages the windowed trace
    actually touches (520 MB of 525 MB) while the graph is far larger.

    *probe* / *metrics_every* / *heartbeat* / *jobs* / *task_timeout* are
    forwarded to
    :func:`~repro.sim.simulator.sweep_huge_page_sizes`; every record comes
    back stamped with its wall-clock throughput.
    """
    trace = workload.generate(n_accesses, seed=seed)
    if touched_ram_fraction is not None:
        touched = len(np.unique(trace))
        ram_pages = max(1, int(touched * touched_ram_fraction))
    warmup = int(len(trace) * warmup_fraction)
    return sweep_huge_page_sizes(
        trace,
        tlb_entries=tlb_entries,
        ram_pages=ram_pages,
        sizes=sizes,
        warmup=warmup,
        probe=probe,
        metrics_every=metrics_every,
        heartbeat=heartbeat,
        jobs=jobs,
        task_timeout=task_timeout,
    )


def compare_algorithms(
    trace,
    algorithms: dict,
    *,
    warmup: int = 0,
    probe: Probe | None = None,
    metrics_every: int | None = None,
    jobs: int | None = 1,
    task_timeout: float | None = None,
    validate: bool = False,
) -> list[RunRecord]:
    """Replay one trace through several algorithms; one record each.

    *algorithms* maps record label → algorithm instance or picklable
    zero-arg factory (see the ``make_*_mm`` helpers). Each record's
    ``params`` carries per-run throughput (``elapsed_s``,
    ``accesses_per_s``); *probe* / *metrics_every* attach observability as
    in :func:`~repro.sim.simulator.sweep_huge_page_sizes` (serial-only).

    With ``jobs != 1`` the algorithms run concurrently; instances are then
    copied into the workers, so the caller's objects keep their pre-run
    state (serially they are mutated in place, as always).
    ``validate=True`` audits every run with the :mod:`repro.check`
    invariant oracle (identical costs).
    """
    tasks = [
        SimTask(
            key=i,
            mm_factory=_as_factory(mm),
            algorithm=label,
            warmup=warmup,
            validate=validate,
        )
        for i, (label, mm) in enumerate(algorithms.items())
    ]
    return run_records(
        tasks,
        trace=np.asarray(trace),
        jobs=jobs,
        probe=probe,
        metrics_every=metrics_every,
        task_timeout=task_timeout,
    )


def epsilon_sweep(
    records: Sequence[RunRecord],
    epsilons: Sequence[float] = (0.001, 0.01, 0.1),
) -> list[dict]:
    """Total cost ``C`` of each record at each ε — the crossover table.

    Pure post-processing: the records typically come from
    :func:`compare_algorithms` (which parallelizes with ``jobs=``); pricing
    the ledgers is a few multiplications and stays in-process.

    Returns rows ``{"algorithm", "epsilon", "cost"}`` sorted by ε then cost.
    """
    rows = []
    for eps in epsilons:
        model = ATCostModel(epsilon=eps)
        for r in records:
            rows.append(
                {"algorithm": r.algorithm, "epsilon": eps, "cost": model.cost(r.ledger)}
            )
    rows.sort(key=lambda row: (row["epsilon"], row["cost"]))
    return rows


def simulation_theorem_experiment(
    workload: Workload,
    *,
    ram_pages: int,
    tlb_entries: int = 64,
    n_accesses: int = 100_000,
    warmup_fraction: float = 0.3,
    physical_h: int | None = None,
    w: int = 64,
    seed=0,
    jobs: int | None = 1,
) -> dict:
    """Eq. (3) end to end: Z versus its own ingredients and both pure
    strategies.

    Runs, on one trace:

    * ``Z`` — :class:`~repro.mmu.DecoupledMM` (Theorem 3 parameters);
    * ``base`` — :class:`~repro.mmu.BasePageMM` (IO-optimal flavour);
    * ``huge`` — physical huge pages of *physical_h* (TLB-optimal flavour).
      Theorem 4 compares against algorithms using huge pages of size at
      most ``h_max``, so *physical_h* defaults to Z's ``h_max``;
    * the reference counts ``C_TLB(X)`` (LRU over Z's huge pages, ℓ
      entries) and ``C_IO(Y)`` (LRU over base pages, ``(1−δ)P`` frames).

    Returns a dict with the three records, the reference counts, and Z's
    measured slack against the eq. (3) right-hand side.
    """
    trace = workload.generate(n_accesses, seed=seed)
    warmup = int(len(trace) * warmup_fraction)

    # one probe instance in the parent to read the derived parameters;
    # the grid itself is described by picklable factories
    z_factory = make_decoupled_mm(
        tlb_entries, ram_pages, w=w, scheme="iceberg", seed=seed
    )
    z = z_factory()
    if physical_h is None:
        physical_h = z.hmax
    records = compare_algorithms(
        trace,
        {
            "decoupled-Z": z_factory,
            "base-page": make_base_mm(tlb_entries, ram_pages),
            f"physical-h{physical_h}": make_physical_mm(
                tlb_entries, ram_pages, physical_h
            ),
        },
        warmup=warmup,
        jobs=jobs,
    )

    measured = trace[warmup:]
    # References must see the warmed state too: replay warmup first.
    hmax = z.hmax
    m = z.params.max_pages
    x_misses = _warmed_faults(huge_page_trace(trace, hmax), warmup, tlb_entries)
    y_ios = _warmed_faults(np.asarray(trace), warmup, m)

    return {
        "records": records,
        "hmax": hmax,
        "x_tlb_misses": x_misses,
        "y_ios": y_ios,
        "n_measured": len(measured),
    }


def _warmed_faults(trace: np.ndarray, warmup: int, capacity: int) -> int:
    """LRU faults on ``trace[warmup:]`` with state warmed on ``trace[:warmup]``."""
    from ..paging import PageCache

    cache = PageCache(capacity, LRUPolicy())
    for p in trace[:warmup]:
        cache.access(int(p))
    cache.reset_stats()
    for p in trace[warmup:]:
        cache.access(int(p))
    return cache.misses


def _hybrid_coverage(mm: HybridMM) -> dict:
    """Stamp callback: record the chunk's TLB-entry coverage ``q``."""
    return {"coverage": mm.coverage}


def hybrid_sweep(
    workload: Workload,
    *,
    ram_pages: int,
    tlb_entries: int = 64,
    n_accesses: int = 100_000,
    warmup_fraction: float = 0.3,
    chunks: Sequence[int] = (1, 2, 4, 8, 16),
    w: int = 64,
    seed=0,
    jobs: int | None = 1,
    task_timeout: float | None = None,
) -> list[RunRecord]:
    """Section 8 hybrid ablation: coverage and IO cost vs chunk size.

    Each chunk size is an independent cell, sharded across workers with
    ``jobs != 1``; records carry ``{"chunk", "coverage"}`` plus the runner's
    timing stamps.
    """
    trace = workload.generate(n_accesses, seed=seed)
    warmup = int(len(trace) * warmup_fraction)
    tasks = [
        SimTask(
            key=i,
            mm_factory=make_hybrid_mm(tlb_entries, ram_pages, chunk, w=w, seed=seed),
            params={"chunk": chunk},
            warmup=warmup,
            stamp=_hybrid_coverage,
        )
        for i, chunk in enumerate(chunks)
        if ram_pages % chunk == 0
    ]
    return run_records(
        tasks, trace=trace, jobs=jobs, task_timeout=task_timeout
    )
