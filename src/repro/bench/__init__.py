"""Benchmark harness and reporting utilities."""

from .harness import (
    compare_algorithms,
    epsilon_sweep,
    figure1_experiment,
    figure1_workload,
    hybrid_sweep,
    make_base_mm,
    make_decoupled_mm,
    make_hybrid_mm,
    make_physical_mm,
    simulation_theorem_experiment,
)
from .report import (
    ascii_log_chart,
    format_figure1,
    format_metrics,
    format_table,
    format_throughput,
)
from .hotloop import HOTLOOP_CONFIG, bench_hotloop, key_stream
from .smoke import bench_sweep, machine_info, save_bench
from .store import diff_records, load_records, save_records

__all__ = [
    "figure1_experiment",
    "figure1_workload",
    "compare_algorithms",
    "epsilon_sweep",
    "simulation_theorem_experiment",
    "hybrid_sweep",
    "make_base_mm",
    "make_physical_mm",
    "make_decoupled_mm",
    "make_hybrid_mm",
    "bench_sweep",
    "bench_hotloop",
    "key_stream",
    "HOTLOOP_CONFIG",
    "machine_info",
    "save_bench",
    "format_table",
    "format_figure1",
    "format_metrics",
    "format_throughput",
    "ascii_log_chart",
    "save_records",
    "load_records",
    "diff_records",
]
