"""Persisting and diffing experiment results.

Benchmarks write human tables to ``benchmarks/results/``; this module adds
machine-readable persistence so runs can be compared across code versions
(the regression-tracking habit the HPC guides recommend): a result file is
JSON with the package version, the experiment parameters, and one flat row
per measurement.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..sim import RunRecord

__all__ = ["save_records", "load_records", "diff_records"]

_FORMAT_VERSION = 1


def save_records(path, records: Sequence[RunRecord], params: dict | None = None) -> Path:
    """Write *records* (+ experiment *params*) as JSON."""
    from .. import __version__

    path = Path(path)
    payload = {
        "format": _FORMAT_VERSION,
        "repro_version": __version__,
        "params": params or {},
        "rows": [r.as_row() for r in records],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_records(path) -> dict:
    """Read a result file; returns the payload dict (``rows`` is a list of
    flat dicts, not RunRecords — ledgers are not reconstructed)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {payload.get('format')!r} in {path}"
        )
    return payload


def diff_records(
    old: dict,
    new: dict,
    *,
    key: str = "h",
    rel_tol: float = 0.0,
    ignore: Sequence[str] = ("elapsed_s", "accesses_per_s"),
) -> list[dict]:
    """Compare two payloads row-by-row (matched on *key*).

    Returns one dict per differing metric:
    ``{"key", "metric", "old", "new", "rel_change"}``. *rel_tol* suppresses
    changes whose relative magnitude is below it (measurement noise).
    *ignore* drops metrics entirely — by default the wall-clock timing
    stamps the sweep drivers put in ``params``, which vary run to run and
    say nothing about the simulated results.
    """
    old_rows = {row.get(key): row for row in old["rows"]}
    new_rows = {row.get(key): row for row in new["rows"]}
    diffs: list[dict] = []
    for k in sorted(set(old_rows) | set(new_rows), key=lambda v: (v is None, v)):
        a, b = old_rows.get(k), new_rows.get(k)
        if a is None or b is None:
            diffs.append(
                {"key": k, "metric": "<row>", "old": a is not None, "new": b is not None,
                 "rel_change": None}
            )
            continue
        for metric in sorted(set(a) | set(b)):
            if metric in ignore:
                continue
            va, vb = a.get(metric), b.get(metric)
            if va == vb:
                continue
            rel = None
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)) and va:
                rel = (vb - va) / abs(va)
                if abs(rel) < rel_tol:
                    continue
            diffs.append(
                {"key": k, "metric": metric, "old": va, "new": vb, "rel_change": rel}
            )
    return diffs
