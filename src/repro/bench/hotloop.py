"""``repro bench --hotloop``: per-component hot-loop microbenchmarks.

The sweep benchmark (:mod:`repro.bench.smoke`) measures end-to-end
throughput; when it regresses, this module answers *which layer* got
slower. Each component is timed on its own fixed key stream:

* ``tlb`` — :class:`~repro.tlb.TLB` lookup + demand fill;
* ``cache:<policy>`` — :class:`~repro.paging.PageCache.access` under every
  registered replacement policy;
* ``mm:<name>`` — ``run()`` for every registry algorithm under the
  configured simulation engine (``mm_engine``, default ``"array"`` — the
  struct-of-arrays batch engine; algorithms it does not cover fall back
  to the object replay with identical counters);
* ``mm@object:<name>`` — the object-engine twin of ``mm:<name>`` for the
  fast-path algorithms, so the probe-overhead gate compares probed runs
  (which ride the object fast paths) against a like-for-like twin and the
  array-engine speedup is visible inside one payload;
* ``mm:<name>+fail`` / ``mm@object:<name>+fail`` — the same engine pair
  over a deliberately undersized cell (:data:`FAILURE_MMS`) whose stream
  fails mid-run, so the engine-identity gate also covers the batch
  kernel's paging-failure bailout path; the gate additionally requires
  these rows to report ``paging_failures > 0`` (the cell must keep
  failing, or the rows silently stop testing the bailout);
* ``mm+sampled:<name>`` — ``run()`` with a batch-safe
  :class:`~repro.obs.sampling.SamplingProbe` attached, for every fast-path
  algorithm. The probe must not perturb the simulation (identical
  counters) and must keep the fast path — ``tools/check_bench.py`` gates
  the probed/unprobed throughput ratio within the payload;
* ``mm+online:<name>`` — ``run()`` with the streaming analysis probes
  (:class:`~repro.obs.online.OnlineWorkingSet` +
  :class:`~repro.obs.online.OnlineStackDistance`, hashed-VPN sampled at
  the ``online_*_stride`` config rates) attached through a
  :class:`~repro.obs.events.MultiProbe`. Same contract, same gate: the
  online analyses ride the fast path and stay within
  ``--probe-tolerance`` of the unprobed twin;
* ``mm+attrib:<name>`` — ``run()`` with an
  :class:`~repro.obs.attribution.AttributionProbe` observing the MM's
  eviction sites. The ghost-list classification rides the structures' own
  miss paths, so the same contract applies: counters identical to the
  unprobed twin and throughput within ``--probe-tolerance``.

Key streams come from a tiny in-module LCG (not numpy), so every counter
in the payload is reproducible across numpy versions and the CI gate
(``tools/check_bench.py``) can always compare them exactly. Every
component is timed best-of-``repeats`` on a fresh instance (the counters
are deterministic, so repeats agree on everything but the clock), which
keeps the ratio gates meaningful on noisy shared runners. The payload
(``BENCH_hotloop.json``) mirrors the sweep payload's shape: ``machine`` +
``config`` provenance, one row per component with ``ops_per_s`` and its
deterministic counters, and a single aggregate (``geomean_ops_per_s``)
for the throughput gate.
"""

from __future__ import annotations

import math

import numpy as np

from ..mmu import MM_NAMES, make_mm
from ..obs import (
    AttributionProbe,
    MultiProbe,
    OnlineStackDistance,
    OnlineWorkingSet,
    SamplingProbe,
    Timer,
    accesses_per_second,
)
from ..paging import POLICIES, PageCache, make_policy
from ..tlb import TLB
from .smoke import BENCH_FORMAT, machine_info

__all__ = [
    "FAILURE_MMS",
    "HOTLOOP_CONFIG",
    "SAMPLED_MMS",
    "bench_hotloop",
    "key_stream",
]

#: Fixed microbenchmark shape; two payloads are comparable iff equal.
HOTLOOP_CONFIG: dict = {
    "ops": 100_000,  # keys per tlb/cache component
    "mm_accesses": 50_000,  # trace length per mm component
    "universe": 1 << 14,  # key universe (pages)
    "hot_universe": 1 << 9,  # the hot subset (fits every component) ...
    "hot_percent": 90,  # ... receiving this share of accesses
    "tlb_entries": 1024,  # tlb component capacity
    "cache_pages": 1024,  # cache component capacity
    "mm_tlb_entries": 256,  # registry-MM tlb size
    "mm_ram_pages": 4096,  # registry-MM ram size
    "mm_engine": "array",  # engine for the mm:<name> rows
    "sampled_stride": 64,  # SamplingProbe rate is 1/this for mm+sampled
    "online_tau": 1024,  # OnlineWorkingSet window for mm+online
    "online_sample_every": 256,  # OnlineWorkingSet window stride
    "online_ws_stride": 64,  # OnlineWorkingSet rate is 1/this
    "online_sd_stride": 256,  # OnlineStackDistance rate is 1/this
    "attrib_ghost_capacity": 65536,  # AttributionProbe ghost bound for mm+attrib
    "fail_accesses": 4_000,  # trace length per mm failure row
    "fail_hot_percent": 50,  # hot share of the failure key streams
    "fail_mm_seed": 2,  # mm seed for the failure rows (streams use "seed")
    "repeats": 5,  # best-of timing repeats per component
    "seed": 0,
}

#: MMs with a batched/vectorized fast path — the ``mm+sampled`` and
#: ``mm+online`` sets.
SAMPLED_MMS: tuple[str, ...] = ("physical-huge", "decoupled", "hybrid", "thp")

#: paging-failure cells (``mm:<name>+fail`` rows): TLB/RAM deliberately
#: undersized for the key-stream working set, so the allocator runs out of
#: frames and the stream fails mid-run — the engine-identity gate then
#: also covers the array engine's bailout accounting. The same geometry
#: backs the committed failure goldens (``tests/check/goldens.py``).
FAILURE_MMS: dict = {
    "decoupled": {"tlb_entries": 32, "ram_pages": 64, "universe": 1024},
    "hybrid": {"tlb_entries": 32, "ram_pages": 128, "universe": 512},
}


def key_stream(
    n: int,
    universe: int,
    hot_universe: int,
    hot_percent: int,
    seed: int = 0,
) -> list[int]:
    """A deterministic skewed key stream from a 64-bit LCG.

    *hot_percent* of the keys land in ``[0, hot_universe)``, the rest are
    uniform over ``[0, universe)``. Pure Python on purpose: unlike numpy
    random streams, the output is identical on every numpy version, so
    the gate can always compare the resulting counters bit-for-bit.
    """
    mask = (1 << 64) - 1
    state = (seed * 0x9E3779B97F4A7C15 + 1) & mask
    keys = []
    append = keys.append
    for _ in range(n):
        state = (state * 6364136223846793005 + 1442695040888963407) & mask
        r = state >> 33
        if r % 100 < hot_percent:
            append((r >> 7) % hot_universe)
        else:
            append((r >> 7) % universe)
    return keys


def _time_loop(fn, keys) -> tuple[float, int]:
    """Run ``fn(key)`` over *keys* under the wall timer."""
    with Timer() as t:
        for k in keys:
            fn(k)
    return t.elapsed, len(keys)


def _best_of(once, repeats: int) -> tuple[float, dict]:
    """Run ``once() -> (elapsed, counters)`` *repeats* times; keep the
    fastest clock. Each call builds a fresh component, so the
    deterministic counters are identical across repeats and the minimum
    wall time is the least-noise estimate of the hot-loop cost."""
    best = math.inf
    counters: dict = {}
    for _ in range(max(1, repeats)):
        elapsed, counters = once()
        best = min(best, elapsed)
    return best, counters


def _row(component: str, ops: int, elapsed: float, counters: dict) -> dict:
    return {
        "component": component,
        "ops": ops,
        "elapsed_s": elapsed,
        "ops_per_s": accesses_per_second(ops, elapsed),
        "counters": counters,
    }


def _bench_tlb(keys, cfg) -> dict:
    def once():
        tlb = TLB(entries=cfg["tlb_entries"])
        lookup, fill = tlb.lookup, tlb.fill

        def access(hpn):
            if lookup(hpn) is None:
                fill(hpn)

        elapsed, _ = _time_loop(access, keys)
        return elapsed, {
            "hits": tlb.hits, "misses": tlb.misses, "fills": tlb.fills
        }

    elapsed, counters = _best_of(once, cfg["repeats"])
    return _row("tlb", len(keys), elapsed, counters)


def _bench_cache(name: str, keys, cfg) -> dict:
    def once():
        kwargs = {"seed": cfg["seed"]} if name == "random" else {}
        cache = PageCache(cfg["cache_pages"], make_policy(name, **kwargs))
        elapsed, _ = _time_loop(cache.access, keys)
        return elapsed, {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
        }

    elapsed, counters = _best_of(once, cfg["repeats"])
    return _row(f"cache:{name}", len(keys), elapsed, counters)


def _ledger_counters(ledger) -> dict:
    return {
        "accesses": ledger.accesses,
        "ios": ledger.ios,
        "tlb_hits": ledger.tlb_hits,
        "tlb_misses": ledger.tlb_misses,
        "decoding_misses": ledger.decoding_misses,
        "paging_failures": ledger.paging_failures,
    }


def _sampled_probe(cfg):
    return SamplingProbe(1 / cfg["sampled_stride"], seed=cfg["seed"])


def _online_probe(cfg):
    return MultiProbe([
        OnlineWorkingSet(
            cfg["online_tau"],
            sample_every=cfg["online_sample_every"],
            rate=1 / cfg["online_ws_stride"],
            seed=cfg["seed"],
        ),
        OnlineStackDistance(
            rate=1 / cfg["online_sd_stride"], seed=cfg["seed"]
        ),
    ])


def _attrib_probe(cfg):
    return AttributionProbe(ghost_capacity=cfg["attrib_ghost_capacity"])


#: probe factory per probed-row prefix; plain ``mm:`` rows use ``None``.
_PROBE_VARIANTS = (
    ("mm+sampled", _sampled_probe),
    ("mm+online", _online_probe),
    ("mm+attrib", _attrib_probe),
)


def _mm_once(
    name: str, trace, cfg, *, probe_factory=None, engine: str = "object"
) -> tuple[float, dict]:
    """One fresh-MM run, optionally with a freshly built probe attached."""
    mm = make_mm(
        name, cfg["mm_tlb_entries"], cfg["mm_ram_pages"], seed=cfg["seed"],
        engine=engine,
    )
    if probe_factory is not None:
        mm.probe = probe_factory(cfg)
        # provenance probes hook the MM's eviction sites, not the access
        # stream — duck-typed so plain probes need no attach step
        observe = getattr(mm.probe, "observe", None)
        if observe is not None:
            observe(mm)
    with Timer() as t:
        ledger = mm.run(trace)
    return t.elapsed, _ledger_counters(ledger)


def _bench_mm(name: str, trace, cfg) -> dict:
    def once():
        return _mm_once(name, trace, cfg, engine=cfg["mm_engine"])

    elapsed, counters = _best_of(once, cfg["repeats"])
    return _row(f"mm:{name}", len(trace), elapsed, counters)


def _bench_mm_probed(name: str, trace, cfg) -> list[dict]:
    """Time the plain, object-twin, and probed runs of one fast-path MM,
    interleaved.

    The ``mm:`` row uses the configured ``mm_engine``; the ``mm@object:``
    twin re-runs it on the object engine, giving the probe gate a
    like-for-like denominator (probes ride the object fast paths) and
    making the array-engine speedup measurable within one payload. The
    probed counters must match the plain rows exactly (probes never
    perturb the simulation) and throughput must stay within the gate's
    probe tolerance — together these pin that each probe rides the fast
    path instead of forcing the per-access replay. Alternating the
    variants within the same repeat loop exposes every side of those
    ratios to the same machine conditions, so slow clock or load drift
    cancels out of the gate instead of masquerading as probe overhead.
    """
    variants: list[tuple[str, dict]] = [
        ("mm", {"engine": cfg["mm_engine"]}),
        ("mm@object", {}),
    ]
    variants += [
        (prefix, {"probe_factory": factory})
        for prefix, factory in _PROBE_VARIANTS
    ]
    best = {prefix: math.inf for prefix, _ in variants}
    counters: dict = {prefix: {} for prefix, _ in variants}
    for _ in range(max(1, cfg["repeats"])):
        for prefix, kwargs in variants:
            elapsed, counters[prefix] = _mm_once(name, trace, cfg, **kwargs)
            best[prefix] = min(best[prefix], elapsed)
    return [
        _row(f"{prefix}:{name}", len(trace), best[prefix], counters[prefix])
        for prefix, _ in variants
    ]


def _bench_mm_fail(name: str, cfg) -> list[dict]:
    """Time one paging-failure cell on both engines, interleaved.

    Same twin discipline as :func:`_bench_mm_probed`: the ``mm:`` row runs
    the configured engine, the ``mm@object:`` row re-runs the identical
    stream on the object engine, and the check_bench engine gate holds
    their counters — here including ``paging_failures`` — bit-identical.
    The cell geometry comes from :data:`FAILURE_MMS`; the mm seed is
    pinned separately (``fail_mm_seed``) because the failure pattern is a
    property of allocator hashing, not of the key stream.
    """
    geom = FAILURE_MMS[name]
    trace = np.asarray(
        key_stream(
            cfg["fail_accesses"],
            geom["universe"],
            geom["universe"] // 8,
            cfg["fail_hot_percent"],
            seed=cfg["seed"],
        ),
        dtype=np.int64,
    )
    variants = (("mm", cfg["mm_engine"]), ("mm@object", "object"))
    best = {prefix: math.inf for prefix, _ in variants}
    counters: dict = {prefix: {} for prefix, _ in variants}
    for _ in range(max(1, cfg["repeats"])):
        for prefix, engine in variants:
            mm = make_mm(
                name,
                geom["tlb_entries"],
                geom["ram_pages"],
                seed=cfg["fail_mm_seed"],
                engine=engine,
            )
            with Timer() as t:
                ledger = mm.run(trace)
            best[prefix] = min(best[prefix], t.elapsed)
            counters[prefix] = _ledger_counters(ledger)
    return [
        _row(f"{prefix}:{name}+fail", len(trace), best[prefix], counters[prefix])
        for prefix, _ in variants
    ]


def bench_hotloop(*, seed: int | None = None) -> tuple[list[dict], dict]:
    """Run every component microbenchmark; return ``(rows, payload)``.

    *seed* overrides the preset stream seed — overriding makes the payload
    incomparable to baselines recorded with the preset, which the gate's
    config check catches.
    """
    cfg = dict(HOTLOOP_CONFIG)
    if seed is not None:
        cfg["seed"] = seed

    keys = key_stream(
        cfg["ops"], cfg["universe"], cfg["hot_universe"], cfg["hot_percent"],
        seed=cfg["seed"],
    )
    # ndarray on purpose: the fast-path MMs hand the trace straight to
    # batch-safe probes, whose vectorized paths then skip the list→array
    # conversion; the replayed VPNs (and so every counter) are unchanged.
    trace = np.asarray(keys[: cfg["mm_accesses"]], dtype=np.int64)

    rows: list[dict] = []
    probed_rows: list[dict] = []
    with Timer() as wall:
        rows.append(_bench_tlb(keys, cfg))
        for name in sorted(POLICIES):
            rows.append(_bench_cache(name, keys, cfg))
        for name in MM_NAMES:
            if name in SAMPLED_MMS:
                plain, *probed = _bench_mm_probed(name, trace, cfg)
                rows.append(plain)
                probed_rows.extend(probed)
            else:
                rows.append(_bench_mm(name, trace, cfg))
        for name in sorted(FAILURE_MMS):
            rows.extend(_bench_mm_fail(name, cfg))
        rows.extend(probed_rows)

    # geometric mean: a 2x regression in one component moves the aggregate
    # the same amount whether the component is fast or slow in absolute terms
    geomean = math.exp(
        sum(math.log(r["ops_per_s"]) for r in rows) / len(rows)
    )
    payload = {
        "format": BENCH_FORMAT,
        "kind": "bench_hotloop",
        "machine": machine_info(),
        "config": cfg,
        "wall_elapsed_s": wall.elapsed,
        "geomean_ops_per_s": geomean,
        "rows": rows,
    }
    return rows, payload
