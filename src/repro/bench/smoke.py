"""``repro bench``: a reproducible sweep benchmark with machine provenance.

One fixed Figure-1-shaped sweep (bimodal workload, paper cache ratios) run
through :func:`~repro.sim.simulator.sweep_huge_page_sizes` at a chosen
``jobs`` level, summarized as a ``BENCH_sweep.json`` payload:

* ``machine`` — CPU count, Python and numpy versions, platform string, so
  trajectory files are comparable across machines;
* ``config`` — the exact grid (two payloads are comparable iff equal);
* ``rows`` — one flat row per sweep cell (simulated counters + per-task
  timing stamps);
* ``snapshot`` — the merged :class:`~repro.obs.snapshot.ObsSnapshot` of the
  sweep (sampled histograms + exact counters), collected through per-task
  :class:`~repro.obs.sampling.SamplingProbe` instances riding the fast
  paths, parallel-safe at any ``jobs``;
* ``wall_elapsed_s`` / ``accesses_per_s`` — end-to-end sweep throughput,
  the number the CI perf-regression gate (``tools/check_bench.py``) tracks.

The ``--smoke`` grid is sized for CI (a couple of seconds); the full grid
is the paper's eleven sizes at 4× the accesses.
"""

from __future__ import annotations

import json
import os
import platform
from functools import partial
from pathlib import Path

import numpy as np

from ..obs import ObsSnapshot, SamplingProbe, Timer, accesses_per_second
from ..sim import DEFAULT_HUGE_PAGE_SIZES, RunRecord, sweep_huge_page_sizes
from ..workloads import BimodalWorkload

__all__ = ["BENCH_FORMAT", "bench_sweep", "machine_info", "save_bench"]

BENCH_FORMAT = 1

#: CI-sized grid: finishes in seconds even on a small runner.
SMOKE_CONFIG: dict = {
    "scale_pages": 1 << 16,
    "accesses": 60_000,
    "tlb_entries": 256,
    "sizes": (1, 4, 16, 64, 256),
    "seed": 0,
}

#: The paper-shaped grid for local trajectory tracking.
FULL_CONFIG: dict = {
    "scale_pages": 1 << 18,
    "accesses": 240_000,
    "tlb_entries": 1024,
    "sizes": DEFAULT_HUGE_PAGE_SIZES,
    "seed": 0,
}


def machine_info() -> dict:
    """Provenance stamped into every payload: enough to judge whether two
    trajectory files were measured on comparable hardware/software."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
    }


def bench_sweep(
    *,
    smoke: bool = False,
    jobs: int | None = 1,
    seed: int | None = None,
    accesses: int | None = None,
) -> tuple[list[RunRecord], dict]:
    """Run the benchmark sweep; return ``(records, payload)``.

    The payload is JSON-ready (see module docstring). *seed* / *accesses*
    override the preset grid — overriding makes the payload incomparable to
    baselines recorded with the preset, which the config check catches.
    """
    cfg = dict(SMOKE_CONFIG if smoke else FULL_CONFIG)
    if seed is not None:
        cfg["seed"] = seed
    if accesses is not None:
        cfg["accesses"] = accesses

    workload = BimodalWorkload.paper_scaled(cfg["scale_pages"])
    trace = workload.generate(cfg["accesses"], seed=cfg["seed"])
    warmup = len(trace) // 2
    with Timer() as wall:
        records = sweep_huge_page_sizes(
            trace,
            tlb_entries=cfg["tlb_entries"],
            ram_pages=workload.ram_pages,
            sizes=cfg["sizes"],
            warmup=warmup,
            jobs=jobs,
            # batch-safe sampling: the fast paths stay on, the workers ship
            # back mergeable per-cell snapshots, costs are unperturbed
            snapshot=partial(SamplingProbe, 1 / 64, seed=cfg["seed"]),
        )
    merged = ObsSnapshot.merge_all(r.snapshot for r in records)
    total_accesses = sum(r.ledger.accesses for r in records)
    payload = {
        "format": BENCH_FORMAT,
        "kind": "bench_sweep",
        "smoke": smoke,
        "jobs": jobs,
        "machine": machine_info(),
        "config": {
            "scale_pages": cfg["scale_pages"],
            "accesses": cfg["accesses"],
            "tlb_entries": cfg["tlb_entries"],
            "sizes": [int(h) for h in cfg["sizes"]],
            "seed": cfg["seed"],
            "warmup": warmup,
            "ram_pages": workload.ram_pages,
        },
        "wall_elapsed_s": wall.elapsed,
        "total_accesses": total_accesses,
        "accesses_per_s": accesses_per_second(total_accesses, wall.elapsed),
        "rows": [r.as_row() for r in records],
        "snapshot": merged.as_dict(),
    }
    return records, payload


def save_bench(payload: dict, path) -> Path:
    """Write a bench payload as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
