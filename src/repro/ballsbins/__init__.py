"""Dynamic balls-and-bins substrate (paper Section 4).

RAM-allocation schemes are modeled as balls-and-bins games: bins are RAM
buckets, balls are pages, and the adversary is the RAM-replacement policy.
This package provides the game, the placement strategies (OneChoice,
Greedy[d], Greedy-Left, Iceberg[d]), oblivious adversaries, and the theory
curves of eqs. (5)–(6) and Theorem 2.
"""

from .adversary import batch_turnover, cyclic_reinsertion, fifo_churn, fill, random_churn
from .batch import BatchDecisions, replay_game_events
from .analysis import (
    GameResult,
    greedy_max_load_bound,
    iceberg_max_load_bound,
    one_choice_max_load_bound,
    run_game,
)
from .game import BallsAndBinsGame
from .strategies import (
    GreedyLeftStrategy,
    GreedyStrategy,
    IcebergStrategy,
    OneChoiceStrategy,
    PlacementStrategy,
)

__all__ = [
    "BallsAndBinsGame",
    "BatchDecisions",
    "replay_game_events",
    "PlacementStrategy",
    "OneChoiceStrategy",
    "GreedyStrategy",
    "GreedyLeftStrategy",
    "IcebergStrategy",
    "fill",
    "fifo_churn",
    "random_churn",
    "cyclic_reinsertion",
    "batch_turnover",
    "GameResult",
    "run_game",
    "one_choice_max_load_bound",
    "greedy_max_load_bound",
    "iceberg_max_load_bound",
]
