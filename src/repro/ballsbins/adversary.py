"""Oblivious adversaries for the dynamic balls-and-bins game.

Theorem 2 holds against any adversary that fixes its insert/delete sequence
without seeing the strategy's random bits; these generators produce the
request patterns our benchmarks and tests replay. Each yields ``(op, ball)``
pairs where ``op`` is ``"i"`` (insert) or ``"d"`` (delete).

In the RAM-allocation reading, an insertion is the RAM-replacement policy
caching a page and a deletion is an eviction; churn patterns therefore mimic
the steady state of LRU/FIFO under memory pressure.
"""

from __future__ import annotations

from typing import Iterator

from .._util import as_rng, check_positive_int

__all__ = [
    "fill",
    "fifo_churn",
    "random_churn",
    "cyclic_reinsertion",
    "batch_turnover",
]

Op = tuple[str, int]


def fill(m: int, start: int = 0) -> Iterator[Op]:
    """Insert ``m`` distinct balls and stop — the static load test."""
    check_positive_int(m, "m")
    for ball in range(start, start + m):
        yield ("i", ball)


def fifo_churn(m: int, ops: int, start: int = 0) -> Iterator[Op]:
    """Fill to ``m`` live balls, then alternate delete-oldest / insert-new.

    Models a FIFO RAM-replacement policy at full occupancy: every live ball
    is eventually replaced, so loads fully turn over while |live| stays m.
    """
    check_positive_int(m, "m")
    check_positive_int(ops, "ops")
    yield from fill(m, start)
    oldest = start
    fresh = start + m
    for _ in range(ops):
        yield ("d", oldest)
        oldest += 1
        yield ("i", fresh)
        fresh += 1


def random_churn(m: int, ops: int, seed=None, start: int = 0) -> Iterator[Op]:
    """Fill to ``m``, then repeatedly delete a uniformly random live ball and
    insert a fresh one.

    Models RANDOM replacement; the randomness is the adversary's own and is
    independent of the strategy's hashes, so the adversary stays oblivious.
    """
    check_positive_int(m, "m")
    check_positive_int(ops, "ops")
    rng = as_rng(seed)
    live = list(range(start, start + m))
    yield from fill(m, start)
    fresh = start + m
    for _ in range(ops):
        i = int(rng.integers(len(live)))
        victim = live[i]
        live[i] = live[-1]
        live.pop()
        yield ("d", victim)
        yield ("i", fresh)
        live.append(fresh)
        fresh += 1


def cyclic_reinsertion(m: int, rounds: int, start: int = 0) -> Iterator[Op]:
    """Fill to ``m``; each round deletes and immediately re-inserts every
    ball, in order.

    Re-insertions re-hash to the *same* candidate bins, making this the
    sequence that stresses stability: a strategy whose placements depend on
    transient loads (Greedy, Iceberg spill) may migrate balls between their
    candidates over rounds, but the load bounds must continue to hold.
    """
    check_positive_int(m, "m")
    check_positive_int(rounds, "rounds")
    yield from fill(m, start)
    for _ in range(rounds):
        for ball in range(start, start + m):
            yield ("d", ball)
            yield ("i", ball)


def batch_turnover(m: int, batches: int, batch_size: int, start: int = 0) -> Iterator[Op]:
    """Fill to ``m``; each batch deletes the ``batch_size`` oldest live balls
    then inserts ``batch_size`` fresh ones.

    Models a paging workload with phase changes — a block of the working set
    is swapped out at once (e.g. a scan evicting a contiguous LRU segment).
    """
    check_positive_int(m, "m")
    check_positive_int(batches, "batches")
    batch_size = check_positive_int(batch_size, "batch_size")
    if batch_size > m:
        raise ValueError(f"batch_size {batch_size} exceeds live-set size {m}")
    yield from fill(m, start)
    oldest = start
    fresh = start + m
    for _ in range(batches):
        for _ in range(batch_size):
            yield ("d", oldest)
            oldest += 1
        for _ in range(batch_size):
            yield ("i", fresh)
            fresh += 1
