"""The dynamic balls-and-bins game of Section 4.

There are ``n`` bins and an oblivious adversary issuing an arbitrary
sequence of ball insertions and deletions (re-insertions allowed) subject to
at most ``m`` balls being live at once. A placement strategy maps each
inserted ball to a bin using hashed choices; the figure of merit is the
maximum bin load over time, because in the RAM-allocation application the
maximum load must stay below the bucket capacity ``B`` or a *paging
failure* occurs.

The game is *online* (placements happen before future requests are known)
and *stable* (a ball's bin never changes while it is live) — both properties
the paper requires of a huge-page decoupling scheme.
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive_int
from .strategies import PlacementStrategy

__all__ = ["BallsAndBinsGame"]


class BallsAndBinsGame:
    """Run a placement strategy against insert/delete requests.

    Parameters
    ----------
    n_bins:
        Number of bins ``n``.
    strategy:
        The placement rule (OneChoice, Greedy[d], Iceberg[d], …); the game
        binds it to ``n_bins`` and *seed*.
    bin_capacity:
        Optional hard capacity ``B``; with it set, an insertion whose
        eligible choices are all full *fails* (the ball is not placed) and
        is counted in :attr:`failures` — mirroring paging failures. Without
        it, bins are unbounded and only the load profile is studied.
    seed:
        Seed for the strategy's hash functions.
    """

    def __init__(
        self,
        n_bins: int,
        strategy: PlacementStrategy,
        *,
        bin_capacity: int | None = None,
        seed=None,
    ) -> None:
        self.n_bins = check_positive_int(n_bins, "n_bins")
        if bin_capacity is not None:
            bin_capacity = check_positive_int(bin_capacity, "bin_capacity")
        self.bin_capacity = bin_capacity
        self.strategy = strategy
        strategy.bind(self.n_bins, bin_capacity, seed)
        self.loads = np.zeros(self.n_bins, dtype=np.int64)
        self._bin_of: dict = {}
        # Histogram of bin loads for O(1) amortized max-load maintenance:
        # _load_counts[L] = number of bins with load exactly L.
        self._load_counts: dict[int, int] = {0: self.n_bins}
        self._max_load = 0
        self.failures = 0
        self.insertions = 0
        self.deletions = 0
        self.peak_load = 0

    # ------------------------------------------------------------------ api

    def insert(self, ball) -> int | None:
        """Insert *ball*; return its bin, or None if placement failed.

        Raises ValueError if *ball* is already live (the adversary may
        re-insert only after deleting).
        """
        if ball in self._bin_of:
            raise ValueError(f"ball {ball!r} is already live")
        self.insertions += 1
        b = self.strategy.place(ball, self.loads)
        if b is None:
            self.failures += 1
            return None
        old = int(self.loads[b])
        self.loads[b] = old + 1
        self._bump(old, old + 1)
        self._bin_of[ball] = b
        return b

    def delete(self, ball) -> int:
        """Delete live *ball*; return the bin it occupied."""
        b = self._bin_of.pop(ball)  # raises KeyError if not live
        self.deletions += 1
        old = int(self.loads[b])
        self.loads[b] = old - 1
        self._bump(old, old - 1)
        self.strategy.unplace(ball, b)
        return b

    def bin_of(self, ball) -> int | None:
        """Bin of a live ball, or None if the ball is not live."""
        return self._bin_of.get(ball)

    def __len__(self) -> int:
        return len(self._bin_of)

    def __contains__(self, ball) -> bool:
        return ball in self._bin_of

    # ------------------------------------------------------------ load stats

    @property
    def max_load(self) -> int:
        """Current maximum bin load."""
        return self._max_load

    @property
    def average_load(self) -> float:
        """Current average load λ = live balls / bins."""
        return len(self._bin_of) / self.n_bins

    def _bump(self, old: int, new: int) -> None:
        counts = self._load_counts
        counts[old] -= 1
        if counts[old] == 0:
            del counts[old]
        counts[new] = counts.get(new, 0) + 1
        if new > self._max_load:
            self._max_load = new
            if new > self.peak_load:
                self.peak_load = new
        elif old == self._max_load and old not in counts:
            # the unique max shrank; walk down to the next occupied level
            level = self._max_load - 1
            while level > 0 and level not in counts:
                level -= 1
            self._max_load = level

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BallsAndBinsGame n={self.n_bins} balls={len(self._bin_of)} "
            f"max_load={self._max_load} failures={self.failures}>"
        )
