"""Measurement harness and theory curves for balls-and-bins experiments.

``run_game`` replays an adversary through a game and samples the load
profile; the ``*_max_load_bound`` functions evaluate the closed forms the
paper quotes — eq. (5) for OneChoice (Raab & Steger), eq. (6) for Greedy[2]
(Vöcking), and Theorem 2 for Iceberg[2] — so tests and benches can compare
measured maxima against theory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from .game import BallsAndBinsGame

__all__ = [
    "GameResult",
    "run_game",
    "one_choice_max_load_bound",
    "greedy_max_load_bound",
    "iceberg_max_load_bound",
]


@dataclass
class GameResult:
    """Summary of one adversary replay."""

    n_bins: int
    operations: int = 0
    insertions: int = 0
    deletions: int = 0
    failures: int = 0
    peak_load: int = 0
    final_load: int = 0
    final_balls: int = 0
    #: (operation index, current max load) samples.
    load_samples: list[tuple[int, int]] = field(default_factory=list)

    @property
    def peak_overhead(self) -> float:
        """Peak max load divided by the final average load λ (∞ if λ=0)."""
        lam = self.final_balls / self.n_bins
        return self.peak_load / lam if lam > 0 else math.inf


def run_game(
    game: BallsAndBinsGame,
    ops: Iterable[tuple[str, int]],
    *,
    sample_every: int = 0,
) -> GameResult:
    """Feed the adversary sequence *ops* into *game* and summarize.

    Insertion failures (capacitated games) are recorded, not raised; the
    failed ball simply never becomes live, as with paging failures.
    """
    result = GameResult(n_bins=game.n_bins)
    count = 0
    for op, ball in ops:
        if op == "i":
            game.insert(ball)
        elif op == "d":
            game.delete(ball)
        else:
            raise ValueError(f"unknown op {op!r}")
        count += 1
        if sample_every and count % sample_every == 0:
            result.load_samples.append((count, game.max_load))
    result.operations = count
    result.insertions = game.insertions
    result.deletions = game.deletions
    result.failures = game.failures
    result.peak_load = game.peak_load
    result.final_load = game.max_load
    result.final_balls = len(game)
    return result


def one_choice_max_load_bound(n: int, lam: float) -> float:
    """Eq. (5): the Raab–Steger max-load for one random choice per ball.

    Piecewise in the relationship between λ and log n; constants are the
    leading-order ones (the paper writes O(·) — we return the expression
    with unit constants, suitable as a *shape* reference, not a hard bound).
    """
    if n < 2:
        return lam
    log_n = math.log(n)
    if lam <= 0:
        return 0.0
    if lam < log_n:
        # (1+o(1)) log n / log(log n / λ); guard the denominator near λ ≈ log n
        denom = math.log(max(math.e, log_n / lam))
        return log_n / denom
    if lam <= 4 * log_n:
        return 2.0 * lam  # Θ(λ) regime
    return lam + math.sqrt(2.0 * lam * log_n)  # λ + O(√(λ log n))


def greedy_max_load_bound(n: int, lam: float, d: int = 2) -> float:
    """Eq. (6) generalized: Vöcking-style ``O(λ) + log log n / log d + O(1)``.

    The additive gap above λ is Θ(λ) in the dynamic setting — the reason
    Greedy alone cannot achieve δ = o(1) resource augmentation.
    """
    if n < 4 or d < 2:
        return one_choice_max_load_bound(n, lam)
    return 2.0 * lam + math.log(math.log(n)) / math.log(d) + 1.0


def iceberg_max_load_bound(n: int, lam: float, *, slack: float = 0.2) -> float:
    """Theorem 2: ``(1+o(1))λ + log log n + O(1)`` for Iceberg[2].

    *slack* stands in for the (1+o(1)) factor at finite n — by default the
    same 20% front-capacity slack our :class:`IcebergStrategy` uses.
    """
    loglog = math.log(math.log(n)) if n > math.e else 0.0
    return (1.0 + slack) * lam + loglog + 2.0
