"""Vectorized replay of interleaved balls-and-bins event streams.

The array engine's decoupled/hybrid handler knows a whole RAM segment's
insert/evict event stream up front (offline-LRU miss positions and death
positions), but :class:`~.game.BallsAndBinsGame` only exposes per-event
``insert``/``delete`` — a Python round-trip through ``place()`` object
dispatch and dict bookkeeping per RAM miss, which is exactly what capped
those rows at 1.4–1.7× (ROADMAP open item 1).

:func:`replay_game_events` replays the same stream in bulk:

1. deduplicate the touched balls and hash **all** their candidate bins in
   one vectorized pass per choice (``HashFamily`` guarantees scalar/vector
   parity);
2. run the strategy's ``batch_place`` hook — a tight event loop over plain
   Python lists of bin loads (and front/back loads for Iceberg), no dict
   churn, no per-event object dispatch;
3. commit the game state in bulk: loads written back in place, the load
   histogram rebuilt from one ``bincount``, counters advanced, and the
   live-ball map folded to each ball's **last applied event**.

The result is a *decision stream*: the chosen bin per applied insert (-1
for a failing one), the first-match candidate index the TLB encoder would
store (``choice_index`` semantics, collision-normalized), and the index of
the first failing insert. State after the call is bit-identical to the
per-event game stopped right after that failure — the mid-segment bailout
contract the array engine relies on.

Event interleave convention (the array engine's): for insert index ``k``,
if ``k >= first_evt`` the eviction ``k - first_evt`` is applied immediately
before it, so ``len(evicts) == max(0, len(inserts) - first_evt)``. Streams
must be valid (no insert of a live ball, no evict of a dead one); the
kernel trusts the caller and does not re-validate per event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchDecisions", "replay_game_events"]


@dataclass(slots=True)
class BatchDecisions:
    """The decision stream of one bulk replay.

    ``bins[k]``/``choices[k]`` cover every **applied** insert — all of them
    on a clean run, or inserts ``0..failed`` when one fails (the failure is
    applied: it counts, but places nothing and shows as ``-1``).
    """

    bins: list[int]  #: chosen bin per applied insert (-1 = paging failure)
    choices: list[int]  #: first-match candidate index per applied insert
    failed: int  #: index of the first failing insert, or -1

    @property
    def applied(self) -> int:
        """Number of inserts applied (the failing one included)."""
        return len(self.bins)


def replay_game_events(game, inserts, evicts, first_evt: int = 0):
    """Bulk-replay an interleaved insert/evict stream against *game*.

    Equivalent to the per-event ``insert``/``delete`` call sequence under
    the interleave convention above, stopping right after the first failing
    insert. Returns the :class:`BatchDecisions`, or None when the game's
    strategy has no ``batch_place`` hook (callers replay per-event).
    """
    strategy = game.strategy
    batch_place = getattr(strategy, "batch_place", None)
    if batch_place is None:
        return None
    n_ins = len(inserts)
    if first_evt < 0:
        raise ValueError(f"first_evt must be >= 0, got {first_evt}")
    if len(evicts) != max(0, n_ins - first_evt):
        raise ValueError(
            f"{len(evicts)} evictions do not interleave with {n_ins} "
            f"inserts at first_evt={first_evt} "
            f"(need {max(0, n_ins - first_evt)})"
        )
    if n_ins == 0:
        return BatchDecisions([], [], -1)

    ins_arr = np.asarray(inserts, dtype=np.int64)
    if len(evicts):
        all_balls = np.concatenate(
            [ins_arr, np.asarray(evicts, dtype=np.int64)]
        )
    else:
        all_balls = ins_arr
    balls, inverse = np.unique(all_balls, return_inverse=True)
    inverse = inverse.tolist()
    ins_u = inverse[:n_ins]
    ev_u = inverse[n_ins:]
    uniq = balls.tolist()

    bin_get = game._bin_of.get
    bin_of = [bin_get(b, -1) for b in uniq]
    loads = game.loads.tolist()
    bins, choices, peak, failed = batch_place(
        balls, uniq, ins_u, ev_u, first_evt, loads, bin_of
    )

    # ---- commit: loads, histogram, counters, live-ball map ----------------
    n_applied = len(bins)
    game.loads[:] = loads
    counts = np.bincount(game.loads)
    load_counts = game._load_counts
    load_counts.clear()
    for level, count in enumerate(counts.tolist()):
        if count:
            load_counts[level] = count
    game._max_load = len(counts) - 1  # bincount's last level is the max
    if peak > game.peak_load:
        game.peak_load = peak
    game.insertions += n_applied
    game.deletions += max(0, n_applied - first_evt)
    if failed >= 0:
        game.failures += 1
    # the last applied event per ball decides whether it is live
    final: dict[int, int] = {}
    for k in range(n_applied):
        if k >= first_evt:
            final[ev_u[k - first_evt]] = -1
        final[ins_u[k]] = bins[k]
    bin_map = game._bin_of
    for u, b in final.items():
        if b < 0:
            bin_map.pop(uniq[u], None)
        else:
            bin_map[uniq[u]] = b
    return BatchDecisions(bins, choices, failed)
