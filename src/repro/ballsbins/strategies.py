"""Placement strategies for the dynamic balls-and-bins game.

The paper's Section 4 analyses three families:

* **OneChoice** (``k=1``): a single hash; max load ``λ + O(√(λ log n))``
  for ``λ = ω(log n)`` (Raab & Steger, eq. 5) — used in the warmup
  Theorem 1.
* **Greedy[d]** (``k=d``): place in the least loaded of ``d`` hashed bins;
  dynamic max load ``O(λ) + log log n + O(1)`` (Vöcking, eq. 6). The
  ``Ω(λ)`` gap above average is why Greedy alone cannot give ``δ = o(1)``.
* **Iceberg[d]** (``k=d+1``): try the *front* bin ``h₁(x)`` while its front
  load is below ``(1+ε)λ``; overflow balls spill to Greedy[d] on
  ``h₂,…,h_{d+1}`` over *back* loads only (footnote 4: the two layers
  ignore each other's balls). Theorem 2: max load
  ``(1+o(1))λ + log log n + O(1)`` dynamically — the key to Theorem 3.

Strategies are *stable* (no relocation) and *online* by construction.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from .._util import check_positive_int
from ..hashing import HashFamily

__all__ = [
    "PlacementStrategy",
    "OneChoiceStrategy",
    "GreedyStrategy",
    "GreedyLeftStrategy",
    "IcebergStrategy",
]


class PlacementStrategy(ABC):
    """Stateful placement rule bound to a bin count and a seed."""

    #: number of hash functions the strategy evaluates per ball.
    choices: int = 1
    #: short registry name.
    name: str = "abstract"
    #: Optional bulk-replay hook consumed by
    #: :func:`repro.ballsbins.batch.replay_game_events`. Concrete strategies
    #: implement it as a method with the signature
    #: ``batch_place(balls, uniq, ins_u, ev_u, first_evt, loads, bin_of)``
    #: where *balls* is an int64 array of the distinct balls touched by the
    #: stream, *uniq* the same values as a Python list, *ins_u*/*ev_u* the
    #: per-event indices into *balls*, *first_evt* the insert index at which
    #: evictions start interleaving, and *loads*/*bin_of* mutable Python
    #: lists of current bin loads and per-distinct-ball bins (-1 = not
    #: live). It must replay the stream with ``place``'s exact semantics —
    #: stopping right after the first failing insert — mutating *loads*,
    #: *bin_of*, and any strategy-internal state, and return
    #: ``(bins, choices, peak, failed)``: the chosen bin per applied insert
    #: (-1 for the failure), the first-match candidate index per applied
    #: insert (``choice_index`` semantics), the highest load any insert
    #: produced, and the failing insert's index (-1 if none). ``None`` means
    #: the strategy has no batch path and callers must replay per-event.
    batch_place = None

    def __init__(self) -> None:
        self._family: HashFamily | None = None
        self._capacity: int | None = None

    def bind(self, n_bins: int, bin_capacity: int | None, seed) -> None:
        """Attach the strategy to a game: draws hash functions, sizes state."""
        check_positive_int(n_bins, "n_bins")
        self._family = HashFamily(self.choices, n_bins, seed)
        self._capacity = bin_capacity

    @property
    def family(self) -> HashFamily:
        if self._family is None:
            raise RuntimeError("strategy not bound to a game yet")
        return self._family

    def candidates(self, ball) -> tuple[int, ...]:
        """The hashed candidate bins for *ball* (used by TLB encodings)."""
        return self.family(ball)

    def candidate(self, ball, i: int) -> int:
        """``candidates(ball)[i]`` evaluating only the *i*-th hash.

        The TLB decode hot path stores the choice index and needs just this
        one bin back — recomputing all ``k`` hashes there is wasted work.
        """
        return self.family[i](ball)

    def batch_candidates(self, balls: np.ndarray) -> list[list[int]]:
        """Candidate bins for a vector of *balls*: one list per choice.

        One vectorized hash pass per choice (scalar/vector parity is part of
        the :class:`~repro.hashing.MultiplyShiftHash` contract), returned as
        plain lists because the batch replay loop indexes them per event.
        """
        return [h.many(balls).tolist() for h in self.family.functions]

    @abstractmethod
    def place(self, ball, loads: np.ndarray) -> int | None:
        """Pick a bin for *ball* given current bin *loads*; None on failure."""

    def unplace(self, ball, bin_index: int) -> None:
        """Bookkeeping hook when *ball* is deleted from *bin_index*."""

    def choice_index(self, ball, bin_index: int) -> int:
        """Which hash (0-based) maps *ball* to *bin_index*.

        The TLB encoder stores this index so the decoder can recompute the
        bucket. Raises ValueError if the bin is not among the candidates.
        """
        for i, b in enumerate(self.family(ball)):
            if b == bin_index:
                return i
        raise ValueError(f"bin {bin_index} is not a candidate for ball {ball!r}")


def _greedy_batch_place(cands, capacity, ins_u, ev_u, first_evt, loads, bin_of):
    """Shared Greedy[d] replay loop (plain and always-go-left variants).

    ``place`` semantics exactly: full bins are skipped, strict ``<`` keeps
    the first (leftmost) candidate on load ties — which also makes the
    recorded choice index the first candidate mapping to the chosen bin.
    """
    bins: list[int] = []
    choices: list[int] = []
    peak = 0
    failed = -1
    j = 0
    for k, u in enumerate(ins_u):
        if k >= first_evt:
            eu = ev_u[j]
            j += 1
            loads[bin_of[eu]] -= 1
            bin_of[eu] = -1
        best = -1
        best_load = 0
        ci = 0
        for i, c in enumerate(cands):
            b = c[u]
            load = loads[b]
            if capacity is not None and load >= capacity:
                continue
            if best < 0 or load < best_load:
                best, best_load, ci = b, load, i
        if best < 0:
            bins.append(-1)
            choices.append(-1)
            failed = k
            break
        new = loads[best] + 1
        loads[best] = new
        if new > peak:
            peak = new
        bin_of[u] = best
        bins.append(best)
        choices.append(ci)
    return bins, choices, peak, failed


class OneChoiceStrategy(PlacementStrategy):
    """``k = 1``: the ball goes to its single hashed bin, full or not."""

    choices = 1
    name = "one-choice"

    def place(self, ball, loads: np.ndarray) -> int | None:
        b = self.family[0](ball)
        if self._capacity is not None and loads[b] >= self._capacity:
            return None
        return b

    def batch_place(self, balls, uniq, ins_u, ev_u, first_evt, loads, bin_of):
        (c0,) = self.batch_candidates(balls)
        capacity = self._capacity
        bins: list[int] = []
        peak = 0
        failed = -1
        j = 0
        for k, u in enumerate(ins_u):
            if k >= first_evt:
                eu = ev_u[j]
                j += 1
                loads[bin_of[eu]] -= 1
                bin_of[eu] = -1
            b = c0[u]
            if capacity is not None and loads[b] >= capacity:
                bins.append(-1)
                failed = k
                break
            new = loads[b] + 1
            loads[b] = new
            if new > peak:
                peak = new
            bin_of[u] = b
            bins.append(b)
        return bins, [0] * len(bins), peak, failed


class GreedyStrategy(PlacementStrategy):
    """Greedy[d]: least loaded of ``d`` hashed bins, first choice on ties."""

    name = "greedy"

    def __init__(self, d: int = 2) -> None:
        super().__init__()
        self.d = check_positive_int(d, "d")
        self.choices = self.d

    def place(self, ball, loads: np.ndarray) -> int | None:
        best = None
        best_load = None
        for h in self.family.functions:
            b = h(ball)
            load = loads[b]
            if self._capacity is not None and load >= self._capacity:
                continue
            if best_load is None or load < best_load:
                best, best_load = b, load
        return best

    def batch_place(self, balls, uniq, ins_u, ev_u, first_evt, loads, bin_of):
        return _greedy_batch_place(
            self.batch_candidates(balls),
            self._capacity,
            ins_u,
            ev_u,
            first_evt,
            loads,
            bin_of,
        )


class GreedyLeftStrategy(PlacementStrategy):
    """Vöcking's Always-Go-Left: d choices in d equal groups, ties go left.

    The asymmetric tie-breaking improves the constant in the
    ``log log n / d`` term; included as an ablation point next to plain
    Greedy[d].
    """

    name = "greedy-left"

    def __init__(self, d: int = 2) -> None:
        super().__init__()
        self.d = check_positive_int(d, "d")
        self.choices = self.d

    def bind(self, n_bins: int, bin_capacity: int | None, seed) -> None:
        if n_bins < self.d:
            raise ValueError(f"need at least d={self.d} bins, got {n_bins}")
        super().bind(n_bins, bin_capacity, seed)
        self._group = n_bins // self.d

    def candidates(self, ball) -> tuple[int, ...]:
        group = self._group
        out = []
        for i, h in enumerate(self.family.functions):
            lo = i * group
            hi = (i + 1) * group if i < self.d - 1 else self.family.range
            out.append(lo + h(ball) % (hi - lo))
        return tuple(out)

    def place(self, ball, loads: np.ndarray) -> int | None:
        best = None
        best_load = None
        for b in self.candidates(ball):
            load = loads[b]
            if self._capacity is not None and load >= self._capacity:
                continue
            if best_load is None or load < best_load:  # strict: ties stay left
                best, best_load = b, load
        return best

    def candidate(self, ball, i: int) -> int:
        group = self._group
        lo = i * group
        hi = (i + 1) * group if i < self.d - 1 else self.family.range
        return lo + self.family[i](ball) % (hi - lo)

    def batch_candidates(self, balls: np.ndarray) -> list[list[int]]:
        group = self._group
        out = []
        for i, h in enumerate(self.family.functions):
            lo = i * group
            hi = (i + 1) * group if i < self.d - 1 else self.family.range
            out.append((lo + h.many(balls) % (hi - lo)).tolist())
        return out

    def batch_place(self, balls, uniq, ins_u, ev_u, first_evt, loads, bin_of):
        return _greedy_batch_place(
            self.batch_candidates(balls),
            self._capacity,
            ins_u,
            ev_u,
            first_evt,
            loads,
            bin_of,
        )

    def choice_index(self, ball, bin_index: int) -> int:
        for i, b in enumerate(self.candidates(ball)):
            if b == bin_index:
                return i
        raise ValueError(f"bin {bin_index} is not a candidate for ball {ball!r}")


class IcebergStrategy(PlacementStrategy):
    """Iceberg[d] (paper's Theorem 2, with ``d = 2`` by default).

    A ball first tries its *front* bin ``h₁(x)``: it is accepted while the
    bin's front load is below ``front_capacity = ⌈(1+front_slack)·λ⌉``
    (requires the expected average load ``lam`` up front — in the
    RAM-allocation application λ = m/n is fixed by the scheme parameters).
    Rejected balls are placed by Greedy[d] on ``h₂,…,h_{d+1}`` comparing
    *back* loads only, so the two layers ignore each other exactly as in
    footnote 4 of the paper.
    """

    name = "iceberg"

    def __init__(self, lam: float, d: int = 2, front_slack: float = 0.2) -> None:
        super().__init__()
        self.d = check_positive_int(d, "d")
        self.choices = self.d + 1
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        if front_slack < 0:
            raise ValueError(f"front_slack must be >= 0, got {front_slack}")
        self.lam = float(lam)
        self.front_slack = float(front_slack)
        self.front_capacity = max(1, math.ceil((1.0 + front_slack) * lam))

    def bind(self, n_bins: int, bin_capacity: int | None, seed) -> None:
        super().bind(n_bins, bin_capacity, seed)
        self._front = np.zeros(n_bins, dtype=np.int64)
        self._back = np.zeros(n_bins, dtype=np.int64)
        self._layer: dict = {}  # ball -> True if front

    def place(self, ball, loads: np.ndarray) -> int | None:
        front_bin = self.family[0](ball)
        if self._front[front_bin] < self.front_capacity and (
            self._capacity is None or loads[front_bin] < self._capacity
        ):
            self._front[front_bin] += 1
            self._layer[ball] = True
            return front_bin
        # spill layer: Greedy[d] over back loads
        best = None
        best_load = None
        for i in range(1, self.d + 1):
            b = self.family[i](ball)
            if self._capacity is not None and loads[b] >= self._capacity:
                continue
            load = self._back[b]
            if best_load is None or load < best_load:
                best, best_load = b, load
        if best is None:
            return None
        self._back[best] += 1
        self._layer[ball] = False
        return best

    def batch_place(self, balls, uniq, ins_u, ev_u, first_evt, loads, bin_of):
        cands = self.batch_candidates(balls)
        front_c = cands[0]
        back_c = cands[1:]
        capacity = self._capacity
        front_capacity = self.front_capacity
        front = self._front.tolist()
        back = self._back.tolist()
        layer_map = self._layer
        lget = layer_map.get
        layer = [lget(b, False) for b in uniq]
        bins: list[int] = []
        choices: list[int] = []
        peak = 0
        failed = -1
        j = 0
        for k, u in enumerate(ins_u):
            if k >= first_evt:
                eu = ev_u[j]
                j += 1
                eb = bin_of[eu]
                loads[eb] -= 1
                bin_of[eu] = -1
                if layer[eu]:
                    front[eb] -= 1
                else:
                    back[eb] -= 1
            fb = front_c[u]
            if front[fb] < front_capacity and (
                capacity is None or loads[fb] < capacity
            ):
                front[fb] += 1
                new = loads[fb] + 1
                loads[fb] = new
                if new > peak:
                    peak = new
                layer[u] = True
                bin_of[u] = fb
                bins.append(fb)
                choices.append(0)
                continue
            best = -1
            best_load = 0
            ci = 0
            for i, c in enumerate(back_c):
                b = c[u]
                if capacity is not None and loads[b] >= capacity:
                    continue
                bl = back[b]
                if best < 0 or bl < best_load:
                    best, best_load, ci = b, bl, i + 1
            if best < 0:
                bins.append(-1)
                choices.append(-1)
                failed = k
                break
            back[best] += 1
            new = loads[best] + 1
            loads[best] = new
            if new > peak:
                peak = new
            layer[u] = False
            bin_of[u] = best
            # the encoder stores the FIRST candidate index mapping to the
            # chosen bin, so a spill landing on its own front bin (hash
            # collision h₀ = hᵢ) must encode as choice 0
            if front_c[u] == best:
                ci = 0
            bins.append(best)
            choices.append(ci)
        self._front[:] = front
        self._back[:] = back
        # layer-map commit: the last applied event per ball wins
        final: dict[int, int] = {}
        for k in range(len(bins)):
            if k >= first_evt:
                final[ev_u[k - first_evt]] = -1
            final[ins_u[k]] = bins[k]
        for u, b in final.items():
            if b < 0:
                layer_map.pop(uniq[u], None)
            else:
                layer_map[uniq[u]] = layer[u]
        return bins, choices, peak, failed

    def unplace(self, ball, bin_index: int) -> None:
        is_front = self._layer.pop(ball)
        if is_front:
            self._front[bin_index] -= 1
        else:
            self._back[bin_index] -= 1

    @property
    def front_loads(self) -> np.ndarray:
        """Per-bin load contributed by front-layer balls (read-only view)."""
        view = self._front.view()
        view.flags.writeable = False
        return view

    @property
    def back_loads(self) -> np.ndarray:
        """Per-bin load contributed by spill-layer balls (read-only view)."""
        view = self._back.view()
        view.flags.writeable = False
        return view
