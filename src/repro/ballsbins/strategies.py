"""Placement strategies for the dynamic balls-and-bins game.

The paper's Section 4 analyses three families:

* **OneChoice** (``k=1``): a single hash; max load ``λ + O(√(λ log n))``
  for ``λ = ω(log n)`` (Raab & Steger, eq. 5) — used in the warmup
  Theorem 1.
* **Greedy[d]** (``k=d``): place in the least loaded of ``d`` hashed bins;
  dynamic max load ``O(λ) + log log n + O(1)`` (Vöcking, eq. 6). The
  ``Ω(λ)`` gap above average is why Greedy alone cannot give ``δ = o(1)``.
* **Iceberg[d]** (``k=d+1``): try the *front* bin ``h₁(x)`` while its front
  load is below ``(1+ε)λ``; overflow balls spill to Greedy[d] on
  ``h₂,…,h_{d+1}`` over *back* loads only (footnote 4: the two layers
  ignore each other's balls). Theorem 2: max load
  ``(1+o(1))λ + log log n + O(1)`` dynamically — the key to Theorem 3.

Strategies are *stable* (no relocation) and *online* by construction.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from .._util import check_positive_int
from ..hashing import HashFamily

__all__ = [
    "PlacementStrategy",
    "OneChoiceStrategy",
    "GreedyStrategy",
    "GreedyLeftStrategy",
    "IcebergStrategy",
]


class PlacementStrategy(ABC):
    """Stateful placement rule bound to a bin count and a seed."""

    #: number of hash functions the strategy evaluates per ball.
    choices: int = 1
    #: short registry name.
    name: str = "abstract"

    def __init__(self) -> None:
        self._family: HashFamily | None = None
        self._capacity: int | None = None

    def bind(self, n_bins: int, bin_capacity: int | None, seed) -> None:
        """Attach the strategy to a game: draws hash functions, sizes state."""
        check_positive_int(n_bins, "n_bins")
        self._family = HashFamily(self.choices, n_bins, seed)
        self._capacity = bin_capacity

    @property
    def family(self) -> HashFamily:
        if self._family is None:
            raise RuntimeError("strategy not bound to a game yet")
        return self._family

    def candidates(self, ball) -> tuple[int, ...]:
        """The hashed candidate bins for *ball* (used by TLB encodings)."""
        return self.family(ball)

    @abstractmethod
    def place(self, ball, loads: np.ndarray) -> int | None:
        """Pick a bin for *ball* given current bin *loads*; None on failure."""

    def unplace(self, ball, bin_index: int) -> None:
        """Bookkeeping hook when *ball* is deleted from *bin_index*."""

    def choice_index(self, ball, bin_index: int) -> int:
        """Which hash (0-based) maps *ball* to *bin_index*.

        The TLB encoder stores this index so the decoder can recompute the
        bucket. Raises ValueError if the bin is not among the candidates.
        """
        for i, b in enumerate(self.family(ball)):
            if b == bin_index:
                return i
        raise ValueError(f"bin {bin_index} is not a candidate for ball {ball!r}")


class OneChoiceStrategy(PlacementStrategy):
    """``k = 1``: the ball goes to its single hashed bin, full or not."""

    choices = 1
    name = "one-choice"

    def place(self, ball, loads: np.ndarray) -> int | None:
        b = self.family[0](ball)
        if self._capacity is not None and loads[b] >= self._capacity:
            return None
        return b


class GreedyStrategy(PlacementStrategy):
    """Greedy[d]: least loaded of ``d`` hashed bins, first choice on ties."""

    name = "greedy"

    def __init__(self, d: int = 2) -> None:
        super().__init__()
        self.d = check_positive_int(d, "d")
        self.choices = self.d

    def place(self, ball, loads: np.ndarray) -> int | None:
        best = None
        best_load = None
        for h in self.family.functions:
            b = h(ball)
            load = loads[b]
            if self._capacity is not None and load >= self._capacity:
                continue
            if best_load is None or load < best_load:
                best, best_load = b, load
        return best


class GreedyLeftStrategy(PlacementStrategy):
    """Vöcking's Always-Go-Left: d choices in d equal groups, ties go left.

    The asymmetric tie-breaking improves the constant in the
    ``log log n / d`` term; included as an ablation point next to plain
    Greedy[d].
    """

    name = "greedy-left"

    def __init__(self, d: int = 2) -> None:
        super().__init__()
        self.d = check_positive_int(d, "d")
        self.choices = self.d

    def bind(self, n_bins: int, bin_capacity: int | None, seed) -> None:
        if n_bins < self.d:
            raise ValueError(f"need at least d={self.d} bins, got {n_bins}")
        super().bind(n_bins, bin_capacity, seed)
        self._group = n_bins // self.d

    def candidates(self, ball) -> tuple[int, ...]:
        group = self._group
        out = []
        for i, h in enumerate(self.family.functions):
            lo = i * group
            hi = (i + 1) * group if i < self.d - 1 else self.family.range
            out.append(lo + h(ball) % (hi - lo))
        return tuple(out)

    def place(self, ball, loads: np.ndarray) -> int | None:
        best = None
        best_load = None
        for b in self.candidates(ball):
            load = loads[b]
            if self._capacity is not None and load >= self._capacity:
                continue
            if best_load is None or load < best_load:  # strict: ties stay left
                best, best_load = b, load
        return best

    def choice_index(self, ball, bin_index: int) -> int:
        for i, b in enumerate(self.candidates(ball)):
            if b == bin_index:
                return i
        raise ValueError(f"bin {bin_index} is not a candidate for ball {ball!r}")


class IcebergStrategy(PlacementStrategy):
    """Iceberg[d] (paper's Theorem 2, with ``d = 2`` by default).

    A ball first tries its *front* bin ``h₁(x)``: it is accepted while the
    bin's front load is below ``front_capacity = ⌈(1+front_slack)·λ⌉``
    (requires the expected average load ``lam`` up front — in the
    RAM-allocation application λ = m/n is fixed by the scheme parameters).
    Rejected balls are placed by Greedy[d] on ``h₂,…,h_{d+1}`` comparing
    *back* loads only, so the two layers ignore each other exactly as in
    footnote 4 of the paper.
    """

    name = "iceberg"

    def __init__(self, lam: float, d: int = 2, front_slack: float = 0.2) -> None:
        super().__init__()
        self.d = check_positive_int(d, "d")
        self.choices = self.d + 1
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        if front_slack < 0:
            raise ValueError(f"front_slack must be >= 0, got {front_slack}")
        self.lam = float(lam)
        self.front_slack = float(front_slack)
        self.front_capacity = max(1, math.ceil((1.0 + front_slack) * lam))

    def bind(self, n_bins: int, bin_capacity: int | None, seed) -> None:
        super().bind(n_bins, bin_capacity, seed)
        self._front = np.zeros(n_bins, dtype=np.int64)
        self._back = np.zeros(n_bins, dtype=np.int64)
        self._layer: dict = {}  # ball -> True if front

    def place(self, ball, loads: np.ndarray) -> int | None:
        front_bin = self.family[0](ball)
        if self._front[front_bin] < self.front_capacity and (
            self._capacity is None or loads[front_bin] < self._capacity
        ):
            self._front[front_bin] += 1
            self._layer[ball] = True
            return front_bin
        # spill layer: Greedy[d] over back loads
        best = None
        best_load = None
        for i in range(1, self.d + 1):
            b = self.family[i](ball)
            if self._capacity is not None and loads[b] >= self._capacity:
                continue
            load = self._back[b]
            if best_load is None or load < best_load:
                best, best_load = b, load
        if best is None:
            return None
        self._back[best] += 1
        self._layer[ball] = False
        return best

    def unplace(self, ball, bin_index: int) -> None:
        is_front = self._layer.pop(ball)
        if is_front:
            self._front[bin_index] -= 1
        else:
            self._back[bin_index] -= 1

    @property
    def front_loads(self) -> np.ndarray:
        """Per-bin load contributed by front-layer balls (read-only view)."""
        view = self._front.view()
        view.flags.writeable = False
        return view

    @property
    def back_loads(self) -> np.ndarray:
        """Per-bin load contributed by spill-layer balls (read-only view)."""
        view = self._back.view()
        view.flags.writeable = False
        return view
