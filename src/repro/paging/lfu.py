"""Least-frequently-used replacement with O(1) operations.

Uses the constant-time LFU structure (frequency buckets in a doubly-linked
list of ordered dicts): the victim is a key of minimum access frequency,
with LRU order breaking ties inside a frequency bucket.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .base import Key, ReplacementPolicy

__all__ = ["LFUPolicy"]


class _FreqBucket:
    __slots__ = ("freq", "keys", "prev", "next")

    def __init__(self, freq: int) -> None:
        self.freq = freq
        self.keys: OrderedDict[Key, None] = OrderedDict()
        self.prev: _FreqBucket | None = None
        self.next: _FreqBucket | None = None


class LFUPolicy(ReplacementPolicy):
    """Evict a least-frequently-used key (LRU tie-break within a frequency)."""

    name = "lfu"

    def __init__(self) -> None:
        self._bucket_of: dict[Key, _FreqBucket] = {}
        # Sentinel head; head.next is the minimum-frequency bucket.
        self._head = _FreqBucket(0)
        self._head.prev = self._head.next = self._head

    # --------------------------------------------------------------- list ops

    def _link_after(self, bucket: _FreqBucket, after: _FreqBucket) -> None:
        nxt = after.next
        assert nxt is not None
        bucket.prev = after
        bucket.next = nxt
        after.next = bucket
        nxt.prev = bucket

    def _unlink(self, bucket: _FreqBucket) -> None:
        assert bucket.prev is not None and bucket.next is not None
        bucket.prev.next = bucket.next
        bucket.next.prev = bucket.prev
        bucket.prev = bucket.next = None

    def _promote(self, key: Key) -> None:
        bucket = self._bucket_of[key]
        nxt = bucket.next
        assert nxt is not None
        target_freq = bucket.freq + 1
        if nxt is self._head or nxt.freq != target_freq:
            target = _FreqBucket(target_freq)
            self._link_after(target, bucket)
        else:
            target = nxt
        del bucket.keys[key]
        target.keys[key] = None
        self._bucket_of[key] = target
        if not bucket.keys:
            self._unlink(bucket)

    # ------------------------------------------------------------------ api

    def record_access(self, key: Key, time: int) -> None:
        self._promote(key)

    def insert(self, key: Key, time: int) -> None:
        if key in self._bucket_of:
            raise KeyError(f"key {key!r} already resident")
        first = self._head.next
        assert first is not None
        if first is self._head or first.freq != 1:
            first_new = _FreqBucket(1)
            self._link_after(first_new, self._head)
            first = first_new
        first.keys[key] = None
        self._bucket_of[key] = first

    def evict(self, incoming: Key | None = None) -> Key:
        first = self._head.next
        assert first is not None
        if first is self._head:
            raise LookupError("evict() on empty LFU policy")
        key, _ = first.keys.popitem(last=False)
        del self._bucket_of[key]
        if not first.keys:
            self._unlink(first)
        return key

    def remove(self, key: Key) -> None:
        bucket = self._bucket_of.pop(key)  # raises KeyError if absent
        del bucket.keys[key]
        if not bucket.keys:
            self._unlink(bucket)

    def frequency(self, key: Key) -> int:
        """Current access count of resident *key* (insert counts as 1)."""
        return self._bucket_of[key].freq

    def __contains__(self, key: Key) -> bool:
        return key in self._bucket_of

    def __len__(self) -> int:
        return len(self._bucket_of)

    def resident(self) -> Iterator[Key]:
        return iter(self._bucket_of)
