"""First-in-first-out replacement.

FIFO ignores hits entirely: the victim is always the longest-resident key.
Like LRU it is ``k/(k-h+1)``-competitive (Sleator & Tarjan 1985), and it is
one of the policies the paper's "difficulty of reducing associativity"
argument targets (any policy that evicts nothing during the first
``(1-δ)P`` insertions).
"""

from __future__ import annotations

from typing import Iterator

from .base import Key, ReplacementPolicy

__all__ = ["FIFOPolicy"]


class FIFOPolicy(ReplacementPolicy):
    """Evict the key that was inserted earliest."""

    name = "fifo"

    def __init__(self) -> None:
        # dicts preserve insertion order, which is exactly FIFO order.
        self._order: dict[Key, None] = {}

    def record_access(self, key: Key, time: int) -> None:
        pass  # hits do not affect FIFO order

    def touch(self, key: Key, time: int) -> bool:
        # hits don't move anything, so the hot path is a bare membership probe
        return key in self._order

    def insert(self, key: Key, time: int) -> None:
        if key in self._order:
            raise KeyError(f"key {key!r} already resident")
        self._order[key] = None

    def evict(self, incoming: Key | None = None) -> Key:
        if not self._order:
            raise LookupError("evict() on empty FIFO policy")
        key = next(iter(self._order))
        del self._order[key]
        return key

    def remove(self, key: Key) -> None:
        del self._order[key]

    def __contains__(self, key: Key) -> bool:
        return key in self._order

    def __len__(self) -> int:
        return len(self._order)

    def resident(self) -> Iterator[Key]:
        return iter(self._order)
