"""CLOCK (second-chance) replacement.

CLOCK approximates LRU with a single reference bit per key and a rotating
hand: the hand sweeps the resident keys in a circle, clearing set reference
bits and evicting the first key whose bit is already clear. It is the
policy real kernels actually run, so it appears in our policy zoo as the
systems-flavoured LRU stand-in.

Implemented as a circular doubly-linked list of nodes keyed by a dict, so
all operations are O(1) amortized (each hand step clears a bit that some
hit set, charging sweeps to hits).
"""

from __future__ import annotations

from typing import Iterator

from .base import Key, ReplacementPolicy

__all__ = ["ClockPolicy"]


class _Node:
    __slots__ = ("key", "ref", "prev", "next")

    def __init__(self, key: Key) -> None:
        self.key = key
        self.ref = False
        self.prev: _Node | None = None
        self.next: _Node | None = None


class ClockPolicy(ReplacementPolicy):
    """Second-chance eviction over a circular list with reference bits."""

    name = "clock"

    def __init__(self) -> None:
        self._nodes: dict[Key, _Node] = {}
        self._hand: _Node | None = None

    def record_access(self, key: Key, time: int) -> None:
        self._nodes[key].ref = True

    def touch(self, key: Key, time: int) -> bool:
        # one dict probe instead of __contains__ + record_access
        node = self._nodes.get(key)
        if node is None:
            return False
        node.ref = True
        return True

    def insert(self, key: Key, time: int) -> None:
        if key in self._nodes:
            raise KeyError(f"key {key!r} already resident")
        node = _Node(key)
        hand = self._hand
        if hand is None:
            node.prev = node.next = node
            self._hand = node
        else:
            # Insert just behind the hand, i.e. at the position the hand
            # will reach last — matching the frame-table behaviour where a
            # fresh page gets a full revolution before inspection.
            tail = hand.prev
            assert tail is not None
            tail.next = node
            node.prev = tail
            node.next = hand
            hand.prev = node
        self._nodes[key] = node

    def evict(self, incoming: Key | None = None) -> Key:
        node = self._hand
        if node is None:
            raise LookupError("evict() on empty CLOCK policy")
        while node.ref:
            node.ref = False
            assert node.next is not None
            node = node.next
        self._hand = node.next if node.next is not node else None
        self._unlink(node)
        del self._nodes[node.key]
        return node.key

    def remove(self, key: Key) -> None:
        node = self._nodes.pop(key)  # raises KeyError if absent
        if self._hand is node:
            self._hand = node.next if node.next is not node else None
        self._unlink(node)

    @staticmethod
    def _unlink(node: _Node) -> None:
        assert node.prev is not None and node.next is not None
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = node.next = None

    def __contains__(self, key: Key) -> bool:
        return key in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def resident(self) -> Iterator[Key]:
        return iter(self._nodes)
