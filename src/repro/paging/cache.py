"""A capacity-bounded page cache driven by a pluggable replacement policy.

This is the classical paging problem's cache: requests to resident keys are
hits (cost 0); requests to non-resident keys are faults, which insert the key
and — if the cache is full — evict a victim chosen by the policy.

The cache is used throughout the package as RAM (keys = virtual page
numbers), as a TLB reached via :mod:`repro.tlb` (keys = virtual huge-page
numbers), and as the reference implementation for Lemma 1's reductions.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .._util import check_positive_int
from .base import Key, ReplacementPolicy

__all__ = ["PageCache"]


class PageCache:
    """Fixed-capacity cache of hashable keys with pluggable eviction.

    Parameters
    ----------
    capacity:
        Maximum number of resident keys (the paper's cache size ``P`` or
        ``ℓ``). Must be positive.
    policy:
        The :class:`~repro.paging.base.ReplacementPolicy` choosing victims.
        The cache takes ownership: the policy must be empty and not shared.
    on_evict:
        Optional callback invoked as ``on_evict(key)`` after each eviction —
        the decoupling scheme uses this to keep ``φ`` in sync with the
        RAM-replacement policy.

    Notes
    -----
    ``access`` is the hot path and is kept allocation-free.
    """

    __slots__ = ("capacity", "policy", "on_evict", "_clock", "hits", "misses", "evictions")

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy,
        on_evict: Callable[[Key], None] | None = None,
    ) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        if len(policy) != 0:
            raise ValueError("policy must start empty")
        self.policy = policy
        policy.bind(self.capacity)
        self.on_evict = on_evict
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ api

    def access(self, key: Key) -> bool:
        """Service a request for *key*; return True on a hit, False on a fault.

        On a fault the key is brought in, evicting a victim if necessary.
        """
        t = self._clock
        self._clock = t + 1
        policy = self.policy
        if key in policy:
            self.hits += 1
            policy.record_access(key, t)
            return True
        self.misses += 1
        if len(policy) >= self.capacity:
            victim = policy.evict(key)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        policy.insert(key, t)
        return False

    def insert(self, key: Key) -> None:
        """Bring *key* in without counting a hit or miss (prefetch/warm path)."""
        if key in self.policy:
            return
        if len(self.policy) >= self.capacity:
            victim = self.policy.evict(key)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        self.policy.insert(key, self._clock)

    def remove(self, key: Key) -> None:
        """Invalidate *key* (no eviction callback; raises KeyError if absent)."""
        self.policy.remove(key)

    def __contains__(self, key: Key) -> bool:
        return key in self.policy

    def __len__(self) -> int:
        return len(self.policy)

    def resident(self) -> Iterator[Key]:
        """Iterate over resident keys (order unspecified)."""
        return self.policy.resident()

    # ------------------------------------------------------------- counters

    @property
    def accesses(self) -> int:
        """Total requests serviced via :meth:`access`."""
        return self.hits + self.misses

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (resident set is kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def check_invariants(self) -> None:
        """Assert the cache's structural invariants (test/oracle helper).

        The resident set never exceeds capacity, the policy's membership
        iterator agrees with its length, and the counters are coherent
        (evictions can only happen on misses).
        """
        n = len(self.policy)
        assert n <= self.capacity, f"cache over capacity: {n} > {self.capacity}"
        resident = list(self.policy.resident())
        assert len(resident) == n, (
            f"policy resident() yields {len(resident)} keys but reports len {n}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PageCache cap={self.capacity} size={len(self)} policy={self.policy.name} "
            f"hits={self.hits} misses={self.misses}>"
        )
