"""A capacity-bounded page cache driven by a pluggable replacement policy.

This is the classical paging problem's cache: requests to resident keys are
hits (cost 0); requests to non-resident keys are faults, which insert the key
and — if the cache is full — evict a victim chosen by the policy.

The cache is used throughout the package as RAM (keys = virtual page
numbers), as a TLB reached via :mod:`repro.tlb` (keys = virtual huge-page
numbers), and as the reference implementation for Lemma 1's reductions.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .._util import check_positive_int
from .base import Key, ReplacementPolicy

__all__ = ["PageCache"]


class PageCache:
    """Fixed-capacity cache of hashable keys with pluggable eviction.

    Parameters
    ----------
    capacity:
        Maximum number of resident keys (the paper's cache size ``P`` or
        ``ℓ``). Must be positive.
    policy:
        The :class:`~repro.paging.base.ReplacementPolicy` choosing victims.
        The cache takes ownership: the policy must be empty and not shared.
    on_evict:
        Optional callback invoked as ``on_evict(key)`` after each eviction —
        the decoupling scheme uses this to keep ``φ`` in sync with the
        RAM-replacement policy.

    Notes
    -----
    ``access`` is the hot path and is kept allocation-free.
    """

    __slots__ = (
        "capacity",
        "policy",
        "on_evict",
        "_clock",
        "_touch",
        "_ghost",
        "hits",
        "misses",
        "evictions",
        "warm_evictions",
    )

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy,
        on_evict: Callable[[Key], None] | None = None,
    ) -> None:
        self.capacity = check_positive_int(capacity, "capacity")
        if len(policy) != 0:
            raise ValueError("policy must start empty")
        self.policy = policy
        policy.bind(self.capacity)
        # bound once: the policy object never changes after construction,
        # so the hit path pays one call instead of two attribute hops plus
        # a __contains__/record_access double probe
        self._touch = policy.touch
        self.on_evict = on_evict
        # optional miss-attribution ghost (obs/attribution installs one);
        # None keeps the hit path untouched and the miss path one branch
        self._ghost = None
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.warm_evictions = 0

    # ------------------------------------------------------------------ api

    def access(self, key: Key) -> bool:
        """Service a request for *key*; return True on a hit, False on a fault.

        On a fault the key is brought in, evicting a victim if necessary.
        """
        t = self._clock
        self._clock = t + 1
        if self._touch(key, t):
            self.hits += 1
            return True
        self.misses += 1
        ghost = self._ghost
        if ghost is not None:
            ghost.miss(key)
        policy = self.policy
        if len(policy) >= self.capacity:
            victim = policy.evict(key)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
            if ghost is not None:
                ghost.evicted(victim, key)
        policy.insert(key, t)
        return False

    def access_many(self, keys) -> tuple[int, int]:
        """Service every request in *keys*; return ``(hits, misses)``.

        Bit-identical to calling :meth:`access` once per key — same policy
        transitions, same clock values, same eviction callbacks, same final
        counters — but the loop runs with every attribute pre-bound, which
        is what the unprobed MM fast paths (e.g.
        :meth:`repro.mmu.hugepage.PhysicalHugePageMM.run`) buy their
        throughput with. Counters are folded in once at the end; nothing may
        observe them mid-batch (probes and metrics force the per-access
        path).
        """
        touch = self._touch
        policy = self.policy
        policy_len = policy.__len__
        policy_evict = policy.evict
        policy_insert = policy.insert
        on_evict = self.on_evict
        ghost = self._ghost
        # a ghost observes the batch via two collected sequences fed to
        # one bulk replay at the end (bit-identical event order, no
        # per-event method calls on the hot loop)
        g_misses: list | None = [] if ghost is not None else None
        g_victims: list | None = [] if ghost is not None else None
        gm_append = g_misses.append if g_misses is not None else None
        gv_append = g_victims.append if g_victims is not None else None
        capacity = self.capacity
        t = self._clock
        hits = misses = evictions = 0
        for key in keys:
            if touch(key, t):
                hits += 1
            else:
                misses += 1
                if gm_append is not None:
                    gm_append(key)
                if policy_len() >= capacity:
                    evictions += 1
                    victim = policy_evict(key)
                    if on_evict is not None:
                        on_evict(victim)
                    if gv_append is not None:
                        gv_append(victim)
                policy_insert(key, t)
            t += 1
        self._clock = t
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        if ghost is not None:
            ghost.replay(g_misses, g_victims)
        return hits, misses

    def insert(self, key: Key) -> None:
        """Bring *key* in without counting a hit or miss (prefetch/warm path).

        A victim displaced here is counted in ``warm_evictions``, not
        ``evictions`` — the ``evictions`` counter is reserved for demand
        faults so the oracle's eviction-coherence rule ("evictions only on
        misses", the authoritative semantics) holds for every caller.
        """
        if key in self.policy:
            return
        if len(self.policy) >= self.capacity:
            victim = self.policy.evict(key)
            self.warm_evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
            if self._ghost is not None:
                self._ghost.evicted(victim, key)
        self.policy.insert(key, self._clock)

    def remove(self, key: Key) -> None:
        """Invalidate *key* (no eviction callback; raises KeyError if absent)."""
        self.policy.remove(key)

    def __contains__(self, key: Key) -> bool:
        return key in self.policy

    def __len__(self) -> int:
        return len(self.policy)

    def resident(self) -> Iterator[Key]:
        """Iterate over resident keys (order unspecified)."""
        return self.policy.resident()

    # ------------------------------------------------------------- counters

    @property
    def accesses(self) -> int:
        """Total requests serviced via :meth:`access`."""
        return self.hits + self.misses

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (resident set is kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.warm_evictions = 0

    def check_invariants(self) -> None:
        """Assert the cache's structural invariants (test/oracle helper).

        The resident set never exceeds capacity, the policy's membership
        iterator agrees with its length, and the counters are coherent:
        demand ``evictions`` can only happen on misses (warm-path victims
        are accounted separately in ``warm_evictions``).
        """
        n = len(self.policy)
        assert n <= self.capacity, f"cache over capacity: {n} > {self.capacity}"
        resident = list(self.policy.resident())
        assert len(resident) == n, (
            f"policy resident() yields {len(resident)} keys but reports len {n}"
        )
        assert self.evictions <= self.misses, (
            f"eviction-coherence broken: {self.evictions} demand evictions "
            f"exceed {self.misses} misses"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PageCache cap={self.capacity} size={len(self)} policy={self.policy.name} "
            f"hits={self.hits} misses={self.misses}>"
        )
