"""Replacement-policy protocol for the classical paging problem.

The paging problem (Sleator & Tarjan 1985) services a sequence of page
requests with a cache of fixed capacity; a request to a non-resident page is
a *fault* and some resident page may need to be evicted. This module defines
the contract between a :class:`~repro.paging.cache.PageCache` (which decides
*when* to evict — namely, when the cache is full and a fault occurs) and a
:class:`ReplacementPolicy` (which decides *who* to evict).

Policies track the resident set themselves so that membership tests and
victim selection are both O(1)-ish. All keys are hashable; in this package
they are virtual page numbers or virtual huge-page numbers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterator

Key = Hashable

__all__ = ["Key", "ReplacementPolicy"]


class ReplacementPolicy(ABC):
    """Abstract eviction policy over a dynamic set of resident keys.

    Subclasses must keep their internal bookkeeping consistent with the
    resident set: every key passed to :meth:`insert` is resident until it is
    returned by :meth:`evict` or passed to :meth:`remove`.
    """

    #: short human-readable identifier (e.g. ``"lru"``), set by subclasses.
    name: str = "abstract"

    def bind(self, capacity: int) -> None:
        """Inform the policy of the cache capacity it will serve.

        Called once by :class:`~repro.paging.cache.PageCache` before any
        accesses. Most policies ignore it; queue-partitioned policies
        (2Q, ARC) size their internal queues from it.
        """

    @abstractmethod
    def record_access(self, key: Key, time: int) -> None:
        """Note that resident *key* was accessed (a cache hit) at *time*."""

    def touch(self, key: Key, time: int) -> bool:
        """Combined residency probe + hit recording — the hot-path primitive.

        Equivalent to ``key in self and (self.record_access(key, time) or
        True)`` but overridable as a *single* bookkeeping operation (LRU
        resolves it with one ``move_to_end`` attempt instead of two dict
        probes). Returns True iff *key* was resident (and its access was
        recorded); a False return must leave the policy untouched.
        """
        if key in self:
            self.record_access(key, time)
            return True
        return False

    @abstractmethod
    def insert(self, key: Key, time: int) -> None:
        """Add non-resident *key* to the resident set at *time*."""

    @abstractmethod
    def evict(self, incoming: Key | None = None) -> Key:
        """Choose a victim, remove it from the resident set, and return it.

        *incoming* is the key about to be inserted (policies such as ARC use
        it to consult their ghost lists); it may be ``None`` when the caller
        just wants to shrink the cache.

        Raises :class:`LookupError` if the resident set is empty.
        """

    @abstractmethod
    def remove(self, key: Key) -> None:
        """Remove resident *key* (an explicit invalidation, not an eviction).

        Raises :class:`KeyError` if *key* is not resident.
        """

    @abstractmethod
    def __contains__(self, key: Key) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def resident(self) -> Iterator[Key]:
        """Iterate over the resident keys (order unspecified)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} size={len(self)}>"
