"""Most-recently-used replacement.

MRU evicts the *newest* key. It is a poor general-purpose policy but the
optimal one for cyclic scans slightly larger than the cache, and it serves
as an adversarial baseline in our benchmarks (cf. "The worst
page-replacement policy", Agrawal, Bender & Fineman 2007, cited by the
paper).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .base import Key, ReplacementPolicy

__all__ = ["MRUPolicy"]


class MRUPolicy(ReplacementPolicy):
    """Evict the key whose last access is most recent."""

    name = "mru"

    def __init__(self) -> None:
        self._order: OrderedDict[Key, None] = OrderedDict()

    def record_access(self, key: Key, time: int) -> None:
        self._order.move_to_end(key)

    def touch(self, key: Key, time: int) -> bool:
        # one dict probe instead of __contains__ + record_access
        try:
            self._order.move_to_end(key)
        except KeyError:
            return False
        return True

    def insert(self, key: Key, time: int) -> None:
        if key in self._order:
            raise KeyError(f"key {key!r} already resident")
        self._order[key] = None

    def evict(self, incoming: Key | None = None) -> Key:
        if not self._order:
            raise LookupError("evict() on empty MRU policy")
        key, _ = self._order.popitem(last=True)
        return key

    def remove(self, key: Key) -> None:
        del self._order[key]

    def __contains__(self, key: Key) -> bool:
        return key in self._order

    def __len__(self) -> int:
        return len(self._order)

    def resident(self) -> Iterator[Key]:
        return iter(self._order)
