"""2Q replacement (Johnson & Shasha, VLDB 1994) — the "full version".

2Q splits the cache into a small FIFO probation queue ``A1in`` and a main
LRU queue ``Am``, plus a ghost queue ``A1out`` remembering addresses (not
contents) of recently demoted pages. A page is promoted into ``Am`` only
when it is re-referenced after leaving ``A1in`` — filtering out
one-touch scans that would pollute plain LRU.

Adapted to this package's cache/policy contract: the cache decides when to
evict; the policy decides whom, demoting ``A1in`` victims into the ghost
queue as a side effect.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .._util import check_positive_int
from .base import Key, ReplacementPolicy

__all__ = ["TwoQPolicy"]


class TwoQPolicy(ReplacementPolicy):
    """2Q eviction: FIFO probation + ghost-mediated promotion into LRU main.

    Parameters
    ----------
    kin_fraction:
        Fraction of capacity devoted to ``A1in`` (the paper's tuning
        suggestion is 25%).
    kout_fraction:
        Ghost-queue length as a fraction of capacity (suggested 50%).
    """

    name = "2q"

    def __init__(self, kin_fraction: float = 0.25, kout_fraction: float = 0.5) -> None:
        if not (0.0 < kin_fraction < 1.0):
            raise ValueError(f"kin_fraction must be in (0,1), got {kin_fraction}")
        if not (0.0 < kout_fraction <= 1.0):
            raise ValueError(f"kout_fraction must be in (0,1], got {kout_fraction}")
        self._kin_fraction = kin_fraction
        self._kout_fraction = kout_fraction
        self._kin = 1
        self._kout = 1
        self._a1in: OrderedDict[Key, None] = OrderedDict()  # FIFO, oldest first
        self._am: OrderedDict[Key, None] = OrderedDict()  # LRU, oldest first
        self._a1out: OrderedDict[Key, None] = OrderedDict()  # ghost FIFO

    def bind(self, capacity: int) -> None:
        capacity = check_positive_int(capacity, "capacity")
        self._kin = max(1, int(capacity * self._kin_fraction))
        self._kout = max(1, int(capacity * self._kout_fraction))

    def record_access(self, key: Key, time: int) -> None:
        if key in self._am:
            self._am.move_to_end(key)
        elif key not in self._a1in:
            raise KeyError(f"key {key!r} not resident")
        # hits inside A1in deliberately do not reorder (FIFO semantics)

    def insert(self, key: Key, time: int) -> None:
        if key in self._a1in or key in self._am:
            raise KeyError(f"key {key!r} already resident")
        if key in self._a1out:
            # re-reference after demotion: promote straight to main queue
            del self._a1out[key]
            self._am[key] = None
        else:
            self._a1in[key] = None

    def evict(self, incoming: Key | None = None) -> Key:
        if len(self._a1in) >= self._kin or not self._am:
            if not self._a1in:
                raise LookupError("evict() on empty 2Q policy")
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            while len(self._a1out) > self._kout:
                self._a1out.popitem(last=False)
        else:
            victim, _ = self._am.popitem(last=False)
        return victim

    def remove(self, key: Key) -> None:
        if key in self._a1in:
            del self._a1in[key]
        elif key in self._am:
            del self._am[key]
        else:
            raise KeyError(key)

    def __contains__(self, key: Key) -> bool:
        return key in self._a1in or key in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def resident(self) -> Iterator[Key]:
        yield from self._a1in
        yield from self._am

    # introspection helpers used by tests
    @property
    def probation_size(self) -> int:
        """Current number of keys in the A1in probation queue."""
        return len(self._a1in)

    @property
    def ghost_size(self) -> int:
        """Current number of addresses remembered in the A1out ghost queue."""
        return len(self._a1out)
