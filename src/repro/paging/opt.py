"""Belady's OPT — the offline-optimal replacement policy.

OPT evicts the resident page whose next use lies farthest in the future.
It is the yardstick of every competitive analysis the paper builds on
(Sleator & Tarjan 1985), and our benchmarks report IO counts relative to it.

Because OPT is offline it must be constructed from the full request trace.
The policy assumes the cache clock equals the trace position, which holds
whenever the trace is replayed through ``PageCache.access`` alone (no
out-of-band ``insert`` calls).
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

import numpy as np

from .base import Key, ReplacementPolicy

__all__ = ["BeladyOPT", "compute_next_use", "NEVER"]

#: Sentinel "next use" for keys never referenced again.
NEVER = 1 << 62


def compute_next_use(trace: Sequence[Key]) -> np.ndarray:
    """For each position ``i`` return the next position ``j > i`` with
    ``trace[j] == trace[i]``, or :data:`NEVER` if there is none.

    Runs a single backwards scan, O(n) time and O(distinct keys) extra space.
    """
    n = len(trace)
    next_use = np.full(n, NEVER, dtype=np.int64)
    last_seen: dict[Key, int] = {}
    for i in range(n - 1, -1, -1):
        key = trace[i]
        j = last_seen.get(key)
        if j is not None:
            next_use[i] = j
        last_seen[key] = i
    return next_use


class BeladyOPT(ReplacementPolicy):
    """Farthest-in-future eviction, given the full trace up front.

    Victim selection uses a lazy max-heap: every access pushes the key's new
    next-use distance, and stale heap entries are discarded at pop time by
    comparing against the authoritative per-key value.
    """

    name = "opt"

    def __init__(self, trace: Sequence[Key]) -> None:
        self._next = compute_next_use(trace)
        self._n = len(trace)
        self._next_use_of: dict[Key, int] = {}
        self._heap: list[tuple[int, int, Key]] = []  # (-next_use, seq, key)
        self._seq = 0

    def _note(self, key: Key, time: int) -> None:
        if not (0 <= time < self._n):
            raise IndexError(
                f"OPT saw access time {time} outside its trace of length {self._n}; "
                "BeladyOPT must replay exactly the trace it was built from"
            )
        nxt = int(self._next[time])
        self._next_use_of[key] = nxt
        self._seq += 1
        heapq.heappush(self._heap, (-nxt, self._seq, key))

    def record_access(self, key: Key, time: int) -> None:
        if key not in self._next_use_of:
            raise KeyError(f"key {key!r} not resident")
        self._note(key, time)

    def insert(self, key: Key, time: int) -> None:
        if key in self._next_use_of:
            raise KeyError(f"key {key!r} already resident")
        self._note(key, time)

    def evict(self, incoming: Key | None = None) -> Key:
        heap = self._heap
        resident = self._next_use_of
        while heap:
            neg_nxt, _, key = heapq.heappop(heap)
            if resident.get(key) == -neg_nxt:
                del resident[key]
                return key
        raise LookupError("evict() on empty OPT policy")

    def remove(self, key: Key) -> None:
        del self._next_use_of[key]  # stale heap entries are skipped later

    def __contains__(self, key: Key) -> bool:
        return key in self._next_use_of

    def __len__(self) -> int:
        return len(self._next_use_of)

    def resident(self) -> Iterator[Key]:
        return iter(self._next_use_of)
