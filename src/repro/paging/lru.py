"""Least-recently-used replacement — the paper's default policy.

Section 6 of the paper uses LRU both for the TLB and for RAM; Sleator &
Tarjan showed LRU is ``k/(k-h+1)``-competitive. Backed by an ordered dict,
so every operation is O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .base import Key, ReplacementPolicy

__all__ = ["LRUPolicy"]


class LRUPolicy(ReplacementPolicy):
    """Evict the key whose last access is oldest."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[Key, None] = OrderedDict()

    def record_access(self, key: Key, time: int) -> None:
        self._order.move_to_end(key)

    def touch(self, key: Key, time: int) -> bool:
        # one dict probe instead of __contains__ + record_access
        try:
            self._order.move_to_end(key)
        except KeyError:
            return False
        return True

    def insert(self, key: Key, time: int) -> None:
        if key in self._order:
            raise KeyError(f"key {key!r} already resident")
        self._order[key] = None

    def evict(self, incoming: Key | None = None) -> Key:
        if not self._order:
            raise LookupError("evict() on empty LRU policy")
        key, _ = self._order.popitem(last=False)
        return key

    def remove(self, key: Key) -> None:
        del self._order[key]

    def __contains__(self, key: Key) -> bool:
        return key in self._order

    def __len__(self) -> int:
        return len(self._order)

    def resident(self) -> Iterator[Key]:
        return iter(self._order)
