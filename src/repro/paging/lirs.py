"""LIRS replacement (Jiang & Zhang, SIGMETRICS 2002).

LIRS ranks pages by *inter-reference recency* (IRR — the recency distance
between a page's last two accesses) instead of plain recency: pages with
low IRR ("LIR") own most of the cache, pages seen once in a long while
("HIR") pass through a small probationary partition. It fixes LRU's two
classic failures — one-touch scans and cyclic patterns slightly larger
than the cache — without 2Q's hand-tuned queues or ARC's adaptation.

State (as in the paper): a recency stack ``S`` holding LIR pages, resident
HIR pages, and bounded non-resident HIR ghosts; a FIFO queue ``Q`` of the
resident HIR pages (the eviction candidates). Invariant: the bottom of
``S`` is always LIR ("stack pruning").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .base import Key, ReplacementPolicy

__all__ = ["LIRSPolicy"]

_LIR = 0
_HIR_RESIDENT = 1
_HIR_GHOST = 2


class LIRSPolicy(ReplacementPolicy):
    """LIRS eviction.

    Parameters
    ----------
    hir_fraction:
        Fraction of capacity reserved for resident HIR pages (the paper
        suggests ~1%; we default to 5% which behaves better at the small
        cache sizes used in simulation).
    ghost_factor:
        Bound on stack ghosts: at most ``ghost_factor × capacity``
        non-resident HIR entries are remembered.
    """

    name = "lirs"

    def __init__(self, hir_fraction: float = 0.05, ghost_factor: float = 2.0) -> None:
        if not (0.0 < hir_fraction < 1.0):
            raise ValueError(f"hir_fraction must be in (0,1), got {hir_fraction}")
        if ghost_factor < 0:
            raise ValueError(f"ghost_factor must be >= 0, got {ghost_factor}")
        self._hir_fraction = hir_fraction
        self._ghost_factor = ghost_factor
        self._capacity = 1
        self._hir_capacity = 1
        self._max_ghosts = 2
        # S: recency stack, most recent last. value = status
        self._stack: OrderedDict[Key, int] = OrderedDict()
        # Q: resident HIR pages, FIFO (oldest first)
        self._queue: OrderedDict[Key, None] = OrderedDict()
        # status of every *resident* page (LIR or HIR_RESIDENT)
        self._resident: dict[Key, int] = {}
        self._lir_count = 0
        # running count of _HIR_GHOST entries in S, so the per-access trim
        # check is O(1) instead of a full-stack recount
        self._ghost_count = 0

    def bind(self, capacity: int) -> None:
        self._capacity = capacity
        self._hir_capacity = max(1, int(capacity * self._hir_fraction))
        if capacity <= self._hir_capacity:
            self._hir_capacity = max(1, capacity - 1) if capacity > 1 else 1
        self._max_ghosts = max(2, int(capacity * self._ghost_factor))

    # ------------------------------------------------------------ stack ops

    def _stack_push(self, key: Key, status: int) -> None:
        if self._stack.pop(key, None) == _HIR_GHOST:
            self._ghost_count -= 1
        self._stack[key] = status
        if status == _HIR_GHOST:
            self._ghost_count += 1
        self._trim_ghosts()

    def _prune(self) -> None:
        """Remove bottom-of-stack entries until the bottom is LIR."""
        while self._stack:
            key, status = next(iter(self._stack.items()))
            if status == _LIR:
                return
            del self._stack[key]
            if status == _HIR_GHOST:
                self._ghost_count -= 1

    def _trim_ghosts(self) -> None:
        if self._ghost_count <= self._max_ghosts:
            return
        for key in list(self._stack):
            if self._stack[key] == _HIR_GHOST:
                del self._stack[key]
                self._ghost_count -= 1
                if self._ghost_count <= self._max_ghosts:
                    break
        self._prune()

    def _demote_bottom_lir(self) -> None:
        """Turn the stack-bottom LIR page into a resident HIR page."""
        key, status = next(iter(self._stack.items()))
        assert status == _LIR
        del self._stack[key]
        self._lir_count -= 1
        self._resident[key] = _HIR_RESIDENT
        self._queue[key] = None
        self._prune()

    # ------------------------------------------------------------------ api

    def record_access(self, key: Key, time: int) -> None:
        status = self._resident.get(key)
        if status is None:
            raise KeyError(f"key {key!r} not resident")
        if status == _LIR:
            was_bottom = next(iter(self._stack)) == key
            self._stack_push(key, _LIR)
            if was_bottom:
                self._prune()
            return
        # resident HIR
        if key in self._stack:
            # low IRR observed: promote to LIR
            self._stack_push(key, _LIR)
            self._resident[key] = _LIR
            self._lir_count += 1
            del self._queue[key]
            if self._lir_count > self._capacity - self._hir_capacity:
                self._demote_bottom_lir()
        else:
            # still long-IRR: stay HIR, refresh both recencies
            self._stack_push(key, _HIR_RESIDENT)
            self._queue.move_to_end(key)

    def insert(self, key: Key, time: int) -> None:
        if key in self._resident:
            raise KeyError(f"key {key!r} already resident")
        lir_limit = self._capacity - self._hir_capacity
        if key in self._stack and self._stack[key] == _HIR_GHOST:
            # reuse within the ghost window: short IRR, comes in as LIR
            self._stack_push(key, _LIR)
            self._resident[key] = _LIR
            self._lir_count += 1
            if self._lir_count > lir_limit:
                self._demote_bottom_lir()
            return
        if self._lir_count < lir_limit:
            # cold start: fill the LIR partition first
            self._stack_push(key, _LIR)
            self._resident[key] = _LIR
            self._lir_count += 1
            return
        self._stack_push(key, _HIR_RESIDENT)
        self._resident[key] = _HIR_RESIDENT
        self._queue[key] = None

    def evict(self, incoming: Key | None = None) -> Key:
        if not self._resident:
            raise LookupError("evict() on empty LIRS policy")
        if not self._queue:
            self._demote_bottom_lir()
        victim, _ = self._queue.popitem(last=False)
        del self._resident[victim]
        if victim in self._stack:
            self._stack[victim] = _HIR_GHOST  # remember its recency
            self._ghost_count += 1
            self._trim_ghosts()
        return victim

    def remove(self, key: Key) -> None:
        status = self._resident.pop(key)  # raises KeyError
        if status == _LIR:
            self._lir_count -= 1
            del self._stack[key]
            self._prune()
        else:
            del self._queue[key]
            self._stack.pop(key, None)

    def __contains__(self, key: Key) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident(self) -> Iterator[Key]:
        return iter(self._resident)

    # introspection for tests
    @property
    def lir_count(self) -> int:
        return self._lir_count

    @property
    def hir_resident_count(self) -> int:
        return len(self._queue)
