"""Classical paging substrate: replacement policies and a page cache.

This package implements the Sleator–Tarjan paging problem that the paper's
Section 5 reduces to (Lemma 1): a :class:`PageCache` of fixed capacity
driven by one of the replacement policies below. The same policies serve as
the RAM-replacement and TLB-replacement inputs of a huge-page decoupling
scheme.
"""

from __future__ import annotations

from typing import Callable

from .arc import ARCPolicy
from .base import Key, ReplacementPolicy
from .cache import PageCache
from .clock import ClockPolicy
from .fifo import FIFOPolicy
from .lfu import LFUPolicy
from .lirs import LIRSPolicy
from .lru import LRUPolicy
from .mru import MRUPolicy
from .opt import NEVER, BeladyOPT, compute_next_use
from .random_policy import RandomPolicy
from .twoq import TwoQPolicy

__all__ = [
    "Key",
    "ReplacementPolicy",
    "PageCache",
    "LRUPolicy",
    "FIFOPolicy",
    "MRUPolicy",
    "ClockPolicy",
    "LFUPolicy",
    "LIRSPolicy",
    "RandomPolicy",
    "TwoQPolicy",
    "ARCPolicy",
    "BeladyOPT",
    "compute_next_use",
    "NEVER",
    "POLICIES",
    "make_policy",
]

#: Online policies constructible with no arguments, keyed by name.
POLICIES: dict[str, Callable[[], ReplacementPolicy]] = {
    LRUPolicy.name: LRUPolicy,
    FIFOPolicy.name: FIFOPolicy,
    MRUPolicy.name: MRUPolicy,
    ClockPolicy.name: ClockPolicy,
    LFUPolicy.name: LFUPolicy,
    LIRSPolicy.name: LIRSPolicy,
    RandomPolicy.name: RandomPolicy,
    TwoQPolicy.name: TwoQPolicy,
    ARCPolicy.name: ARCPolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Construct an online replacement policy by registry *name*.

    ``make_policy("lru")``; extra keyword arguments are forwarded to the
    policy constructor (e.g. ``make_policy("random", seed=7)``). The offline
    :class:`BeladyOPT` is not constructible this way because it needs the
    trace.
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose one of {sorted(POLICIES)}"
        ) from None
    return factory(**kwargs)
