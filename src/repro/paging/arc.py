"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST 2003).

ARC balances recency (list ``T1``) against frequency (list ``T2``) using two
ghost lists ``B1``/``B2`` and a continuously adapted target size ``p`` for
``T1``. It is scan-resistant like 2Q but self-tuning.

The algorithm is expressed here against this package's cache/policy split:
``evict(incoming)`` runs the ghost-hit adaptation and the REPLACE step of
the original pseudocode and returns the victim; ``insert(incoming)``
finishes the placement. When the cache is not yet full, ``evict`` is never
called and ``insert`` performs the adaptation itself, so behaviour matches
the original in both phases.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .._util import check_positive_int
from .base import Key, ReplacementPolicy

__all__ = ["ARCPolicy"]


class ARCPolicy(ReplacementPolicy):
    """Adaptive replacement over recency/frequency lists with ghost feedback."""

    name = "arc"

    def __init__(self) -> None:
        self._c = 1
        self._p = 0.0  # adaptive target size of T1
        self._t1: OrderedDict[Key, None] = OrderedDict()
        self._t2: OrderedDict[Key, None] = OrderedDict()
        self._b1: OrderedDict[Key, None] = OrderedDict()
        self._b2: OrderedDict[Key, None] = OrderedDict()
        self._adapted_for: Key | None = None

    def bind(self, capacity: int) -> None:
        self._c = check_positive_int(capacity, "capacity")

    # ----------------------------------------------------------- internals

    def _adapt(self, key: Key) -> None:
        """Ghost-hit adaptation of the target parameter p (cases II/III)."""
        if key in self._b1:
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(float(self._c), self._p + delta)
        elif key in self._b2:
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(0.0, self._p - delta)
        self._adapted_for = key

    def _replace(self, incoming: Key) -> Key:
        """REPLACE step: demote from T1 or T2 into the matching ghost list."""
        t1_len = len(self._t1)
        if t1_len >= 1 and (
            (incoming in self._b2 and t1_len == int(self._p)) or t1_len > int(self._p)
        ):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        else:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None
        return victim

    def _trim_ghosts(self) -> None:
        # |T1| + |B1| <= c  and  |T1|+|T2|+|B1|+|B2| <= 2c
        while len(self._t1) + len(self._b1) > self._c and self._b1:
            self._b1.popitem(last=False)
        while (
            len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2) > 2 * self._c
            and self._b2
        ):
            self._b2.popitem(last=False)

    # ------------------------------------------------------------------ api

    def record_access(self, key: Key, time: int) -> None:
        # Case I: hit in T1 ∪ T2 → move to MRU position of T2.
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
        elif key in self._t2:
            self._t2.move_to_end(key)
        else:
            raise KeyError(f"key {key!r} not resident")

    def evict(self, incoming: Key | None = None) -> Key:
        if not self._t1 and not self._t2:
            raise LookupError("evict() on empty ARC policy")
        if incoming is None:
            # Plain shrink request: behave like REPLACE for a fresh key.
            incoming = object()
        if self._adapted_for is not incoming:
            self._adapt(incoming)
        if incoming not in self._b1 and incoming not in self._b2:
            # Case IV(a) of the original pseudocode: L1 at capacity and T1
            # full means the LRU page of T1 leaves the cache *and* B1 is not
            # extended; we realise that by dropping the B1 entry REPLACE
            # just created. Case IV(b)'s B2 trim is handled by _trim_ghosts.
            if len(self._t1) + len(self._b1) >= self._c and len(self._t1) >= self._c:
                victim, _ = self._t1.popitem(last=False)
                return victim
            if len(self._t1) + len(self._b1) >= self._c and self._b1:
                self._b1.popitem(last=False)
        victim = self._replace(incoming)
        return victim

    def insert(self, key: Key, time: int) -> None:
        if key in self._t1 or key in self._t2:
            raise KeyError(f"key {key!r} already resident")
        if self._adapted_for is not key:
            self._adapt(key)
        self._adapted_for = None
        if key in self._b1:
            del self._b1[key]
            self._t2[key] = None
        elif key in self._b2:
            del self._b2[key]
            self._t2[key] = None
        else:
            self._t1[key] = None
        self._trim_ghosts()

    def remove(self, key: Key) -> None:
        if key in self._t1:
            del self._t1[key]
        elif key in self._t2:
            del self._t2[key]
        else:
            raise KeyError(key)

    def __contains__(self, key: Key) -> bool:
        return key in self._t1 or key in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def resident(self) -> Iterator[Key]:
        yield from self._t1
        yield from self._t2

    @property
    def target_t1(self) -> float:
        """Current adaptive target size ``p`` for the recency list T1."""
        return self._p
