"""Uniform-random replacement.

RANDOM is ``k``-competitive against an oblivious adversary and is the
textbook memoryless policy; we use it in benchmarks as a
no-recency-information baseline. Backed by the classic dict + swap-remove
array so that sampling, insertion and deletion are all O(1).
"""

from __future__ import annotations

from typing import Iterator

from .._util import as_rng
from .base import Key, ReplacementPolicy

__all__ = ["RandomPolicy"]


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random resident key."""

    name = "random"

    def __init__(self, seed=None) -> None:
        self._rng = as_rng(seed)
        self._keys: list[Key] = []
        self._index: dict[Key, int] = {}

    def record_access(self, key: Key, time: int) -> None:
        pass  # memoryless

    def insert(self, key: Key, time: int) -> None:
        if key in self._index:
            raise KeyError(f"key {key!r} already resident")
        self._index[key] = len(self._keys)
        self._keys.append(key)

    def evict(self, incoming: Key | None = None) -> Key:
        if not self._keys:
            raise LookupError("evict() on empty RANDOM policy")
        i = int(self._rng.integers(len(self._keys)))
        key = self._keys[i]
        self._swap_remove(key, i)
        return key

    def remove(self, key: Key) -> None:
        i = self._index[key]  # raises KeyError if absent
        self._swap_remove(key, i)

    def _swap_remove(self, key: Key, i: int) -> None:
        last = self._keys[-1]
        self._keys[i] = last
        self._index[last] = i
        self._keys.pop()
        del self._index[key]

    def __contains__(self, key: Key) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._keys)

    def resident(self) -> Iterator[Key]:
        return iter(self._keys)
