"""Workload abstraction and shared sampling helpers.

A workload generates a virtual-page access trace — a 1-D ``int64`` numpy
array of virtual page numbers in ``[0, va_pages)``. Generation is
numpy-vectorized wherever the access process allows (per the HPC guides);
inherently sequential processes (graph walks, BFS) vectorize per step or per
level.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._util import as_rng, check_positive_int

__all__ = ["Workload", "bounded_power_law_sampler"]


class Workload(ABC):
    """A reproducible generator of virtual-page traces."""

    #: short registry name, set by subclasses.
    name: str = "abstract"

    def __init__(self, va_pages: int) -> None:
        #: virtual address space size in base pages (the paper's ``V``).
        self.va_pages = check_positive_int(va_pages, "va_pages")

    @abstractmethod
    def generate(self, n: int, seed=None) -> np.ndarray:
        """Produce a trace of *n* page accesses (int64, in ``[0, va_pages)``)."""

    def _check_n(self, n: int) -> int:
        return check_positive_int(n, "n")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} va_pages={self.va_pages}>"


def bounded_power_law_sampler(n_items: int, exponent: float):
    """Return a vectorized sampler of ``{0, …, n_items−1}`` with
    ``P(i) ∝ (i+1)^(−exponent)``.

    This is the paper's "Pareto distributed with parameter α" over a finite
    page set (exponent = α + 1), implemented by inverse-CDF lookup: one
    cumulative array, then ``searchsorted`` per batch — O(log n) per draw,
    fully vectorized.
    """
    check_positive_int(n_items, "n_items")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    weights = np.arange(1, n_items + 1, dtype=np.float64) ** (-exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]

    def sample(size: int, rng) -> np.ndarray:
        rng = as_rng(rng)
        u = rng.random(size)
        return np.searchsorted(cdf, u, side="left").astype(np.int64)

    return sample
