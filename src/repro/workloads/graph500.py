"""graph500-style BFS memory trace — Figure 1c's substitute.

The paper replays a trace recorded from a real graph500 run (BFS over a
large Kronecker graph) during a period of high memory pressure (~5 M
accesses touching ~525 MB, simulated with a 520 MB cache). We cannot record
that machine's trace, so we build the whole pipeline instead:

1. a **Kronecker graph generator** following the graph500 specification
   (R-MAT recursive quadrant sampling with (A, B, C, D) =
   (0.57, 0.19, 0.19, 0.05), edgefactor 16, vertex relabeling);
2. a **level-synchronous BFS** over the CSR representation;
3. an instrumented run that emits the *page-level access stream* of the
   BFS's three resident arrays — offsets (``xadj``), adjacency
   (``adjncy``), and the parent/visited array — laid out in disjoint
   virtual-address regions with 512 8-byte elements per 4 kB page.

The figure depends only on the access-pattern class (sequential offset
scans + irregular adjacency/parent probes over a power-law graph) and on
the cache sitting just below the touched footprint; both are preserved.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int
from .base import Workload

__all__ = ["KroneckerGraph", "Graph500Workload", "PAGE_ELEMS"]

#: 8-byte elements per 4 kB page.
PAGE_ELEMS = 512

# graph500 initiator matrix
_A, _B, _C = 0.57, 0.19, 0.19


class KroneckerGraph:
    """A graph500-spec Kronecker (R-MAT) graph in CSR form.

    Parameters
    ----------
    scale:
        ``N = 2**scale`` vertices.
    edgefactor:
        ``M = edgefactor · N`` undirected edges before dedup (spec: 16).
    seed:
        Generator seed (edge sampling and vertex relabeling).
    """

    def __init__(self, scale: int, edgefactor: int = 16, seed=0) -> None:
        self.scale = check_positive_int(scale, "scale")
        self.edgefactor = check_positive_int(edgefactor, "edgefactor")
        self.n_vertices = 1 << scale
        rng = as_rng(seed)
        src, dst = self._sample_edges(rng)
        # relabel vertices to kill the locality the recursion bakes in (spec step)
        perm = rng.permutation(self.n_vertices).astype(np.int64)
        src, dst = perm[src], perm[dst]
        # symmetrize, drop self-loops, dedup
        u = np.concatenate([src, dst])
        v = np.concatenate([dst, src])
        keep = u != v
        u, v = u[keep], v[keep]
        order = np.lexsort((v, u))
        u, v = u[order], v[order]
        if len(u):
            uniq = np.concatenate([[True], (u[1:] != u[:-1]) | (v[1:] != v[:-1])])
            u, v = u[uniq], v[uniq]
        self.xadj = np.zeros(self.n_vertices + 1, dtype=np.int64)
        np.add.at(self.xadj, u + 1, 1)
        np.cumsum(self.xadj, out=self.xadj)
        self.adjncy = v.copy()

    def _sample_edges(self, rng) -> tuple[np.ndarray, np.ndarray]:
        m = self.edgefactor * self.n_vertices
        src = np.zeros(m, dtype=np.int64)
        dst = np.zeros(m, dtype=np.int64)
        for _ in range(self.scale):
            r = rng.random(m)
            src_bit = r > (_A + _B)  # quadrants C, D set the source bit
            dst_bit = ((r > _A) & (r <= _A + _B)) | (r > (_A + _B + _C))
            src = (src << 1) | src_bit
            dst = (dst << 1) | dst_bit
        return src, dst

    @property
    def n_edges(self) -> int:
        """Directed edge count after symmetrization/dedup."""
        return len(self.adjncy)

    def degree(self, u: int) -> int:
        return int(self.xadj[u + 1] - self.xadj[u])

    def bfs(self, root: int) -> np.ndarray:
        """Plain level-synchronous BFS; returns the parent array (−1 =
        unreached). Used for correctness tests against networkx-free
        references."""
        parent = np.full(self.n_vertices, -1, dtype=np.int64)
        parent[root] = root
        frontier = np.array([root], dtype=np.int64)
        while len(frontier):
            starts = self.xadj[frontier]
            ends = self.xadj[frontier + 1]
            counts = ends - starts
            if counts.sum() == 0:
                break
            eidx = _expand_ranges(starts, counts)
            vs = self.adjncy[eidx]
            fresh = parent[vs] == -1
            vs_new = vs[fresh]
            us_new = np.repeat(frontier, counts)[fresh]
            # first writer wins within the level
            first = _first_occurrence_mask(vs_new)
            vs_new, us_new = vs_new[first], us_new[first]
            parent[vs_new] = us_new
            frontier = vs_new
        return parent


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s+c)`` for every (s, c) pair, vectorized.

    The classic cumsum trick: an all-ones array with a corrective jump at
    each range boundary integrates to the concatenated ranges.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nonzero = counts > 0
    starts, counts = starts[nonzero], counts[nonzero]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(counts)[:-1]  # strictly increasing: counts > 0
    out[boundaries] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


def _first_occurrence_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask keeping the first occurrence of each value, preserving
    order."""
    seen = {}
    mask = np.zeros(len(values), dtype=bool)
    for i, v in enumerate(values.tolist()):
        if v not in seen:
            seen[v] = i
            mask[i] = True
    return mask


class Graph500Workload(Workload):
    """Page-access trace of a level-synchronous BFS over a Kronecker graph.

    Virtual layout (disjoint regions, 512 elements/page):
    ``[xadj | adjncy | parent]``. Every BFS step emits, in order: the
    frontier's offset reads, then for each traversed edge its adjacency
    read followed by its parent probe — the same interleaving a CSR BFS
    performs.

    ``generate(n)`` runs BFS traversals from random roots until ``n``
    accesses accumulate, then truncates — mirroring the paper's fixed-length
    trace window. The paper recorded its window "during a period of high
    memory pressure and high TLB miss rate": pass ``skip_fraction > 0`` to
    start each traversal's contribution that far into the BFS, where the
    frontier has left the contiguous hub blocks and touches scattered
    low-degree adjacency pages — the regime in which huge pages dilute the
    cache most.
    """

    name = "graph500"

    def __init__(
        self,
        scale: int = 14,
        edgefactor: int = 16,
        graph_seed=0,
        skip_fraction: float = 0.0,
    ) -> None:
        if not (0.0 <= skip_fraction < 1.0):
            raise ValueError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
        self.skip_fraction = skip_fraction
        self.graph = KroneckerGraph(scale, edgefactor, seed=graph_seed)
        g = self.graph
        self._xadj_base = 0
        self._adj_base = (len(g.xadj) + PAGE_ELEMS - 1) // PAGE_ELEMS
        adj_pages = (len(g.adjncy) + PAGE_ELEMS - 1) // PAGE_ELEMS
        self._parent_base = self._adj_base + max(1, adj_pages)
        parent_pages = (g.n_vertices + PAGE_ELEMS - 1) // PAGE_ELEMS
        super().__init__(self._parent_base + max(1, parent_pages))

    @property
    def footprint_pages(self) -> int:
        """Pages the BFS data structures span — the 'touched' footprint the
        paper sets its cache just below."""
        return self.va_pages

    def ram_pages(self, pressure: float = 0.99) -> int:
        """Cache size at the given fraction of the footprint (paper: 520 MB
        of 525 MB touched ≈ 0.99)."""
        return max(1, int(self.footprint_pages * pressure))

    def generate(self, n: int, seed=None, *, skip_fraction: float | None = None) -> np.ndarray:
        n = self._check_n(n)
        if skip_fraction is None:
            skip_fraction = self.skip_fraction
        if not (0.0 <= skip_fraction < 1.0):
            raise ValueError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
        rng = as_rng(seed)
        chunks: list[np.ndarray] = []
        total = 0
        while total < n:
            root = int(rng.integers(0, self.graph.n_vertices))
            traversal = list(self._bfs_trace(root))
            if skip_fraction:
                flat = np.concatenate(traversal) if traversal else np.empty(0, np.int64)
                flat = flat[int(len(flat) * skip_fraction) :]
                traversal = [flat]
            for chunk in traversal:
                chunks.append(chunk)
                total += len(chunk)
        return np.concatenate(chunks)[:n]

    # ------------------------------------------------------------ internals

    def _bfs_trace(self, root: int):
        """Yield page-access chunks for one BFS from *root*."""
        g = self.graph
        parent = np.full(g.n_vertices, -1, dtype=np.int64)
        parent[root] = root
        frontier = np.array([root], dtype=np.int64)
        while len(frontier):
            starts = g.xadj[frontier]
            ends = g.xadj[frontier + 1]
            counts = ends - starts
            # offset reads: xadj[u] and xadj[u+1] for each frontier vertex
            offs = np.empty(2 * len(frontier), dtype=np.int64)
            offs[0::2] = self._xadj_base + frontier // PAGE_ELEMS
            offs[1::2] = self._xadj_base + (frontier + 1) // PAGE_ELEMS
            yield offs
            if counts.sum() == 0:
                return
            eidx = _expand_ranges(starts, counts)
            vs = g.adjncy[eidx]
            # per-edge interleaving: adjacency read, then parent probe
            per_edge = np.empty(2 * len(eidx), dtype=np.int64)
            per_edge[0::2] = self._adj_base + eidx // PAGE_ELEMS
            per_edge[1::2] = self._parent_base + vs // PAGE_ELEMS
            yield per_edge
            fresh = parent[vs] == -1
            vs_new = vs[fresh]
            us_new = np.repeat(frontier, counts)[fresh]
            first = _first_occurrence_mask(vs_new)
            vs_new, us_new = vs_new[first], us_new[first]
            parent[vs_new] = us_new
            frontier = vs_new
