"""Markov-modulated phase workloads.

Real programs run in phases (pointer-chasing, scans, bursts of locality);
working sets shift at phase boundaries, which is where paging policies and
TLB coverage earn or lose their keep. This generator switches between
member workloads according to a Markov chain, with geometrically
distributed dwell times — the standard phase model in memory-systems
evaluation.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int
from .base import Workload

__all__ = ["MarkovPhaseWorkload"]


class MarkovPhaseWorkload(Workload):
    """Phase-switching mixture of workloads.

    Parameters
    ----------
    phases:
        Member workloads (all share one address space — phases revisit the
        same pages, unlike :class:`InterleavedWorkload`'s tenants).
    transition:
        Row-stochastic ``k×k`` matrix; ``transition[i][j]`` is the
        probability that phase ``i`` hands over to phase ``j`` when it
        ends. Defaults to uniform-over-others.
    mean_dwell:
        Expected accesses per phase visit (geometric).
    """

    name = "markov-phases"

    def __init__(self, phases, transition=None, mean_dwell: int = 1000) -> None:
        phases = list(phases)
        if not phases:
            raise ValueError("need at least one phase workload")
        self.phases = phases
        self.mean_dwell = check_positive_int(mean_dwell, "mean_dwell")
        k = len(phases)
        if transition is None:
            if k == 1:
                transition = np.ones((1, 1))
            else:
                transition = np.full((k, k), 1.0 / (k - 1))
                np.fill_diagonal(transition, 0.0)
        transition = np.asarray(transition, dtype=np.float64)
        if transition.shape != (k, k):
            raise ValueError(
                f"transition must be {k}x{k}, got {transition.shape}"
            )
        if (transition < 0).any() or not np.allclose(transition.sum(axis=1), 1.0):
            raise ValueError("transition rows must be non-negative and sum to 1")
        self.transition = transition
        super().__init__(max(p.va_pages for p in phases))

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        rng = as_rng(seed)
        out = np.empty(n, dtype=np.int64)
        phase = int(rng.integers(len(self.phases)))
        boundaries = []  # (start index, phase) for introspection via last_schedule
        filled = 0
        while filled < n:
            dwell = int(rng.geometric(1.0 / self.mean_dwell))
            take = min(dwell, n - filled)
            boundaries.append((filled, phase))
            out[filled : filled + take] = self.phases[phase].generate(
                take, seed=rng.integers(1 << 62)
            )
            filled += take
            phase = int(rng.choice(len(self.phases), p=self.transition[phase]))
        self.last_schedule = boundaries
        return out
