"""B-tree index-lookup workload — the database pattern behind the paper's
THP citations.

The paper's references [1–4] are database vendors telling users to disable
transparent huge pages; the access pattern that makes databases special is
the index probe: every query walks root → inner → leaf, so the top of the
tree is red-hot (perfect for TLB coverage) while the leaf level is as cold
and skewed as the key distribution (hostile to physical huge pages, which
drag in whole leaf neighbourhoods). This generator emits the page-access
stream of point lookups against a static B⁺-tree.

Layout: levels are laid out level-by-level (root first) in one contiguous
region, ``fanout`` keys per node, one node per page — the standard
array-packed static B-tree (Eytzinger-style per level).
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int
from .base import Workload, bounded_power_law_sampler

__all__ = ["BTreeLookupWorkload"]


class BTreeLookupWorkload(Workload):
    """Page accesses of zipf-distributed point lookups on a B⁺-tree.

    Parameters
    ----------
    n_keys:
        Keys stored in the tree.
    fanout:
        Children per inner node = keys per node = one node per page.
    zipf_s:
        Key-popularity skew (0 → uniform keys; database benchmarks use
        0.8–1.2).
    shuffle_keys:
        Scatter key popularity across the leaf level (hot keys are not
        physically adjacent — the realistic case).
    """

    name = "btree-lookup"

    def __init__(
        self,
        n_keys: int,
        fanout: int = 256,
        zipf_s: float = 1.0,
        *,
        shuffle_keys: bool = True,
        perm_seed=0,
    ) -> None:
        check_positive_int(n_keys, "n_keys")
        self.fanout = check_positive_int(fanout, "fanout")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.n_keys = n_keys
        # level sizes, leaves last
        self.level_nodes: list[int] = []
        nodes = max(1, -(-n_keys // fanout))  # leaves
        self.level_nodes.append(nodes)
        while nodes > 1:
            nodes = -(-nodes // fanout)
            self.level_nodes.append(nodes)
        self.level_nodes.reverse()  # root first
        # page offset of each level
        self.level_base: list[int] = []
        off = 0
        for count in self.level_nodes:
            self.level_base.append(off)
            off += count
        super().__init__(off)
        if zipf_s > 0:
            self._sampler = bounded_power_law_sampler(n_keys, zipf_s)
        else:
            self._sampler = None
        self._perm: np.ndarray | None = None
        if shuffle_keys:
            self._perm = as_rng(perm_seed).permutation(n_keys).astype(np.int64)

    @property
    def depth(self) -> int:
        """Tree levels (pages touched per lookup)."""
        return len(self.level_nodes)

    def pages_for_key(self, key: int) -> list[int]:
        """Root→leaf page path for *key* (keys are leaf-ordered ranks)."""
        if not (0 <= key < self.n_keys):
            raise ValueError(f"key {key} outside [0, {self.n_keys})")
        leaf = key // self.fanout
        path = []
        node = leaf
        for level in range(self.depth - 1, -1, -1):
            path.append(self.level_base[level] + node)
            node //= self.fanout
        path.reverse()
        return path

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        rng = as_rng(seed)
        depth = self.depth
        n_lookups = -(-n // depth)
        if self._sampler is not None:
            keys = self._sampler(n_lookups, rng)
        else:
            keys = rng.integers(0, self.n_keys, size=n_lookups)
        if self._perm is not None:
            keys = self._perm[keys]
        # vectorized root→leaf paths: per level, node index = key // f^(d-1-l)
        fanout = self.fanout
        out = np.empty((n_lookups, depth), dtype=np.int64)
        leaf = keys // fanout
        node = leaf
        for level in range(depth - 1, -1, -1):
            out[:, level] = self.level_base[level] + node
            node = node // fanout
        return out.reshape(-1)[:n]
