"""Multi-tenant interleaving: several workloads sharing one TLB.

The paper's introduction observes that modern TLBs hold entries for
multiple threads and applications at once, shrinking the *effective* TLB
each tenant sees. This generator interleaves member workloads round-robin
in quanta (with optional random quantum jitter), placing each tenant in a
disjoint slice of the virtual address space — the trace a shared TLB and a
shared RAM actually observe.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int
from .base import Workload

__all__ = ["InterleavedWorkload"]


class InterleavedWorkload(Workload):
    """Round-robin interleaving of tenant workloads with address isolation.

    Parameters
    ----------
    tenants:
        Member workloads; tenant ``i``'s pages are offset into slice ``i``
        of the combined address space.
    quantum:
        Accesses per tenant per turn (context-switch granularity). A
        quantum of 1 models simultaneous multithreading; thousands model
        timeslicing.
    jitter:
        With a seed-drawn probability each turn ends early, breaking exact
        periodicity (0 = strict round-robin).
    slice_pages:
        Pages per tenant slice; default is the largest member's
        ``va_pages``. Override to match an externally imposed stride —
        e.g. :class:`~repro.tenancy.MultiTenantSim` strides ASIDs by a
        power of two aligned to the algorithm's translation units, and a
        matching ``slice_pages`` makes this generator's trace directly
        comparable to an ASID-tagged run.
    """

    name = "interleaved"

    def __init__(
        self,
        tenants,
        quantum: int = 64,
        jitter: float = 0.0,
        slice_pages: int | None = None,
    ) -> None:
        tenants = list(tenants)
        if not tenants:
            raise ValueError("need at least one tenant workload")
        self.tenants = tenants
        self.quantum = check_positive_int(quantum, "quantum")
        if not (0.0 <= jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.jitter = jitter
        widest = max(t.va_pages for t in tenants)
        if slice_pages is None:
            slice_pages = widest
        elif check_positive_int(slice_pages, "slice_pages") < widest:
            raise ValueError(
                f"slice_pages {slice_pages} cannot hold the widest tenant "
                f"({widest} pages)"
            )
        self._slice = slice_pages
        super().__init__(self._slice * len(tenants))

    def tenant_slice(self, i: int) -> range:
        """The address range tenant *i* occupies in the combined space."""
        return range(i * self._slice, i * self._slice + self.tenants[i].va_pages)

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        rng = as_rng(seed)
        k = len(self.tenants)
        # generous per-tenant budget; trimmed at assembly
        per = n // k + self.quantum + 1
        streams = [
            t.generate(per, seed=rng.integers(1 << 62)) + i * self._slice
            for i, t in enumerate(self.tenants)
        ]
        out = np.empty(n, dtype=np.int64)
        pos = [0] * k
        filled = 0
        tenant = 0
        while filled < n:
            q = self.quantum
            if self.jitter and q > 1:
                # end the quantum early with probability `jitter`
                draw = rng.geometric(self.jitter) if self.jitter > 0 else q
                q = min(q, int(draw))
            stream = streams[tenant]
            start = pos[tenant]
            take = min(q, n - filled, len(stream) - start)
            if take <= 0:  # stream exhausted: regenerate lazily
                streams[tenant] = (
                    self.tenants[tenant].generate(per, seed=rng.integers(1 << 62))
                    + tenant * self._slice
                )
                pos[tenant] = 0
                continue
            out[filled : filled + take] = stream[start : start + take]
            pos[tenant] += take
            filled += take
            tenant = (tenant + 1) % k
        return out
