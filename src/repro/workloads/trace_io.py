"""Saving and loading traces (npz with a metadata dict).

Long traces are expensive to regenerate (the graph500 pipeline in
particular), so benches cache them on disk; the metadata block records the
generator and its parameters for provenance.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["save_trace", "load_trace"]


def save_trace(path, trace, metadata: dict | None = None) -> None:
    """Write *trace* (+ JSON-serializable *metadata*) to an ``.npz`` file."""
    trace = np.asarray(trace, dtype=np.int64)
    if trace.ndim != 1:
        raise ValueError(f"trace must be 1-D, got shape {trace.shape}")
    meta = json.dumps(metadata or {})
    np.savez_compressed(Path(path), trace=trace, metadata=np.array(meta))


def load_trace(path) -> tuple[np.ndarray, dict]:
    """Read a trace saved by :func:`save_trace`; returns (trace, metadata)."""
    with np.load(Path(path), allow_pickle=False) as data:
        trace = data["trace"]
        metadata = json.loads(str(data["metadata"]))
    return trace, metadata
