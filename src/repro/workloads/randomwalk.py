"""Random walk on a page graph — Figure 1b.

Each page is a node with a logarithmic number of outgoing edges whose
destinations are Pareto-distributed over all pages with parameter
``α = 0.01`` (``P(edge → page i) ∝ i^{−α−1}``) — a PageRank-flavoured
irregular access pattern. Paper parameters: 64 GB VA, 32 GB RAM (ratio
2 : 1); we keep the ratio and scale the sizes.

The edge table is materialized once per (va_pages, seed) — ``V·⌈log₂V⌉``
int32 entries — so repeated generation reuses it; the walk itself is the
only sequential loop.
"""

from __future__ import annotations

import math

import numpy as np

from .._util import as_rng
from .base import Workload, bounded_power_law_sampler

__all__ = ["RandomWalkWorkload"]


class RandomWalkWorkload(Workload):
    """Pareto-destination random graph walk.

    Parameters
    ----------
    va_pages:
        Node/page count ``V``.
    alpha:
        Pareto parameter (paper: 0.01); edge destinations follow
        ``P(i) ∝ i^{−α−1}``.
    out_degree:
        Edges per node; defaults to ``max(2, ⌈log₂ V⌉)`` ("a logarithmic
        number of outgoing edges").
    graph_seed:
        Seed for the graph structure; kept separate from the walk seed so
        one graph can be walked many times.
    """

    name = "random-walk"

    def __init__(
        self,
        va_pages: int,
        alpha: float = 0.01,
        out_degree: int | None = None,
        graph_seed=0,
    ) -> None:
        super().__init__(va_pages)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)
        self.out_degree = (
            out_degree
            if out_degree is not None
            else max(2, math.ceil(math.log2(max(2, va_pages))))
        )
        if self.out_degree < 1:
            raise ValueError(f"out_degree must be >= 1, got {self.out_degree}")
        self.graph_seed = graph_seed
        self._edges: np.ndarray | None = None

    @classmethod
    def paper_scaled(cls, scale_pages: int = 1 << 18, graph_seed=0) -> "RandomWalkWorkload":
        """The paper's configuration scaled so ``V = scale_pages``."""
        return cls(scale_pages, alpha=0.01, graph_seed=graph_seed)

    @property
    def ram_pages(self) -> int:
        """The paper-ratio RAM size (32 GB of 64 GB = half the VA)."""
        return max(1, self.va_pages // 2)

    @property
    def edges(self) -> np.ndarray:
        """The ``(V, out_degree)`` destination table (built lazily)."""
        if self._edges is None:
            sampler = bounded_power_law_sampler(self.va_pages, self.alpha + 1.0)
            rng = as_rng(self.graph_seed)
            flat = sampler(self.va_pages * self.out_degree, rng)
            self._edges = flat.reshape(self.va_pages, self.out_degree)
        return self._edges

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        rng = as_rng(seed)
        edges = self.edges
        choices = rng.integers(0, self.out_degree, size=n)
        start = int(rng.integers(0, self.va_pages))
        trace = np.empty(n, dtype=np.int64)
        cur = start
        # the walk is inherently sequential; everything random was pre-drawn
        for t in range(n):
            cur = int(edges[cur, choices[t]])
            trace[t] = cur
        return trace
