"""Uniform random page accesses — the no-locality extreme."""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from .base import Workload

__all__ = ["UniformWorkload"]


class UniformWorkload(Workload):
    """Independent uniform draws over the whole address space."""

    name = "uniform"

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        return as_rng(seed).integers(0, self.va_pages, size=n, dtype=np.int64)
