"""Zipf-distributed page accesses.

Not a Figure 1 workload, but the canonical skewed-popularity pattern
(object caches, key-value stores); used in ablation benches and examples
where the paper's intro motivates "irregular, hard-to-prefetch" accesses.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from .base import Workload, bounded_power_law_sampler

__all__ = ["ZipfWorkload"]


class ZipfWorkload(Workload):
    """Independent draws with ``P(page i) ∝ (i+1)^{−s}``.

    Parameters
    ----------
    va_pages:
        Page universe size.
    s:
        Zipf exponent (> 0); 0.8–1.2 covers most measured cache workloads.
    shuffle:
        When True (default), popularity ranks are scattered over the address
        space with a fixed permutation, so huge pages cannot trivially pack
        the hot head — matching how hot objects really land in memory.
    """

    name = "zipf"

    def __init__(self, va_pages: int, s: float = 1.0, *, shuffle: bool = True, perm_seed=0) -> None:
        super().__init__(va_pages)
        if s <= 0:
            raise ValueError(f"s must be positive, got {s}")
        self.s = float(s)
        self._sampler = bounded_power_law_sampler(va_pages, s)
        self._perm: np.ndarray | None = None
        if shuffle:
            self._perm = as_rng(perm_seed).permutation(va_pages).astype(np.int64)

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        ranks = self._sampler(n, as_rng(seed))
        return self._perm[ranks] if self._perm is not None else ranks
