"""Sequential and strided scan workloads.

Scans are the best case for huge pages (perfect spatial locality, no RAM
waste) and the worst case for LRU when they exceed the cache — both useful
calibration points next to the paper's irregular workloads.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int
from .base import Workload

__all__ = ["SequentialWorkload", "StridedWorkload"]


class SequentialWorkload(Workload):
    """Wrap-around linear scan: ``start, start+1, …`` mod ``va_pages``."""

    name = "sequential"

    def __init__(self, va_pages: int, start: int = 0) -> None:
        super().__init__(va_pages)
        if not (0 <= start < va_pages):
            raise ValueError(f"start {start} outside [0, {va_pages})")
        self.start = start

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        return (self.start + np.arange(n, dtype=np.int64)) % self.va_pages


class StridedWorkload(Workload):
    """Strided scan: ``start, start+stride, …`` mod ``va_pages``.

    Strides ≥ the huge-page size defeat huge-page coverage entirely (every
    access lands in a new huge page) while keeping base-page IO behaviour
    identical to a sequential scan over ``n`` distinct pages — a clean
    ablation for TLB-reach claims. A random *jitter* within the stride can
    be added to break perfect periodicity.
    """

    name = "strided"

    def __init__(self, va_pages: int, stride: int, jitter: int = 0) -> None:
        super().__init__(va_pages)
        self.stride = check_positive_int(stride, "stride")
        if jitter < 0 or jitter >= stride:
            if jitter != 0:
                raise ValueError(f"jitter must be in [0, stride), got {jitter}")
        self.jitter = jitter

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        base = (np.arange(n, dtype=np.int64) * self.stride) % self.va_pages
        if self.jitter:
            rng = as_rng(seed)
            base = (base + rng.integers(0, self.jitter + 1, size=n)) % self.va_pages
        return base
