"""Workload generators: the Figure 1 traces and supporting patterns.

* :class:`BimodalWorkload` — Fig 1a (hot region + cold space);
* :class:`RandomWalkWorkload` — Fig 1b (Pareto graph walk);
* :class:`Graph500Workload` — Fig 1c (Kronecker BFS page trace);
* :class:`ZipfWorkload`, :class:`SequentialWorkload`,
  :class:`StridedWorkload`, :class:`UniformWorkload` — calibration and
  ablation patterns.
"""

from .base import Workload, bounded_power_law_sampler
from .bimodal import BimodalWorkload
from .btree import BTreeLookupWorkload
from .graph500 import PAGE_ELEMS, Graph500Workload, KroneckerGraph
from .interleave import InterleavedWorkload
from .markov import MarkovPhaseWorkload
from .randomwalk import RandomWalkWorkload
from .sequential import SequentialWorkload, StridedWorkload
from .trace_io import load_trace, save_trace
from .uniform import UniformWorkload
from .zipf import ZipfWorkload

__all__ = [
    "Workload",
    "bounded_power_law_sampler",
    "BimodalWorkload",
    "BTreeLookupWorkload",
    "InterleavedWorkload",
    "MarkovPhaseWorkload",
    "RandomWalkWorkload",
    "Graph500Workload",
    "KroneckerGraph",
    "PAGE_ELEMS",
    "ZipfWorkload",
    "SequentialWorkload",
    "StridedWorkload",
    "UniformWorkload",
    "save_trace",
    "load_trace",
]
