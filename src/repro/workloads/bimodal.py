"""Bimodal uniform workload — Figure 1a.

99.99% of accesses are uniform over a small hot region; the remaining
0.01% are uniform over the whole virtual address space. The paper designed
it as the huge-page worst case: small ``h`` thrashes the TLB on the hot
region, large ``h`` amplifies IOs on the cold accesses.

Paper parameters: 64 GB VA, 1 GB hot region, 16 GB RAM (ratios
64 : 1 : 16); our generator keeps the ratios and scales the absolute sizes.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int, check_probability
from .base import Workload

__all__ = ["BimodalWorkload"]


class BimodalWorkload(Workload):
    """Hot-region/cold-space mixture.

    Parameters
    ----------
    va_pages:
        Total virtual pages ``V`` (paper: 64 GB / 4 kB = 16 M).
    hot_pages:
        Size of the hot region in pages (paper: 1 GB = 256 K → ``V/64``).
        The region starts at page 0 — where it sits is immaterial to every
        cache involved.
    p_hot:
        Probability that an access is a hot-region access (paper: 0.9999).
    """

    name = "bimodal"

    def __init__(self, va_pages: int, hot_pages: int, p_hot: float = 0.9999) -> None:
        super().__init__(va_pages)
        self.hot_pages = check_positive_int(hot_pages, "hot_pages")
        if hot_pages > va_pages:
            raise ValueError(
                f"hot_pages ({hot_pages}) cannot exceed va_pages ({va_pages})"
            )
        self.p_hot = check_probability(p_hot, "p_hot")

    @classmethod
    def paper_scaled(cls, scale_pages: int = 1 << 18) -> "BimodalWorkload":
        """The paper's configuration scaled so ``V = scale_pages``.

        Keeps ``hot = V/64`` and ``p_hot = 0.9999``. The matching RAM size
        is ``V/4`` (16 GB of 64 GB) — see ``ram_pages``.
        """
        return cls(scale_pages, max(1, scale_pages // 64), 0.9999)

    @property
    def ram_pages(self) -> int:
        """The paper-ratio RAM size for this VA size (16 GB : 64 GB = 1 : 4)."""
        return max(1, self.va_pages // 4)

    def generate(self, n: int, seed=None) -> np.ndarray:
        n = self._check_n(n)
        rng = as_rng(seed)
        hot = rng.random(n) < self.p_hot
        trace = rng.integers(0, self.va_pages, size=n, dtype=np.int64)
        n_hot = int(hot.sum())
        trace[hot] = rng.integers(0, self.hot_pages, size=n_hot, dtype=np.int64)
        return trace
