"""repro — a reproduction of *Paging and the Address-Translation Problem*
(Bender et al., SPAA 2021).

The package implements the paper's huge-page decoupling framework and every
substrate it stands on:

* :mod:`repro.core` — the address-translation cost model, low-associativity
  RAM allocation (Theorems 1/3), compact TLB encodings, the decoupling
  scheme, and the Simulation Theorem construction ``Z`` (Theorem 4);
* :mod:`repro.paging` — classical replacement policies and the page cache;
* :mod:`repro.ballsbins` — dynamic balls-and-bins games incl. Iceberg[d];
* :mod:`repro.tlb` / :mod:`repro.pagetable` — TLB and radix-page-table
  models;
* :mod:`repro.mmu` — runnable memory-management algorithms (base-page,
  physical-huge-page, decoupled, hybrid);
* :mod:`repro.sim` / :mod:`repro.workloads` / :mod:`repro.bench` — the
  Section 6 trace-driven simulator, the Figure 1 workloads, and the
  benchmark harness;
* :mod:`repro.tenancy` — multi-tenant simulation: ASID-striped address
  spaces sharing one algorithm, tenant schedulers, and churn sweeps;
* :mod:`repro.obs` — observability: probe-based event tracing, interval
  time-series metrics, and wall-clock run profiling (all zero-overhead
  when unused).

Quickstart::

    from repro import BimodalWorkload, DecoupledMM, simulate

    wl = BimodalWorkload.paper_scaled(1 << 16)
    mm = DecoupledMM(tlb_entries=256, ram_pages=wl.ram_pages)
    ledger = simulate(mm, wl.generate(100_000, seed=0), warmup=50_000)
    print(ledger.as_dict())
"""

import logging as _logging

# Library logging convention: ship a NullHandler on the root ``repro``
# logger so importing the package never prints; consumers (and the CLI's
# --log-level flag) attach their own handlers.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from .core import (
    ATCostModel,
    CostLedger,
    DecoupledSystem,
    DecouplingScheme,
    FullyAssociativeAllocator,
    GreedyAllocator,
    IcebergAllocator,
    OneChoiceAllocator,
    TLBValueCodec,
    theorem1_parameters,
    theorem3_parameters,
)
from .mmu import BasePageMM, DecoupledMM, HybridMM, PhysicalHugePageMM
from .obs import IntervalMetrics, NullProbe, Probe, Timer, TraceRecorder, timed
from .paging import PageCache, make_policy
from .sim import simulate, sweep_huge_page_sizes
from .tenancy import MultiTenantSim, Tenant
from .tlb import TLB
from .workloads import (
    BimodalWorkload,
    Graph500Workload,
    RandomWalkWorkload,
    SequentialWorkload,
    StridedWorkload,
    UniformWorkload,
    ZipfWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "ATCostModel",
    "CostLedger",
    "DecouplingScheme",
    "DecoupledSystem",
    "TLBValueCodec",
    "FullyAssociativeAllocator",
    "OneChoiceAllocator",
    "GreedyAllocator",
    "IcebergAllocator",
    "theorem1_parameters",
    "theorem3_parameters",
    "BasePageMM",
    "PhysicalHugePageMM",
    "DecoupledMM",
    "HybridMM",
    "PageCache",
    "make_policy",
    "Probe",
    "NullProbe",
    "TraceRecorder",
    "IntervalMetrics",
    "Timer",
    "timed",
    "TLB",
    "simulate",
    "sweep_huge_page_sizes",
    "Tenant",
    "MultiTenantSim",
    "BimodalWorkload",
    "RandomWalkWorkload",
    "Graph500Workload",
    "ZipfWorkload",
    "SequentialWorkload",
    "StridedWorkload",
    "UniformWorkload",
    "__version__",
]
