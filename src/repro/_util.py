"""Small shared helpers used across the :mod:`repro` package.

These are deliberately dependency-free (stdlib + numpy only) and kept out of
the public API; everything here is an implementation detail.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive_int",
    "check_in_range",
    "check_probability",
    "is_power_of_two",
    "next_power_of_two",
    "ceil_div",
    "ceil_log2",
    "as_rng",
    "as_int_list",
]


def as_int_list(trace) -> list:
    """Materialize *trace* as a list of plain Python ints — the hot-loop
    contract (see ``docs/API.md``).

    Numpy arrays convert in one C-level ``tolist()`` call, which is what
    makes the per-access loops cheap: iterating an ndarray directly boxes a
    fresh ``np.int64`` per element and every downstream dict probe pays its
    slower ``__hash__``. Lists whose elements are already ints pass through
    unchanged (no copy); anything else is converted element-wise once.
    """
    if isinstance(trace, np.ndarray):
        return trace.tolist()
    if isinstance(trace, list) and all(type(v) is int for v in trace):
        return trace
    return [int(v) for v in trace]


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive ``int`` and return it.

    numpy integer scalars are accepted and converted; ``bool`` is rejected
    (it subclasses ``int`` but is never what a caller means by a count).
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_in_range(value: int, name: str, lo: int, hi: int) -> int:
    """Validate ``lo <= value < hi`` for an integer *value* and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if not (lo <= value < hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}), got {value}")
    return value


def check_probability(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that *value* lies in ``[0, 1]`` (or ``(0, 1)``) and return it."""
    value = float(value)
    if inclusive:
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not (0.0 < value < 1.0):
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def is_power_of_two(value: int) -> bool:
    """Return True iff *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= *value* (value must be positive)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return 1 << (value - 1).bit_length()


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative *a* and positive *b*."""
    return -(-a // b)


def ceil_log2(value: int) -> int:
    """``ceil(log2(value))`` for a positive integer, with ``ceil_log2(1) == 0``."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return (value - 1).bit_length()


def as_rng(seed) -> np.random.Generator:
    """Coerce *seed* (None, int, or Generator) into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
