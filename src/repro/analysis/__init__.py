"""Workload and policy analysis: stack distances, working sets,
competitive ratios.

These tools answer the sizing questions the paper's cost model raises —
what a different RAM size or TLB coverage would have cost — without
re-running the simulator per configuration.
"""

from .competitive import CompetitiveResult, competitive_ratio, sleator_tarjan_bound
from .stackdist import COLD, lru_miss_curve, stack_distances
from .traceinfo import describe_trace, huge_page_density, sequentiality
from .workingset import average_working_set, working_set_profile, working_set_sizes

__all__ = [
    "stack_distances",
    "lru_miss_curve",
    "COLD",
    "working_set_sizes",
    "average_working_set",
    "working_set_profile",
    "competitive_ratio",
    "CompetitiveResult",
    "sleator_tarjan_bound",
    "describe_trace",
    "sequentiality",
    "huge_page_density",
]
