"""Empirical competitive analysis of paging policies.

The paper's guarantees are competitive-style: Theorem 4's ``Z`` is
(1+o(1))-competitive with the *pair* (X, Y) it simulates, and Lemma 1
hands each half to classical paging, whose competitive theory (Sleator &
Tarjan) is the bedrock. These helpers measure the empirical ratios and
check the classical bounds on concrete traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..paging import ReplacementPolicy, make_policy
from ..core.separation import optimal_faults, paging_faults

__all__ = ["CompetitiveResult", "competitive_ratio", "sleator_tarjan_bound"]


@dataclass(frozen=True, slots=True)
class CompetitiveResult:
    """Fault counts and ratio of one (policy, OPT) comparison."""

    policy: str
    policy_capacity: int
    opt_capacity: int
    policy_faults: int
    opt_faults: int

    @property
    def ratio(self) -> float:
        """Empirical competitive ratio (∞ if OPT never faults but policy does)."""
        if self.opt_faults == 0:
            return float("inf") if self.policy_faults else 1.0
        return self.policy_faults / self.opt_faults


def competitive_ratio(
    trace,
    policy: ReplacementPolicy | str,
    capacity: int,
    *,
    opt_capacity: int | None = None,
    **policy_kwargs,
) -> CompetitiveResult:
    """Measure a policy's fault count against offline OPT on *trace*.

    ``opt_capacity`` defaults to *capacity*; set it smaller for the
    resource-augmented comparison (the policy gets ``k`` frames, OPT gets
    ``h ≤ k`` — Sleator–Tarjan's setting, and the shape of the paper's
    ``(1−δ)P`` augmentation).
    """
    trace = [int(p) for p in trace]
    if isinstance(policy, str):
        name = policy
        policy = make_policy(policy, **policy_kwargs)
    else:
        name = policy.name
    h = opt_capacity if opt_capacity is not None else capacity
    return CompetitiveResult(
        policy=name,
        policy_capacity=capacity,
        opt_capacity=h,
        policy_faults=paging_faults(trace, capacity, policy),
        opt_faults=optimal_faults(trace, h),
    )


def sleator_tarjan_bound(k: int, h: int) -> float:
    """The classical bound ``k / (k − h + 1)`` for LRU/FIFO with ``k``
    frames against OPT with ``h ≤ k`` frames."""
    if not (1 <= h <= k):
        raise ValueError(f"need 1 <= h <= k, got h={h}, k={k}")
    return k / (k - h + 1)
