"""Trace characterization: the numbers to look at before any experiment.

``describe_trace`` condenses a virtual-page trace into the handful of
statistics that predict how every mechanism in this library will behave on
it: footprint and reuse (paging pressure), sequentiality and huge-page
density (TLB-coverage friendliness), and popularity skew (hot-set
concentration).
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive_int

__all__ = ["describe_trace", "sequentiality", "huge_page_density"]


def sequentiality(trace) -> float:
    """Fraction of accesses whose page is the successor of the previous
    access's page — 1.0 for a pure scan, ~0 for random traffic."""
    trace = np.asarray(trace, dtype=np.int64)
    if len(trace) < 2:
        return 0.0
    return float((np.diff(trace) == 1).mean())


def huge_page_density(trace, h: int) -> float:
    """Mean fraction of each *touched* huge page that the trace touches.

    1.0 means every touched huge page is fully used (coverage is free);
    ``1/h`` means one page per huge page (coverage pays h× for nothing).
    """
    check_positive_int(h, "h")
    trace = np.asarray(trace, dtype=np.int64)
    if len(trace) == 0:
        return 0.0
    touched_pages = len(np.unique(trace))
    touched_huge = len(np.unique(trace // h))
    return touched_pages / (touched_huge * h)


def describe_trace(trace, *, huge_page_size: int = 64, top_fraction: float = 0.01) -> dict:
    """Summary statistics of a trace (all plain floats/ints, report-ready).

    Keys: ``length``, ``footprint`` (distinct pages), ``reuse_ratio``
    (accesses per distinct page), ``sequentiality``, ``huge_page_density``
    (at *huge_page_size*), ``top_share`` (fraction of accesses going to
    the hottest *top_fraction* of touched pages — popularity skew), and
    ``address_span`` (max − min page + 1).
    """
    trace = np.asarray(trace, dtype=np.int64)
    n = len(trace)
    if n == 0:
        return {
            "length": 0, "footprint": 0, "reuse_ratio": 0.0, "sequentiality": 0.0,
            "huge_page_density": 0.0, "top_share": 0.0, "address_span": 0,
        }
    pages, counts = np.unique(trace, return_counts=True)
    footprint = len(pages)
    top_k = max(1, int(footprint * top_fraction))
    top_share = float(np.sort(counts)[-top_k:].sum() / n)
    return {
        "length": int(n),
        "footprint": int(footprint),
        "reuse_ratio": float(n / footprint),
        "sequentiality": sequentiality(trace),
        "huge_page_density": huge_page_density(trace, huge_page_size),
        "top_share": top_share,
        "address_span": int(trace.max() - trace.min() + 1),
    }
