"""Mattson stack distances: LRU fault counts for *all* cache sizes at once.

The LRU stack distance (reuse distance) of an access is the number of
distinct pages referenced since the previous access to the same page; an
access faults in an LRU cache of capacity ``c`` iff its distance exceeds
``c``. One pass therefore yields the *entire* miss-ratio curve — the tool
behind every "what if RAM were bigger" question in the paper's cost model,
and a cross-check for :class:`~repro.paging.PageCache` with LRU.

Implementation: the classic Fenwick-tree-over-timestamps algorithm,
O(n log n) time, O(n) space.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stack_distances", "lru_miss_curve", "COLD"]

#: Stack distance reported for first-ever (compulsory) accesses.
COLD = -1


class _Fenwick:
    """Prefix-sum tree over n slots (1-indexed internally)."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self.tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots [0, i]."""
        i += 1
        tree = self.tree
        total = 0
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total


def stack_distances(trace) -> np.ndarray:
    """LRU stack distance of every access (``COLD`` = first touch).

    A distance of ``d`` means ``d`` distinct *other* pages were touched
    since the previous access to this page, so the access hits in any LRU
    cache of capacity > d (i.e. capacity >= d+1).
    """
    trace = [int(p) for p in trace]
    n = len(trace)
    out = np.empty(n, dtype=np.int64)
    fen = _Fenwick(n)
    last_pos: dict[int, int] = {}
    for t, page in enumerate(trace):
        prev = last_pos.get(page)
        if prev is None:
            out[t] = COLD
        else:
            # distinct pages touched in (prev, t) = live markers after prev
            out[t] = fen.prefix(t - 1) - fen.prefix(prev)
            fen.add(prev, -1)  # move this page's marker to position t
        fen.add(t, 1)
        last_pos[page] = t
    return out


def lru_miss_curve(trace, capacities) -> dict[int, int]:
    """LRU fault count for every capacity in *capacities*, in one pass.

    Equivalent to running :class:`~repro.paging.PageCache` with
    :class:`~repro.paging.LRUPolicy` once per capacity, but O(n log n)
    total instead of O(n · |capacities|).
    """
    capacities = sorted(set(int(c) for c in capacities))
    if any(c <= 0 for c in capacities):
        raise ValueError("capacities must be positive")
    dists = stack_distances(trace)
    cold = int((dists == COLD).sum())
    warm = dists[dists != COLD]
    # access with distance d misses iff capacity <= d
    hist = np.bincount(warm, minlength=1)
    cum_hits = np.cumsum(hist)  # cum_hits[c-1] = hits with distance < c
    out = {}
    n_warm = len(warm)
    for c in capacities:
        hits = int(cum_hits[min(c - 1, len(cum_hits) - 1)]) if len(cum_hits) else 0
        out[c] = cold + (n_warm - hits)
    return out
