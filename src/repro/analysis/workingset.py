"""Denning working-set statistics (paper citation [18]).

The working set ``W(t, τ)`` is the set of distinct pages referenced in the
window ``(t−τ, t]``. Its size over time characterizes a workload's memory
demand independently of any replacement policy — the quantity the paper's
introduction appeals to when it says TLBs are "too small to cache the
working sets of modern parallel programs".
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive_int

__all__ = ["working_set_sizes", "average_working_set", "working_set_profile"]


def working_set_sizes(trace, tau: int) -> np.ndarray:
    """``|W(t, τ)|`` for every ``t`` in ``[0, n)`` (windows clipped at 0).

    One O(n) sliding-window pass using per-page reference counts.
    """
    check_positive_int(tau, "tau")
    trace = [int(p) for p in trace]
    n = len(trace)
    sizes = np.empty(n, dtype=np.int64)
    counts: dict[int, int] = {}
    distinct = 0
    for t, page in enumerate(trace):
        c = counts.get(page, 0)
        if c == 0:
            distinct += 1
        counts[page] = c + 1
        if t >= tau:
            old = trace[t - tau]
            c = counts[old] - 1
            counts[old] = c
            if c == 0:
                distinct -= 1
        sizes[t] = distinct
    return sizes


def average_working_set(trace, tau: int) -> float:
    """Mean ``|W(t, τ)|`` over the steady part of the trace (t ≥ τ)."""
    sizes = working_set_sizes(trace, tau)
    steady = sizes[tau:] if len(sizes) > tau else sizes
    return float(steady.mean()) if len(steady) else 0.0


def working_set_profile(trace, taus) -> dict[int, float]:
    """Average working-set size for each window length in *taus* — the
    classic knee-finding curve for sizing caches (RAM or TLB coverage)."""
    return {int(tau): average_working_set(trace, int(tau)) for tau in taus}
