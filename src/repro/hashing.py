"""Seeded hash families for page placement.

Low-associativity RAM allocation hashes each virtual page address to ``k``
candidate buckets (Section 4 of the paper). The adversary — the
RAM-replacement policy plus the request sequence — is *oblivious* to these
random bits, so simple multiply-shift hashing (Dietzfelbinger et al.) gives
exactly the uniform-random placement the analysis assumes, at a fraction of
the cost of cryptographic hashing.

All state is derived from an explicit seed so that every experiment is
reproducible.
"""

from __future__ import annotations

import numpy as np

from ._util import as_rng, check_positive_int

__all__ = ["MultiplyShiftHash", "HashFamily"]

_MASK64 = (1 << 64) - 1


_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


class MultiplyShiftHash:
    """A seeded 64-bit mixing hash onto ``[0, range_)``.

    A plain multiply-shift ``((a·x+b) >> 32) mod n`` is *too* regular on
    sequential keys (virtual page numbers are sequential!): its max bin load
    comes out below the uniform-random prediction, which would silently
    flatter every load bound we measure. We therefore follow the multiply
    step with the splitmix64 finalizer, whose avalanche behaviour makes
    structured key sets indistinguishable from uniform throws — matching the
    fully-random-hash assumption of the paper's analysis.

    Supports scalar ints and numpy arrays (vectorized).
    """

    __slots__ = ("a", "b", "range")

    def __init__(self, range_: int, rng: np.random.Generator) -> None:
        self.range = check_positive_int(range_, "range_")
        self.a = (int(rng.integers(0, 1 << 63)) << 1) | 1  # random odd multiplier
        self.b = int(rng.integers(0, 1 << 63))

    def __call__(self, x: int) -> int:
        z = (self.a * x + self.b) & _MASK64
        z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
        z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
        z ^= z >> 31
        return z % self.range

    def many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over an int64/uint64 array of keys."""
        xs = np.asarray(xs, dtype=np.uint64)
        with np.errstate(over="ignore"):
            z = np.uint64(self.a) * xs + np.uint64(self.b)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
            z ^= z >> np.uint64(31)
        return (z % np.uint64(self.range)).astype(np.int64)


class HashFamily:
    """``k`` independent multiply-shift hash functions onto ``[0, range_)``.

    This is the family ``h₁, …, h_k`` of Section 4: OneChoice uses ``k=1``,
    Greedy[d] uses ``k=d``, Iceberg[2] uses ``k=3``.
    """

    __slots__ = ("functions", "k", "range")

    def __init__(self, k: int, range_: int, seed=None) -> None:
        self.k = check_positive_int(k, "k")
        self.range = check_positive_int(range_, "range_")
        rng = as_rng(seed)
        self.functions = tuple(MultiplyShiftHash(range_, rng) for _ in range(k))

    def __call__(self, x: int) -> tuple[int, ...]:
        """All ``k`` candidate buckets for key *x*."""
        return tuple(h(x) for h in self.functions)

    def __getitem__(self, i: int) -> MultiplyShiftHash:
        return self.functions[i]

    def __len__(self) -> int:
        return self.k
