"""Registry of memory-management algorithms for grid drivers and tests.

Every concrete algorithm registers a *builder* keyed by its ``name``: a
module-level function taking the two knobs all algorithms share
(``tlb_entries``, ``ram_pages``) plus a seed, and filling in sensible
paper-shaped defaults for the rest. The validation sweep (``repro check``),
the property-based fuzz tests, and the reset-stats audit all enumerate
:data:`MM_NAMES` so a newly added algorithm is covered the moment it is
registered — forgetting to register is itself caught by a test.

Builders are module-level functions (and :func:`mm_factory` returns a
``functools.partial`` of one), so registry-built grids survive the trip
into :mod:`repro.sim.parallel` workers.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from .base import MemoryManagementAlgorithm
from .classical import BasePageMM
from .decoupled import DecoupledMM
from .hugepage import PhysicalHugePageMM
from .hybrid import HybridMM
from .thp import THPStyleMM
from .virtualized import NestedTranslationMM
from .writeback import WritebackHugePageMM

__all__ = ["ENGINES", "MM_BUILDERS", "MM_NAMES", "make_mm", "mm_factory"]

#: default huge-page size for the physical / nested / write-back entries.
_DEFAULT_H = 16
#: default physical-run length for the hybrid entry.
_DEFAULT_CHUNK = 4


def _build_base(tlb_entries: int, ram_pages: int, seed=None) -> BasePageMM:
    return BasePageMM(tlb_entries, ram_pages)


def _build_physical(tlb_entries: int, ram_pages: int, seed=None) -> PhysicalHugePageMM:
    ram_h = (ram_pages // _DEFAULT_H) * _DEFAULT_H
    return PhysicalHugePageMM(tlb_entries, ram_h, huge_page_size=_DEFAULT_H)


def _build_decoupled(tlb_entries: int, ram_pages: int, seed=None) -> DecoupledMM:
    return DecoupledMM(tlb_entries, ram_pages, seed=seed)


def _build_hybrid(tlb_entries: int, ram_pages: int, seed=None) -> HybridMM:
    ram_c = (ram_pages // _DEFAULT_CHUNK) * _DEFAULT_CHUNK
    return HybridMM(tlb_entries, ram_c, _DEFAULT_CHUNK, seed=seed)


def _build_thp(tlb_entries: int, ram_pages: int, seed=None) -> THPStyleMM:
    return THPStyleMM(
        tlb_entries, ram_pages, huge_page_size=_DEFAULT_H, promote_utilization=0.75
    )


def _build_nested(tlb_entries: int, ram_pages: int, seed=None) -> NestedTranslationMM:
    return NestedTranslationMM(tlb_entries, tlb_entries, ram_pages, huge_page_size=1)


def _build_writeback(tlb_entries: int, ram_pages: int, seed=None) -> WritebackHugePageMM:
    ram_h = (ram_pages // _DEFAULT_H) * _DEFAULT_H
    return WritebackHugePageMM(
        tlb_entries, ram_h, huge_page_size=_DEFAULT_H, seed=seed
    )


#: ``name -> builder(tlb_entries, ram_pages, seed=...)`` for every concrete
#: algorithm (keys match each class's ``name`` attribute).
MM_BUILDERS: dict[str, Callable[..., MemoryManagementAlgorithm]] = {
    BasePageMM.name: _build_base,
    PhysicalHugePageMM.name: _build_physical,
    DecoupledMM.name: _build_decoupled,
    HybridMM.name: _build_hybrid,
    THPStyleMM.name: _build_thp,
    NestedTranslationMM.name: _build_nested,
    WritebackHugePageMM.name: _build_writeback,
}

#: registry names in deterministic order (grid/test parametrization order).
MM_NAMES: tuple[str, ...] = tuple(sorted(MM_BUILDERS))


#: engine names accepted by :func:`make_mm` / :func:`mm_factory`.
ENGINES: tuple[str, ...] = ("object", "array")


def make_mm(
    name: str, tlb_entries: int, ram_pages: int, *, seed=None, engine: str = "object"
) -> MemoryManagementAlgorithm:
    """Build the registered algorithm *name* with registry defaults.

    ``engine="array"`` selects the struct-of-arrays batch engine
    (:mod:`repro.mmu.array_engine`); algorithms or probes it cannot batch
    fall back to the object replay per ``run`` call, with identical
    counters and cache state either way.
    """
    try:
        builder = MM_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; registered: {', '.join(MM_NAMES)}"
        ) from None
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of: {', '.join(ENGINES)}"
        )
    mm = builder(tlb_entries, ram_pages, seed=seed)
    mm.engine = engine
    return mm


def mm_factory(
    name: str, tlb_entries: int, ram_pages: int, *, seed=None, engine: str = "object"
):
    """Picklable zero-arg factory for *name* (for :class:`~repro.sim.SimTask`)."""
    if name not in MM_BUILDERS:
        raise ValueError(
            f"unknown algorithm {name!r}; registered: {', '.join(MM_NAMES)}"
        )
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of: {', '.join(ENGINES)}"
        )
    return partial(make_mm, name, tlb_entries, ram_pages, seed=seed, engine=engine)
