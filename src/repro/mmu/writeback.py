"""Write-back extension: dirty evictions cost IOs too.

The address-translation cost model makes evictions free — correct for
clean pages, optimistic for dirty ones, which must be written to storage
before the frame is reused. Write-back is huge pages' *fourth* cost: a
dirty physical huge page writes back all ``h`` constituent pages even if
one byte changed, so write amplification scales with ``h`` exactly like
fault amplification.

:class:`WritebackHugePageMM` extends the Section 6 simulator with a
Bernoulli write model (each access dirties its unit with probability
``write_fraction``) and accounts write-back IOs separately in
``ledger.extra["writeback_ios"]`` so the classic read-IO series stays
comparable with the paper's.
"""

from __future__ import annotations

from .._util import as_rng, check_probability
from ..paging import ReplacementPolicy
from .base import MMInspector
from .hugepage import PhysicalHugePageMM, _PhysicalInspector

__all__ = ["WritebackHugePageMM"]


class _WritebackInspector(_PhysicalInspector):
    """Physical-huge-page surface plus the write-back invariant: only
    resident units can be dirty (an evicted unit must have been flushed)."""

    def deep_check(self) -> None:
        super().deep_check()
        mm = self.mm
        stray = mm._dirty - set(mm.ram.resident())
        assert not stray, f"dirty units not resident (missed flush): {sorted(stray)[:8]}"


class WritebackHugePageMM(PhysicalHugePageMM):
    """Physical-huge-page management with dirty-page write-back accounting.

    Parameters
    ----------
    write_fraction:
        Probability that an access is a store (dirties its mapping unit).
    seed:
        Seed for the store-sampling RNG (deterministic traces stay
        deterministic).

    Other parameters as in :class:`~repro.mmu.hugepage.PhysicalHugePageMM`.
    """

    name = "physical-huge+wb"

    def __init__(
        self,
        tlb_entries: int,
        ram_pages: int,
        huge_page_size: int = 1,
        write_fraction: float = 0.3,
        tlb_policy: ReplacementPolicy | None = None,
        ram_policy: ReplacementPolicy | None = None,
        seed=None,
    ) -> None:
        super().__init__(
            tlb_entries, ram_pages, huge_page_size, tlb_policy, ram_policy
        )
        self.write_fraction = check_probability(write_fraction, "write_fraction")
        self._rng = as_rng(seed)
        self._dirty: set[int] = set()
        self._extra_defaults = dict(writeback_ios=0, writebacks=0)
        self.ledger.extra.update(self._extra_defaults)
        # intercept RAM evictions to flush dirty huge units
        self.ram.on_evict = self._on_ram_evict

    def access(self, vpn: int) -> None:
        super().access(vpn)
        if self.write_fraction and self._rng.random() < self.write_fraction:
            self._dirty.add(vpn // self.huge_page_size)

    def _on_ram_evict(self, hpn: int) -> None:
        if hpn in self._dirty:
            self._dirty.remove(hpn)
            self.ledger.extra["writeback_ios"] += self.huge_page_size
            self.ledger.extra["writebacks"] += 1

    def inspector(self) -> MMInspector:
        return _WritebackInspector(self)

    @property
    def dirty_units(self) -> int:
        """Resident units currently dirty."""
        return len(self._dirty)

    @property
    def total_ios(self) -> int:
        """Read (fault) IOs plus write-back IOs — the full device traffic."""
        return self.ledger.ios + self.ledger.extra["writeback_ios"]
