"""Nested (virtualized) address translation — the intro's "squared" miss cost.

Under virtualization every guest memory reference undergoes two
translations: guest-virtual → guest-physical (the guest's page table) and
guest-physical → host-physical (the host's). Hardware caches the *combined*
translation in the regular TLB, but a miss triggers a two-dimensional walk:
each of the guest's ``L_g`` page-table reads is itself a guest-physical
address that the host must translate — ``(L_g+1)(L_h+1) − 1`` memory
touches in the worst case. A host-side *nested TLB* (caching
guest-physical → host-physical for page-table pages) absorbs most of the
blow-up in practice; this model measures how much survives.

The model reports the **effective ε multiplier** — mean memory touches per
guest-TLB miss relative to a native walk — which is exactly the factor by
which virtualization scales the paper's ε, and hence scales the value of
every TLB miss that huge pages or decoupling eliminate.
"""

from __future__ import annotations

from .._util import check_positive_int, is_power_of_two
from ..paging import LRUPolicy, PageCache
from .base import MemoryManagementAlgorithm, MMInspector

__all__ = ["NestedTranslationMM"]


class _NestedInspector(MMInspector):
    """Oracle surface for two-dimensional translation: the combined TLB and
    host RAM behave like the Section 6 simulator; the nested TLB is an
    additional bounded cache."""

    def __init__(self, mm: "NestedTranslationMM") -> None:
        super().__init__(mm)
        self.tlb_capacity = mm.tlb.capacity
        self.ram_page_capacity = mm.ram.capacity * mm.h
        self.io_quantum = mm.h
        self.max_io_per_access = mm.h

    def tlb_entries(self) -> int:
        return len(self.mm.tlb)

    def ram_pages_resident(self) -> int:
        return len(self.mm.ram) * self.mm.h

    def tlb_covers(self, vpn: int) -> bool:
        return (vpn // self.mm.h) in self.mm.tlb

    def translation_spans(self):
        h = self.mm.h
        return [(hpn * h, hpn * h + h) for hpn in self.mm.tlb.resident()]

    def deep_check(self) -> None:
        self.mm.tlb.check_invariants()
        self.mm.nested_tlb.check_invariants()
        self.mm.ram.check_invariants()


class NestedTranslationMM(MemoryManagementAlgorithm):
    """Trace-driven model of two-dimensional translation.

    Parameters
    ----------
    guest_tlb_entries:
        Combined (gVA → hPA) TLB size; misses here cost a nested walk.
    host_tlb_entries:
        Nested TLB size (gPA → hPA entries used during walks).
    ram_pages:
        Host RAM in base pages (host-level paging of guest pages).
    huge_page_size:
        Guest huge-page size ``h`` (coverage of a combined-TLB entry; the
        physical-huge-page semantics of the Section 6 simulator apply).
    guest_levels / host_levels:
        Page-table depths (4 + 4 models x86-64 under EPT/NPT).

    Ledger extras: ``host_tlb_misses``, ``walk_touches`` (total memory
    reads spent in nested walks).
    """

    name = "nested"

    def __init__(
        self,
        guest_tlb_entries: int,
        host_tlb_entries: int,
        ram_pages: int,
        huge_page_size: int = 1,
        guest_levels: int = 4,
        host_levels: int = 4,
        bits_per_level: int = 9,
    ) -> None:
        super().__init__()
        check_positive_int(guest_tlb_entries, "guest_tlb_entries")
        check_positive_int(host_tlb_entries, "host_tlb_entries")
        check_positive_int(ram_pages, "ram_pages")
        h = check_positive_int(huge_page_size, "huge_page_size")
        if not is_power_of_two(h):
            raise ValueError(f"huge_page_size must be a power of two, got {h}")
        if ram_pages % h:
            raise ValueError("ram_pages must be divisible by huge_page_size")
        self.h = h
        self.guest_levels = check_positive_int(guest_levels, "guest_levels")
        self.host_levels = check_positive_int(host_levels, "host_levels")
        self.bits_per_level = check_positive_int(bits_per_level, "bits_per_level")
        self.tlb = PageCache(guest_tlb_entries, LRUPolicy())
        self.nested_tlb = PageCache(host_tlb_entries, LRUPolicy())
        self.ram = PageCache(ram_pages // h, LRUPolicy())
        self._extra_defaults = dict(host_tlb_misses=0, walk_touches=0)
        self.ledger.extra.update(self._extra_defaults)

    # ------------------------------------------------------------------ api

    def access(self, vpn: int) -> None:
        ledger = self.ledger
        ledger.accesses += 1
        hpn = vpn // self.h
        if self.tlb.access(hpn):
            ledger.tlb_hits += 1
        else:
            ledger.tlb_misses += 1
            self._nested_walk(vpn)
        if not self.ram.access(hpn):
            ledger.ios += self.h

    def translation_alignment(self) -> int:
        return self.h

    def attribution_sites(self) -> tuple:
        # the nested TLB is deliberately uninstrumented: its misses charge
        # ledger extras (host_tlb_misses), not the tlb_misses counter the
        # conservation pins sum against.
        h = self.h
        page_of = (lambda hpn, _h=h: hpn * _h) if h != 1 else (lambda k: k)
        return (("tlb", self.tlb, page_of), ("ram", self.ram, page_of))

    def shootdown(self, lo: int, hi: int) -> int:
        h = self.h
        victims = [
            hpn for hpn in self.tlb.resident()
            if hpn * h < hi and (hpn + 1) * h > lo
        ]
        ghost = self.tlb._ghost
        for hpn in victims:
            if ghost is not None:
                ghost.invalidated(hpn)
            self.tlb.remove(hpn)
        # nested entries: data-page translations (depth 0) are keyed by the
        # full vpn; page-table nodes at depth d cover an aligned prefix
        # range. Nodes wholly inside the range are tenant-private and
        # flushed with it; nodes straddling the boundary are shared
        # upper-level structure and survive (as cached EPT interior nodes
        # survive a guest address-space teardown).
        top = self.guest_levels * self.bits_per_level
        nested_victims = []
        for depth, prefix in self.nested_tlb.resident():
            span = 1 << (top - depth * self.bits_per_level) if depth else 1
            if prefix * span >= lo and (prefix + 1) * span <= hi:
                nested_victims.append((depth, prefix))
        for key in nested_victims:
            self.nested_tlb.remove(key)
        return len(victims) + len(nested_victims)

    def _eviction_count(self) -> int:
        return self.ram.evictions

    def inspector(self) -> MMInspector:
        return _NestedInspector(self)

    def _nested_walk(self, vpn: int) -> None:
        """Charge the 2-D walk: guest levels × (host translation + read).

        Each guest page-table node lives at a guest-physical page keyed by
        its (level, address-prefix); translating that page costs a nested
        TLB lookup and, on a miss, a full host walk. The final data page's
        host translation rides along the same way.
        """
        ledger = self.ledger
        top = self.guest_levels * self.bits_per_level
        touches = 0
        for depth in range(1, self.guest_levels + 1):
            prefix = vpn >> (top - depth * self.bits_per_level)
            touches += 1  # reading the guest page-table node itself
            if not self.nested_tlb.access((depth, prefix)):
                ledger.extra["host_tlb_misses"] += 1
                touches += self.host_levels  # host walk for the node's gPA
        # host translation of the data page (the +1 in (g+1)(h+1)-1)
        if not self.nested_tlb.access((0, vpn)):
            ledger.extra["host_tlb_misses"] += 1
            touches += self.host_levels
        ledger.extra["walk_touches"] += touches

    # ------------------------------------------------------------ diagnostics

    @property
    def effective_epsilon_multiplier(self) -> float:
        """Mean nested-walk memory touches per guest miss, relative to a
        native ``guest_levels``-touch walk. 1.0 = no virtualization tax;
        the worst case is ``((g+1)(h+1) − 1) / g``."""
        misses = self.ledger.tlb_misses
        if misses == 0:
            return 1.0
        native = self.guest_levels
        return (self.ledger.extra["walk_touches"] / misses) / native
