"""Memory-management algorithm interface (paper Section 5).

A memory-management algorithm controls the TLB contents ``T``, the RAM
active set ``A``, the decoding function ``f``, and the virtual→physical map
``φ``, and services a stream of virtual-page requests, accumulating costs in
a :class:`~repro.core.model.CostLedger`. Concrete algorithms — base-page,
physical-huge-page, decoupled (``Z``), hybrid — live in sibling modules and
are interchangeable inside :mod:`repro.sim`.

Every algorithm carries an optional :class:`~repro.obs.events.Probe`
(``NULL_PROBE`` by default). With the null probe, :meth:`run` is the
original tight loop — the hot path is unchanged. With a real probe
attached, :meth:`run` switches to an instrumented loop that derives typed
events (``access``, ``tlb_miss``, ``io``, ``eviction``, ``decoding_miss``)
from per-access ledger deltas, so all algorithms are observable without
touching their ``access`` implementations.

**ASID access contract.** Multi-tenant simulation (:mod:`repro.tenancy`)
shares one algorithm instance between address spaces. The contract is
address-space striding: :meth:`bind_asid_space` carves the virtual space
into power-of-two slices of ``asid_stride`` base pages (at least one
translation unit each, see :meth:`translation_alignment`), and
:meth:`run_asid` / :meth:`access_asid` service tenant-local page numbers
offset into slice ``asid``. Because slices are aligned to the algorithm's
translation coverage, every TLB unit number encodes ``(asid, local unit)``
exactly like a hardware ASID tag — no entry can straddle tenants, and
ASID 0 is the identity mapping (``run_asid(0, t) == run(t)`` bit for bit).
:meth:`shootdown` invalidates the TLB entries covering a page range
(tenant exit, φ change); it is TLB-only and free in the cost model, like
a hardware invalidation IPI.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .._util import as_int_list, next_power_of_two
from ..core import CostLedger
from ..obs.events import NULL_PROBE, Probe

__all__ = ["MemoryManagementAlgorithm", "MMInspector", "as_int_list"]

#: lazily imported array-engine module; ``False`` marks "numpy missing".
_array_engine = None


def _load_array_engine():
    global _array_engine
    if _array_engine is None:
        try:
            from . import array_engine as mod
        except ImportError:  # pragma: no cover - numpy-less fallback
            mod = False
        _array_engine = mod
    return _array_engine


class MMInspector:
    """Read-through state-inspection surface for the invariant oracle.

    :mod:`repro.check` drives this interface to cross-validate an
    algorithm's bookkeeping against the paper's structural invariants
    (Sections 2–3: ``T``, ``A``, ``φ``, ``f``). Every query reads *live*
    MM state — an inspector is built once per run, not per access.

    The base class models nothing: a ``None`` return (or a ``None``
    capacity) marks the facet "not modeled by this algorithm", and the
    oracle skips the corresponding invariant instead of failing. Each
    algorithm overrides :meth:`MemoryManagementAlgorithm.inspector` to
    return a subclass exposing whatever structure it really maintains.
    """

    #: TLB capacity ``ℓ`` in entries (None = unbounded/unmodeled).
    tlb_capacity: int | None = None
    #: RAM capacity in *base pages* (``P``, or ``(1−δ)P·h`` for decoupled
    #: schemes whose replacement units cover several pages).
    ram_page_capacity: int | None = None
    #: every per-access IO delta must be a multiple of this (h, io_unit, …).
    io_quantum: int = 1
    #: hard per-access IO ceiling, when the algorithm has one.
    max_io_per_access: int | None = None

    def __init__(self, mm: "MemoryManagementAlgorithm") -> None:
        self.mm = mm

    # ------------------------------------------------------------ occupancy

    def tlb_entries(self) -> int | None:
        """Resident TLB entries ``|T|``."""
        return None

    def ram_pages_resident(self) -> int | None:
        """Base pages currently held by the active set ``A``."""
        return None

    def evictions(self) -> int:
        """Monotone count of active-set evictions."""
        return self.mm._eviction_count()

    # ------------------------------------------------ per-page translation

    def tlb_covers(self, vpn: int) -> bool | None:
        """Is the TLB unit covering *vpn* resident (``r(v) ∈ T``)?"""
        return None

    def models_placement(self) -> bool:
        """Does this algorithm maintain an explicit ``(φ, f)`` pair?"""
        return False

    def frame_of(self, vpn: int) -> int | None:
        """``φ(v)`` — the frame backing *vpn* (None: unplaced/unmodeled)."""
        return None

    def decode(self, vpn: int) -> int | None:
        """``f(v, ψ(r(v)))`` through the *stored* encoding (None = −1)."""
        return None

    def is_failed(self, vpn: int) -> bool:
        """Is *vpn* in the failure set ``F``?"""
        return False

    # ------------------------------------------------------------ structure

    def bucket_occupancy(self) -> tuple[int, int] | None:
        """``(max bucket load, bucket capacity B)`` for bucketed allocators."""
        return None

    def bucket_loads(self):
        """Current per-bucket load vector for bucketed allocators (an int
        sequence, one entry per bucket), or None when the algorithm has no
        bucketed placement. Feeds the ``bucket_load`` histogram of
        :class:`~repro.obs.snapshot.ObsSnapshot` — the Theorems 1–2 load
        tail as a distribution rather than a max."""
        return None

    def translation_spans(self):
        """Base-page ranges ``(lo, hi)`` covered by the resident TLB entries.

        One half-open range per resident translation unit, order
        unspecified; None when the algorithm exposes no enumerable TLB
        surface (the oracle then skips the ASID-coverage rule). Feeds
        :meth:`~repro.check.InvariantOracle.check_asid_coverage`: under the
        striding contract every span must lie wholly inside one live
        tenant's slice."""
        return None

    def deep_check(self) -> None:
        """Full structural self-check; raises AssertionError on breakage."""


class _SegmentProbe(Probe):
    """Per-segment stand-in used by ``_run_intervaled``: batch-safe, no
    interval of its own (so the inner ``run`` takes the plain batched fast
    path), forwarding each segment's ``on_batch`` flush to the real probe."""

    __slots__ = ("target",)

    enabled = True
    batch_safe = True

    def __init__(self, target: Probe) -> None:
        self.target = target

    def on_batch(self, t0: int, vpns, ledger, before) -> None:
        self.target.on_batch(t0, vpns, ledger, before)

    def on_phase(self, t: int, name: str) -> None:  # pragma: no cover - defensive
        self.target.on_phase(t, name)


class MemoryManagementAlgorithm(ABC):
    """Services virtual-page requests under the address-translation model."""

    #: short registry name, set by subclasses.
    name: str = "abstract"

    #: the attached :class:`~repro.obs.attribution.AttributionProbe`, when
    #: this machine is provenance-observed (set by ``observe``); the array
    #: engine checks it to decide between vectorized provenance replay
    #: (hugepage family) and a silent object-engine fallback.
    _provenance = None

    def __init__(self) -> None:
        self.ledger = CostLedger()
        #: simulation engine: ``"object"`` replays access by access,
        #: ``"array"`` tries the struct-of-arrays batch engine first
        #: (:mod:`repro.mmu.array_engine`) and falls back to the object
        #: replay when no batch handler applies (unsupported algorithm,
        #: per-access probe, non-LRU policy, pending paging failures).
        self.engine: str = "object"
        #: observer of this algorithm's events; NULL_PROBE means unobserved.
        self.probe: Probe = NULL_PROBE
        #: extra-counter defaults re-seeded after every reset_stats();
        #: subclasses that keep algorithm-specific counters in
        #: ``ledger.extra`` register them here.
        self._extra_defaults: dict = {}
        #: base pages per ASID slice, set by :meth:`bind_asid_space`
        #: (None until an address-space layout is bound).
        self.asid_stride: int | None = None

    @abstractmethod
    def access(self, vpn: int) -> None:
        """Service one virtual-page request, charging costs to the ledger."""

    # ------------------------------------------------------- asid contract

    def translation_alignment(self) -> int:
        """Base pages covered by one TLB entry (a power of two).

        ASID slices are aligned to this so no translation unit can straddle
        two tenants; subclasses with huge-page coverage override it.
        """
        return 1

    def bind_asid_space(self, va_pages: int) -> int:
        """Carve the virtual space into ASID slices of *va_pages* or more.

        The stride is the smallest power of two ≥ ``max(va_pages,
        translation_alignment())``, so slice boundaries align with TLB
        units and the vpn→unit shift maps ``asid·stride + v`` to a
        ``(asid, local unit)`` pair, exactly like a tagged TLB. Rebinding
        with the same resulting stride is a no-op; changing the stride of a
        populated address space would silently re-tag live entries, so it
        raises ValueError instead.
        """
        if va_pages < 1:
            raise ValueError(f"va_pages must be positive, got {va_pages}")
        stride = next_power_of_two(max(int(va_pages), self.translation_alignment()))
        if self.asid_stride is not None and self.asid_stride != stride:
            raise ValueError(
                f"asid stride already bound to {self.asid_stride}; "
                f"rebinding to {stride} would re-tag live translations"
            )
        self.asid_stride = stride
        return stride

    def _asid_base(self, asid: int) -> int:
        if self.asid_stride is None:
            raise RuntimeError("call bind_asid_space() before ASID-tagged access")
        if asid < 0:
            raise ValueError(f"asid must be non-negative, got {asid}")
        return asid * self.asid_stride

    def access_asid(self, asid: int, vpn: int) -> None:
        """Service tenant-local page *vpn* inside address space *asid*."""
        self.access(self._asid_base(asid) + vpn)

    def run_asid(self, asid: int, trace) -> CostLedger:
        """Service a tenant-local *trace* inside address space *asid*.

        ASID 0 is the identity mapping: the trace is handed to :meth:`run`
        untouched, so a single tenant bound at ASID 0 is bit-identical to
        a plain single-address-space replay. Other ASIDs shift the trace
        into their slice (one vectorized add for numpy traces), keeping
        every subclass fast path engaged.
        """
        base = self._asid_base(asid)
        if base == 0:
            return self.run(trace)
        if hasattr(trace, "dtype"):
            return self.run(trace + base)
        return self.run([vpn + base for vpn in as_int_list(trace)])

    def shootdown(self, lo: int, hi: int) -> int:
        """Invalidate every TLB entry intersecting base pages ``[lo, hi)``.

        Returns the number of entries dropped. TLB-only, like a hardware
        shootdown IPI: RAM residency is untouched (stale frames age out via
        normal replacement) and no cost is charged (invalidation is free in
        the AT model — only re-filling costs ε, which the subsequent misses
        account). Subclasses override; the base class models no TLB.
        """
        raise NotImplementedError(f"{self.name} does not model TLB shootdowns")

    def shootdown_asid(self, asid: int) -> int:
        """Shoot down every TLB entry in *asid*'s slice (tenant exit)."""
        base = self._asid_base(asid)
        return self.shootdown(base, base + self.asid_stride)

    # -------------------------------------------------- eviction provenance

    def attribution_sites(self) -> tuple:
        """The structures miss attribution instruments, as ``(family,
        structure, page_of)`` triples.

        *family* names the structure in attribution counters (``"tlb"`` /
        ``"ram"``), *structure* is the :class:`~repro.paging.PageCache` or
        :class:`~repro.tlb.TLB` carrying the ``_ghost`` slot, and
        *page_of(key)* maps the structure's keys back to global base-page
        numbers (so ``page_of(key) // asid_stride`` recovers the owning
        ASID). The base class exposes nothing — algorithms with
        instrumentable caches override this, and
        :meth:`~repro.obs.attribution.AttributionProbe.observe` raises on
        an empty result rather than silently counting nothing.
        """
        return ()

    def run(self, trace) -> CostLedger:
        """Service every request in *trace*; return this algorithm's ledger.

        The trace is materialized as plain Python ints once up front
        (:func:`as_int_list`), so ``access`` implementations may assume
        exact ints and skip per-element ``int()`` boxing — the hot-loop
        contract documented in ``docs/API.md``.
        """
        if self.engine == "array":
            engine = _load_array_engine()
            if engine is False:
                raise RuntimeError(
                    "engine='array' requires numpy; it is not installed"
                )
            out = engine.try_run(self, trace)
            if out is not None:
                return out
            # no batch handler applies — fall through to the object replay
        probe = self.probe
        if probe.enabled:
            if not probe.batch_safe:
                return self._run_probed(trace)
            if probe.batch_interval is not None:
                return self._run_intervaled(trace, probe)
            return self._run_batched(trace)
        access = self.access
        for vpn in as_int_list(trace):
            access(vpn)
        return self.ledger

    def _run_batched(self, trace) -> CostLedger:
        """The batch-observed replay: the original tight loop plus exactly
        one ``on_batch`` flush at the end, carrying the replayed VPNs and
        the ledger delta. Batch-safe probes (``probe.batch_safe``) accept
        this granularity in exchange for per-access costs of zero — the
        same contract that lets subclasses keep their vectorized fast
        paths enabled."""
        ledger = self.ledger
        t0 = ledger.accesses
        before = ledger.snapshot()
        access = self.access
        vpns = as_int_list(trace)
        for vpn in vpns:
            access(vpn)
        self.probe.on_batch(t0, vpns, ledger, before)
        return ledger

    def _run_intervaled(self, trace, probe: Probe) -> CostLedger:
        """Interval-flushed batch replay for live probes.

        The trace is sliced into ``probe.batch_interval``-access segments
        and each segment is replayed through ``self.run`` with the probe
        temporarily swapped for a :class:`_SegmentProbe` forwarder (batch
        safe, no interval), so subclasses' vectorized fast-path ``run``
        overrides stay engaged per segment and the real probe receives one
        ``on_batch`` flush per segment. Counters and cache state are
        bit-identical to the unsegmented replay: segmentation only changes
        where the Python-level loop boundaries fall.
        """
        interval = probe.batch_interval
        self.probe = _SegmentProbe(probe)
        try:
            for start in range(0, len(trace), interval):
                self.run(trace[start : start + interval])
        finally:
            self.probe = probe
        return self.ledger

    def _run_probed(self, trace) -> CostLedger:
        """The observed replay: emit typed events from per-access ledger
        deltas. ``t`` is the access index within the current phase (i.e.
        ``ledger.accesses`` at the moment the request was serviced)."""
        ledger = self.ledger
        probe = self.probe
        access = self.access
        evictions = self._eviction_count
        for vpn in as_int_list(trace):
            misses0 = ledger.tlb_misses
            ios0 = ledger.ios
            dmisses0 = ledger.decoding_misses
            ev0 = evictions()
            access(vpn)
            t = ledger.accesses - 1
            probe.on_access(t, vpn)
            if ledger.tlb_misses != misses0:
                probe.on_tlb_miss(t, vpn)
            if ledger.ios != ios0:
                probe.on_io(t, vpn, ledger.ios - ios0)
            if ledger.decoding_misses != dmisses0:
                probe.on_decoding_miss(t, vpn)
            ev = evictions()
            if ev != ev0:
                probe.on_eviction(t, ev - ev0)
        return self.ledger

    def _eviction_count(self) -> int:
        """Monotone count of active-set evictions, for probe derivation.

        Subclasses whose RAM is a counting cache override this; the default
        (0) simply suppresses ``eviction`` events.
        """
        return 0

    def inspector(self) -> MMInspector:
        """The state-inspection surface :mod:`repro.check` validates through.

        The base surface models nothing (the oracle then only checks
        per-access ledger coherence); subclasses return a specialized
        :class:`MMInspector` exposing their ``T``/``A``/``φ``/``f`` state.
        """
        return MMInspector(self)

    def reset_stats(self) -> None:
        """Zero the ledger (the Section 6 warm-up/measure boundary); caches
        and mappings keep their state."""
        self.ledger.reset()
        self.ledger.extra.update(self._extra_defaults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} {self.ledger.as_dict()}>"
