"""Memory-management algorithm interface (paper Section 5).

A memory-management algorithm controls the TLB contents ``T``, the RAM
active set ``A``, the decoding function ``f``, and the virtual→physical map
``φ``, and services a stream of virtual-page requests, accumulating costs in
a :class:`~repro.core.model.CostLedger`. Concrete algorithms — base-page,
physical-huge-page, decoupled (``Z``), hybrid — live in sibling modules and
are interchangeable inside :mod:`repro.sim`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..core import CostLedger

__all__ = ["MemoryManagementAlgorithm"]


class MemoryManagementAlgorithm(ABC):
    """Services virtual-page requests under the address-translation model."""

    #: short registry name, set by subclasses.
    name: str = "abstract"

    def __init__(self) -> None:
        self.ledger = CostLedger()
        #: extra-counter defaults re-seeded after every reset_stats();
        #: subclasses that keep algorithm-specific counters in
        #: ``ledger.extra`` register them here.
        self._extra_defaults: dict = {}

    @abstractmethod
    def access(self, vpn: int) -> None:
        """Service one virtual-page request, charging costs to the ledger."""

    def run(self, trace) -> CostLedger:
        """Service every request in *trace*; return this algorithm's ledger."""
        access = self.access
        for vpn in trace:
            access(int(vpn))
        return self.ledger

    def reset_stats(self) -> None:
        """Zero the ledger (the Section 6 warm-up/measure boundary); caches
        and mappings keep their state."""
        self.ledger.reset()
        self.ledger.extra.update(self._extra_defaults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} {self.ledger.as_dict()}>"
