"""Classical base-page memory management (``h = 1``).

The Sleator–Tarjan end of the tradeoff: minimal IOs (no amplification, full
RAM utilization) but a TLB entry covers a single page, so TLB misses are
maximal. This is the ``h = 1`` point of every Figure 1 curve.
"""

from __future__ import annotations

from ..paging import ReplacementPolicy
from .hugepage import PhysicalHugePageMM

__all__ = ["BasePageMM"]


class BasePageMM(PhysicalHugePageMM):
    """Physical-huge-page management specialized to huge-page size 1."""

    name = "base-page"

    def __init__(
        self,
        tlb_entries: int,
        ram_pages: int,
        tlb_policy: ReplacementPolicy | None = None,
        ram_policy: ReplacementPolicy | None = None,
    ) -> None:
        super().__init__(
            tlb_entries,
            ram_pages,
            huge_page_size=1,
            tlb_policy=tlb_policy,
            ram_policy=ram_policy,
        )
