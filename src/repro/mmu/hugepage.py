"""Physical-huge-page memory management — the Section 6 simulator semantics.

With huge-page size ``h``, every TLB entry covers ``h`` virtually *and
physically* contiguous base pages; RAM is managed at huge-page granularity.
The consequences the paper enumerates fall out directly:

1. **Page-fault amplification** — a fault on any constituent page fetches
   the whole huge page: ``h`` IOs.
2. **Reduced RAM utilization** — the huge page occupies ``h`` frames even
   if one page is hot, so RAM holds ``P/h`` huge pages.
3. (Fragmentation is moot here because *all* pages share one size, exactly
   as in the paper's simulator; the mixed-size effects are exercised via
   :class:`repro.sim.memory.PhysicalMemory` separately.)

``h = 1`` recovers classical base-page paging (see
:class:`~repro.mmu.classical.BasePageMM`).
"""

from __future__ import annotations

import numpy as np

from .._util import check_positive_int, is_power_of_two
from ..paging import LRUPolicy, PageCache, ReplacementPolicy
from .base import MemoryManagementAlgorithm, MMInspector, as_int_list

__all__ = ["PhysicalHugePageMM"]


class _PhysicalInspector(MMInspector):
    """Oracle surface for the Section 6 simulator: two counting caches over
    huge-page numbers; no explicit ``(φ, f)`` pair to validate."""

    def __init__(self, mm: "PhysicalHugePageMM") -> None:
        super().__init__(mm)
        self.tlb_capacity = mm.tlb.capacity
        self.ram_page_capacity = mm.ram.capacity * mm.huge_page_size
        self.io_quantum = mm.huge_page_size
        self.max_io_per_access = mm.huge_page_size

    def tlb_entries(self) -> int:
        return len(self.mm.tlb)

    def ram_pages_resident(self) -> int:
        return len(self.mm.ram) * self.mm.huge_page_size

    def tlb_covers(self, vpn: int) -> bool:
        return (vpn // self.mm.huge_page_size) in self.mm.tlb

    def translation_spans(self):
        h = self.mm.huge_page_size
        return [(hpn * h, hpn * h + h) for hpn in self.mm.tlb.resident()]

    def deep_check(self) -> None:
        self.mm.tlb.check_invariants()
        self.mm.ram.check_invariants()


class PhysicalHugePageMM(MemoryManagementAlgorithm):
    """The trace-driven simulator of Section 6 for one huge-page size.

    Parameters
    ----------
    tlb_entries:
        ``ℓ`` (the paper uses 1536). The TLB is fully associative over
        huge-page addresses.
    ram_pages:
        Physical memory size ``P`` in *base* pages; must be divisible by
        *huge_page_size* (RAM holds ``P/h`` huge frames).
    huge_page_size:
        ``h`` in base pages, a power of two in ``{1, 2, …}``.
    tlb_policy / ram_policy:
        Replacement policies (fresh instances); both default to LRU as in
        the paper's experiments.
    """

    name = "physical-huge"

    def __init__(
        self,
        tlb_entries: int,
        ram_pages: int,
        huge_page_size: int = 1,
        tlb_policy: ReplacementPolicy | None = None,
        ram_policy: ReplacementPolicy | None = None,
    ) -> None:
        super().__init__()
        check_positive_int(tlb_entries, "tlb_entries")
        check_positive_int(ram_pages, "ram_pages")
        h = check_positive_int(huge_page_size, "huge_page_size")
        if not is_power_of_two(h):
            raise ValueError(f"huge_page_size must be a power of two, got {h}")
        if ram_pages % h:
            raise ValueError(
                f"ram_pages ({ram_pages}) must be divisible by huge_page_size ({h})"
            )
        if ram_pages // h < 1:
            raise ValueError("RAM must hold at least one huge page")
        self.huge_page_size = h
        self.tlb = PageCache(tlb_entries, tlb_policy or LRUPolicy())
        self.ram = PageCache(ram_pages // h, ram_policy or LRUPolicy())

    def access(self, vpn: int) -> None:
        ledger = self.ledger
        ledger.accesses += 1
        hpn = vpn // self.huge_page_size
        if self.tlb.access(hpn):
            ledger.tlb_hits += 1
        else:
            ledger.tlb_misses += 1
        if not self.ram.access(hpn):
            # page-fault amplification: the whole huge page moves
            ledger.ios += self.huge_page_size

    def run(self, trace):
        """Unprobed fast path: the whole-trace equivalent of :meth:`access`.

        Because the vpn→hpn mapping is static, the huge-page numbers for
        the entire trace come from one vectorized shift, and because the
        TLB and RAM caches evolve independently of each other (each sees
        only the hpn stream), the per-access interleaving can be replaced
        by two batched :meth:`~repro.paging.cache.PageCache.access_many`
        replays — final counters and cache states are bit-identical, which
        the golden-run and probed-vs-unprobed parity tests pin.
        """
        # subclasses that extend the per-access semantics (write-back
        # sampling) must keep the generic loop, as must any probe needing
        # per-access events; batch-safe probes keep this path and get one
        # on_batch flush at the end
        probe = self.probe
        if (
            self.engine != "object"
            or (
                probe.enabled
                and (not probe.batch_safe or probe.batch_interval is not None)
            )
            or (type(self).access is not PhysicalHugePageMM.access)
        ):
            return super().run(trace)
        t0 = self.ledger.accesses
        before = self.ledger.snapshot() if probe.enabled else None
        h = self.huge_page_size
        if h == 1:
            hpns = as_int_list(trace)
        elif isinstance(trace, np.ndarray) and trace.dtype.kind in "iu":
            # vpns are non-negative, so the floor division is one shift
            hpns = (trace >> (h.bit_length() - 1)).tolist()
        else:
            hpns = [vpn // h for vpn in as_int_list(trace)]
        ledger = self.ledger
        tlb_hits, tlb_misses = self.tlb.access_many(hpns)
        _ram_hits, ram_misses = self.ram.access_many(hpns)
        ledger.accesses += len(hpns)
        ledger.tlb_hits += tlb_hits
        ledger.tlb_misses += tlb_misses
        ledger.ios += ram_misses * h
        if probe.enabled:
            probe.on_batch(t0, trace, ledger, before)
        return ledger

    def translation_alignment(self) -> int:
        return self.huge_page_size

    def attribution_sites(self) -> tuple:
        h = self.huge_page_size
        page_of = (lambda hpn, _h=h: hpn * _h) if h != 1 else (lambda k: k)
        return (("tlb", self.tlb, page_of), ("ram", self.ram, page_of))

    def shootdown(self, lo: int, hi: int) -> int:
        h = self.huge_page_size
        victims = [
            hpn for hpn in self.tlb.resident()
            if hpn * h < hi and (hpn + 1) * h > lo
        ]
        ghost = self.tlb._ghost
        for hpn in victims:
            if ghost is not None:
                ghost.invalidated(hpn)
            self.tlb.remove(hpn)
        return len(victims)

    def _eviction_count(self) -> int:
        return self.ram.evictions

    def inspector(self) -> MMInspector:
        return _PhysicalInspector(self)
