"""Struct-of-arrays batch simulation engine.

The object engine replays traces access by access through ``PageCache`` /
``TLB`` objects; this module replays whole trace segments as numpy array
passes and synchronizes the object state once per segment, so counters,
replacement order, and clocks come out bit-identical to the object engine
(CI's engine-parity job enforces this on the golden streams).

The core identity: an LRU cache of capacity ``C`` hits access ``i`` iff
the *stack distance* — the number of distinct keys strictly between the
previous occurrence ``p`` of the same key and ``i`` — is below ``C``.
Stack distances reduce to 2-D dominance counts over the next-occurrence
chain ``nxt``::

    d(i) = D(i) - rank2(p, i)
    rank2(p, v) = #{j <= p : nxt[j] >= v} = (p + 1) - count_less(p, v)

where ``D(i)`` counts distinct keys before ``i``.  :class:`StreamKernel`
resolves ``d(i) < C`` for every access with a cascade of cheap pruning
passes, each exact:

1. ``gap <= C`` is a sure hit (the window cannot hold ``C`` distinct);
2. first occurrences are sure misses;
3. ``D(i) - D(p) >= C`` is a sure miss (global first occurrences inside
   the window are all distinct there);
4. fixed-width sliding-window distinct counts ``DW_w`` (one ``bincount``
   plus a ``cumsum`` per width) bracket ``d`` because windows nest:
   ``DW_w(i-1) <= d <= DW_w'(i-1)`` for ``w <= gap-1 <= w'``;
5. survivors with narrow windows are scanned directly; wide survivors go
   through a blocked dominance grid (2-D prefix-sum checkpoint matrix)
   with per-block edge scans.

Eviction *order* falls out of the same arrays: a position dies iff its
key's next occurrence is a miss (or it ages out of the final top-``C``),
and death positions sorted ascending are exactly the eviction sequence —
so schemes with eviction side effects (write-back flushes, decoupled
allocator frees) replay only their rare events through the object code.

Handlers cover BasePageMM / PhysicalHugePageMM (pure counter folds),
WritebackHugePageMM (vectorized store sampling + dirty-at-eviction
replay), NestedTranslationMM (the 2-D walk becomes a derived LRU stream
over page-table node keys), and DecoupledMM / HybridMM (RAM misses
replayed sparsely through the real scheme; a paging failure mid-segment
bails out to the object engine with state synchronized at the failing
access).  THPStyleMM stays on the object engine: promotion migrates
frames through a real allocator whose fragmentation is inherently
sequential.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..paging import LRUPolicy, PageCache
from ..tlb import TLB

__all__ = ["StreamKernel", "try_run", "supports"]

# Tuning knobs (speed only; every path is exact).  Streams whose
# ambiguous set after pruning exceeds _DENSE_AMB get the sliding-window
# ladder; survivors with windows narrower than _SCAN_MAX are scanned
# directly; the dominance grid uses _BT x _BV blocks.
_DENSE_AMB = 4000
_SCAN_MAX = 640
_LADDER_STEPS = 9  # widths C * 2**(k/4), k = 0 .. _LADDER_STEPS-1
_BT = 128
_BV = 128


class StreamKernel:
    """Exact batch LRU simulation of one integer key stream.

    Parameters
    ----------
    keys:
        Integer array of cache keys, one per access.
    prefix:
        Keys resident before the segment, oldest first (the LRU order of
        a warm cache).  They are modeled as pseudo-accesses before the
        stream and excluded from the counters.
    """

    def __init__(self, keys, prefix=()) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        self.R = R = len(prefix)
        self.n0 = len(keys)
        self.n = n = R + self.n0
        if R:
            allkeys = np.concatenate(
                [np.asarray(list(prefix), dtype=np.int64), keys]
            )
        else:
            allkeys = keys
        self.keys = allkeys
        maxkey = int(allkeys.max()) + 1 if n else 1
        dt = np.int32 if maxkey * n + n < 2**31 else np.int64
        ak = allkeys.astype(dt)
        pos = np.arange(n, dtype=dt)
        comp = ak * dt(n) + pos
        comp.sort()
        skey = comp // dt(n)
        spos = (comp - skey * dt(n)).astype(np.int32)
        prev = np.full(n, -1, dtype=np.int32)
        w = np.flatnonzero(skey[1:] == skey[:-1])
        prev[spos[w + 1]] = spos[w]
        nxt = np.full(n, n, dtype=np.int32)
        ii = np.flatnonzero(prev >= 0).astype(np.int32)
        nxt[prev[ii]] = ii
        self.prev = prev
        self.nxt = nxt
        # D[i] = #global first occurrences in [0, i]; for a non-first
        # position i this equals the number of distinct keys in [0, i).
        self.D = np.cumsum(prev < 0, dtype=np.int32)
        self._pos = pos if dt is np.int32 else pos.astype(np.int32)
        # long streams get coarser grid blocks: the checkpoint matrix
        # shrinks 4x while the per-query edge scans stay cheap
        self._bt = self._bv = _BT if n < (1 << 17) else 2 * _BT
        self._dw: dict[int, np.ndarray] = {}
        self._ns = None
        self._grid = None
        self._hit: dict[int, np.ndarray] = {}

    # ------------------------------------------------------- DW ladder

    def _dw_width(self, w: int) -> np.ndarray:
        """``DW_w[j]`` = #distinct keys in ``[max(0, j-w+1), j]``.

        Position ``j`` is the first in-window occurrence of its key for
        window ends in ``[max(j, prev[j]+w), j+w)``; the window-end
        markers ``j+w`` form a shifted identity, so one bincount of the
        starts plus a ramp subtraction gives the whole array.
        """
        got = self._dw.get(w)
        if got is None:
            n = self.n
            # first occurrences count for every window end >= j (their
            # prev is outside any window); repeats only once the window
            # end passes prev[j] + w
            starts = np.where(
                self.prev >= 0,
                np.maximum(self._pos, self.prev + np.int32(w)),
                self._pos,
            )
            b = np.bincount(starts, minlength=n)[:n]
            got = np.cumsum(b, dtype=np.int32)
            ramp = self._pos - np.int32(w - 1)
            np.subtract(got, np.maximum(ramp, np.int32(0)), out=got)
            self._dw[w] = got
        return got

    def _ladder_bounds(self, amb: np.ndarray, gap: np.ndarray, C: int):
        """Bracket ``d`` for ambiguous queries between nested windows."""
        widths = sorted(
            {max(1, int(C * 2 ** (k / 4))) for k in range(_LADDER_STEPS)}
        )
        # only the widths bracketing the observed gap range can ever be
        # the tightest bound for some query; skip building the rest
        gmin = int(gap.min()) - 1
        gmax = int(gap.max()) - 1
        i0 = max(bisect.bisect_right(widths, gmin) - 1, 0)
        i1 = bisect.bisect_left(widths, gmax)
        widths = widths[i0 : i1 + 1]
        table = np.stack([self._dw_width(w) for w in widths])
        warr = np.asarray(widths, dtype=np.int64)
        gi = gap.astype(np.int64) - 1  # true window width of each query
        lo_idx = np.searchsorted(warr, gi, side="right") - 1
        hi_idx = np.searchsorted(warr, gi, side="left")
        lb = np.zeros(amb.size, dtype=np.int32)
        ok = lo_idx >= 0
        lb[ok] = table[lo_idx[ok], amb[ok] - 1]
        ub = np.full(amb.size, np.int32(2**30))
        ok = hi_idx < len(widths)
        ub[ok] = table[hi_idx[ok], amb[ok] - 1]
        return lb, ub

    # ------------------------------------------------------ block grid

    def _ns_cumsum(self) -> np.ndarray:
        if self._ns is None:
            self._ns = np.cumsum(self.nxt < self.n, dtype=np.int32)
        return self._ns

    def _prepare_grid(self):
        if self._grid is None:
            n = self.n
            nxt = self.nxt
            bt, bv = self._bt, self._bv
            pj = np.flatnonzero(nxt < n).astype(np.int32)
            pv = nxt[pj]
            ntb = (n + bt - 1) // bt
            nvb = (n + bv - 1) // bv
            tb = pj // bt
            vb = pv // bv
            M = np.bincount(tb.astype(np.int64) * nvb + vb, minlength=ntb * nvb)
            Acol = (
                M.astype(np.int32).reshape(ntb, nvb).cumsum(axis=0, dtype=np.int32)
            )
            A = Acol.cumsum(axis=1, dtype=np.int32)
            # A[a, b] = #points with pj < (a+1)*BT and pv < (b+1)*BV;
            # Acol keeps the time-only prefix for the bucket-edge bound.
            comp2 = vb.astype(np.int64) * n + pj
            comp2.sort()
            mvb = (comp2 // n).astype(np.int32)
            marr = (comp2 - mvb.astype(np.int64) * n).astype(np.int32)
            bpop = np.bincount(mvb, minlength=nvb).astype(np.int32)
            bstart = np.cumsum(bpop, dtype=np.int32) - bpop
            # nxt is injective where defined, so each value block holds
            # at most bv members — the padded matrices stay small.
            maxpop = int(bpop.max(initial=0))
            col = np.arange(len(marr), dtype=np.int32) - bstart[mvb]
            PJB = np.full((nvb, max(maxpop, 1)), n, dtype=np.int32)
            PVB = np.full((nvb, max(maxpop, 1)), n, dtype=np.int32)
            PJB[mvb, col] = marr
            PVB[mvb, col] = nxt[marr]
            # per-time-block rows of nxt (pad n: never < any query value)
            NB = np.full(ntb * bt, n, dtype=np.int32)
            NB[:n] = nxt
            NB = NB.reshape(ntb, bt)
            self._grid = (A, Acol, PJB, PVB, NB)
        return self._grid

    def _grid_bounds(self, p: np.ndarray, v: np.ndarray):
        """Bounds on ``count_less(p, v) = #{j <= p : nxt[j] < v}``."""
        A, Acol, PJB, PVB, NB = self._prepare_grid()
        tb = p // self._bt
        vbq = v // self._bv
        low = np.zeros(p.size, dtype=np.int32)
        ok = (tb > 0) & (vbq > 0)
        low[ok] = A[tb[ok] - 1, vbq[ok] - 1]
        # slack: non-sentinels in the partial time block [tb*BT, p], plus
        # members of value block vbq in earlier full time blocks
        ns = self._ns_cumsum()
        e_t = ns[p].copy()
        nz = tb > 0
        e_t[nz] -= ns[tb[nz] * self._bt - 1]
        e_v = np.zeros(p.size, dtype=np.int32)
        e_v[nz] = Acol[tb[nz] - 1, vbq[nz]]  # Acol is per-value-block
        return low, low + e_t + e_v

    def _grid_exact(self, p: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Exact ``count_less`` for the queries the bounds left open."""
        A, Acol, PJB, PVB, NB = self._prepare_grid()
        tb = p // self._bt
        vbq = v // self._bv
        base = np.zeros(p.size, dtype=np.int32)
        ok = (tb > 0) & (vbq > 0)
        base[ok] = A[tb[ok] - 1, vbq[ok] - 1]
        t0 = tb * np.int32(self._bt)
        vcol = v[:, None]
        # partial time block [t0, p]: members with nxt < v (pads excluded)
        ar = np.arange(self._bt, dtype=np.int32)
        cnt_t = np.sum(
            (ar[None, :] <= (p - t0)[:, None]) & (NB[tb] < vcol),
            axis=1,
            dtype=np.int32,
        )
        # value block vbq: members with pj < t0 and pv < v
        cnt_v = np.sum(
            (PJB[vbq] < t0[:, None]) & (PVB[vbq] < vcol),
            axis=1,
            dtype=np.int32,
        )
        return base + cnt_t + cnt_v

    # ----------------------------------------------------- direct scan

    def _scan_exact(self, q: np.ndarray) -> np.ndarray:
        """Exact ``d`` for narrow windows by counting first-in-window
        positions ``j`` in ``(p, i)`` (those with ``prev[j] <= p``),
        batched by window width so one wide straggler can't pad every
        row."""
        p = self.prev[q]
        width = q - p - 1
        out = np.empty(q.size, dtype=np.int32)
        order = np.argsort(width, kind="stable")
        sw = width[order]
        lo = 0
        while lo < order.size:
            wmax = int(sw[min(sw.size - 1, lo + 2047)])
            hi = max(int(np.searchsorted(sw, wmax, side="right")), lo + 1)
            sel = order[lo:hi]
            ps = p[sel]
            W = ps[:, None] + np.arange(1, max(wmax, 1) + 1, dtype=np.int32)
            valid = W < q[sel][:, None]
            np.clip(W, 0, self.n - 1, out=W)
            out[sel] = np.sum(
                valid & (self.prev[W] <= ps[:, None]), axis=1, dtype=np.int32
            )
            lo = hi
        return out

    # ------------------------------------------------------------ API

    def hit_mask(self, C: int) -> np.ndarray:
        """Boolean hit mask per position (prefix pseudo-accesses included)."""
        got = self._hit.get(C)
        if got is not None:
            return got
        prev = self.prev
        gap = self._pos - prev  # prev = -1 gives gap = i + 1
        nonfirst = prev >= 0
        hit = nonfirst & (gap <= C)
        amb = np.flatnonzero(nonfirst & (gap > C)).astype(np.int32)
        if amb.size:
            d_lb = self.D[amb] - self.D[prev[amb]]
            amb = amb[d_lb < C]
        if amb.size > _DENSE_AMB:
            lb, ub = self._ladder_bounds(amb, gap[amb], C)
            hit[amb[ub < C]] = True
            amb = amb[(lb < C) & (ub >= C)]
        if amb.size:
            narrow = gap[amb] - 1 <= _SCAN_MAX
            nq = amb[narrow]
            if nq.size:
                hit[nq[self._scan_exact(nq) < C]] = True
            wq = amb[~narrow]
            if wq.size:
                p = prev[wq]
                off = self.D[wq] - (p + 1)  # d = off + count_less
                lo, hi = self._grid_bounds(p, wq)
                hit[wq[off + hi < C]] = True
                oq = wq[(off + lo < C) & (off + hi >= C)]
                if oq.size:
                    cl = self._grid_exact(prev[oq], oq)
                    d = self.D[oq] - (prev[oq] + 1) + cl
                    hit[oq[d < C]] = True
        self._hit[C] = hit
        return hit

    def counts(self, C: int) -> tuple[int, int]:
        """``(hits, misses)`` over the real (non-prefix) accesses."""
        hits = int(np.count_nonzero(self.hit_mask(C)[self.R :]))
        return hits, self.n0 - hits

    def evictions(self, C: int) -> int:
        """Total demand evictions: inserts past capacity."""
        _, misses = self.counts(C)
        return max(0, self.R + misses - C)

    def final_residents(self, C: int) -> np.ndarray:
        """Resident keys at segment end, oldest first (LRU order)."""
        alive = np.flatnonzero(self.nxt == self.n)
        if alive.size > C:
            alive = alive[-C:]
        return self.keys[alive]

    def deaths(self, C: int) -> np.ndarray:
        """Positions whose residency ends in an eviction, ascending.

        Ascending death positions are the eviction sequence itself:
        ``keys[deaths(C)[e]]`` is the ``e``-th eviction's victim, because
        under LRU victims' last-access positions strictly increase over
        the run.
        """
        n = self.n
        nxt = self.nxt
        hm = self.hit_mask(C)
        inner = nxt < n
        dies = np.zeros(n, dtype=bool)
        dies[inner] = ~hm[nxt[inner]]
        last = np.flatnonzero(~inner)
        if last.size > C:
            dies[last[:-C]] = True
        return np.flatnonzero(dies)

    def miss_positions(self, C: int) -> np.ndarray:
        """Global positions (prefix coordinates included) of real misses."""
        return np.flatnonzero(~self.hit_mask(C)[self.R :]) + self.R

    def residents_at(self, C: int, T: int) -> np.ndarray:
        """Resident keys just before global position ``T``, oldest first."""
        alive = np.flatnonzero((self._pos < T) & (self.nxt >= T))
        if alive.size > C:
            alive = alive[-C:]
        return self.keys[alive]


# ---------------------------------------------------------------------------
# object-state synchronization helpers
# ---------------------------------------------------------------------------


def _plain_lru(cache) -> bool:
    return type(cache.policy) is LRUPolicy


def _lru_prefix(cache) -> list:
    """Current residents oldest-first — the kernel's warm-start prefix."""
    return list(cache.policy._order)


def _sync_cache(cache: PageCache, kernel: StreamKernel, C: int) -> None:
    """Move a PageCache + LRUPolicy to the kernel's end-of-segment state."""
    hits, misses = kernel.counts(C)
    cache.hits += hits
    cache.misses += misses
    cache.evictions += kernel.evictions(C)
    cache._clock += kernel.n0
    order = cache.policy._order
    order.clear()
    order.update(dict.fromkeys(kernel.final_residents(C).tolist()))


# ---------------------------------------------------------------------------
# per-algorithm handlers
# ---------------------------------------------------------------------------


def _unit_stream(trace: np.ndarray, unit: int) -> np.ndarray:
    if unit == 1:
        return trace
    if unit & (unit - 1) == 0:
        return trace >> (unit.bit_length() - 1)
    return trace // unit


def _replay_ghost(ghost, kernel: StreamKernel, C: int) -> None:
    """Feed a miss-attribution ghost the cache's exact miss and eviction
    sequence, derived sparsely from the kernel's miss positions and death
    positions. The shared ``_SiteGhost.replay`` bulk path keeps the
    classification bit-identical to the object replay's per-access order:
    the first ``C - R`` misses fill free capacity, and every later miss
    evicts the next entry of the ascending death sequence."""
    mp = kernel.miss_positions(C)
    if mp.size == 0:
        return
    ghost.replay(
        kernel.keys[mp].tolist(), kernel.keys[kernel.deaths(C)].tolist()
    )


def _paged_fold(mm, trace: np.ndarray) -> StreamKernel:
    """Shared TLB+RAM fold for the physical-huge-page family; returns the
    RAM kernel so subclass handlers can reuse its death sequence."""
    h = mm.huge_page_size
    hpns = _unit_stream(trace, h)
    tp = _lru_prefix(mm.tlb)
    rp = _lru_prefix(mm.ram)
    kern_t = StreamKernel(hpns, tp)
    # bench configs give TLB and RAM equal capacity: one kernel, one pass
    same = mm.tlb.capacity == mm.ram.capacity and tp == rp
    kern_r = kern_t if same else StreamKernel(hpns, rp)
    ledger = mm.ledger
    ledger.accesses += len(trace)
    t_hits, t_misses = kern_t.counts(mm.tlb.capacity)
    ledger.tlb_hits += t_hits
    ledger.tlb_misses += t_misses
    ledger.ios += h * kern_r.counts(mm.ram.capacity)[1]
    _sync_cache(mm.tlb, kern_t, mm.tlb.capacity)
    _sync_cache(mm.ram, kern_r, mm.ram.capacity)
    if mm.tlb._ghost is not None:
        _replay_ghost(mm.tlb._ghost, kern_t, mm.tlb.capacity)
    if mm.ram._ghost is not None:
        _replay_ghost(mm.ram._ghost, kern_r, mm.ram.capacity)
    return kern_r


def _run_hugepage(mm, trace: np.ndarray):
    from .hugepage import PhysicalHugePageMM

    if type(mm).access is not PhysicalHugePageMM.access:
        return None
    if not (_plain_lru(mm.tlb) and _plain_lru(mm.ram)):
        return None
    _paged_fold(mm, trace)
    return mm.ledger


def _per_key_store_counts(keys: np.ndarray, marks: np.ndarray) -> np.ndarray:
    """``sk[i]`` = stores to ``keys[i]`` in ``[0, i]`` (inclusive)."""
    order = np.argsort(keys, kind="stable")
    sk_sorted = keys[order]
    mk = marks[order].astype(np.int64)
    csum = np.cumsum(mk)
    idx = np.arange(order.size, dtype=np.int64)
    grp = np.empty(order.size, dtype=bool)
    grp[0] = True
    grp[1:] = sk_sorted[1:] != sk_sorted[:-1]
    gstart = np.maximum.accumulate(np.where(grp, idx, 0))
    sk = np.empty(order.size, dtype=np.int64)
    sk[order] = csum - (csum[gstart] - mk[gstart])
    return sk


def _run_writeback(mm, trace: np.ndarray):
    """Write-back: the paged fold plus store sampling and dirty flushes.

    ``Generator.random(n)`` draws the same sequence as ``n`` scalar
    calls, so the Bernoulli store model vectorizes without disturbing RNG
    parity (pinned by the engine-parity tests).  The ``e``-th eviction's
    victim comes from the kernel's death sequence; the victim is dirty
    iff a store hit it during its current residency — since its previous
    eviction, which cleared its dirty bit whether or not it flushed.
    """
    from .writeback import WritebackHugePageMM

    if type(mm).access is not WritebackHugePageMM.access:
        return None
    if not (_plain_lru(mm.tlb) and _plain_lru(mm.ram)):
        return None
    C = mm.ram.capacity
    h = mm.huge_page_size
    rp = _lru_prefix(mm.ram)
    kern = StreamKernel(_unit_stream(trace, h), rp)
    n = len(trace)
    wf = mm.write_fraction
    marks = np.zeros(kern.n, dtype=bool)
    if wf:
        marks[kern.R :] = mm._rng.random(n) < wf
    # pages dirty at segment entry stay dirty until their next eviction:
    # mark their prefix pseudo-access as a store
    if mm._dirty:
        for idx, key in enumerate(rp):
            if key in mm._dirty:
                marks[idx] = True
    deaths = kern.deaths(C)
    ledger = mm.ledger
    sk = None
    if marks.any():
        sk = _per_key_store_counts(kern.keys, marks)
    if deaths.size and sk is not None:
        # previous eviction of each victim's key: its latest earlier
        # death, via the prev-chain of the death sub-stream
        dchain = StreamKernel(kern.keys[deaths]).prev
        flush = np.where(dchain >= 0, deaths[np.maximum(dchain, 0)], -1)
        sk_flush = np.where(flush >= 0, sk[np.maximum(flush, 0)], 0)
        # a death position is the victim's final pre-eviction access, so
        # sk there already counts every store of the residency
        dirty = (sk[deaths] - sk_flush) > 0
        nwb = int(np.count_nonzero(dirty))
        ledger.extra["writebacks"] += nwb
        ledger.extra["writeback_ios"] += nwb * h
    # counters + cache sync (reuses the RAM kernel when shapes allow)
    tp = _lru_prefix(mm.tlb)
    if mm.tlb.capacity == C and tp == rp:
        kern_t = kern
    else:
        kern_t = StreamKernel(kern.keys[kern.R :], tp)
    ledger.accesses += n
    t_hits, t_misses = kern_t.counts(mm.tlb.capacity)
    ledger.tlb_hits += t_hits
    ledger.tlb_misses += t_misses
    ledger.ios += h * kern.counts(C)[1]
    _sync_cache(mm.tlb, kern_t, mm.tlb.capacity)
    _sync_cache(mm.ram, kern, C)
    # final dirty set: residents with a store since their last eviction
    mm._dirty.clear()
    if sk is not None:
        alive = np.flatnonzero(kern.nxt == kern.n)
        if alive.size > C:
            alive = alive[-C:]
        last_death: dict[int, int] = {}
        for d in deaths.tolist():
            last_death[int(kern.keys[d])] = d
        for a in alive.tolist():
            key = int(kern.keys[a])
            base = last_death.get(key)
            if sk[a] - (sk[base] if base is not None else 0) > 0:
                mm._dirty.add(key)
    return ledger


def _run_nested(mm, trace: np.ndarray):
    """Nested translation: guest TLB and RAM are LRU caches on the hpn
    stream; the 2-D walk becomes a derived LRU stream over page-table
    node keys ``(depth, prefix)``, encoded as ``prefix*(g+1) + depth``."""
    from .virtualized import NestedTranslationMM

    if type(mm).access is not NestedTranslationMM.access:
        return None
    if not (
        _plain_lru(mm.tlb) and _plain_lru(mm.ram) and _plain_lru(mm.nested_tlb)
    ):
        return None
    hpns = _unit_stream(trace, mm.h)
    tp = _lru_prefix(mm.tlb)
    rp = _lru_prefix(mm.ram)
    kern_t = StreamKernel(hpns, tp)
    same = mm.tlb.capacity == mm.ram.capacity and tp == rp
    kern_r = kern_t if same else StreamKernel(hpns, rp)
    ledger = mm.ledger
    ledger.accesses += len(trace)
    t_hits, t_misses = kern_t.counts(mm.tlb.capacity)
    ledger.tlb_hits += t_hits
    ledger.tlb_misses += t_misses
    ledger.ios += mm.h * kern_r.counts(mm.ram.capacity)[1]
    # one walk per guest-TLB miss, in stream order: guest levels 1..g
    # touch (d, vpn >> (top - d*bits)), then the data page is (0, vpn)
    g = mm.guest_levels
    if t_misses:
        miss_idx = kern_t.miss_positions(mm.tlb.capacity) - kern_t.R
        vm = trace[miss_idx]
        bits = mm.bits_per_level
        top = g * bits
        cols = [
            (vm >> max(top - d * bits, 0)) * (g + 1) + d
            for d in range(1, g + 1)
        ]
        cols.append(vm * (g + 1))
        walk = np.stack(cols, axis=1).reshape(-1)
        enc = [p * (g + 1) + d for (d, p) in mm.nested_tlb.policy._order]
        kern_n = StreamKernel(walk, enc)
        nC = mm.nested_tlb.capacity
        n_hits, n_misses = kern_n.counts(nC)
        ledger.extra["host_tlb_misses"] += n_misses
        ledger.extra["walk_touches"] += (
            g * miss_idx.size + mm.host_levels * n_misses
        )
        nt = mm.nested_tlb
        nt.hits += n_hits
        nt.misses += n_misses
        nt.evictions += kern_n.evictions(nC)
        nt._clock += len(walk)
        order = nt.policy._order
        order.clear()
        order.update(
            dict.fromkeys(
                (int(e) % (g + 1), int(e) // (g + 1))
                for e in kern_n.final_residents(nC).tolist()
            )
        )
    _sync_cache(mm.tlb, kern_t, mm.tlb.capacity)
    _sync_cache(mm.ram, kern_r, mm.ram.capacity)
    return ledger


def _run_decoupled_system(system, units: np.ndarray, ledger):
    """Shared batch path for DecoupledSystem wrappers (decoupled/hybrid).

    TLB and RAM counters fold from two kernels; the segment's whole RAM
    miss/eviction stream is applied in one bulk pass
    (``DecouplingScheme.apply_events`` → the vectorized balls-and-bins
    replay kernel) so ``φ``, the allocator, and ``ψ`` stay exact without
    a per-miss Python round-trip.  Returns None to decline, else the
    number of accesses completed: the full length normally, or — after a
    paging failure, whose costs recur per access — the index just past
    the failing access, with all state synchronized there so the caller
    can finish the segment on the object engine.
    """
    scheme = system.scheme
    if scheme._failed:
        return None  # failed residents charge per access; object engine
    tlb = system.tlb
    ram = system.ram
    if type(tlb) is not TLB or not _plain_lru(ram) or not _plain_lru(tlb):
        return None
    kern_t = StreamKernel(_unit_stream(units, system.hmax), _lru_prefix(tlb))
    kern_r = StreamKernel(units, _lru_prefix(ram))
    n = len(units)
    lC = tlb.entries
    rC = ram.capacity
    miss_pos = kern_r.miss_positions(rC)
    deaths = kern_r.deaths(rC)
    R0 = kern_r.R
    first_evt = rC - R0  # miss index at which evictions start
    io_unit = system.io_unit
    keys = kern_r.keys
    n_miss = int(miss_pos.size)
    inserts = keys[miss_pos].tolist() if n_miss else []
    n_ev = max(0, n_miss - first_evt)
    evicts = keys[deaths[:n_ev]].tolist() if n_ev else []
    failed = scheme.apply_events(inserts, evicts, first_evt)
    if failed is None:
        return None  # allocator has no bulk path; object engine
    if failed >= 0:
        gpos = int(miss_pos[failed])
        done = gpos - R0 + 1  # through the failing access
        ledger.accesses += done
        th = int(
            np.count_nonzero(kern_t.hit_mask(lC)[kern_t.R : kern_t.R + done])
        )
        ledger.tlb_hits += th
        ledger.tlb_misses += done - th
        ledger.ios += io_unit * (failed + 1)
        ledger.decoding_misses += 1
        ledger.paging_failures += 1
        _sync_decoupled(system, kern_t, kern_r, done)
        return done
    t_hits, t_misses = kern_t.counts(lC)
    ledger.accesses += n
    ledger.tlb_hits += t_hits
    ledger.tlb_misses += t_misses
    ledger.ios += io_unit * miss_pos.size
    _sync_decoupled(system, kern_t, kern_r, n)
    return n


def _sync_decoupled(system, kern_t, kern_r, done: int) -> None:
    """Move TLB/RAM/scheme-set state to access index *done* (the segment
    end, or just past a failing access)."""
    scheme = system.scheme
    tlb = system.tlb
    ram = system.ram
    lC = tlb.entries
    rC = ram.capacity
    t_res = kern_t.residents_at(lC, kern_t.R + done).tolist()
    r_res = kern_r.residents_at(rC, kern_r.R + done).tolist()
    hm_t = kern_t.hit_mask(lC)[kern_t.R : kern_t.R + done]
    hm_r = kern_r.hit_mask(rC)[kern_r.R : kern_r.R + done]
    th = int(np.count_nonzero(hm_t))
    tm = done - th
    rh = int(np.count_nonzero(hm_r))
    rm = done - rh
    tlb.hits += th
    tlb.misses += tm
    tlb.fills += tm
    tlb._clock += done
    if tm:
        # fills stamp _clock - 1 at fill time; the monotonic floor never
        # engages mid-segment because miss stamps strictly increase
        last_miss = int(np.flatnonzero(~hm_t)[-1])
        tlb._last_stamp = max(tlb._last_stamp, tlb._clock - done + last_miss)
    # ψ updates for resident entries are free and always land the latest
    # value, so the end state is ψ over the final resident set.  _values
    # and _order are mutated in place: the TLB binds _values.get at init.
    vals = tlb._values
    vals.clear()
    for hpn in t_res:
        vals[hpn] = scheme.psi(hpn)
    order = tlb.policy._order
    order.clear()
    order.update(dict.fromkeys(t_res))
    scheme._tlb_resident.clear()
    scheme._tlb_resident.update(t_res)
    ram.hits += rh
    ram.misses += rm
    ram.evictions += max(0, kern_r.R + rm - rC)
    ram._clock += done
    rorder = ram.policy._order
    rorder.clear()
    rorder.update(dict.fromkeys(r_res))


def _run_decoupled(mm, trace: np.ndarray):
    from .decoupled import DecoupledMM

    if type(mm).access is not DecoupledMM.access:
        return None
    done = _run_decoupled_system(mm.system, trace, mm.ledger)
    if done is None:
        return None
    if done < len(trace):
        mm.system.run(trace[done:])  # paging failure: object engine
    return mm.ledger


def _run_hybrid(mm, trace: np.ndarray):
    from .hybrid import HybridMM

    if type(mm).access is not HybridMM.access:
        return None
    units = _unit_stream(trace, mm.chunk)
    done = _run_decoupled_system(mm.system, units, mm.ledger)
    if done is None:
        return None
    if done < len(units):
        mm.system.run(units[done:])  # paging failure: object engine
    return mm.ledger


_HANDLERS = {
    "BasePageMM": _run_hugepage,
    "PhysicalHugePageMM": _run_hugepage,
    "WritebackHugePageMM": _run_writeback,
    "NestedTranslationMM": _run_nested,
    "DecoupledMM": _run_decoupled,
    "HybridMM": _run_hybrid,
}


def supports(mm) -> bool:
    """True if *mm*'s exact type has a batch handler at all (the handler
    may still decline at run time on state it can't batch)."""
    return type(mm).__name__ in _HANDLERS


def try_run(mm, trace):
    """Run *trace* through the batch engine.

    Returns the ledger on success, or ``None`` meaning "use the object
    engine": unsupported algorithm, non-LRU policy, a probe needing
    per-access events or interval flushes, or scheme state the batch
    replay can't honor (pre-existing paging failures).
    """
    handler = _HANDLERS.get(type(mm).__name__)
    if handler is None:
        return None
    probe = mm.probe
    if probe.enabled and (
        not probe.batch_safe or probe.batch_interval is not None
    ):
        return None
    if mm._provenance is not None and handler is not _run_hugepage:
        # eviction provenance is derived vectorized only for the
        # base-page/physical-huge fold; every other handler falls back to
        # the object replay, whose ghost hooks classify inline (the
        # attribution contract test pins this fallback as silent + exact)
        return None
    arr = np.asarray(trace)
    if arr.ndim != 1 or arr.dtype.kind not in "iu":
        arr = np.asarray([int(x) for x in trace], dtype=np.int64)
    if arr.size == 0:
        return mm.ledger
    arr = arr.astype(np.int64, copy=False)
    t0 = mm.ledger.accesses
    before = mm.ledger.snapshot() if probe.enabled else None
    ledger = handler(mm, arr)
    if ledger is None:
        return None
    if probe.enabled:
        probe.on_batch(t0, trace, ledger, before)
    return ledger
