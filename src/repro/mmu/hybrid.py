"""The Section 8 hybrid: decoupled huge pages over moderate physical runs.

If the coverage-optimal virtual huge page has ``q ≫ h_max`` base pages, pure
decoupling cannot reach it (the ``w``-bit value holds only ``h_max``
fields). The paper's hybrid makes each *field* point at a physically
contiguous run of ``chunk = q / h_max`` base pages: a TLB entry then covers
``q`` pages, while each fault moves only ``chunk`` pages — coverage of
size-``q`` huge pages with amplification capped at ``q/h_max`` instead of
``q``.

Implementation: a :class:`~repro.core.simulation.DecoupledSystem` whose
"pages" are the chunks (allocation, replacement and encoding all operate on
chunk ids) and whose ``io_unit`` is the chunk size.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .._util import as_int_list, check_positive_int, is_power_of_two
from ..core import (
    DecoupledSystem,
    DecouplingScheme,
    TLBValueCodec,
    build_allocator,
    theorem3_parameters,
)
from ..paging import LRUPolicy, ReplacementPolicy
from .base import MemoryManagementAlgorithm, MMInspector
from .decoupled import DecoupledSystemInspector, _shootdown_system

__all__ = ["HybridMM"]


class HybridMM(MemoryManagementAlgorithm):
    """Decoupled virtual huge pages of ``q = hmax · chunk`` base pages.

    Parameters
    ----------
    tlb_entries:
        ``ℓ``.
    ram_pages:
        Physical memory ``P`` in base pages.
    chunk:
        Physical run length ``q / h_max`` in base pages (power of two).
        ``chunk = 1`` degenerates to plain decoupling.
    w:
        TLB value width; the Theorem 3 parameters are computed over the
        ``P/chunk`` chunk frames.
    """

    name = "hybrid"

    def __init__(
        self,
        tlb_entries: int,
        ram_pages: int,
        chunk: int,
        *,
        w: int = 64,
        tlb_policy: ReplacementPolicy | None = None,
        ram_policy: ReplacementPolicy | None = None,
        seed=None,
    ) -> None:
        super().__init__()
        check_positive_int(ram_pages, "ram_pages")
        self.chunk = check_positive_int(chunk, "chunk")
        if not is_power_of_two(chunk):
            raise ValueError(f"chunk must be a power of two, got {chunk}")
        if ram_pages % chunk:
            raise ValueError(
                f"ram_pages ({ram_pages}) must be divisible by chunk ({chunk})"
            )
        chunk_frames = ram_pages // chunk
        params = theorem3_parameters(chunk_frames, w)
        if params.hmax < 1:
            raise ValueError(f"w = {w} cannot hold a single field at this size")
        # keep q = hmax · chunk a power of two (Section 5's alignment rule)
        params = dataclasses.replace(params, hmax=1 << (params.hmax.bit_length() - 1))
        self.params = params
        allocator = build_allocator(params, seed=seed)
        codec = TLBValueCodec(params.w, params.hmax, params.field_bits)
        self.system = DecoupledSystem(
            tlb_entries,
            params.max_pages,
            tlb_policy or LRUPolicy(),
            ram_policy or LRUPolicy(),
            DecouplingScheme(allocator, codec),
            io_unit=chunk,
        )
        self.ledger = self.system.ledger

    @property
    def coverage(self) -> int:
        """Base pages covered by one TLB entry: ``q = hmax · chunk``."""
        return self.system.hmax * self.chunk

    def access(self, vpn: int) -> None:
        self.system.access(vpn // self.chunk)

    def run(self, trace):
        """Unprobed fast path: the vpn→chunk mapping is static, so the
        chunk ids for the whole trace come from one vectorized shift.
        Batch-safe probes keep this path and get one ``on_batch`` flush."""
        probe = self.probe
        if (
            self.engine != "object"
            or (
                probe.enabled
                and (not probe.batch_safe or probe.batch_interval is not None)
            )
            or (type(self).access is not HybridMM.access)
        ):
            return super().run(trace)
        t0 = self.ledger.accesses
        before = self.ledger.snapshot() if probe.enabled else None
        chunk = self.chunk
        if chunk == 1:
            chunk_ids = as_int_list(trace)
        elif isinstance(trace, np.ndarray) and trace.dtype.kind in "iu":
            # vpns are non-negative, so the floor division is one shift
            chunk_ids = (trace >> (chunk.bit_length() - 1)).tolist()
        else:
            chunk_ids = [vpn // chunk for vpn in as_int_list(trace)]
        access = self.system.access
        for cid in chunk_ids:
            access(cid)
        if probe.enabled:
            probe.on_batch(t0, trace, self.ledger, before)
        return self.ledger

    def translation_alignment(self) -> int:
        return self.coverage

    def attribution_sites(self) -> tuple:
        coverage = self.coverage
        chunk = self.chunk
        return (
            ("tlb", self.system.tlb, lambda hpn, _c=coverage: hpn * _c),
            ("ram", self.system.ram, lambda cid, _c=chunk: cid * _c),
        )

    def shootdown(self, lo: int, hi: int) -> int:
        return _shootdown_system(self.system, lo, hi, unit=self.chunk)

    def _eviction_count(self) -> int:
        return self.system.ram.evictions

    def inspector(self) -> MMInspector:
        return DecoupledSystemInspector(self, self.system, unit=self.chunk)
