"""Decoupled memory management: the paper's algorithm ``Z`` as a drop-in
:class:`~repro.mmu.base.MemoryManagementAlgorithm`.

The TLB uses virtual huge pages of size ``h_max`` (sized from Theorem 1 or
Theorem 3 parameters for the machine's ``P`` and ``w``), while RAM is
managed at base-page granularity through the low-associativity allocator —
huge-page TLB coverage with base-page IO behaviour.
"""

from __future__ import annotations

import dataclasses

from ..core import (
    DecoupledSystem,
    DecouplingScheme,
    SchemeParameters,
    TLBValueCodec,
    build_allocator,
    theorem1_parameters,
    theorem3_parameters,
)
from ..paging import LRUPolicy, ReplacementPolicy
from .base import MemoryManagementAlgorithm, MMInspector

__all__ = ["DecoupledMM", "DecoupledSystemInspector"]

_PARAMETERS = {
    "iceberg": theorem3_parameters,
    "one-choice": theorem1_parameters,
}


class DecoupledSystemInspector(MMInspector):
    """Oracle surface for any :class:`~repro.core.simulation.DecoupledSystem`
    wrapper (plain decoupling and the Section 8 hybrid).

    *unit* is the base pages per system "page" (1 for decoupling, the chunk
    size for the hybrid); requests arrive in base-page space and are mapped
    to system units exactly as the owning algorithm maps them.
    """

    def __init__(self, mm: MemoryManagementAlgorithm, system, unit: int = 1) -> None:
        super().__init__(mm)
        self.system = system
        self.unit = unit
        self.tlb_capacity = system.tlb.entries
        self.ram_page_capacity = system.ram.capacity * unit
        self.io_quantum = system.io_unit
        self.max_io_per_access = system.io_unit

    def tlb_entries(self) -> int:
        return len(self.system.tlb)

    def ram_pages_resident(self) -> int:
        return len(self.system.ram) * self.unit

    def tlb_covers(self, vpn: int) -> bool:
        return (vpn // self.unit) // self.system.hmax in self.system.tlb

    def models_placement(self) -> bool:
        return True

    def frame_of(self, vpn: int) -> int | None:
        return self.system.scheme.frame_of(vpn // self.unit)

    def decode(self, vpn: int) -> int | None:
        scheme = self.system.scheme
        page = vpn // self.unit
        frame = scheme.f(page, scheme.psi(page // scheme.hmax))
        return None if frame < 0 else frame

    def is_failed(self, vpn: int) -> bool:
        return self.system.scheme.is_failed(vpn // self.unit)

    def bucket_occupancy(self) -> tuple[int, int] | None:
        allocator = self.system.scheme.allocator
        if hasattr(allocator, "max_bucket_load"):
            return allocator.max_bucket_load, allocator.bucket_size
        return None

    def bucket_loads(self):
        return self.system.bucket_loads()

    def translation_spans(self):
        coverage = self.system.hmax * self.unit
        return [
            (hpn * coverage, (hpn + 1) * coverage)
            for hpn in self.system.tlb.resident()
        ]

    def deep_check(self) -> None:
        self.system.check_invariants()
        self.system.tlb.check_invariants()
        self.system.ram.check_invariants()


class DecoupledMM(MemoryManagementAlgorithm):
    """Huge-page-decoupled management built from theorem parameters.

    Parameters
    ----------
    tlb_entries:
        ``ℓ``.
    ram_pages:
        Physical memory ``P`` in base pages. The RAM-replacement policy is
        capped at the scheme's ``(1−δ)·P`` (resource augmentation).
    w:
        TLB value width in bits (hardware sets this; 64 by default).
    scheme:
        ``"iceberg"`` (Theorem 3, default) or ``"one-choice"`` (Theorem 1).
    hmax:
        Optional override of the huge-page size; must not exceed the
        scheme's feasible maximum.
    tlb_policy / ram_policy:
        The ``X`` and ``Y`` of Theorem 4 (fresh instances; default LRU).
    seed:
        Hash seed for the allocator.
    """

    name = "decoupled"

    def __init__(
        self,
        tlb_entries: int,
        ram_pages: int,
        *,
        w: int = 64,
        scheme: str = "iceberg",
        hmax: int | None = None,
        tlb_policy: ReplacementPolicy | None = None,
        ram_policy: ReplacementPolicy | None = None,
        seed=None,
    ) -> None:
        super().__init__()
        try:
            params_fn = _PARAMETERS[scheme]
        except KeyError:
            raise ValueError(
                f"unknown scheme {scheme!r}; choose one of {sorted(_PARAMETERS)}"
            ) from None
        params: SchemeParameters = params_fn(ram_pages, w)
        if params.hmax < 1:
            raise ValueError(
                f"w = {w} bits cannot hold even one {params.field_bits}-bit field "
                f"at P = {ram_pages}"
            )
        # Section 5 assumes h_max is a power of two (huge-page addresses are
        # aligned multiples); round the feasible value down.
        params = dataclasses.replace(params, hmax=1 << (params.hmax.bit_length() - 1))
        if hmax is not None:
            if not (1 <= hmax <= params.hmax):
                raise ValueError(
                    f"hmax override {hmax} outside feasible range [1, {params.hmax}]"
                )
            params = dataclasses.replace(params, hmax=hmax)
        self.params = params
        allocator = build_allocator(params, seed=seed)
        codec = TLBValueCodec(params.w, params.hmax, params.field_bits)
        self.system = DecoupledSystem(
            tlb_entries,
            params.max_pages,
            tlb_policy or LRUPolicy(),
            ram_policy or LRUPolicy(),
            DecouplingScheme(allocator, codec),
        )
        self.ledger = self.system.ledger

    @property
    def hmax(self) -> int:
        """Huge-page size in base pages."""
        return self.system.hmax

    def access(self, vpn: int) -> None:
        self.system.access(vpn)

    def run(self, trace):
        """Unprobed fast path: hand the whole trace to the system's own
        loop, skipping one delegation hop per access. Batch-safe probes
        keep this path and get one ``on_batch`` flush afterwards."""
        probe = self.probe
        if (
            self.engine != "object"
            or (
                probe.enabled
                and (not probe.batch_safe or probe.batch_interval is not None)
            )
            or (type(self).access is not DecoupledMM.access)
        ):
            return super().run(trace)
        if not probe.enabled:
            return self.system.run(trace)
        t0 = self.ledger.accesses
        before = self.ledger.snapshot()
        ledger = self.system.run(trace)
        probe.on_batch(t0, trace, ledger, before)
        return ledger

    def translation_alignment(self) -> int:
        return self.system.hmax

    def attribution_sites(self) -> tuple:
        hmax = self.system.hmax
        return (
            ("tlb", self.system.tlb, lambda hpn, _c=hmax: hpn * _c),
            ("ram", self.system.ram, lambda vpn: vpn),
        )

    def shootdown(self, lo: int, hi: int) -> int:
        return _shootdown_system(self.system, lo, hi, unit=1)

    def _eviction_count(self) -> int:
        return self.system.ram.evictions

    def inspector(self) -> MMInspector:
        return DecoupledSystemInspector(self, self.system)


def _shootdown_system(system, lo: int, hi: int, *, unit: int) -> int:
    """Invalidate a :class:`~repro.core.simulation.DecoupledSystem`'s TLB
    entries intersecting base pages ``[lo, hi)`` (*unit* base pages per
    system page). The scheme's ``T`` set is kept in sync via ``tlb_evict``,
    exactly as on a capacity eviction — ψ survives (it lives in the
    scheme, not the TLB), so a re-fill after the shootdown decodes the
    same frames."""
    coverage = system.hmax * unit
    victims = [
        hpn for hpn in system.tlb.resident()
        if hpn * coverage < hi and (hpn + 1) * coverage > lo
    ]
    ghost = system.tlb._ghost
    for hpn in victims:
        if ghost is not None:
            ghost.invalidated(hpn)
        system.tlb.invalidate(hpn)
        system.scheme.tlb_evict(hpn)
    return len(victims)
