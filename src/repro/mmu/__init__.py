"""Memory-management algorithms: the evaluation's competitors.

* :class:`BasePageMM` — classical base-page paging (``h = 1``);
* :class:`PhysicalHugePageMM` — physically contiguous huge pages of size
  ``h`` (the Section 6 simulator, with its IO amplification);
* :class:`DecoupledMM` — the paper's ``Z``: decoupled virtual huge pages;
* :class:`HybridMM` — the Section 8 hybrid of both.
"""

from .base import MemoryManagementAlgorithm, MMInspector
from .classical import BasePageMM
from .decoupled import DecoupledMM
from .hugepage import PhysicalHugePageMM
from .hybrid import HybridMM
from .registry import MM_BUILDERS, MM_NAMES, make_mm, mm_factory
from .thp import THPStyleMM
from .virtualized import NestedTranslationMM
from .writeback import WritebackHugePageMM

__all__ = [
    "MemoryManagementAlgorithm",
    "MMInspector",
    "BasePageMM",
    "PhysicalHugePageMM",
    "DecoupledMM",
    "HybridMM",
    "THPStyleMM",
    "NestedTranslationMM",
    "WritebackHugePageMM",
    "MM_BUILDERS",
    "MM_NAMES",
    "make_mm",
    "mm_factory",
]
