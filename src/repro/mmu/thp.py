"""Transparent-huge-page (THP) style memory management — the Section 7
systems baseline.

Linux THP, Ingens, and HawkEye all follow the same scheme the paper
critiques: run on base pages, *promote* a huge-page region to a physically
contiguous huge page once it is sufficiently utilized, and fall back to
base pages when no contiguous run exists. This model reproduces the three
costs the paper attributes to physical huge pages, mechanistically:

1. **page-fault amplification** — promotion fetches the region's missing
   base pages, and an evicted huge unit refaults page by page;
2. **reduced RAM utilization** — a promoted region pins ``h`` frames even
   if only a fraction is hot;
3. **fragmentation** — promotion requires an *aligned free run* in
   :class:`~repro.sim.memory.PhysicalMemory` without evicting anything
   (kernels do not flush RAM to build huge pages); mixed allocation
   traffic fragments the frame space and promotions start failing,
   exactly like Linux's THP allocation failures.

Replacement is LRU over *mapping units* (a base page or a promoted huge
page); evicting a huge unit drops all ``h`` pages at once.
"""

from __future__ import annotations

import numpy as np

from .._util import as_int_list, check_positive_int, is_power_of_two
from ..obs.attribution import REASON_PROMOTION as _REASON_PROMOTION
from ..paging import LRUPolicy, PageCache
from ..sim.memory import OutOfMemoryError, PhysicalMemory
from .base import MemoryManagementAlgorithm, MMInspector

__all__ = ["THPStyleMM"]

_BASE = 0  # unit-key tags
_HUGE = 1


class _THPInspector(MMInspector):
    """Oracle surface for promotion-based management: a real frame space
    bounds the active set; mapping units (base or promoted) fill the TLB."""

    def __init__(self, mm: "THPStyleMM") -> None:
        super().__init__(mm)
        self.tlb_capacity = mm.tlb.capacity
        self.ram_page_capacity = mm.memory.frames
        self._seen_promotions = mm.ledger.extra["promotions"]

    def tlb_entries(self) -> int:
        return len(self.mm.tlb)

    def ram_pages_resident(self) -> int:
        return self.mm.resident_pages

    def tlb_covers(self, vpn: int) -> bool | None:
        mm = self.mm
        # called once per access, so comparing the promotions counter to the
        # value at the previous call isolates "a promotion happened on THIS
        # access" without touching the model
        promotions = mm.ledger.extra["promotions"]
        promoted_now = promotions != self._seen_promotions
        self._seen_promotions = promotions
        region = vpn // mm.h
        unit = (_HUGE, region) if region in mm._promoted else (_BASE, vpn)
        if unit in mm.tlb:
            return True
        # a promotion during this very access drops the triggering page's
        # base entry without installing the huge one (as after a
        # khugepaged-style collapse, whose TLB flush makes the next touch
        # re-fault) — the only access whose coverage is legitimately void
        return None if promoted_now else False

    def translation_spans(self):
        h = self.mm.h
        return [
            (key * h, (key + 1) * h) if kind == _HUGE else (key, key + 1)
            for kind, key in self.mm.tlb.resident()
        ]

    def deep_check(self) -> None:
        self.mm.check_invariants()
        self.mm.tlb.check_invariants()


class THPStyleMM(MemoryManagementAlgorithm):
    """Promotion-based huge-page management over a real frame allocator.

    Parameters
    ----------
    tlb_entries:
        ``ℓ``; one entry per mapping unit (base page or promoted region).
    ram_pages:
        Physical frames ``P``.
    huge_page_size:
        Promotion granularity ``h`` (power of two).
    promote_utilization:
        Fraction of a region's ``h`` pages that must be resident to
        trigger promotion (Ingens-style utilization threshold; Linux THP's
        fault-time allocation corresponds to a threshold near 0).
    """

    name = "thp"

    def __init__(
        self,
        tlb_entries: int,
        ram_pages: int,
        huge_page_size: int = 64,
        promote_utilization: float = 0.9,
    ) -> None:
        super().__init__()
        check_positive_int(tlb_entries, "tlb_entries")
        check_positive_int(ram_pages, "ram_pages")
        h = check_positive_int(huge_page_size, "huge_page_size")
        if not is_power_of_two(h):
            raise ValueError(f"huge_page_size must be a power of two, got {h}")
        if ram_pages < h:
            raise ValueError("RAM must hold at least one huge page")
        if not (0.0 < promote_utilization <= 1.0):
            raise ValueError(
                f"promote_utilization must be in (0, 1], got {promote_utilization}"
            )
        self.h = h
        self.promote_threshold = max(1, int(promote_utilization * h))
        self.memory = PhysicalMemory(ram_pages)
        self.tlb = PageCache(tlb_entries, LRUPolicy())
        # LRU over unit keys; capacity in *units* can never exceed frames.
        self._lru = LRUPolicy()
        self._frame_of: dict[tuple[int, int], int] = {}  # unit key -> start frame
        self._resident_in_region: dict[int, set[int]] = {}  # region -> base vpns
        self._promoted: set[int] = set()
        self._extra_defaults = dict(
            promotions=0, promotion_failures=0, demotions=0, migrations=0
        )
        self.ledger.extra.update(self._extra_defaults)
        self._evicted_units = 0

    # ------------------------------------------------------------------ api

    def access(self, vpn: int) -> None:
        self._access(vpn, vpn // self.h)

    def run(self, trace):
        """Unprobed fast path: the vpn→region mapping is static (promotion
        changes which *unit* a region maps to, not the region number), so
        the regions for the whole trace come from one vectorized shift.
        Batch-safe probes keep this path and get one ``on_batch`` flush."""
        probe = self.probe
        if (
            probe.enabled
            and (not probe.batch_safe or probe.batch_interval is not None)
        ) or (type(self).access is not THPStyleMM.access):
            return super().run(trace)
        t0 = self.ledger.accesses
        before = self.ledger.snapshot() if probe.enabled else None
        vpns = as_int_list(trace)
        h = self.h
        if h == 1:
            regions = vpns
        elif isinstance(trace, np.ndarray) and trace.dtype.kind in "iu":
            # vpns are non-negative, so the floor division is one shift
            regions = (trace >> (h.bit_length() - 1)).tolist()
        else:
            regions = [vpn // h for vpn in vpns]
        access = self._access
        for vpn, region in zip(vpns, regions):
            access(vpn, region)
        if probe.enabled:
            probe.on_batch(t0, vpns, self.ledger, before)
        return self.ledger

    def _access(self, vpn: int, region: int) -> None:
        ledger = self.ledger
        ledger.accesses += 1
        promoted = region in self._promoted
        unit = (_HUGE, region) if promoted else (_BASE, vpn)

        if self.tlb.access(unit):
            ledger.tlb_hits += 1
        else:
            ledger.tlb_misses += 1

        if self._lru.touch(unit, ledger.accesses):
            return

        # fault path — by construction only base units can be non-resident
        # (region ∈ promoted ⟺ its huge unit is resident).
        assert not promoted
        frame = self._allocate_evicting(1, 1, evictor=unit)
        self._lru.insert(unit, ledger.accesses)
        self._frame_of[unit] = frame
        self._resident_in_region.setdefault(region, set()).add(vpn)
        ledger.ios += 1

        # attempt promotion when the region *crosses* the threshold (and
        # again if it fills completely) — retrying on every subsequent
        # fault would thrash the allocator, which kernels avoid with
        # deferred/khugepaged-style batching.
        count = len(self._resident_in_region[region])
        if count == self.promote_threshold or count == self.h:
            self._try_promote(region)

    # ------------------------------------------------------------ internals

    def _allocate_evicting(self, n: int, align: int, evictor=None) -> int:
        """Allocate frames for a faulting page, evicting LRU units as needed.

        *evictor* is the faulting unit, threaded through so miss attribution
        can blame the TLB-collateral drop of each released unit on the
        address space whose fault forced it out.
        """
        while True:
            try:
                return self.memory.allocate(n, align)
            except OutOfMemoryError:
                if len(self._lru) == 0:
                    raise
                self._evicted_units += 1
                self._release_unit(self._lru.evict(), evictor=evictor)

    def _release_unit(self, unit: tuple[int, int], evictor=None) -> None:
        """Free the unit's frames and bookkeeping (post-eviction)."""
        kind, key = unit
        frame = self._frame_of.pop(unit)
        self.memory.free(frame)
        if unit in self.tlb:
            ghost = self.tlb._ghost
            if ghost is not None:
                if evictor is not None:
                    # RAM pressure dropped the unit's translation with it
                    ghost.evicted(unit, evictor)
                else:
                    ghost.invalidated(unit)
            self.tlb.remove(unit)
        if kind == _HUGE:
            self._promoted.discard(key)
            self._resident_in_region.pop(key, None)
            self.ledger.extra["demotions"] += 1
        else:
            region = key // self.h
            live = self._resident_in_region.get(region)
            if live is not None:
                live.discard(key)
                if not live:
                    del self._resident_in_region[region]

    def _try_promote(self, region: int) -> None:
        """Coalesce *region* into a physical huge page if a free aligned run
        exists; otherwise count a fragmentation failure (no eviction —
        kernels do not flush RAM to build huge pages)."""
        ledger = self.ledger
        resident = self._resident_in_region[region]
        # the region's own frames come back; free them first so the run
        # search sees the truth (a real kernel migrates, which is what the
        # in-RAM copy models), then roll back if no run exists.
        freed: list[tuple[tuple[int, int], int]] = []
        for vpn in list(resident):
            base_unit = (_BASE, vpn)
            frame = self._frame_of.pop(base_unit)
            self.memory.free(frame)
            freed.append((base_unit, frame))
        try:
            start = self.memory.allocate(self.h, align=self.h)
        except OutOfMemoryError:
            # fragmentation defeat: restore the base mappings untouched
            for base_unit, frame in freed:
                got = self.memory.allocate(1, 1)
                # the exact frame may differ; the mapping stays consistent
                self._frame_of[base_unit] = got
            ledger.extra["promotion_failures"] += 1
            return
        # promotion succeeds: migrate residents, fetch the missing pages
        ledger.extra["migrations"] += len(freed)
        ledger.ios += self.h - len(freed)
        ghost = self.tlb._ghost
        for base_unit, _ in freed:
            self._lru.remove(base_unit)
            if base_unit in self.tlb:
                if ghost is not None:
                    ghost.invalidated(base_unit, _REASON_PROMOTION)
                self.tlb.remove(base_unit)
        unit = (_HUGE, region)
        if ghost is not None:
            # no TLB entry is installed for the collapsed region (the
            # khugepaged-style flush), so its next touch re-faults — tag it
            ghost.invalidated(unit, _REASON_PROMOTION)
        self._frame_of[unit] = start
        self._promoted.add(region)
        self._resident_in_region[region] = set(
            range(region * self.h, (region + 1) * self.h)
        )
        self._lru.insert(unit, ledger.accesses)
        ledger.extra["promotions"] += 1

    def translation_alignment(self) -> int:
        return self.h

    def attribution_sites(self) -> tuple:
        h = self.h

        def page_of(unit, _h=h):
            kind, key = unit
            return key * _h if kind == _HUGE else key

        return (("tlb", self.tlb, page_of),)

    def shootdown(self, lo: int, hi: int) -> int:
        h = self.h
        victims = []
        for unit in self.tlb.resident():
            kind, key = unit
            span_lo, span_hi = (
                (key * h, (key + 1) * h) if kind == _HUGE else (key, key + 1)
            )
            if span_lo < hi and span_hi > lo:
                victims.append(unit)
        ghost = self.tlb._ghost
        for unit in victims:
            if ghost is not None:
                ghost.invalidated(unit)
            self.tlb.remove(unit)
        return len(victims)

    # ------------------------------------------------------------ diagnostics

    def _eviction_count(self) -> int:
        return self._evicted_units

    def inspector(self) -> MMInspector:
        return _THPInspector(self)

    @property
    def promoted_regions(self) -> int:
        return len(self._promoted)

    @property
    def resident_pages(self) -> int:
        """Frames in use (huge units count all h of their frames)."""
        return self.memory.frames - self.memory.free_frames

    @property
    def fragmentation(self) -> float:
        """Current external fragmentation of the frame space."""
        return self.memory.external_fragmentation()

    def check_invariants(self) -> None:
        """Assert the bookkeeping is self-consistent (test/debug helper).

        * frames in use = Σ sizes of live mapping units;
        * every promoted region has a huge unit and vice versa;
        * resident base pages per region match live base units;
        * every live unit is tracked by the replacement policy.
        """
        used = self.memory.frames - self.memory.free_frames
        unit_frames = sum(
            self.h if kind == _HUGE else 1 for (kind, _key) in self._frame_of
        )
        assert used == unit_frames, f"frame leak: {used} used vs {unit_frames} mapped"
        for unit in self._frame_of:
            assert unit in self._lru, f"unit {unit} not tracked by LRU"
        assert len(self._frame_of) == len(self._lru)
        huge_units = {key for (kind, key) in self._frame_of if kind == _HUGE}
        assert huge_units == self._promoted
        for region, pages in self._resident_in_region.items():
            assert pages, f"empty resident set kept for region {region}"
            if region in self._promoted:
                assert len(pages) == self.h
            else:
                for vpn in pages:
                    assert (_BASE, vpn) in self._frame_of
