"""Ablation: write-back amplification — huge pages' fourth cost.

The paper enumerates three IO costs of physical huge pages; a fourth
appears once stores exist: evicting a dirty huge page writes back all
``h`` pages. This bench sweeps ``h`` on a write-heavy workload and reports
read IOs, write-back IOs, and total device traffic — write amplification
compounds the paper's fault amplification.
"""

from repro.bench import format_table
from repro.mmu import WritebackHugePageMM
from repro.sim import simulate
from repro.workloads import ZipfWorkload

P = 1 << 12
N = 60_000
SIZES = (1, 8, 64, 256)
WRITE_FRACTION = 0.3


def run_writeback():
    wl = ZipfWorkload(1 << 15, s=0.9)
    trace = wl.generate(N, seed=0)
    rows = []
    for h in SIZES:
        mm = WritebackHugePageMM(
            256, P, huge_page_size=h, write_fraction=WRITE_FRACTION, seed=1
        )
        simulate(mm, trace, warmup=N // 3)
        rows.append(
            {
                "h": h,
                "read_ios": mm.ledger.ios,
                "writeback_ios": mm.ledger.extra["writeback_ios"],
                "total_ios": mm.total_ios,
                "wb_share": round(
                    mm.ledger.extra["writeback_ios"] / max(1, mm.total_ios), 3
                ),
            }
        )
    return rows


def test_writeback(benchmark, save_result):
    rows = benchmark.pedantic(run_writeback, rounds=1, iterations=1)
    save_result("writeback", format_table(rows))
    wb = [r["writeback_ios"] for r in rows]
    total = [r["total_ios"] for r in rows]
    assert wb == sorted(wb), "write-back traffic must grow with h"
    assert total == sorted(total)
    assert wb[-1] > 50 * max(1, wb[0])
    benchmark.extra_info["wb_amplification"] = round(wb[-1] / max(1, wb[0]), 1)
