"""Shared fixtures for the benchmark suite.

Every benchmark writes its result table to ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md is regenerable, and records
headline numbers in ``benchmark.extra_info`` for the pytest-benchmark
report.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Callable ``save(name, text)`` writing a result artifact."""

    def save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return save
