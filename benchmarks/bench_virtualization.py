"""Ablation: virtualization's multiplier on the value of TLB coverage.

The paper's introduction: in cloud environments each reference undergoes
two translations, which "actually squares the cost of a TLB miss in the
worst case". This bench measures the *effective ε multiplier* (nested-walk
memory touches per miss ÷ native walk length) across nested-TLB sizes, and
shows that huge-page coverage (h > 1, or decoupling at equal coverage)
eliminates misses whose cost virtualization just multiplied — the gains
from the paper's scheme grow with virtualization.
"""

from repro.bench import format_table
from repro.mmu import NestedTranslationMM
from repro.workloads import BimodalWorkload

P = 1 << 12
N = 60_000
WORST = ((4 + 1) * (4 + 1) - 1) / 4  # 6.0 for 4+4 levels


def run_virtualization():
    # hot region of 1024 pages: thrashes a 64-entry TLB at h=1, fits it
    # exactly at h=16 — the coverage regime huge pages/decoupling target
    wl = BimodalWorkload(1 << 16, hot_pages=1024, p_hot=0.995)
    trace = wl.generate(N, seed=0)
    rows = []
    for host_tlb in (8, 64, 512):
        for h in (1, 16):
            mm = NestedTranslationMM(
                64, host_tlb, P, huge_page_size=h
            )
            mm.run(trace)
            rows.append(
                {
                    "nested_tlb": host_tlb,
                    "h": h,
                    "guest_misses": mm.ledger.tlb_misses,
                    "walk_touches": mm.ledger.extra["walk_touches"],
                    "eps_multiplier": round(mm.effective_epsilon_multiplier, 3),
                }
            )
    return rows


def test_virtualization(benchmark, save_result):
    rows = benchmark.pedantic(run_virtualization, rounds=1, iterations=1)
    save_result("virtualization", format_table(rows))
    by = {(r["nested_tlb"], r["h"]): r for r in rows}
    # multiplier bounded by the (g+1)(h+1)-1 worst case, decreasing in
    # nested-TLB size
    for r in rows:
        assert 1.0 <= r["eps_multiplier"] <= WORST
    assert by[(512, 1)]["eps_multiplier"] < by[(8, 1)]["eps_multiplier"]
    # coverage (h=16) removes most guest misses — and with them, most of
    # the virtualization tax measured in absolute walk touches
    for host_tlb in (8, 64, 512):
        flat, huge = by[(host_tlb, 1)], by[(host_tlb, 16)]
        assert huge["guest_misses"] < flat["guest_misses"]
        assert huge["walk_touches"] < flat["walk_touches"] / 2
    benchmark.extra_info["worst_multiplier_seen"] = max(
        r["eps_multiplier"] for r in rows
    )
