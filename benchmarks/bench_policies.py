"""Ablation: replacement-policy choice inside the decoupled framework.

Theorem 4 takes *arbitrary* policies X and Y; Lemma 1 reduces each half to
classical paging. This bench compares the online policy zoo (and offline
OPT as the floor) as the Y half on a skewed trace, reporting fault counts
and each policy's ratio to OPT — the practical content of the reduction.
"""

from repro.bench import format_table
from repro.core import optimal_faults, paging_faults
from repro.paging import POLICIES, make_policy
from repro.workloads import ZipfWorkload

CAPACITY = 1 << 10
N = 60_000


def run_policies():
    trace = ZipfWorkload(1 << 13, s=0.8).generate(N, seed=0).tolist()
    opt = optimal_faults(trace, CAPACITY)
    rows = [{"policy": "opt (offline)", "faults": opt, "vs_opt": 1.0}]
    for name in sorted(POLICIES):
        kwargs = {"seed": 0} if name == "random" else {}
        faults = paging_faults(trace, CAPACITY, make_policy(name, **kwargs))
        rows.append({"policy": name, "faults": faults, "vs_opt": round(faults / opt, 3)})
    return rows


def test_policies(benchmark, save_result):
    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    save_result("policies", format_table(rows))
    opt = rows[0]["faults"]
    by_name = {r["policy"]: r["faults"] for r in rows}
    for r in rows[1:]:
        assert r["faults"] >= opt, "no online policy may beat OPT"
    # sanity: LRU within a small constant of OPT on a zipf trace, MRU awful
    assert by_name["lru"] < 3 * opt
    assert by_name["mru"] > by_name["lru"]
    benchmark.extra_info["lru_vs_opt"] = round(by_name["lru"] / opt, 3)
