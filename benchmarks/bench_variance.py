"""Reproducibility: seed sensitivity of the headline measurements.

Every randomized component takes explicit seeds; this bench quantifies how
much the Figure 1a series and the decoupled scheme's failure behaviour
move across seeds — the error bars the single-seed tables elsewhere in
this repo implicitly carry. Assertions pin the *stability* of the
qualitative claims: the ordering of the curves may not flip between
seeds.
"""

import numpy as np

from repro.bench import figure1_experiment, figure1_workload, format_table
from repro.mmu import DecoupledMM

SEEDS = (0, 1, 2, 3, 4)
SIZES = (1, 16, 256)


def run_variance():
    io_series = {h: [] for h in SIZES}
    miss_series = {h: [] for h in SIZES}
    for seed in SEEDS:
        wl, ram = figure1_workload("a", 1 << 16)
        records = figure1_experiment(
            wl, ram_pages=ram, tlb_entries=96, n_accesses=40_000,
            sizes=SIZES, seed=seed,
        )
        for r in records:
            io_series[r.params["h"]].append(r.ios)
            miss_series[r.params["h"]].append(r.tlb_misses)

    z_failures = []
    for seed in SEEDS:
        wl, ram = figure1_workload("a", 1 << 16)
        z = DecoupledMM(96, ram, seed=seed)
        z.run(wl.generate(40_000, seed=seed))
        z_failures.append(z.ledger.paging_failures)

    rows = []
    for h in SIZES:
        ios = np.array(io_series[h], dtype=float)
        misses = np.array(miss_series[h], dtype=float)
        rows.append(
            {
                "h": h,
                "ios_mean": round(float(ios.mean()), 1),
                "ios_cv": round(float(ios.std() / max(ios.mean(), 1e-9)), 3),
                "miss_mean": round(float(misses.mean()), 1),
                "miss_cv": round(float(misses.std() / max(misses.mean(), 1e-9)), 3),
            }
        )
    return rows, z_failures, io_series, miss_series


def test_variance(benchmark, save_result):
    rows, z_failures, io_series, miss_series = benchmark.pedantic(
        run_variance, rounds=1, iterations=1
    )
    table = format_table(rows)
    save_result(
        "variance",
        table + f"\n\ndecoupled-Z paging failures per seed: {z_failures}",
    )
    # the qualitative orderings hold for every seed individually
    for i in range(len(SEEDS)):
        assert io_series[1][i] < io_series[16][i] < io_series[256][i]
        assert miss_series[1][i] > miss_series[256][i]
    # failure events stay in the rare regime across seeds
    assert max(z_failures) <= 40_000 * 1e-3
    benchmark.extra_info["z_failures_by_seed"] = z_failures
