"""Figure 1b: Pareto random graph walk — IOs and TLB misses vs huge-page size.

Paper setup: random walk among pages, log out-degree, Pareto(α=0.01) edge
destinations, 64 GB VA, 32 GB RAM, 1536-entry TLB, 100 M + 100 M accesses.

Scaled setup: 2¹⁸-page VA, RAM = VA/2, same α and out-degree rule,
1536-entry TLB, 200 k + 200 k accesses.

Expected shape: same tradeoff as 1a, with a smaller TLB-miss reduction
(the walk's working set is less huge-page-friendly than the bimodal hot
region) — the paper's 1b panel shows misses falling ~½ order and IOs
exploding ~4 orders.
"""

from repro.bench import figure1_experiment, figure1_workload, format_figure1

SCALE_PAGES = 1 << 18
TLB_ENTRIES = 1536
N_ACCESSES = 400_000


def run_fig1b(seed=0):
    workload, ram_pages = figure1_workload("b", SCALE_PAGES, seed=seed)
    return figure1_experiment(
        workload,
        ram_pages=ram_pages,
        tlb_entries=TLB_ENTRIES,
        n_accesses=N_ACCESSES,
        warmup_fraction=0.5,
        seed=seed,
    )


def test_fig1b(benchmark, save_result):
    records = benchmark.pedantic(run_fig1b, rounds=1, iterations=1)
    table = format_figure1(records, title="Figure 1b — Pareto random walk")
    save_result("fig1b", table)
    first, last = records[0], records[-1]
    benchmark.extra_info["io_blowup"] = round(last.ios / max(1, first.ios), 1)
    benchmark.extra_info["miss_reduction"] = round(
        first.tlb_misses / max(1, last.tlb_misses), 2
    )
    assert last.ios > 50 * first.ios
    assert last.tlb_misses < first.tlb_misses
