"""Ablation: coalescing TLBs (CoLT-style) vs allocator contiguity.

Section 7: CoLT/Translation Ranger stretch TLB reach by exploiting
*incidental* physical contiguity. This bench measures the reach multiplier
(translations per TLB tag) a coalescing TLB extracts under three
allocation disciplines on a sequential-ish workload:

* sequential frames (fresh FullyAssociative allocator — best case);
* fragmented frames (the same allocator after a churn that scrambles the
  free list — the realistic case the OS fights);
* hashed low-associativity frames (the decoupling substrate — no
  contiguity at all, by design).

The punchline the paper draws: coalescing's reach evaporates exactly when
memory management gets interesting, while decoupling's h_max-page reach is
unconditional (it never needed contiguity).
"""

from repro.bench import format_table
from repro.core import FullyAssociativeAllocator, IcebergAllocator, theorem3_parameters
from repro.tlb import CoalescingTLB

P = 1 << 12
N_PAGES = 1 << 11
ENTRIES = 256
MAX_RUN = 16


def _fragmented_allocator():
    """A fully-associative allocator whose free list has been scrambled by
    an allocate/free churn, like a long-running system's frame pool."""
    alloc = FullyAssociativeAllocator(P)
    for v in range(P):
        alloc.allocate(v)
    import numpy as np

    rng = np.random.default_rng(0)
    for v in rng.permutation(P):
        alloc.free(int(v))
    return alloc


def reach_of(allocator) -> float:
    tlb = CoalescingTLB(ENTRIES, max_coalesce=MAX_RUN)
    for vpn in range(N_PAGES):
        frame = allocator.allocate(vpn)
        if frame is not None:
            tlb.fill(vpn, frame)
    return tlb.mean_run_length


def run_coalescing():
    rows = [
        {
            "allocation": "sequential frames",
            "reach": round(reach_of(FullyAssociativeAllocator(P)), 2),
        },
        {
            "allocation": "fragmented frames",
            "reach": round(reach_of(_fragmented_allocator()), 2),
        },
        {
            "allocation": "hashed (iceberg)",
            "reach": round(reach_of(IcebergAllocator(P, P // 8, lam=4.0, seed=0)), 2),
        },
    ]
    hmax = theorem3_parameters(P, 64).hmax
    rows.append({"allocation": "decoupled h_max (unconditional)", "reach": hmax})
    return rows


def test_coalescing(benchmark, save_result):
    rows = benchmark.pedantic(run_coalescing, rounds=1, iterations=1)
    save_result("coalescing", format_table(rows))
    by = {r["allocation"]: r["reach"] for r in rows}
    assert by["sequential frames"] > 8  # long incidental runs
    assert by["fragmented frames"] < by["sequential frames"] / 2
    assert by["hashed (iceberg)"] < 2  # no contiguity by construction
    assert by["decoupled h_max (unconditional)"] >= 8
    benchmark.extra_info["reach"] = by
