"""Decoupling-scheme validation: Theorems 1 and 3 at concrete sizes.

For a sweep of physical-memory sizes ``P`` (and ``w = 64``), instantiate
the Theorem 1 (one-choice) and Theorem 3 (Iceberg) schemes, report their
achieved parameters — bucket size ``B``, huge-page size ``h_max``,
resource augmentation ``δ`` — and stress each allocator with FIFO churn at
the full ``(1−δ)P`` occupancy, counting paging failures (the theorems say: at any fixed time, none w.h.p. —
over a long run that allows only a vanishing failure fraction, the
``n/poly(P)`` budget of Theorem 4).

The h_max columns exhibit eq. (2): Iceberg's Θ(w/logloglog P) beats
one-choice's Θ(w/loglog P), and both are far above the classical
w/log P (full physical addresses).
"""

import math

from repro.bench import format_table
from repro.core import build_allocator, theorem1_parameters, theorem3_parameters

P_SWEEP = (1 << 14, 1 << 18, 1 << 22)
W = 64
CHURN_FACTOR = 3


def churn(allocator, m: int) -> tuple[int, int]:
    """FIFO churn at occupancy m; returns (failures, insertions)."""
    for v in range(m):
        allocator.allocate(v)
    oldest, fresh = 0, m
    for _ in range(CHURN_FACTOR * m):
        if allocator.frame_of(oldest) is not None:
            allocator.free(oldest)
        oldest += 1
        allocator.allocate(fresh)
        fresh += 1
    return allocator.failures, m + CHURN_FACTOR * m


def run_decoupling():
    rows = []
    for P in P_SWEEP:
        classical_hmax = max(1, W // math.ceil(math.log2(P)))
        for params_fn in (theorem1_parameters, theorem3_parameters):
            p = params_fn(P, W)
            # churn is expensive at large P; cap the stressed occupancy
            stress_frames = min(p.frames_used, 1 << 18)
            stress = params_fn(stress_frames, W)
            alloc = build_allocator(stress, seed=P)
            failures, insertions = churn(alloc, stress.max_pages)
            rows.append(
                {
                    "scheme": p.scheme,
                    "P": P,
                    "B": p.bucket_size,
                    "hmax": p.hmax,
                    "hmax_classical": classical_hmax,
                    "delta": round(p.delta, 4),
                    "failures": failures,
                    "fail_frac": round(failures / insertions, 7),
                }
            )
    return rows


def test_decoupling(benchmark, save_result):
    rows = benchmark.pedantic(run_decoupling, rounds=1, iterations=1)
    save_result("decoupling", format_table(rows))
    for r in rows:
        # "w.h.p. no failures at any fixed time" permits a vanishing failure
        # fraction over a long run — the n/poly(P) budget of Theorem 4.
        assert r["fail_frac"] <= 1e-3, f"{r['scheme']} P={r['P']}: failure mass"
        assert r["hmax"] > r["hmax_classical"], "decoupling must beat full addresses"
        assert 0 <= r["delta"] < 1
    ice = [r for r in rows if r["scheme"] == "iceberg"]
    one = [r for r in rows if r["scheme"] == "one-choice"]
    for i, o in zip(ice, one):
        assert i["hmax"] >= o["hmax"], "eq. (2): iceberg h_max >= one-choice h_max"
        assert i["B"] < o["B"], "iceberg buckets must be smaller"
    benchmark.extra_info["iceberg_hmax_at_4M_frames"] = ice[-1]["hmax"]
