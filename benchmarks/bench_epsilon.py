"""Ablation: ε sensitivity — where the huge-page/base-page crossover sits
and how decoupling removes it.

The address-translation cost model prices a TLB miss at ε IOs. As ε grows
(faster storage, slower walks — the trend the paper's intro describes), the
best *physical* configuration flips from base pages to huge pages; the
decoupled algorithm is insensitive, tracking the lower envelope at every ε.
"""

from repro.bench import compare_algorithms, format_table
from repro.core import ATCostModel
from repro.mmu import BasePageMM, DecoupledMM, PhysicalHugePageMM
from repro.workloads import BimodalWorkload

P = 1 << 16
EPSILONS = (0.0005, 0.002, 0.01, 0.05, 0.2)


def run_epsilon():
    wl = BimodalWorkload.paper_scaled(1 << 18)
    trace = wl.generate(150_000, seed=0)
    z = DecoupledMM(256, P, seed=0)
    algos = {
        "base-page": BasePageMM(256, P),
        f"physical-h{z.hmax}": PhysicalHugePageMM(256, P, huge_page_size=z.hmax),
        "physical-h256": PhysicalHugePageMM(256, P, huge_page_size=256),
        "decoupled-Z": z,
    }
    records = compare_algorithms(trace, algos, warmup=60_000)
    rows = []
    for eps in EPSILONS:
        model = ATCostModel(epsilon=eps)
        best = min(records, key=lambda r: model.cost(r.ledger))
        for r in records:
            rows.append(
                {
                    "epsilon": eps,
                    "algorithm": r.algorithm,
                    "cost": round(model.cost(r.ledger), 2),
                    "best": "*" if r is best else "",
                }
            )
    return records, rows


def test_epsilon(benchmark, save_result):
    records, rows = benchmark.pedantic(run_epsilon, rounds=1, iterations=1)
    save_result("epsilon", format_table(rows))
    z = next(r for r in records if r.algorithm == "decoupled-Z")
    base = next(r for r in records if r.algorithm == "base-page")
    hmax_rec = next(
        r
        for r in records
        if r.algorithm.startswith("physical-h") and r.algorithm != "physical-h256"
    )
    h256 = next(r for r in records if r.algorithm == "physical-h256")
    # physical configurations cross over somewhere in the sweep…
    low_order = base.cost(EPSILONS[0]) < h256.cost(EPSILONS[0])
    high_order = base.cost(EPSILONS[-1]) < h256.cost(EPSILONS[-1])
    assert low_order != high_order, "expected a base/huge crossover in this ε range"
    # …while Z tracks the winner of its Theorem 4 comparison class
    # (huge-page sizes ≤ h_max) at every ε — no tuning knob to misconfigure.
    for eps in EPSILONS:
        floor = min(base.cost(eps), hmax_rec.cost(eps))
        assert z.cost(eps) <= floor + 1e-9, f"Z not on the class envelope at ε={eps}"
    benchmark.extra_info["z_cost_at_0.01"] = round(z.cost(0.01), 1)
