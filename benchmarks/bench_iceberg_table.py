"""Iceberg hash table: occupancy shape and throughput at high load.

The companion-work data structure ([34]) must (a) keep the bulk of keys in
its one-hash front yard even at 90%+ load — that is what makes location
codes small — and (b) stay within a small constant of a native dict on
mixed workloads despite guaranteeing slot stability, which dicts do not.
"""

import numpy as np

from repro.bench import format_table
from repro.iceberg import IcebergHashTable

CAPACITY = 1 << 14
LOADS = (0.5, 0.75, 0.9)


def run_iceberg():
    rows = []
    for load in LOADS:
        t = IcebergHashTable(CAPACITY, seed=0)
        n = int(CAPACITY * load)
        for i in range(n):
            t[i] = i
        occ = t.level_occupancy()
        total = sum(occ.values())
        rows.append(
            {
                "load": load,
                "L1_frac": round(occ[1] / total, 4),
                "L2_frac": round(occ[2] / total, 4),
                "L3_frac": round(occ[3] / total, 4),
                "spills": t.stats_spills,
            }
        )
    return rows


def test_iceberg_occupancy(benchmark, save_result):
    rows = benchmark.pedantic(run_iceberg, rounds=1, iterations=1)
    save_result("iceberg_table", format_table(rows))
    for r in rows:
        assert r["L1_frac"] > 0.8, "front yard must hold the bulk"
        assert r["L3_frac"] < 0.02, "overflow must stay in the poly-small tail"
    # the iceberg shape is preserved as load rises
    assert rows[-1]["L1_frac"] > 0.8
    benchmark.extra_info["L1_at_90pct"] = rows[-1]["L1_frac"]


def test_iceberg_mixed_ops_throughput(benchmark):
    """Statistical throughput benchmark: mixed insert/lookup/delete at 75%
    steady-state load."""
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1 << 20, 30_000)

    def run():
        t = IcebergHashTable(1 << 12, seed=1)
        hits = 0
        for k in keys:
            k = int(k) % (1 << 13)
            if k in t:
                if k & 1:
                    del t[k]
                else:
                    hits += t[k] is not None
            else:
                t[k] = k
        return hits

    benchmark(run)
    benchmark.extra_info["ops_per_round"] = len(keys)
