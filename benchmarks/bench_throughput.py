"""Throughput microbenchmarks of the hot paths.

Unlike the experiment benches (one pedantic round each), these use
pytest-benchmark's statistics properly: many rounds of the per-access
operations that dominate every simulation, so regressions in the O(1)
structures (ordered-dict LRU, iceberg placement, codec bit-twiddling)
surface as timing changes.
"""

import numpy as np
import pytest

from repro.core import DecouplingScheme, IcebergAllocator, TLBValueCodec
from repro.core.simulation import DecoupledSystem
from repro.mmu import BasePageMM, PhysicalHugePageMM
from repro.paging import LRUPolicy, PageCache
from repro.tlb import TLB

N = 20_000


@pytest.fixture(scope="module")
def zipf_trace():
    rng = np.random.default_rng(0)
    return (rng.zipf(1.2, N) % 4096).tolist()


def test_pagecache_lru_access(benchmark, zipf_trace):
    def run():
        cache = PageCache(512, LRUPolicy())
        access = cache.access
        for p in zipf_trace:
            access(p)
        return cache.misses

    misses = benchmark(run)
    benchmark.extra_info["accesses_per_round"] = N
    assert misses > 0


def test_tlb_lookup_fill(benchmark, zipf_trace):
    def run():
        tlb = TLB(256)
        for p in zipf_trace:
            if tlb.lookup(p) is None:
                tlb.fill(p, p)
        return tlb.misses

    misses = benchmark(run)
    benchmark.extra_info["accesses_per_round"] = N
    assert misses > 0


def test_base_page_mm_access(benchmark, zipf_trace):
    def run():
        mm = BasePageMM(256, 2048)
        mm.run(zipf_trace)
        return mm.ledger.ios

    ios = benchmark(run)
    benchmark.extra_info["accesses_per_round"] = N
    assert ios > 0


def test_physical_huge_mm_access(benchmark, zipf_trace):
    def run():
        mm = PhysicalHugePageMM(256, 2048, huge_page_size=16)
        mm.run(zipf_trace)
        return mm.ledger.ios

    ios = benchmark(run)
    benchmark.extra_info["accesses_per_round"] = N
    assert ios > 0


def test_decoupled_system_access(benchmark, zipf_trace):
    def run():
        allocator = IcebergAllocator(2048, 256, lam=6.0, seed=0)
        codec = TLBValueCodec.for_allocator(64, allocator)
        z = DecoupledSystem(
            256, 1536, LRUPolicy(), LRUPolicy(), DecouplingScheme(allocator, codec)
        )
        z.run(zipf_trace)
        return z.ledger.ios

    ios = benchmark(run)
    benchmark.extra_info["accesses_per_round"] = N
    assert ios > 0


def test_iceberg_allocation_churn(benchmark):
    def run():
        alloc = IcebergAllocator(4096, 128, lam=12.0, seed=0)  # B=32, 73% full
        m = 3000
        for v in range(m):
            alloc.allocate(v)
        oldest, fresh = 0, m
        for _ in range(m):
            if alloc.frame_of(oldest) is not None:
                alloc.free(oldest)
            oldest += 1
            alloc.allocate(fresh)
            fresh += 1
        return alloc.failures

    failures = benchmark(run)
    assert failures == 0
