"""Ablation: the difficulty of reducing associativity (paper Section 4).

The paper's opening argument: with bucket size B = 1 and one hash, a fill
of (1−δ)P distinct pages suffers Ω(P) paging failures (a 1/e fraction of
slots stay empty). Failures then decay as B grows, and multiple hash
choices (Greedy, Iceberg) need far smaller B for zero failures.

The table reports paging failures during a fill to 90% occupancy for each
(strategy, B) point; the B=1 row reproduces the ~(1/e − δ)·P failure mass.
"""


from repro.bench import format_table
from repro.core import GreedyAllocator, IcebergAllocator, OneChoiceAllocator

P = 1 << 14
OCCUPANCY = 0.9
B_SWEEP = (1, 2, 4, 8, 16, 32, 64)


def fill_failures(allocator, m: int) -> int:
    for v in range(m):
        allocator.allocate(v)
    return allocator.failures


def run_associativity():
    m = int(P * OCCUPANCY)
    rows = []
    for B in B_SWEEP:
        n = P // B
        configs = {
            "one-choice": OneChoiceAllocator(P, n, seed=B),
            "greedy[2]": GreedyAllocator(P, n, d=2, seed=B),
            "iceberg[2]": IcebergAllocator(P, n, lam=m / n, seed=B),
        }
        for name, alloc in configs.items():
            failures = fill_failures(alloc, m)
            rows.append(
                {
                    "strategy": name,
                    "B": B,
                    "associativity": alloc.associativity,
                    "failures": failures,
                    "fail_frac": round(failures / m, 4),
                }
            )
    return rows


def test_associativity(benchmark, save_result):
    rows = benchmark.pedantic(run_associativity, rounds=1, iterations=1)
    save_result("associativity", format_table(rows))
    by_key = {(r["strategy"], r["B"]): r for r in rows}

    # B=1, one choice: the 1/e argument — a constant fraction fails.
    base = by_key[("one-choice", 1)]["fail_frac"]
    assert base > 0.15, "B=1 must fail on a constant fraction (≈1/e − δ)"
    # failures decay steeply with B for one choice
    oc = [by_key[("one-choice", B)]["failures"] for B in B_SWEEP]
    assert oc[-1] < oc[0] / 20
    # Multiple choices kill failures at small B. Greedy[2] balances most
    # aggressively and reaches exactly zero; Iceberg at 90% occupancy sits
    # *below* its own sizing rule (B must exceed (1+slack)·λ + log log n,
    # but here B = 1.11·λ), so it only drives the failure mass down to the
    # n/poly range — which is the regime Theorem 4's slack absorbs.
    first_zero = {
        name: next((B for B in B_SWEEP if by_key[(name, B)]["failures"] == 0), None)
        for name in ("one-choice", "greedy[2]", "iceberg[2]")
    }
    assert first_zero["greedy[2]"] is not None
    assert by_key[("iceberg[2]", B_SWEEP[-1])]["fail_frac"] <= 1e-3
    # per-strategy decay with B
    for name in ("one-choice", "greedy[2]", "iceberg[2]"):
        series = [by_key[(name, B)]["failures"] for B in B_SWEEP]
        assert series[-1] < series[0]
    benchmark.extra_info["one_choice_B1_fail_frac"] = base
    benchmark.extra_info["first_zero_B"] = {k: v for k, v in first_zero.items()}
