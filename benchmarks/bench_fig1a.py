"""Figure 1a: bimodal uniform workload — IOs and TLB misses vs huge-page size.

Paper setup: 64 GB VA, 1 GB hot region (uniform, 99.99% of accesses), cold
accesses uniform over the VA, 16 GB RAM, 1536-entry LRU TLB, LRU RAM,
h ∈ {1, …, 1024}, 100 M warmup + 100 M measured accesses.

Scaled setup (ratios preserved, sizes ÷64, trace ÷250): 2²⁰-page VA
(4 GB-equivalent geometry), hot = VA/64, RAM = VA/4, 1536-entry TLB,
same h sweep, 300 k warmup + 300 k measured.

Expected shape: IOs grow by ~3 orders of magnitude with h while TLB misses
fall by ~4 orders — no h is good for both.
"""

from repro.bench import figure1_experiment, figure1_workload, format_figure1

SCALE_PAGES = 1 << 20
TLB_ENTRIES = 1536
N_ACCESSES = 600_000


def run_fig1a(seed=0):
    workload, ram_pages = figure1_workload("a", SCALE_PAGES)
    return figure1_experiment(
        workload,
        ram_pages=ram_pages,
        tlb_entries=TLB_ENTRIES,
        n_accesses=N_ACCESSES,
        warmup_fraction=0.5,
        seed=seed,
    )


def test_fig1a(benchmark, save_result):
    records = benchmark.pedantic(run_fig1a, rounds=1, iterations=1)
    table = format_figure1(records, title="Figure 1a — bimodal uniform")
    save_result("fig1a", table)
    first, last = records[0], records[-1]
    benchmark.extra_info["io_blowup"] = round(last.ios / max(1, first.ios), 1)
    benchmark.extra_info["miss_reduction"] = round(
        first.tlb_misses / max(1, last.tlb_misses), 1
    )
    # the paper's qualitative claims
    assert last.ios > 100 * first.ios, "IO blow-up with huge pages missing"
    assert last.tlb_misses * 100 < first.tlb_misses, "TLB win with huge pages missing"
