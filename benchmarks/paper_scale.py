#!/usr/bin/env python
"""Run the Figure 1 experiments at larger-than-default (up to paper) scale.

The pytest benches keep runtimes in seconds; this script removes the lid.
It runs a chosen panel at a chosen scale, prints the table, and persists
machine-readable results (repro.bench.store) for cross-version diffing.

Examples
--------
Default bench scale, persisted::

    python benchmarks/paper_scale.py --panel a

4x the bench scale (a few minutes)::

    python benchmarks/paper_scale.py --panel a --scale-shift 2 --accesses 2400000

Compare against a previous run::

    python benchmarks/paper_scale.py --panel a --diff results/fig1a_scaled.json
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.bench import (
    diff_records,
    figure1_experiment,
    figure1_workload,
    format_figure1,
    format_table,
    load_records,
    save_records,
)

BASE_SCALE = {"a": 20, "b": 18, "c": 18}  # log2 pages / kronecker scale
BASE_ACCESSES = {"a": 600_000, "b": 400_000, "c": 400_000}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--panel", choices="abc", default="a")
    parser.add_argument("--scale-shift", type=int, default=0,
                        help="add this to the panel's base log2 scale")
    parser.add_argument("--accesses", type=int, default=None)
    parser.add_argument("--tlb", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None,
                        help="result JSON (default results/fig1<panel>_scaled.json)")
    parser.add_argument("--diff", type=Path, default=None,
                        help="previous result JSON to compare against")
    args = parser.parse_args(argv)

    panel = args.panel
    log2_scale = BASE_SCALE[panel] + args.scale_shift
    scale = log2_scale if panel == "c" else (1 << log2_scale)
    accesses = args.accesses or BASE_ACCESSES[panel] * (1 << max(0, args.scale_shift))
    tlb = args.tlb or (64 if panel == "c" else 1536)

    print(f"panel {panel}: scale={scale}, accesses={accesses}, tlb={tlb}")
    t0 = time.time()
    workload, ram_pages = figure1_workload(panel, scale, seed=args.seed)
    records = figure1_experiment(
        workload,
        ram_pages=ram_pages,
        tlb_entries=tlb,
        n_accesses=accesses,
        touched_ram_fraction=0.99 if panel == "c" else None,
        seed=args.seed,
    )
    elapsed = time.time() - t0
    print(format_figure1(records, title=f"Figure 1{panel} at scale {scale}"))
    print(f"\nelapsed: {elapsed:.1f} s")

    out = args.out or Path(__file__).parent / "results" / f"fig1{panel}_scaled.json"
    out.parent.mkdir(exist_ok=True)
    save_records(
        out,
        records,
        params={
            "panel": panel, "scale": scale, "accesses": accesses,
            "tlb": tlb, "seed": args.seed, "elapsed_s": round(elapsed, 1),
        },
    )
    print(f"saved {out}")

    if args.diff:
        diffs = diff_records(load_records(args.diff), load_records(out), rel_tol=0.02)
        print("\ndiff vs", args.diff)
        print(format_table(diffs) if diffs else "(no differences beyond 2%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
