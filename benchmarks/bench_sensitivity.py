"""Ablation: how workload shape moves the huge-page tradeoff.

The Figure 1 panels are three points in workload space; this bench sweeps
the two axes that control the tradeoff — spatial locality (bimodal hot
fraction p_hot) and popularity skew (zipf s) — and reports, for each
workload, the huge-page size minimizing total cost at a fixed ε and the
cost ratio between the best and worst h. The pattern: the *best* h swings
wildly with workload shape (the reason no static h works), while the
decoupled algorithm needs no such choice.
"""

from repro.bench import format_table
from repro.core import ATCostModel
from repro.sim import sweep_huge_page_sizes
from repro.workloads import BimodalWorkload, ZipfWorkload

P = 1 << 14
TLB = 96
N = 60_000
SIZES = (1, 4, 16, 64, 256)
EPS = 0.02


def run_sensitivity():
    model = ATCostModel(epsilon=EPS)
    workloads = {}
    for p_hot in (0.9, 0.99, 0.9999):
        workloads[f"bimodal p={p_hot}"] = BimodalWorkload(
            1 << 16, hot_pages=1 << 10, p_hot=p_hot
        )
    for s in (0.7, 1.0, 1.3):
        workloads[f"zipf s={s}"] = ZipfWorkload(1 << 16, s=s)
    rows = []
    for name, wl in workloads.items():
        trace = wl.generate(N, seed=0)
        records = sweep_huge_page_sizes(
            trace, tlb_entries=TLB, ram_pages=P, sizes=SIZES, warmup=N // 3
        )
        costs = {r.params["h"]: model.cost(r.ledger) for r in records}
        best_h = min(costs, key=costs.get)
        worst_h = max(costs, key=costs.get)
        rows.append(
            {
                "workload": name,
                "best_h": best_h,
                "best_cost": round(costs[best_h], 1),
                "worst_h": worst_h,
                "worst/best": round(costs[worst_h] / max(costs[best_h], 1e-9), 1),
            }
        )
    return rows


def test_sensitivity(benchmark, save_result):
    rows = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    save_result("sensitivity", format_table(rows))
    best_hs = {r["best_h"] for r in rows}
    # the optimal h is workload-dependent — no single static choice
    assert len(best_hs) >= 2, "expected the best h to vary across workloads"
    # and picking wrong is expensive
    assert max(r["worst/best"] for r in rows) > 5
    benchmark.extra_info["distinct_best_h"] = sorted(best_hs)
