"""Balls-and-bins max-load validation: eq. (5), eq. (6), and Theorem 2.

For each strategy we run the dynamic game (FIFO churn at full occupancy —
the paging steady state) over a sweep of (n, λ) and compare the measured
peak load against the closed-form curve:

* OneChoice: ``λ + O(√(λ log n))`` for λ = ω(log n)    (eq. 5, warms Thm 1)
* Greedy[2]: ``O(λ) + log log n + O(1)``              (eq. 6 — the dead end)
* Iceberg[2]: ``(1+o(1))λ + log log n + O(1)``        (Theorem 2 → Thm 3)

The quantity that matters for decoupling is the *overhead above λ* — it
must be o(λ) for δ = o(1); the table's "ovh/λ" column shows Iceberg's
vanishing overhead against OneChoice's √-gap.
"""

from repro.ballsbins import (
    BallsAndBinsGame,
    GreedyStrategy,
    IcebergStrategy,
    OneChoiceStrategy,
    fifo_churn,
    greedy_max_load_bound,
    iceberg_max_load_bound,
    one_choice_max_load_bound,
    run_game,
)
from repro.bench import format_table

N_BINS = 1 << 11
LAMBDAS = (8, 32, 128)
CHURN_FACTOR = 4


def run_maxload():
    rows = []
    for lam in LAMBDAS:
        m = N_BINS * lam
        ops = m * CHURN_FACTOR
        configs = {
            "one-choice": (OneChoiceStrategy(), one_choice_max_load_bound(N_BINS, lam)),
            "greedy[2]": (GreedyStrategy(2), greedy_max_load_bound(N_BINS, lam)),
            "iceberg[2]": (IcebergStrategy(lam=lam), iceberg_max_load_bound(N_BINS, lam)),
        }
        for i, (name, (strategy, bound)) in enumerate(configs.items()):
            # deterministic seeds (never Python's process-randomized hash())
            game = BallsAndBinsGame(N_BINS, strategy, seed=1000 * lam + i)
            run_game(game, fifo_churn(m, ops))
            rows.append(
                {
                    "strategy": name,
                    "lam": lam,
                    "peak": game.peak_load,
                    "theory": round(bound, 1),
                    "ovh/lam": round((game.peak_load - lam) / lam, 3),
                }
            )
    return rows


def test_maxload(benchmark, save_result):
    rows = benchmark.pedantic(run_maxload, rounds=1, iterations=1)
    save_result("maxload", format_table(rows))
    by_key = {(r["strategy"], r["lam"]): r for r in rows}
    # The closed forms bound the load at any *fixed* time w.h.p.; the peak
    # over a long churn is a max over many configurations, so allow a
    # finite-size margin while still pinning the leading-order shape. The
    # margin is widest at small λ, where the one-choice Θ(λ) regime has the
    # loosest constants.
    for r in rows:
        margin = 1.75 if r["lam"] <= 8 else 1.5
        assert r["peak"] <= margin * r["theory"], (
            f"{r['strategy']} λ={r['lam']} far exceeds theory"
        )
    # Iceberg's overhead above λ shrinks with λ (the (1+o(1)) leading term);
    # OneChoice keeps a √(λ log n)-sized gap.
    ice = [by_key[("iceberg[2]", lam)]["ovh/lam"] for lam in LAMBDAS]
    assert ice[-1] <= ice[0]
    assert by_key[("iceberg[2]", 128)]["peak"] < by_key[("one-choice", 128)]["peak"]
    benchmark.extra_info["iceberg_overhead_at_128"] = ice[-1]
