"""Ablation: TLB geometry — associativity, multi-size banks, ASID tagging.

The paper models the TLB as fully associative (footnote 1 concedes real
TLBs are "semi-domesticated": set-associative, split by page size, shared
across contexts). This bench quantifies what each hardware concession
costs on the same trace:

* associativity sweep (direct-mapped → fully associative);
* the Cascade Lake split-bank layout vs one unified bank, at 1 GB-page
  pressure (the 16-entry dedicated bank from the paper's §7);
* flushing vs ASID-tagged TLBs under multi-tenant interleaving.
"""


from repro.bench import format_table
from repro.tlb import (
    CASCADE_LAKE_L2,
    AsidTaggedTLB,
    FlushingTLB,
    MultiSizeTLB,
    SetAssociativeTLB,
    TLB,
)
from repro.workloads import InterleavedWorkload, ZipfWorkload

N = 60_000
ENTRIES = 128


def _run_plain(tlb, trace):
    for hpn in trace:
        hpn = int(hpn)
        if tlb.lookup(hpn) is None:
            tlb.fill(hpn)
    return tlb.miss_rate


def run_geometry():
    rows = []
    trace = ZipfWorkload(1 << 12, s=1.1).generate(N, seed=0)

    # --- associativity sweep
    for assoc in (1, 2, 8, ENTRIES):
        tlb = (
            TLB(ENTRIES)
            if assoc == ENTRIES
            else SetAssociativeTLB(ENTRIES, associativity=assoc)
        )
        rows.append(
            {
                "experiment": "associativity",
                "config": "full" if assoc == ENTRIES else f"{assoc}-way",
                "miss_rate": round(_run_plain(tlb, trace), 4),
            }
        )

    # --- multi-size banks at 1GB-page pressure: 32 hot 1GB pages touched
    # round-robin — the LRU worst case for the 16-entry dedicated bank
    huge = 512 * 512
    hot_huge = [(i % 32) * huge for i in range(N)]
    banked = MultiSizeTLB(CASCADE_LAKE_L2)
    unified = TLB(sum(CASCADE_LAKE_L2.values()))
    for vpn in hot_huge:
        if banked.lookup(vpn, huge) is None:
            banked.fill(vpn, huge)
    for vpn in hot_huge:
        if unified.lookup(vpn // huge) is None:
            unified.fill(vpn // huge)
    rows.append(
        {
            "experiment": "1GB-bank",
            "config": "cascade-lake split (16-entry bank)",
            "miss_rate": round(banked.miss_rate, 4),
        }
    )
    rows.append(
        {
            "experiment": "1GB-bank",
            "config": "unified (hypothetical)",
            "miss_rate": round(unified.miss_rate, 4),
        }
    )

    # --- flushing vs tagged under interleaving
    tenants = InterleavedWorkload(
        [ZipfWorkload(1 << 10, s=1.2, perm_seed=i) for i in range(4)], quantum=16
    )
    t_trace = tenants.generate(N, seed=1)
    slice_size = tenants.va_pages // 4
    tagged = AsidTaggedTLB(ENTRIES)
    flushing = FlushingTLB(ENTRIES)
    for vpn in t_trace:
        vpn = int(vpn)
        asid, hpn = divmod(vpn, slice_size)
        for tlb in (tagged, flushing):
            if tlb.lookup(asid, hpn) is None:
                tlb.fill(asid, hpn)
    rows.append(
        {"experiment": "context-switch", "config": "asid-tagged",
         "miss_rate": round(tagged.miss_rate, 4)}
    )
    rows.append(
        {"experiment": "context-switch", "config": "flush-on-switch",
         "miss_rate": round(flushing.miss_rate, 4)}
    )
    return rows


def test_tlb_geometry(benchmark, save_result):
    rows = benchmark.pedantic(run_geometry, rounds=1, iterations=1)
    save_result("tlb_geometry", format_table(rows))
    assoc = {r["config"]: r["miss_rate"] for r in rows if r["experiment"] == "associativity"}
    # conflict misses shrink with associativity
    assert assoc["1-way"] >= assoc["8-way"] >= assoc["full"]
    bank = {r["config"]: r["miss_rate"] for r in rows if r["experiment"] == "1GB-bank"}
    # the 16-entry dedicated bank thrashes on 32 hot 1GB pages; a unified
    # TLB of the same total entries would not (the paper's §7 point that
    # coverage gains are limited by the dedicated TLB size)
    assert bank["cascade-lake split (16-entry bank)"] > 0.9
    assert bank["unified (hypothetical)"] < 0.1
    ctx = {r["config"]: r["miss_rate"] for r in rows if r["experiment"] == "context-switch"}
    assert ctx["asid-tagged"] < ctx["flush-on-switch"]
    benchmark.extra_info["direct_mapped_penalty"] = round(
        assoc["1-way"] / max(assoc["full"], 1e-9), 2
    )
