"""Ablation: shared-TLB pressure from co-running tenants.

The paper's introduction: TLBs now hold entries for multiple threads and
applications simultaneously, so "the effective size of the TLB is smaller
for each thread". We interleave k identical zipf tenants over a fixed
1536-entry TLB and report the per-access miss rate at base pages and at
decoupled h_max coverage — coverage buys back what co-runners take.
"""

from repro.bench import format_table
from repro.mmu import BasePageMM, DecoupledMM
from repro.workloads import InterleavedWorkload, ZipfWorkload

P = 1 << 16
TLB = 1536
N = 100_000


def run_multitenant():
    rows = []
    for k in (1, 2, 4, 8):
        wl = InterleavedWorkload(
            [ZipfWorkload(1 << 14, s=1.05, perm_seed=i) for i in range(k)],
            quantum=32,
        )
        trace = wl.generate(N, seed=0)
        base = BasePageMM(TLB, P)
        z = DecoupledMM(TLB, P, seed=0)
        base.run(trace)
        z.run(trace)
        rows.append(
            {
                "tenants": k,
                "base_miss_rate": round(base.ledger.tlb_miss_rate, 4),
                "decoupled_miss_rate": round(z.ledger.tlb_miss_rate, 4),
                "coverage_gain": round(
                    base.ledger.tlb_misses / max(1, z.ledger.tlb_misses), 2
                ),
            }
        )
    return rows


def test_multitenant(benchmark, save_result):
    rows = benchmark.pedantic(run_multitenant, rounds=1, iterations=1)
    save_result("multitenant", format_table(rows))
    base_rates = [r["base_miss_rate"] for r in rows]
    z_rates = [r["decoupled_miss_rate"] for r in rows]
    # more tenants, more pressure
    assert base_rates == sorted(base_rates)
    # decoupled coverage keeps the miss rate below base pages at every k
    for b, z in zip(base_rates, z_rates):
        assert z <= b
    benchmark.extra_info["gain_at_8_tenants"] = rows[-1]["coverage_gain"]
