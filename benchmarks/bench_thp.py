"""Ablation: THP-style promotion vs static huge pages vs decoupling.

Section 7 of the paper surveys the systems lineage (Linux THP, superpages,
Ingens, HawkEye) and argues that any scheme requiring *physical* contiguity
inherits the amplification/utilization/fragmentation costs. This bench
runs our THP model head to head with static physical huge pages, base
pages, and the decoupled algorithm Z on two regimes:

* **dense** — a compact hot set (THP's best case: promotions stick and
  pay off);
* **sparse** — one hot page per huge-page region (THP's pathology: either
  promotions never trigger, or — at aggressive thresholds — they pin
  mostly-cold frames).

Decoupled Z needs neither contiguity nor a promotion heuristic: it matches
the best column of each regime.
"""

from repro.bench import compare_algorithms, format_table
from repro.core import ATCostModel
from repro.mmu import BasePageMM, DecoupledMM, PhysicalHugePageMM, THPStyleMM
from repro.workloads import BimodalWorkload, StridedWorkload

P = 1 << 14
TLB = 128
H = 8
N = 80_000
EPS = 0.01


def run_thp():
    out = {}
    regimes = {
        "dense": BimodalWorkload(4 * P, hot_pages=P // 8, p_hot=0.999),
        "sparse": StridedWorkload(4 * P, stride=H, jitter=2),
    }
    for name, wl in regimes.items():
        trace = wl.generate(N, seed=0)
        algos = {
            "base-page": BasePageMM(TLB, P),
            f"static-h{H}": PhysicalHugePageMM(TLB, P, huge_page_size=H),
            "thp": THPStyleMM(TLB, P, huge_page_size=H, promote_utilization=0.75),
            "decoupled-Z": DecoupledMM(TLB, P, seed=0),
        }
        out[name] = compare_algorithms(trace, algos, warmup=N // 3)
    return out


def test_thp(benchmark, save_result):
    results = benchmark.pedantic(run_thp, rounds=1, iterations=1)
    model = ATCostModel(epsilon=EPS)
    lines = []
    for regime, records in results.items():
        rows = [
            {**r.as_row(), "cost": round(model.cost(r.ledger), 1)} for r in records
        ]
        lines.append(f"== {regime} ==")
        lines.append(
            format_table(
                rows,
                ["algorithm", "ios", "tlb_misses", "cost", "promotions",
                 "promotion_failures", "demotions"],
            )
        )
        lines.append("")
    save_result("thp", "\n".join(lines))

    def rec(regime, name):
        return next(r for r in results[regime] if r.algorithm == name)

    # dense: THP approximates static huge pages' TLB reach
    dense_thp = rec("dense", "thp")
    dense_static = rec("dense", f"static-h{H}")
    assert dense_thp.tlb_misses <= 2 * dense_static.tlb_misses + 100
    # sparse: THP avoids static's blanket amplification
    sparse_thp = rec("sparse", "thp")
    sparse_static = rec("sparse", f"static-h{H}")
    assert sparse_thp.ios < sparse_static.ios
    # dense regime: Z is never worse than the contiguity-based schemes.
    # (In the sparse regime Z's RAM policy runs on (1-delta)P frames with
    # delta clamped to 0.5 at this toy P — the resource augmentation is a
    # visible 2x on an over-capacity working set; the paper's delta = o(1)
    # kicks in only at large P. The saved table shows it honestly.)
    z = rec("dense", "decoupled-Z")
    floor = min(
        model.cost(rec("dense", "thp").ledger),
        model.cost(rec("dense", f"static-h{H}").ledger),
    )
    assert model.cost(z.ledger) <= floor * 1.05 + 1e-9
    benchmark.extra_info["dense_thp_promotions"] = dense_thp.ledger.extra.get(
        "promotions", 0
    )
