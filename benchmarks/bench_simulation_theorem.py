"""Theorem 4 / eq. (3): the decoupled algorithm Z against its ingredients.

On each Figure 1 workload (scaled), run:

* ``Z``                — DecoupledMM (Theorem 3 parameters, LRU + LRU);
* ``base-page``        — h = 1 (the IO-optimizing strategy);
* ``physical-h_max``   — physical huge pages at Z's h_max (the
  TLB-optimizing strategy inside Theorem 4's comparison class, which caps
  huge-page sizes at h_max);
* the eq. (3) references ``C_TLB(X)`` and ``C_IO(Y)``.

Checks: (i) eq. (3) holds on every workload —
``C(Z) ≤ ε·X_misses + Y_ios + n/poly(P)``; (ii) Z's TLB misses sit at the
huge-page level while its IOs sit at the base-page level — "the best of
both", the paper's headline; (iii) on the bimodal workload (where spatial
locality makes huge pages genuinely help the TLB), Z's total cost beats
both pure strategies at every ε. The *shuffled* zipf workload is included
as the adversarial regime: hot pages are scattered, so size-h_max grouping
does not reduce TLB misses below base pages — eq. (3) still holds (it is
relative to Z's own X and Y), but grouping is not a free win there, which
the saved table makes visible.
"""

from repro.bench import (
    epsilon_sweep,
    format_table,
    simulation_theorem_experiment,
)
from repro.workloads import BimodalWorkload, ZipfWorkload

EPSILONS = (0.001, 0.01, 0.1)
P = 1 << 16


def run_eq3():
    out = {}
    workloads = {
        "bimodal": BimodalWorkload.paper_scaled(1 << 18),
        "zipf": ZipfWorkload(1 << 18, s=0.9),
    }
    for name, wl in workloads.items():
        out[name] = simulation_theorem_experiment(
            wl,
            ram_pages=P,
            tlb_entries=256,
            n_accesses=150_000,
            seed=0,
        )
    return out


def test_simulation_theorem(benchmark, save_result):
    results = benchmark.pedantic(run_eq3, rounds=1, iterations=1)
    lines = []
    for name, out in results.items():
        records = out["records"]
        rows = [r.as_row() for r in records]
        lines.append(f"== {name} (hmax={out['hmax']}) ==")
        lines.append(format_table(rows, ["algorithm", "ios", "tlb_misses", "paging_failures"]))
        lines.append(
            f"references: C_TLB(X) misses = {out['x_tlb_misses']}, "
            f"C_IO(Y) ios = {out['y_ios']}"
        )
        cost_rows = epsilon_sweep(records, EPSILONS)
        lines.append(format_table(cost_rows))
        lines.append("")

        z = next(r for r in records if r.algorithm == "decoupled-Z")
        base = next(r for r in records if r.algorithm == "base-page")
        phys = next(r for r in records if r.algorithm.startswith("physical"))

        # eq. (3) — holds on every workload, relative to Z's own X and Y
        for eps in EPSILONS:
            lhs = z.cost(eps)
            rhs = eps * out["x_tlb_misses"] + out["y_ios"] + out["n_measured"] / P
            assert lhs <= rhs + 1e-6, f"eq.(3) violated on {name} at eps={eps}"
        # best of both physical worlds at the same geometry
        assert z.tlb_misses <= phys.tlb_misses, "Z must match huge-page TLB reach"
        assert z.ios <= phys.ios, "Z must avoid physical amplification"
        if name == "bimodal":
            # with real spatial locality, Z dominates both pure strategies
            assert z.tlb_misses <= base.tlb_misses
            for eps in EPSILONS:
                assert z.cost(eps) <= base.cost(eps) + 1e-9
                assert z.cost(eps) <= phys.cost(eps) + 1e-9

    save_result("simulation_theorem", "\n".join(lines))
    z = next(r for r in results["bimodal"]["records"] if r.algorithm == "decoupled-Z")
    benchmark.extra_info["z_failures_bimodal"] = z.ledger.paging_failures
