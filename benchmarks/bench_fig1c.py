"""Figure 1c: graph500 BFS under memory pressure — IOs and TLB misses vs h.

Paper setup: a ~5 M-access trace recorded from graph500 (BFS on a Kronecker
graph) touching ~525 MB, replayed with a 520 MB cache and 1536-entry TLB.

Substituted setup (see DESIGN.md): we *generate* the graph (Kronecker
scale 16, edgefactor 16, per the graph500 spec), run a level-synchronous
BFS, and emit the page access stream of its CSR/parent arrays; the cache is
set to 99% of the touched footprint, reproducing the paper's contention
regime. The TLB is scaled to keep the paper's coverage ratio
(1536 entries / 131 k footprint pages ≈ 1.2% → 64 entries for our ~5 k-page
footprint).

Expected shape: the same cliff — TLB misses drop steeply with h while IOs
climb ≥3 orders of magnitude.
"""

from repro.bench import figure1_experiment, figure1_workload, format_figure1

GRAPH_SCALE = 18
TLB_ENTRIES = 64
N_ACCESSES = 400_000


def run_fig1c(seed=0):
    workload, ram_pages = figure1_workload("c", GRAPH_SCALE, seed=seed)
    return figure1_experiment(
        workload,
        ram_pages=ram_pages,
        tlb_entries=TLB_ENTRIES,
        n_accesses=N_ACCESSES,
        warmup_fraction=0.5,
        # the paper's contention regime: cache just below the pages the
        # windowed trace touches (520 MB of 525 MB ≈ 0.99)
        touched_ram_fraction=0.99,
        seed=seed,
    )


def test_fig1c(benchmark, save_result):
    records = benchmark.pedantic(run_fig1c, rounds=1, iterations=1)
    table = format_figure1(records, title="Figure 1c — graph500 BFS (substituted trace)")
    save_result("fig1c", table)
    first, last = records[0], records[-1]
    benchmark.extra_info["io_blowup"] = round(last.ios / max(1, first.ios), 1)
    benchmark.extra_info["miss_reduction"] = round(
        first.tlb_misses / max(1, last.tlb_misses), 2
    )
    # monotone amplification (the paper's 3-order blow-up compresses to
    # ~1.5 orders at our scaled footprint; the growth is the invariant)
    ios = [r.ios for r in records]
    assert all(a <= b for a, b in zip(ios, ios[1:])), "IOs must grow with h"
    assert last.ios > 20 * first.ios
    assert first.tlb_misses > 1000 * last.tlb_misses
