"""Section 8 hybrid ablation: decoupled huge pages over physical chunks.

Sweeping the chunk size (the physical run each TLB field points at) trades
TLB coverage ``q = h_max·chunk`` against IO amplification ``chunk``. The
paper's claim: the hybrid reaches the coverage of very large huge pages
while paying only ``q/h_max`` amplification — the table shows coverage
multiplying by h_max faster than IOs.
"""

from repro.bench import format_table, hybrid_sweep
from repro.workloads import BimodalWorkload

P = 1 << 16
CHUNKS = (1, 2, 4, 8, 16)


def run_hybrid():
    wl = BimodalWorkload.paper_scaled(1 << 18)
    return hybrid_sweep(
        wl,
        ram_pages=P,
        tlb_entries=128,
        n_accesses=120_000,
        chunks=CHUNKS,
        seed=0,
    )


def test_hybrid(benchmark, save_result):
    records = benchmark.pedantic(run_hybrid, rounds=1, iterations=1)
    rows = [
        {
            "chunk": r.params["chunk"],
            "coverage": r.params["coverage"],
            "ios": r.ios,
            "tlb_misses": r.tlb_misses,
        }
        for r in records
    ]
    save_result("hybrid", format_table(rows))
    coverages = [r["coverage"] for r in rows]
    ios = [r["ios"] for r in rows]
    misses = [r["tlb_misses"] for r in rows]
    assert coverages == sorted(coverages) and coverages[-1] > coverages[0]
    # amplification: IOs grow no faster than chunk relative to chunk=1
    assert ios[-1] <= CHUNKS[-1] * ios[0] * 1.5
    # coverage buys TLB reach
    assert misses[-1] <= misses[0]
    benchmark.extra_info["max_coverage"] = coverages[-1]
