"""Behavioural tests for LIRS (beyond the generic contract suite)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import LIRSPolicy, LRUPolicy, PageCache


def fault_count(policy, trace, capacity):
    cache = PageCache(capacity, policy)
    return sum(0 if cache.access(p) else 1 for p in trace)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            LIRSPolicy(hir_fraction=0.0)
        with pytest.raises(ValueError):
            LIRSPolicy(hir_fraction=1.0)
        with pytest.raises(ValueError):
            LIRSPolicy(ghost_factor=-1)

    def test_partition_sizes(self):
        p = LIRSPolicy(hir_fraction=0.1)
        p.bind(100)
        assert p._hir_capacity == 10


class TestScanResistance:
    def test_one_touch_scan_preserves_lir_set(self):
        """Scan pages enter as HIR and leave without displacing LIR pages."""
        cache = PageCache(32, LIRSPolicy())
        hot = list(range(28))
        for _ in range(5):  # establish LIR status
            for p in hot:
                cache.access(p)
        for p in range(1000, 1200):  # long one-touch scan
            cache.access(p)
        cache.reset_stats()
        for p in hot:
            cache.access(p)
        assert cache.misses <= 4  # hot set survived the scan

    def test_beats_lru_on_scan_mix(self):
        rng = np.random.default_rng(0)
        trace = []
        scan_base = 10_000
        for i in range(8000):
            if i % 200 < 40:
                trace.append(scan_base + i)
            else:
                trace.append(int(rng.zipf(1.4)) % 48)
        lru = fault_count(LRUPolicy(), trace, 64)
        lirs = fault_count(LIRSPolicy(), trace, 64)
        assert lirs < lru

    def test_cyclic_pattern_beats_lru(self):
        """A loop one page larger than the cache: LRU misses always; LIRS
        keeps most of the loop as LIR."""
        n = 64
        trace = list(range(n + 4)) * 30
        lru = fault_count(LRUPolicy(), trace, n)
        lirs = fault_count(LIRSPolicy(), trace, n)
        assert lru == len(trace)
        assert lirs < lru / 2


class TestInternalState:
    def test_lir_plus_hir_equals_resident(self):
        p = LIRSPolicy()
        p.bind(16)
        for i in range(16):
            p.insert(i, i)
        assert p.lir_count + p.hir_resident_count == len(p)

    def test_promotion_on_short_irr(self):
        p = LIRSPolicy(hir_fraction=0.25)
        p.bind(8)  # 6 LIR + 2 HIR
        for i in range(6):
            p.insert(i, i)
        p.insert(6, 6)  # HIR resident
        assert p.hir_resident_count == 1
        p.record_access(6, 7)  # re-access while in stack: promote
        assert p.lir_count == 6  # 6 after the demotion rebalance
        assert len(p) == 7

    def test_ghost_bound_respected(self):
        p = LIRSPolicy(ghost_factor=1.0)
        cache = PageCache(8, p)
        for i in range(500):
            cache.access(i)
        ghosts = sum(1 for s in p._stack.values() if s == 2)
        assert ghosts <= p._max_ghosts


class TestLIRSModelProperty:
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_resident_set_consistency(self, trace):
        p = LIRSPolicy()
        cache = PageCache(6, p)
        for x in trace:
            cache.access(x)
            assert len(cache) <= 6
            assert p.lir_count + p.hir_resident_count == len(p)
        # every resident key is findable, every evicted one is not
        for x in set(trace):
            _ = x in cache  # must not raise
