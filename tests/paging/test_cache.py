"""Unit tests for PageCache mechanics (capacity, stats, callbacks)."""

import pytest

from repro.paging import FIFOPolicy, LRUPolicy, PageCache


class TestConstruction:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PageCache(0, LRUPolicy())

    def test_rejects_dirty_policy(self):
        p = LRUPolicy()
        p.insert(1, 0)
        with pytest.raises(ValueError, match="start empty"):
            PageCache(4, p)


class TestAccess:
    def test_miss_then_hit(self):
        cache = PageCache(2, LRUPolicy())
        assert cache.access(1) is False
        assert cache.access(1) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_enforced(self):
        cache = PageCache(3, LRUPolicy())
        for i in range(10):
            cache.access(i)
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_eviction_callback(self):
        evicted = []
        cache = PageCache(2, FIFOPolicy(), on_evict=evicted.append)
        for i in range(4):
            cache.access(i)
        assert evicted == [0, 1]

    def test_accesses_property(self):
        cache = PageCache(2, LRUPolicy())
        for p in [1, 1, 2, 3]:
            cache.access(p)
        assert cache.accesses == 4


class TestInsertRemove:
    def test_insert_is_statless(self):
        cache = PageCache(2, LRUPolicy())
        cache.insert(5)
        assert 5 in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_insert_existing_is_noop(self):
        cache = PageCache(2, LRUPolicy())
        cache.insert(5)
        cache.insert(5)
        assert len(cache) == 1

    def test_insert_evicts_when_full(self):
        evicted = []
        cache = PageCache(1, FIFOPolicy(), on_evict=evicted.append)
        cache.insert(1)
        cache.insert(2)
        assert evicted == [1]
        assert 2 in cache

    def test_remove(self):
        cache = PageCache(2, LRUPolicy())
        cache.insert(5)
        cache.remove(5)
        assert 5 not in cache

    def test_remove_absent_raises(self):
        cache = PageCache(2, LRUPolicy())
        with pytest.raises(KeyError):
            cache.remove(5)

    def test_remove_does_not_fire_callback(self):
        evicted = []
        cache = PageCache(2, LRUPolicy(), on_evict=evicted.append)
        cache.insert(1)
        cache.remove(1)
        assert evicted == []


class TestStats:
    def test_reset_stats_keeps_contents(self):
        cache = PageCache(4, LRUPolicy())
        for p in [1, 2, 1]:
            cache.access(p)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0 and cache.evictions == 0
        assert 1 in cache and 2 in cache

    def test_warmup_then_measure_pattern(self):
        """The Section 6 pattern: warm up, reset, then measure."""
        cache = PageCache(2, LRUPolicy())
        for p in [1, 2, 1, 2]:
            cache.access(p)
        cache.reset_stats()
        for p in [1, 2, 3]:
            cache.access(p)
        assert cache.misses == 1  # only page 3


class TestEvictionCoherence:
    """Regression for the warm-path counter bug: ``insert`` used to bump
    ``evictions`` without a miss, breaking the oracle's "evictions only on
    misses" rule. Demand evictions and warm-path displacements are now
    separate counters, and ``check_invariants`` enforces the demand rule."""

    def test_warm_insert_does_not_count_demand_eviction(self):
        cache = PageCache(1, LRUPolicy())
        cache.insert(1)
        cache.insert(2)  # displaces 1 on the warm path
        assert cache.evictions == 0
        assert cache.warm_evictions == 1
        assert cache.misses == 0
        cache.check_invariants()  # evictions <= misses holds

    def test_demand_eviction_still_counted(self):
        cache = PageCache(1, LRUPolicy())
        cache.access(1)
        cache.access(2)
        assert cache.evictions == 1
        assert cache.warm_evictions == 0
        cache.check_invariants()

    def test_reset_clears_both_counters(self):
        cache = PageCache(1, LRUPolicy())
        cache.insert(1)
        cache.insert(2)
        cache.access(3)
        cache.reset_stats()
        assert cache.evictions == 0 and cache.warm_evictions == 0

    def test_check_invariants_catches_incoherent_counters(self):
        cache = PageCache(2, LRUPolicy())
        cache.access(1)
        cache.evictions = 5  # corrupt: more demand evictions than misses
        with pytest.raises(AssertionError, match="eviction-coherence"):
            cache.check_invariants()


class TestAccessMany:
    """The batched hot path must be bit-identical to per-key access()."""

    @pytest.mark.parametrize("policy_name", ["lru", "fifo", "clock", "mru"])
    def test_matches_per_key_access(self, policy_name):
        import random

        from repro.paging import make_policy

        rng = random.Random(0)
        keys = [rng.randrange(32) for _ in range(500)]
        evicted_a, evicted_b = [], []
        a = PageCache(8, make_policy(policy_name), on_evict=evicted_a.append)
        b = PageCache(8, make_policy(policy_name), on_evict=evicted_b.append)
        for k in keys:
            a.access(k)
        hits, misses = b.access_many(keys)
        assert (hits, misses) == (a.hits, a.misses)
        assert b.evictions == a.evictions
        assert evicted_b == evicted_a
        assert sorted(b.resident()) == sorted(a.resident())
        assert b._clock == a._clock
        b.check_invariants()

    def test_empty_batch(self):
        cache = PageCache(2, LRUPolicy())
        assert cache.access_many([]) == (0, 0)
        assert cache._clock == 0
