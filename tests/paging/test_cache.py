"""Unit tests for PageCache mechanics (capacity, stats, callbacks)."""

import pytest

from repro.paging import FIFOPolicy, LRUPolicy, PageCache


class TestConstruction:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PageCache(0, LRUPolicy())

    def test_rejects_dirty_policy(self):
        p = LRUPolicy()
        p.insert(1, 0)
        with pytest.raises(ValueError, match="start empty"):
            PageCache(4, p)


class TestAccess:
    def test_miss_then_hit(self):
        cache = PageCache(2, LRUPolicy())
        assert cache.access(1) is False
        assert cache.access(1) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_enforced(self):
        cache = PageCache(3, LRUPolicy())
        for i in range(10):
            cache.access(i)
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_eviction_callback(self):
        evicted = []
        cache = PageCache(2, FIFOPolicy(), on_evict=evicted.append)
        for i in range(4):
            cache.access(i)
        assert evicted == [0, 1]

    def test_accesses_property(self):
        cache = PageCache(2, LRUPolicy())
        for p in [1, 1, 2, 3]:
            cache.access(p)
        assert cache.accesses == 4


class TestInsertRemove:
    def test_insert_is_statless(self):
        cache = PageCache(2, LRUPolicy())
        cache.insert(5)
        assert 5 in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_insert_existing_is_noop(self):
        cache = PageCache(2, LRUPolicy())
        cache.insert(5)
        cache.insert(5)
        assert len(cache) == 1

    def test_insert_evicts_when_full(self):
        evicted = []
        cache = PageCache(1, FIFOPolicy(), on_evict=evicted.append)
        cache.insert(1)
        cache.insert(2)
        assert evicted == [1]
        assert 2 in cache

    def test_remove(self):
        cache = PageCache(2, LRUPolicy())
        cache.insert(5)
        cache.remove(5)
        assert 5 not in cache

    def test_remove_absent_raises(self):
        cache = PageCache(2, LRUPolicy())
        with pytest.raises(KeyError):
            cache.remove(5)

    def test_remove_does_not_fire_callback(self):
        evicted = []
        cache = PageCache(2, LRUPolicy(), on_evict=evicted.append)
        cache.insert(1)
        cache.remove(1)
        assert evicted == []


class TestStats:
    def test_reset_stats_keeps_contents(self):
        cache = PageCache(4, LRUPolicy())
        for p in [1, 2, 1]:
            cache.access(p)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0 and cache.evictions == 0
        assert 1 in cache and 2 in cache

    def test_warmup_then_measure_pattern(self):
        """The Section 6 pattern: warm up, reset, then measure."""
        cache = PageCache(2, LRUPolicy())
        for p in [1, 2, 1, 2]:
            cache.access(p)
        cache.reset_stats()
        for p in [1, 2, 3]:
            cache.access(p)
        assert cache.misses == 1  # only page 3
