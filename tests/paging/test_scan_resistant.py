"""Behavioural tests for the scan-resistant policies (2Q, ARC)."""

import numpy as np

from repro.paging import ARCPolicy, LRUPolicy, PageCache, TwoQPolicy


def zipf_with_scans(seed=0, n=6000, hot=40, scan_len=40, period=200):
    """A hot Zipf-ish working set interrupted by periodic one-touch scans.

    Scan bursts are kept shorter than the ghost queues so the
    scan-resistant policies can actually exploit their re-reference
    filtering (a scan longer than the ghost history flushes it and
    degenerates every policy to LRU-like behaviour).
    """
    rng = np.random.default_rng(seed)
    trace = []
    scan_base = 10_000
    for i in range(n):
        if (i % period) < scan_len:
            trace.append(scan_base + i)  # never re-referenced
        else:
            trace.append(int(rng.zipf(1.5)) % hot)
    return trace


def fault_count(policy, trace, capacity):
    cache = PageCache(capacity, policy)
    return sum(0 if cache.access(p) else 1 for p in trace)


class TestTwoQ:
    def test_scan_resistance_beats_lru(self):
        trace = zipf_with_scans()
        lru = fault_count(LRUPolicy(), trace, 64)
        twoq = fault_count(TwoQPolicy(), trace, 64)
        assert twoq < lru

    def test_promotion_via_ghost(self):
        p = TwoQPolicy()
        p.bind(8)  # kin=2, kout=4
        p.insert("a", 0)
        p.insert("b", 1)
        p.insert("c", 2)  # probation holds 3 > kin
        assert p.evict() == "a"  # demoted to ghost
        assert p.ghost_size == 1
        p.insert("a", 3)  # ghost hit -> main queue
        # "a" now in Am; evictions prefer the oversized A1in first
        assert p.probation_size == 2
        assert "a" in p

    def test_parameter_validation(self):
        import pytest

        with pytest.raises(ValueError):
            TwoQPolicy(kin_fraction=0.0)
        with pytest.raises(ValueError):
            TwoQPolicy(kout_fraction=1.5)

    def test_hits_in_probation_do_not_promote(self):
        p = TwoQPolicy()
        p.bind(8)
        p.insert("a", 0)
        p.record_access("a", 1)
        p.insert("b", 2)
        p.insert("c", 3)
        assert p.evict() == "a"  # still FIFO order despite the hit


class TestARC:
    def test_scan_resistance_beats_lru(self):
        trace = zipf_with_scans(seed=3)
        lru = fault_count(LRUPolicy(), trace, 64)
        arc = fault_count(ARCPolicy(), trace, 64)
        assert arc < lru

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(5)
        cache = PageCache(16, ARCPolicy())
        for p in rng.integers(0, 200, 3000):
            cache.access(int(p))
            assert len(cache) <= 16

    def test_adaptation_moves_p(self):
        """Recency-only traffic after frequency traffic shifts the target."""
        policy = ARCPolicy()
        cache = PageCache(8, ARCPolicy())
        policy = cache.policy
        # frequency phase: hammer a small set
        for _ in range(20):
            for p in range(4):
                cache.access(p)
        # recency phase: long scan with re-touches of recently-seen pages
        for p in range(100, 160):
            cache.access(p)
            cache.access(p)
        assert 0.0 <= policy.target_t1 <= 8.0

    def test_ghost_hit_promotes_to_t2(self):
        cache = PageCache(2, ARCPolicy())
        cache.access("a")
        cache.access("b")
        cache.access("c")  # evicts "a" into a ghost list
        assert "a" not in cache
        cache.access("a")  # ghost hit: returns via T2
        assert "a" in cache

    def test_hit_promotes_t1_to_t2(self):
        p = ARCPolicy()
        p.bind(4)
        p.insert("x", 0)
        assert "x" in p._t1
        p.record_access("x", 1)
        assert "x" in p._t2 and "x" not in p._t1
