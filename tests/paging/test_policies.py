"""Contract tests applied uniformly to every replacement policy, plus
policy-specific behaviour tests for LRU/FIFO/MRU/CLOCK/LFU/Random."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import (
    POLICIES,
    ClockPolicy,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    MRUPolicy,
    PageCache,
    RandomPolicy,
    make_policy,
)

ALL_NAMES = sorted(POLICIES)


@pytest.fixture(params=ALL_NAMES)
def policy(request):
    p = make_policy(request.param)
    p.bind(8)
    return p


class TestPolicyContract:
    """Every policy must satisfy the resident-set contract."""

    def test_starts_empty(self, policy):
        assert len(policy) == 0
        assert 1 not in policy

    def test_insert_makes_resident(self, policy):
        policy.insert(1, 0)
        assert 1 in policy
        assert len(policy) == 1
        assert list(policy.resident()) == [1]

    def test_double_insert_raises(self, policy):
        policy.insert(1, 0)
        with pytest.raises(KeyError):
            policy.insert(1, 1)

    def test_evict_removes_some_resident(self, policy):
        for i in range(5):
            policy.insert(i, i)
        victim = policy.evict()
        assert victim in range(5)
        assert victim not in policy
        assert len(policy) == 4

    def test_evict_empty_raises(self, policy):
        with pytest.raises(LookupError):
            policy.evict()

    def test_remove(self, policy):
        policy.insert(1, 0)
        policy.insert(2, 1)
        policy.remove(1)
        assert 1 not in policy
        assert 2 in policy

    def test_remove_absent_raises(self, policy):
        with pytest.raises(KeyError):
            policy.remove(99)

    def test_record_access_keeps_resident(self, policy):
        policy.insert(1, 0)
        policy.record_access(1, 1)
        assert 1 in policy
        assert len(policy) == 1

    def test_drain_by_eviction(self, policy):
        keys = set(range(6))
        for i, k in enumerate(keys):
            policy.insert(k, i)
        evicted = {policy.evict() for _ in range(6)}
        assert evicted == keys
        assert len(policy) == 0

    def test_touch_equals_contains_plus_record(self, policy):
        """The hot-path primitive: ``touch`` must behave exactly like a
        membership probe followed by ``record_access`` on a hit, and be a
        no-op on a miss."""
        assert policy.touch(1, 0) is False
        assert len(policy) == 0  # a False return leaves the policy untouched
        policy.insert(1, 1)
        assert policy.touch(1, 2) is True
        assert 1 in policy and len(policy) == 1

    def test_touch_orders_like_record_access(self, policy):
        """Replaying hits through touch() must leave the same eviction
        order as the __contains__ + record_access path (LRU-sensitive)."""
        via_record = make_policy(policy.name)
        via_record.bind(8)
        for i in range(4):
            policy.insert(i, i)
            via_record.insert(i, i)
        for t, k in enumerate((0, 2, 0), start=4):
            assert policy.touch(k, t)
            assert k in via_record
            via_record.record_access(k, t)
        order_a = [policy.evict() for _ in range(4)]
        order_b = [via_record.evict() for _ in range(4)]
        if policy.name != "random":  # random evicts nondeterministically
            assert order_a == order_b


class TestMakePolicy:
    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("belady")

    def test_kwargs_forwarded(self):
        p = make_policy("random", seed=3)
        assert isinstance(p, RandomPolicy)


class TestLRU:
    def test_evicts_least_recent(self):
        p = LRUPolicy()
        for i in range(3):
            p.insert(i, i)
        p.record_access(0, 3)  # order now 1, 2, 0
        assert p.evict() == 1
        assert p.evict() == 2
        assert p.evict() == 0

    def test_sleator_tarjan_sequence(self):
        """LRU on cache size 3 over a classic sequence, fault count checked
        against the hand-computed value."""
        cache = PageCache(3, LRUPolicy())
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        faults = sum(0 if cache.access(p) else 1 for p in trace)
        assert faults == 10  # textbook LRU result for this trace


class TestFIFO:
    def test_evicts_first_in_despite_hits(self):
        p = FIFOPolicy()
        for i in range(3):
            p.insert(i, i)
        p.record_access(0, 3)  # must not save page 0
        assert p.evict() == 0

    def test_belady_anomaly_sequence(self):
        """FIFO exhibits Belady's anomaly: more frames can mean more faults."""
        trace = [3, 2, 1, 0, 3, 2, 4, 3, 2, 1, 0, 4]

        def faults(frames):
            cache = PageCache(frames, FIFOPolicy())
            return sum(0 if cache.access(p) else 1 for p in trace)

        assert faults(3) == 9
        assert faults(4) == 10  # the anomaly


class TestMRU:
    def test_evicts_most_recent(self):
        p = MRUPolicy()
        for i in range(3):
            p.insert(i, i)
        p.record_access(0, 3)
        assert p.evict() == 0

    def test_cyclic_scan_beats_lru(self):
        """On a cyclic scan one page larger than the cache, MRU hits and LRU
        faults on every access after warmup."""
        n = 8
        trace = list(range(n + 1)) * 10
        lru = PageCache(n, LRUPolicy())
        mru = PageCache(n, MRUPolicy())
        lru_faults = sum(0 if lru.access(p) else 1 for p in trace)
        mru_faults = sum(0 if mru.access(p) else 1 for p in trace)
        assert lru_faults == len(trace)  # LRU faults always
        assert mru_faults < len(trace) / 2


class TestClock:
    def test_second_chance(self):
        p = ClockPolicy()
        for i in range(3):
            p.insert(i, i)
        p.record_access(0, 3)  # page 0 gets a second chance
        victim = p.evict()
        assert victim != 0

    def test_approximates_lru_hit_rate(self):
        """CLOCK should land within a few percent of LRU on a skewed trace."""
        import numpy as np

        rng = np.random.default_rng(0)
        trace = (rng.zipf(1.5, 6000) % 200).tolist()
        lru = PageCache(50, LRUPolicy())
        clk = PageCache(50, ClockPolicy())
        lru_hits = sum(1 if lru.access(p) else 0 for p in trace)
        clk_hits = sum(1 if clk.access(p) else 0 for p in trace)
        assert abs(lru_hits - clk_hits) / len(trace) < 0.05


class TestLFU:
    def test_evicts_least_frequent(self):
        p = LFUPolicy()
        p.insert("a", 0)
        p.insert("b", 1)
        p.record_access("a", 2)
        p.record_access("a", 3)
        p.insert("c", 4)
        assert p.evict() in {"b", "c"}
        assert p.frequency("a") == 3

    def test_lru_tiebreak_within_frequency(self):
        p = LFUPolicy()
        p.insert("a", 0)
        p.insert("b", 1)
        assert p.evict() == "a"  # same freq 1; "a" is older

    def test_frequency_tracking(self):
        p = LFUPolicy()
        p.insert("x", 0)
        for t in range(5):
            p.record_access("x", t + 1)
        assert p.frequency("x") == 6

    def test_remove_cleans_buckets(self):
        p = LFUPolicy()
        p.insert("a", 0)
        p.record_access("a", 1)
        p.remove("a")
        assert len(p) == 0
        p.insert("b", 2)
        assert p.evict() == "b"


class TestRandom:
    def test_seeded_reproducibility(self):
        def run(seed):
            p = RandomPolicy(seed=seed)
            for i in range(10):
                p.insert(i, i)
            return [p.evict() for _ in range(10)]

        assert run(5) == run(5)

    def test_eviction_roughly_uniform(self):
        counts = {k: 0 for k in range(4)}
        for seed in range(400):
            p = RandomPolicy(seed=seed)
            for i in range(4):
                p.insert(i, i)
            counts[p.evict()] += 1
        assert min(counts.values()) > 50  # each key expects 100


@st.composite
def access_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    return draw(st.lists(st.integers(min_value=0, max_value=15), min_size=n, max_size=n))


class TestLRUAgainstReferenceModel:
    """Property test: dict/OrderedDict LRU matches a brute-force reference."""

    @given(access_sequences())
    @settings(max_examples=60)
    def test_matches_reference(self, trace):
        capacity = 4
        cache = PageCache(capacity, LRUPolicy())
        reference: list[int] = []  # most recent last
        for p in trace:
            hit = cache.access(p)
            ref_hit = p in reference
            assert hit == ref_hit
            if ref_hit:
                reference.remove(p)
            elif len(reference) >= capacity:
                reference.pop(0)
            reference.append(p)
            assert set(cache.resident()) == set(reference)


class TestStackProperty:
    """LRU and LFU are stack algorithms: a larger cache's resident set always
    contains a smaller cache's (no Belady anomaly)."""

    @given(access_sequences())
    @settings(max_examples=40)
    def test_lru_inclusion(self, trace):
        small = PageCache(3, LRUPolicy())
        large = PageCache(6, LRUPolicy())
        for p in trace:
            small.access(p)
            large.access(p)
            assert set(small.resident()) <= set(large.resident())

    @given(access_sequences())
    @settings(max_examples=40)
    def test_lru_fault_monotonicity(self, trace):
        def faults(c):
            cache = PageCache(c, LRUPolicy())
            return sum(0 if cache.access(p) else 1 for p in trace)

        assert faults(3) >= faults(5) >= faults(8)
