"""Tests for Belady's OPT and its optimality relative to online policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import (
    NEVER,
    BeladyOPT,
    FIFOPolicy,
    LRUPolicy,
    PageCache,
    compute_next_use,
)


class TestComputeNextUse:
    def test_simple(self):
        trace = [1, 2, 1, 3, 2]
        nxt = compute_next_use(trace)
        assert nxt[0] == 2  # 1 next at index 2
        assert nxt[1] == 4
        assert nxt[2] == NEVER
        assert nxt[3] == NEVER
        assert nxt[4] == NEVER

    def test_empty(self):
        assert len(compute_next_use([])) == 0

    def test_all_same(self):
        nxt = compute_next_use([7, 7, 7])
        assert list(nxt[:-1]) == [1, 2]
        assert nxt[-1] == NEVER


def simulate(policy_factory, trace, capacity):
    if policy_factory is BeladyOPT:
        cache = PageCache(capacity, BeladyOPT(trace))
    else:
        cache = PageCache(capacity, policy_factory())
    return sum(0 if cache.access(p) else 1 for p in trace)


class TestBeladyOPT:
    def test_textbook_sequence(self):
        """Classic OPT example: 9 faults on this trace with 3 frames... verify
        by hand: trace below gives 7 faults under OPT."""
        trace = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2]
        assert simulate(BeladyOPT, trace, 3) == 7

    def test_never_worse_than_lru_and_fifo(self):
        rng = np.random.default_rng(1)
        trace = (rng.zipf(1.3, 3000) % 64).tolist()
        opt = simulate(BeladyOPT, trace, 16)
        assert opt <= simulate(LRUPolicy, trace, 16)
        assert opt <= simulate(FIFOPolicy, trace, 16)

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=150))
    @settings(max_examples=50)
    def test_optimality_property(self, trace):
        """OPT fault count lower-bounds LRU and FIFO on arbitrary traces."""
        capacity = 3
        opt = simulate(BeladyOPT, trace, capacity)
        assert opt <= simulate(LRUPolicy, trace, capacity)
        assert opt <= simulate(FIFOPolicy, trace, capacity)

    def test_compulsory_misses_only_when_cache_big_enough(self):
        trace = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        assert simulate(BeladyOPT, trace, 3) == 3  # only cold misses

    def test_out_of_trace_access_raises(self):
        trace = [1, 2]
        cache = PageCache(2, BeladyOPT(trace))
        cache.access(1)
        cache.access(2)
        with pytest.raises(IndexError):
            cache.access(3)

    def test_lru_competitive_ratio_bound(self):
        """Sleator-Tarjan: LRU faults <= k/(k-h+1) * OPT faults (+k) when LRU
        has k frames and OPT has h <= k frames."""
        rng = np.random.default_rng(2)
        trace = (rng.integers(0, 40, 4000)).tolist()
        k, h = 20, 10
        lru = simulate(LRUPolicy, trace, k)
        opt = simulate(BeladyOPT, trace, h)
        assert lru <= (k / (k - h + 1)) * opt + k
