"""Tests for Mattson stack distances and the one-pass LRU miss curve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import COLD, lru_miss_curve, stack_distances
from repro.paging import LRUPolicy, PageCache


class TestStackDistances:
    def test_cold_misses(self):
        d = stack_distances([1, 2, 3])
        assert list(d) == [COLD, COLD, COLD]

    def test_immediate_reuse(self):
        d = stack_distances([1, 1])
        assert d[1] == 0  # zero distinct others in between

    def test_textbook_example(self):
        d = stack_distances([1, 2, 3, 2, 1])
        assert d[3] == 1  # only page 3 since previous access to 2
        assert d[4] == 2  # pages 2 and 3 since previous access to 1

    def test_repeated_page_not_double_counted(self):
        d = stack_distances([1, 2, 2, 2, 1])
        assert d[4] == 1  # page 2 touched thrice but counts once

    def test_empty(self):
        assert len(stack_distances([])) == 0


class TestLRUMissCurve:
    def test_matches_pagecache_exactly(self):
        rng = np.random.default_rng(0)
        trace = rng.zipf(1.3, 4000) % 80
        capacities = [1, 2, 4, 8, 16, 32, 64]
        curve = lru_miss_curve(trace, capacities)
        for c in capacities:
            cache = PageCache(c, LRUPolicy())
            expected = sum(0 if cache.access(int(p)) else 1 for p in trace)
            assert curve[c] == expected, f"mismatch at capacity {c}"

    def test_monotone_nonincreasing(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 50, 3000)
        curve = lru_miss_curve(trace, range(1, 60))
        values = [curve[c] for c in sorted(curve)]
        assert values == sorted(values, reverse=True)

    def test_big_cache_only_cold_misses(self):
        trace = [1, 2, 3, 1, 2, 3, 1]
        curve = lru_miss_curve(trace, [10])
        assert curve[10] == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            lru_miss_curve([1, 2], [0])

    @given(st.lists(st.integers(0, 12), min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_property_matches_simulation(self, trace):
        curve = lru_miss_curve(trace, [3])
        cache = PageCache(3, LRUPolicy())
        expected = sum(0 if cache.access(p) else 1 for p in trace)
        assert curve[3] == expected
