"""Tests for the empirical competitive-analysis helpers."""

import numpy as np
import pytest

from repro.analysis import competitive_ratio, sleator_tarjan_bound
from repro.paging import LRUPolicy


class TestSleatorTarjanBound:
    def test_equal_capacities(self):
        assert sleator_tarjan_bound(8, 8) == 8.0

    def test_double_capacity(self):
        # k=2h gives ratio < 2: the resource-augmentation magic
        assert sleator_tarjan_bound(20, 10) == pytest.approx(20 / 11)

    def test_validation(self):
        with pytest.raises(ValueError):
            sleator_tarjan_bound(4, 5)
        with pytest.raises(ValueError):
            sleator_tarjan_bound(4, 0)


class TestCompetitiveRatio:
    def trace(self, seed=0, n=3000):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 60, n).tolist()

    def test_ratio_at_least_one(self):
        res = competitive_ratio(self.trace(), "lru", 16)
        assert res.ratio >= 1.0
        assert res.policy == "lru"
        assert res.policy_capacity == res.opt_capacity == 16

    def test_accepts_policy_instance(self):
        res = competitive_ratio(self.trace(), LRUPolicy(), 16)
        assert res.policy == "lru"

    def test_policy_kwargs_forwarded(self):
        res = competitive_ratio(self.trace(), "random", 16, seed=3)
        assert res.ratio >= 1.0

    def test_augmented_lru_within_sleator_tarjan(self):
        """LRU with k frames vs OPT with h: faults <= k/(k-h+1)·OPT + k."""
        trace = self.trace(seed=2, n=5000)
        k, h = 24, 12
        res = competitive_ratio(trace, "lru", k, opt_capacity=h)
        bound = sleator_tarjan_bound(k, h)
        assert res.policy_faults <= bound * res.opt_faults + k

    def test_augmentation_improves_ratio(self):
        trace = self.trace(seed=3, n=5000)
        plain = competitive_ratio(trace, "lru", 12)
        augmented = competitive_ratio(trace, "lru", 24, opt_capacity=12)
        assert augmented.ratio <= plain.ratio

    def test_no_opt_faults_edge(self):
        from repro.analysis import CompetitiveResult

        r = CompetitiveResult("x", 4, 4, policy_faults=0, opt_faults=0)
        assert r.ratio == 1.0
        r = CompetitiveResult("x", 4, 4, policy_faults=5, opt_faults=0)
        assert r.ratio == float("inf")
