"""Tests for trace characterization."""

import numpy as np
import pytest

from repro.analysis import describe_trace, huge_page_density, sequentiality
from repro.workloads import SequentialWorkload, StridedWorkload, UniformWorkload, ZipfWorkload


class TestSequentiality:
    def test_pure_scan(self):
        assert sequentiality(SequentialWorkload(1000).generate(500)) == 1.0

    def test_random_near_zero(self):
        trace = UniformWorkload(1 << 14).generate(5000, seed=0)
        assert sequentiality(trace) < 0.01

    def test_short_traces(self):
        assert sequentiality([5]) == 0.0
        assert sequentiality([]) == 0.0


class TestHugePageDensity:
    def test_dense_scan(self):
        assert huge_page_density(np.arange(64), 64) == 1.0

    def test_sparse_stride(self):
        trace = StridedWorkload(1 << 12, stride=64).generate(32)
        assert huge_page_density(trace, 64) == pytest.approx(1 / 64)

    def test_empty(self):
        assert huge_page_density([], 8) == 0.0


class TestDescribeTrace:
    def test_empty_trace(self):
        d = describe_trace([])
        assert d["length"] == 0 and d["footprint"] == 0

    def test_scan(self):
        d = describe_trace(np.arange(1000), huge_page_size=64)
        assert d["footprint"] == 1000
        assert d["reuse_ratio"] == 1.0
        assert d["sequentiality"] == 1.0
        assert d["huge_page_density"] > 0.9
        assert d["address_span"] == 1000

    def test_zipf_top_share(self):
        skew = describe_trace(ZipfWorkload(1 << 12, s=1.3).generate(20_000, seed=0))
        flat = describe_trace(UniformWorkload(1 << 12).generate(20_000, seed=0))
        assert skew["top_share"] > 3 * flat["top_share"]

    def test_predicts_huge_page_friendliness(self):
        """High huge-page density predicts TLB coverage gains, low predicts
        amplification — check the statistic orders two workloads the same
        way the simulator does."""
        from repro.mmu import PhysicalHugePageMM

        dense = SequentialWorkload(1 << 12).generate(8000)
        sparse = StridedWorkload(1 << 14, stride=64).generate(8000)
        d_dense = describe_trace(dense, huge_page_size=64)["huge_page_density"]
        d_sparse = describe_trace(sparse, huge_page_size=64)["huge_page_density"]
        assert d_dense > d_sparse

        def amplification(trace):
            h1 = PhysicalHugePageMM(32, 1 << 10, huge_page_size=1)
            h64 = PhysicalHugePageMM(32, 1 << 10, huge_page_size=64)
            h1.run(trace)
            h64.run(trace)
            return h64.ledger.ios / max(1, h1.ledger.ios)

        assert amplification(dense) < amplification(sparse)
