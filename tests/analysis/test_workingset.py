"""Tests for Denning working-set statistics."""

import numpy as np
import pytest

from repro.analysis import average_working_set, working_set_profile, working_set_sizes


class TestWorkingSetSizes:
    def test_simple_window(self):
        sizes = working_set_sizes([1, 2, 1, 3], tau=2)
        # windows: [1], [1,2], [2,1], [1,3]
        assert list(sizes) == [1, 2, 2, 2]

    def test_window_one(self):
        sizes = working_set_sizes([5, 5, 6], tau=1)
        assert list(sizes) == [1, 1, 1]

    def test_all_distinct(self):
        sizes = working_set_sizes(list(range(10)), tau=4)
        assert list(sizes[4:]) == [4] * 6

    def test_validation(self):
        with pytest.raises(ValueError):
            working_set_sizes([1], tau=0)

    def test_brute_force_agreement(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 10, 200).tolist()
        tau = 7
        sizes = working_set_sizes(trace, tau)
        for t in range(len(trace)):
            window = trace[max(0, t - tau + 1) : t + 1]
            assert sizes[t] == len(set(window)), f"t={t}"


class TestAverages:
    def test_average_steady_state(self):
        trace = [1, 2] * 100
        assert average_working_set(trace, 4) == 2.0

    def test_profile_monotone(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 100, 3000)
        profile = working_set_profile(trace, [1, 4, 16, 64])
        values = [profile[t] for t in sorted(profile)]
        assert values == sorted(values)

    def test_profile_saturates_at_footprint(self):
        trace = ([1, 2, 3] * 100)
        profile = working_set_profile(trace, [100])
        assert profile[100] == pytest.approx(3.0)

    def test_short_trace(self):
        assert average_working_set([1], 5) == 1.0
