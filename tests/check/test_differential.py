"""Differential-checker tests: parity pins, divergence pins, golden runs.

The parity pins encode *why* the paper's constructions are comparable:

* decoupling at ``h_max = 1`` degenerates to classical base-page paging —
  same TLB keys, same LRU, same capacities — so the per-access streams
  must match exactly (given the allocator placed every page);
* the Section 8 hybrid at chunk 1 *is* plain decoupling, bit for bit;
* physical huge pages at ``h > 1`` must diverge from base pages — if the
  differential harness cannot see that, it is not looking.
"""

import pytest

from repro.check import (
    ROW_FIELDS,
    diff_against_golden,
    diff_mms,
    first_divergence,
    load_golden,
    record_stream,
    save_golden,
)
from repro.mmu import BasePageMM, DecoupledMM, HybridMM, PhysicalHugePageMM
from repro.workloads import UniformWorkload, ZipfWorkload

TLB = 64


class TestParityPins:
    def test_decoupled_hmax1_matches_base_page(self):
        """At h_max = 1 decoupling's TLB behaviour equals classical paging's;
        with zero paging failures the IO stream matches too."""
        z = DecoupledMM(TLB, 4096, hmax=1, seed=0)
        # same RAM budget the scheme actually grants itself: (1-δ)P pages
        base = BasePageMM(TLB, z.params.max_pages)
        trace = UniformWorkload(512).generate(6000, seed=1)
        report = diff_mms(base, z, trace, warmup=1000)
        assert z.ledger.paging_failures == 0, "pin assumes a failure-free run"
        assert report.identical, report.describe()
        assert len(report.left_rows) == 5000

    def test_decoupled_hmax1_tlb_parity_survives_failures(self):
        """Even when the allocator fails placements (dense working set),
        the TLB-facing fields still match base-page paging exactly —
        failures cost IOs, never TLB behaviour."""
        z = DecoupledMM(TLB, 1024, hmax=1, seed=3)
        base = BasePageMM(TLB, z.params.max_pages)
        trace = ZipfWorkload(1 << 12, s=0.6).generate(6000, seed=3)
        report = diff_mms(
            base, z, trace, warmup=1000, fields=("t", "vpn", "tlb_misses")
        )
        assert report.identical, report.describe()

    def test_hybrid_chunk1_is_plain_decoupling(self):
        trace = ZipfWorkload(1 << 12, s=1.0).generate(5000, seed=5)
        hybrid = HybridMM(TLB, 2048, 1, seed=9)
        plain = DecoupledMM(TLB, 2048, seed=9)
        report = diff_mms(hybrid, plain, trace, warmup=500)
        assert report.identical, report.describe()

    def test_huge_pages_must_diverge_from_base_pages(self):
        trace = ZipfWorkload(1 << 12, s=1.0).generate(4000, seed=2)
        base = BasePageMM(TLB, 1024)
        huge = PhysicalHugePageMM(TLB, 1024, huge_page_size=16)
        report = diff_mms(base, huge, trace)
        assert not report.identical
        # the split is behavioural (TLB reach / IO amplification), and the
        # report pinpoints the first differing access, not just "differs"
        assert report.divergence.fields != ("length",)
        assert "first divergence at row" in report.describe()


class TestFirstDivergence:
    ROW_A = (0, 7, 1, 1, 0, 0)

    def test_identical_streams(self):
        assert first_divergence([self.ROW_A], [self.ROW_A]) is None

    def test_field_mismatch_is_located(self):
        other = (0, 7, 1, 2, 0, 0)
        div = first_divergence([self.ROW_A, self.ROW_A], [self.ROW_A, other])
        assert div.index == 1
        assert div.fields == ("io_pages",)
        assert "io_pages: 1 vs 2" in div.describe()

    def test_length_mismatch(self):
        div = first_divergence([self.ROW_A, self.ROW_A], [self.ROW_A])
        assert div.index == 1
        assert div.fields == ("length",)
        assert div.right is None

    def test_field_subset_ignores_other_columns(self):
        other = (0, 7, 1, 99, 0, 0)  # io differs, tlb agrees
        assert (
            first_divergence([self.ROW_A], [other], fields=("t", "vpn", "tlb_misses"))
            is None
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            first_divergence([self.ROW_A], [self.ROW_A], fields=("nope",))


class TestGoldenRuns:
    def _trace(self):
        return ZipfWorkload(1 << 10, s=1.0).generate(2000, seed=4)

    def test_roundtrip_and_self_diff(self, tmp_path):
        trace = self._trace()
        rows = record_stream(BasePageMM(TLB, 512), trace, warmup=500)
        path = save_golden(
            tmp_path / "base.jsonl", rows, algorithm="base-page", meta={"seed": 4}
        )
        header, loaded = load_golden(path)
        assert header["algorithm"] == "base-page"
        assert header["seed"] == 4
        assert header["fields"] == list(ROW_FIELDS)
        assert loaded == rows
        report = diff_against_golden(BasePageMM(TLB, 512), trace, path, warmup=500)
        assert report.identical, report.describe()
        assert report.right_name == "golden:base-page"

    def test_tampered_golden_is_detected(self, tmp_path):
        trace = self._trace()
        rows = record_stream(BasePageMM(TLB, 512), trace)
        tampered = list(rows)
        victim = list(tampered[37])
        victim[2] ^= 1  # flip the tlb_miss bit of one access
        tampered[37] = tuple(victim)
        path = save_golden(tmp_path / "bad.jsonl", tampered, algorithm="base-page")
        report = diff_against_golden(BasePageMM(TLB, 512), trace, path)
        assert not report.identical
        assert report.divergence.index == 37
        assert report.divergence.fields == ("tlb_misses",)

    def test_rejects_non_golden_files(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"kind": "bench_sweep"}\n')
        with pytest.raises(ValueError, match="not a golden stream"):
            load_golden(path)
        (tmp_path / "empty.jsonl").write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_golden(tmp_path / "empty.jsonl")
