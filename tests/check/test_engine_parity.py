"""Engine parity on the committed golden streams.

CI's engine-parity job runs this module under both numpy 1.26 and 2.x.
For every committed golden cell (registry algorithm × workload) it
replays the identical trace on the object and array engines and fails on
any counter divergence; the array-engine ledger is additionally pinned
against the committed per-access rows, aggregated to ledger totals (the
array engine emits no events, so totals are the strongest golden check
it can face).

The multi-tenant goldens (``tests/tenancy/goldens.py``) extend the same
pinning to ASID-striped runs: the object engine must reproduce the
committed stream row for row, and the array engine — which may decline
multi-tenant segments and silently fall back to the object replay — must
land on exactly the golden totals, proving the fallback is silent *and*
correct.
"""

import pytest

from repro.check import (
    StreamTap,
    diff_engine_ledgers,
    first_divergence,
    golden_totals,
    load_golden,
    record_stream,
)
from repro.mmu.registry import make_mm
from repro.obs import NULL_PROBE

from ..tenancy.goldens import build_sim
from ..tenancy.goldens import golden_cases as mt_golden_cases
from .goldens import (
    RAM_PAGES,
    SEED,
    TLB_ENTRIES,
    WARMUP,
    build_failure_mm,
    build_failure_trace,
    build_trace,
    failure_cases,
    golden_cases,
)

CASES = list(golden_cases())
CASE_IDS = [f"{algorithm}-{workload}" for algorithm, workload, _ in CASES]


@pytest.mark.parametrize(("algorithm", "workload", "path"), CASES, ids=CASE_IDS)
class TestEngineParity:
    def test_engines_agree_on_full_ledger(self, algorithm, workload, path):
        def factory():
            return make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED)

        report = diff_engine_ledgers(
            factory, build_trace(workload), warmup=WARMUP
        )
        assert report.identical, (
            f"{algorithm}/{workload}: {report.describe()}"
        )

    def test_array_ledger_matches_golden_totals(self, algorithm, workload, path):
        _, rows = load_golden(path)
        totals = golden_totals(rows)
        mm = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED, engine="array")
        trace = build_trace(workload)
        mm.run(trace[:WARMUP])
        evictions0 = mm._eviction_count()
        mm.reset_stats()
        ledger = mm.run(trace[WARMUP:])
        assert ledger.accesses == totals["accesses"]
        assert ledger.tlb_misses == totals["tlb_misses"]
        assert ledger.ios == totals["ios"]
        assert ledger.decoding_misses == totals["decoding_misses"]
        assert mm._eviction_count() - evictions0 == totals["evictions"]


MT_CASES = list(mt_golden_cases())
MT_IDS = [f"{algorithm}-t{k}" for algorithm, k, _ in MT_CASES]


@pytest.mark.parametrize(("algorithm", "k", "path"), MT_CASES, ids=MT_IDS)
class TestMultiTenantEngineParity:
    def test_object_engine_matches_golden_stream(self, algorithm, k, path):
        _, golden_rows = load_golden(path)
        sim = build_sim(algorithm, k, engine="object")
        tap = StreamTap()
        sim.mm.probe = tap
        try:
            sim.run()
        finally:
            sim.mm.probe = NULL_PROBE
        div = first_divergence(tap.as_tuples(), golden_rows)
        assert div is None, f"{algorithm}/t{k}: {div.describe()}"

    def test_array_engine_falls_back_to_golden_totals(self, algorithm, k, path):
        # no probe here: an attached tap would itself force the object
        # path, hiding exactly the fallback this test pins
        _, golden_rows = load_golden(path)
        totals = golden_totals(golden_rows)
        sim = build_sim(algorithm, k, engine="array")
        result = sim.run()
        ledger = result.ledger
        assert ledger.accesses == totals["accesses"]
        assert ledger.tlb_misses == totals["tlb_misses"]
        assert ledger.ios == totals["ios"]
        assert ledger.decoding_misses == totals["decoding_misses"]
        assert sim.mm._eviction_count() == totals["evictions"]
        result.verify_counter_sums()

    def test_engines_agree_on_tenant_ledgers(self, algorithm, k, path):
        res_obj = build_sim(algorithm, k, engine="object").run()
        res_arr = build_sim(algorithm, k, engine="array").run()
        assert res_obj.ledger.as_dict() == res_arr.ledger.as_dict()
        assert res_obj.switches == res_arr.switches
        assert [e.dropped for e in res_obj.shootdowns] == [
            e.dropped for e in res_arr.shootdowns
        ]
        for a, b in zip(res_obj.records, res_arr.records):
            assert a.ledger.snapshot() == b.ledger.snapshot(), a.name


FAIL_CASES = list(failure_cases())
FAIL_IDS = [algorithm for algorithm, _ in FAIL_CASES]


@pytest.mark.parametrize(("algorithm", "path"), FAIL_CASES, ids=FAIL_IDS)
class TestPagingFailureParity:
    """Differential paging-failure accounting.

    These cells are undersized on purpose so the stream fails mid-run
    (at least twice — pinned at regen time). The array engine must bail
    out of its batch kernel at the exact failing access with a ledger
    bit-identical to the object engine's, whether the failing segment is
    cold or resumes warm state, and the full-run stream must stay on the
    committed golden.
    """

    def test_object_engine_matches_golden_stream(self, algorithm, path):
        header, golden_rows = load_golden(path)
        mm = build_failure_mm(algorithm)
        rows = record_stream(mm, build_failure_trace(algorithm))
        div = first_divergence(rows, golden_rows)
        assert div is None, f"{algorithm}: {div.describe()}"
        assert mm.ledger.as_dict() == header["ledger"]
        assert header["ledger"]["paging_failures"] >= 2

    def test_cold_segment_bails_at_the_failing_access(self, algorithm, path):
        # truncate the trace right after the first failure: the array
        # engine's bailout ledger at that access must equal the object
        # engine's, field for field (accesses/tlb_hits/ios/... all of it)
        header, _ = load_golden(path)
        first_fail = header["failures"][0]
        trace = build_failure_trace(algorithm)[: first_fail + 1]
        obj = build_failure_mm(algorithm, engine="object")
        arr = build_failure_mm(algorithm, engine="array")
        obj.run(trace)
        arr.run(trace)
        assert obj.ledger.paging_failures == 1
        assert obj.ledger.as_dict() == arr.ledger.as_dict()

    def test_warm_resumed_segment_bails_identically(self, algorithm, path):
        # warm both engines up to the pre-failure split, reset counters,
        # then resume into the failure: the measurement-phase ledgers
        # must agree at the exact failing access despite the warm state
        header, _ = load_golden(path)
        first_fail = header["failures"][0]
        warm = header["warm_split"]
        assert 0 < warm < first_fail
        trace = build_failure_trace(algorithm)
        ledgers = {}
        for engine in ("object", "array"):
            mm = build_failure_mm(algorithm, engine=engine)
            mm.run(trace[:warm])
            assert mm.ledger.paging_failures == 0
            mm.reset_stats()
            mm.run(trace[warm : first_fail + 1])
            ledgers[engine] = mm.ledger.as_dict()
        assert ledgers["object"]["paging_failures"] == 1
        assert ledgers["object"] == ledgers["array"]

    def test_array_ledger_matches_golden_totals(self, algorithm, path):
        header, rows = load_golden(path)
        totals = golden_totals(rows)
        mm = build_failure_mm(algorithm, engine="array")
        ledger = mm.run(build_failure_trace(algorithm))
        assert ledger.accesses == totals["accesses"]
        assert ledger.tlb_misses == totals["tlb_misses"]
        assert ledger.ios == totals["ios"]
        assert ledger.decoding_misses == totals["decoding_misses"]
        assert ledger.as_dict() == header["ledger"]
