"""Engine parity on the committed golden streams.

CI's engine-parity job runs this module under both numpy 1.26 and 2.x.
For every committed golden cell (registry algorithm × workload) it
replays the identical trace on the object and array engines and fails on
any counter divergence; the array-engine ledger is additionally pinned
against the committed per-access rows, aggregated to ledger totals (the
array engine emits no events, so totals are the strongest golden check
it can face).
"""

import pytest

from repro.check import diff_engine_ledgers, golden_totals, load_golden
from repro.mmu.registry import make_mm

from .goldens import (
    RAM_PAGES,
    SEED,
    TLB_ENTRIES,
    WARMUP,
    build_trace,
    golden_cases,
)

CASES = list(golden_cases())
CASE_IDS = [f"{algorithm}-{workload}" for algorithm, workload, _ in CASES]


@pytest.mark.parametrize(("algorithm", "workload", "path"), CASES, ids=CASE_IDS)
class TestEngineParity:
    def test_engines_agree_on_full_ledger(self, algorithm, workload, path):
        def factory():
            return make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED)

        report = diff_engine_ledgers(
            factory, build_trace(workload), warmup=WARMUP
        )
        assert report.identical, (
            f"{algorithm}/{workload}: {report.describe()}"
        )

    def test_array_ledger_matches_golden_totals(self, algorithm, workload, path):
        _, rows = load_golden(path)
        totals = golden_totals(rows)
        mm = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED, engine="array")
        trace = build_trace(workload)
        mm.run(trace[:WARMUP])
        evictions0 = mm._eviction_count()
        mm.reset_stats()
        ledger = mm.run(trace[WARMUP:])
        assert ledger.accesses == totals["accesses"]
        assert ledger.tlb_misses == totals["tlb_misses"]
        assert ledger.ios == totals["ios"]
        assert ledger.decoding_misses == totals["decoding_misses"]
        assert mm._eviction_count() - evictions0 == totals["evictions"]
