"""Engine parity on the committed golden streams.

CI's engine-parity job runs this module under both numpy 1.26 and 2.x.
For every committed golden cell (registry algorithm × workload) it
replays the identical trace on the object and array engines and fails on
any counter divergence; the array-engine ledger is additionally pinned
against the committed per-access rows, aggregated to ledger totals (the
array engine emits no events, so totals are the strongest golden check
it can face).

The multi-tenant goldens (``tests/tenancy/goldens.py``) extend the same
pinning to ASID-striped runs: the object engine must reproduce the
committed stream row for row, and the array engine — which may decline
multi-tenant segments and silently fall back to the object replay — must
land on exactly the golden totals, proving the fallback is silent *and*
correct.
"""

import pytest

from repro.check import (
    StreamTap,
    diff_engine_ledgers,
    first_divergence,
    golden_totals,
    load_golden,
)
from repro.mmu.registry import make_mm
from repro.obs import NULL_PROBE

from ..tenancy.goldens import build_sim
from ..tenancy.goldens import golden_cases as mt_golden_cases
from .goldens import (
    RAM_PAGES,
    SEED,
    TLB_ENTRIES,
    WARMUP,
    build_trace,
    golden_cases,
)

CASES = list(golden_cases())
CASE_IDS = [f"{algorithm}-{workload}" for algorithm, workload, _ in CASES]


@pytest.mark.parametrize(("algorithm", "workload", "path"), CASES, ids=CASE_IDS)
class TestEngineParity:
    def test_engines_agree_on_full_ledger(self, algorithm, workload, path):
        def factory():
            return make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED)

        report = diff_engine_ledgers(
            factory, build_trace(workload), warmup=WARMUP
        )
        assert report.identical, (
            f"{algorithm}/{workload}: {report.describe()}"
        )

    def test_array_ledger_matches_golden_totals(self, algorithm, workload, path):
        _, rows = load_golden(path)
        totals = golden_totals(rows)
        mm = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED, engine="array")
        trace = build_trace(workload)
        mm.run(trace[:WARMUP])
        evictions0 = mm._eviction_count()
        mm.reset_stats()
        ledger = mm.run(trace[WARMUP:])
        assert ledger.accesses == totals["accesses"]
        assert ledger.tlb_misses == totals["tlb_misses"]
        assert ledger.ios == totals["ios"]
        assert ledger.decoding_misses == totals["decoding_misses"]
        assert mm._eviction_count() - evictions0 == totals["evictions"]


MT_CASES = list(mt_golden_cases())
MT_IDS = [f"{algorithm}-t{k}" for algorithm, k, _ in MT_CASES]


@pytest.mark.parametrize(("algorithm", "k", "path"), MT_CASES, ids=MT_IDS)
class TestMultiTenantEngineParity:
    def test_object_engine_matches_golden_stream(self, algorithm, k, path):
        _, golden_rows = load_golden(path)
        sim = build_sim(algorithm, k, engine="object")
        tap = StreamTap()
        sim.mm.probe = tap
        try:
            sim.run()
        finally:
            sim.mm.probe = NULL_PROBE
        div = first_divergence(tap.as_tuples(), golden_rows)
        assert div is None, f"{algorithm}/t{k}: {div.describe()}"

    def test_array_engine_falls_back_to_golden_totals(self, algorithm, k, path):
        # no probe here: an attached tap would itself force the object
        # path, hiding exactly the fallback this test pins
        _, golden_rows = load_golden(path)
        totals = golden_totals(golden_rows)
        sim = build_sim(algorithm, k, engine="array")
        result = sim.run()
        ledger = result.ledger
        assert ledger.accesses == totals["accesses"]
        assert ledger.tlb_misses == totals["tlb_misses"]
        assert ledger.ios == totals["ios"]
        assert ledger.decoding_misses == totals["decoding_misses"]
        assert sim.mm._eviction_count() == totals["evictions"]
        result.verify_counter_sums()

    def test_engines_agree_on_tenant_ledgers(self, algorithm, k, path):
        res_obj = build_sim(algorithm, k, engine="object").run()
        res_arr = build_sim(algorithm, k, engine="array").run()
        assert res_obj.ledger.as_dict() == res_arr.ledger.as_dict()
        assert res_obj.switches == res_arr.switches
        assert [e.dropped for e in res_obj.shootdowns] == [
            e.dropped for e in res_arr.shootdowns
        ]
        for a, b in zip(res_obj.records, res_arr.records):
            assert a.ledger.snapshot() == b.ledger.snapshot(), a.name
