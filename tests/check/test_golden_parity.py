"""Golden-run differential parity for the hot-loop rewrite.

Two nets, both over every registry algorithm:

* **Golden streams** — the committed fixtures under ``tests/data/golden``
  were recorded before the batched/vectorized run paths landed; replaying
  the identical cell must produce a bit-identical per-access event stream
  (the diff reports the exact access index of any drift).
* **Probed vs unprobed** — attaching a probe forces the original
  per-access path, so the final ledgers of a probed and an unprobed run
  must agree exactly; this is what pins the batched fast paths (which the
  streams, being probe-recorded, cannot see).
"""

import dataclasses

import pytest

from repro.check import first_divergence, load_golden, record_stream
from repro.mmu.registry import MM_NAMES
from repro.obs import TraceRecorder
from repro.sim import simulate

from .goldens import (
    ACCESSES,
    SEED,
    TLB_ENTRIES,
    WARMUP,
    WORKLOADS,
    build_mm,
    build_trace,
    golden_cases,
)

CASES = list(golden_cases())
CASE_IDS = [f"{algorithm}-{workload}" for algorithm, workload, _ in CASES]


@pytest.mark.parametrize(("algorithm", "workload", "path"), CASES, ids=CASE_IDS)
class TestGoldenStreams:
    def test_fixture_exists_for_cell(self, algorithm, workload, path):
        assert path.is_file(), (
            f"missing golden fixture {path.name}; regenerate with "
            "`PYTHONPATH=src python -m tests.check.goldens` (only when "
            "behaviour is supposed to change)"
        )

    def test_header_matches_cell_geometry(self, algorithm, workload, path):
        header, rows = load_golden(path)
        assert header["algorithm"] == algorithm
        assert header["workload"] == workload
        assert header["tlb_entries"] == TLB_ENTRIES
        assert header["seed"] == SEED
        assert len(rows) == ACCESSES - WARMUP

    def test_replay_is_bit_identical(self, algorithm, workload, path):
        _, golden_rows = load_golden(path)
        fresh = record_stream(build_mm(algorithm), build_trace(workload),
                              warmup=WARMUP)
        divergence = first_divergence(golden_rows, fresh)
        assert divergence is None, (
            f"{algorithm}/{workload} drifted from the golden stream: "
            f"{divergence}"
        )


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("algorithm", MM_NAMES)
class TestProbedUnprobedParity:
    def test_ledgers_agree(self, algorithm, workload):
        trace = build_trace(workload)

        unprobed = build_mm(algorithm)
        fast_ledger = unprobed.run(trace)

        probed = build_mm(algorithm)
        slow_ledger = simulate(probed, trace, probe=TraceRecorder(capacity=16))

        assert dataclasses.asdict(fast_ledger) == dataclasses.asdict(slow_ledger)
