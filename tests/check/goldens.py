"""Golden-stream fixtures pinning pre-optimization hot-loop behavior.

One golden JSONL per (registry algorithm × workload) cell, recorded with
:func:`repro.check.record_stream` and committed under ``tests/data/golden``.
The parity suite (``test_golden_parity.py``) replays the identical cell and
diffs the fresh stream against the pinned one — any behavioural drift in
the per-access event stream (TLB misses, IOs, decoding misses, evictions)
fails with the exact access index where behaviour split.

The fixtures were generated *before* the hot-loop throughput rewrite, so
they prove the optimized loops are bit-identical to the original
per-access semantics. Regenerate (only when behaviour is *supposed* to
change, bumping this file's history) with::

    PYTHONPATH=src python -m tests.check.goldens
"""

from __future__ import annotations

from pathlib import Path

from repro.mmu.registry import MM_NAMES, make_mm
from repro.workloads import MarkovPhaseWorkload, UniformWorkload, ZipfWorkload

__all__ = ["GOLDEN_DIR", "WORKLOADS", "golden_cases", "build_trace", "build_mm"]

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "golden"

#: fixed cell geometry — small enough to replay in milliseconds, large
#: enough that every algorithm faults, evicts, and (for THP) promotes.
VA_PAGES = 4096
TLB_ENTRIES = 64
RAM_PAGES = 1024
ACCESSES = 2000
WARMUP = 800
SEED = 0

WORKLOADS = ("zipf", "uniform", "markov")


def build_trace(workload: str):
    """The deterministic trace for one golden cell."""
    if workload == "zipf":
        wl = ZipfWorkload(VA_PAGES, s=1.0)
    elif workload == "uniform":
        wl = UniformWorkload(VA_PAGES)
    elif workload == "markov":
        wl = MarkovPhaseWorkload(
            [ZipfWorkload(VA_PAGES, s=1.2), UniformWorkload(VA_PAGES)],
            mean_dwell=300,
        )
    else:
        raise ValueError(f"unknown golden workload {workload!r}")
    return wl.generate(ACCESSES, seed=SEED)


def build_mm(algorithm: str):
    """A fresh registry algorithm for one golden cell."""
    return make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED)


def golden_cases():
    """Every (algorithm, workload, golden path) triple, in test order."""
    for algorithm in MM_NAMES:
        for workload in WORKLOADS:
            name = f"{algorithm.replace('+', '_')}__{workload}.jsonl"
            yield algorithm, workload, GOLDEN_DIR / name


def regenerate() -> None:
    from repro.check import record_stream, save_golden

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for algorithm, workload, path in golden_cases():
        mm = build_mm(algorithm)
        rows = record_stream(mm, build_trace(workload), warmup=WARMUP)
        save_golden(
            path,
            rows,
            algorithm=algorithm,
            meta={
                "workload": workload,
                "va_pages": VA_PAGES,
                "tlb_entries": TLB_ENTRIES,
                "ram_pages": RAM_PAGES,
                "accesses": ACCESSES,
                "warmup": WARMUP,
                "seed": SEED,
            },
        )
        print(f"wrote {path.name}: {len(rows)} rows")


if __name__ == "__main__":
    regenerate()
