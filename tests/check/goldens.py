"""Golden-stream fixtures pinning pre-optimization hot-loop behavior.

One golden JSONL per (registry algorithm × workload) cell, recorded with
:func:`repro.check.record_stream` and committed under ``tests/data/golden``.
The parity suite (``test_golden_parity.py``) replays the identical cell and
diffs the fresh stream against the pinned one — any behavioural drift in
the per-access event stream (TLB misses, IOs, decoding misses, evictions)
fails with the exact access index where behaviour split.

The fixtures were generated *before* the hot-loop throughput rewrite, so
they prove the optimized loops are bit-identical to the original
per-access semantics. Regenerate (only when behaviour is *supposed* to
change, bumping this file's history) with::

    PYTHONPATH=src python -m tests.check.goldens
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.hotloop import FAILURE_MMS, key_stream
from repro.mmu.registry import MM_NAMES, make_mm
from repro.workloads import MarkovPhaseWorkload, UniformWorkload, ZipfWorkload

__all__ = [
    "GOLDEN_DIR",
    "WORKLOADS",
    "FAILURE_MMS",
    "golden_cases",
    "build_trace",
    "build_mm",
    "failure_cases",
    "build_failure_trace",
    "build_failure_mm",
]

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "golden"

#: fixed cell geometry — small enough to replay in milliseconds, large
#: enough that every algorithm faults, evicts, and (for THP) promotes.
VA_PAGES = 4096
TLB_ENTRIES = 64
RAM_PAGES = 1024
ACCESSES = 2000
WARMUP = 800
SEED = 0

WORKLOADS = ("zipf", "uniform", "markov")


def build_trace(workload: str):
    """The deterministic trace for one golden cell."""
    if workload == "zipf":
        wl = ZipfWorkload(VA_PAGES, s=1.0)
    elif workload == "uniform":
        wl = UniformWorkload(VA_PAGES)
    elif workload == "markov":
        wl = MarkovPhaseWorkload(
            [ZipfWorkload(VA_PAGES, s=1.2), UniformWorkload(VA_PAGES)],
            mean_dwell=300,
        )
    else:
        raise ValueError(f"unknown golden workload {workload!r}")
    return wl.generate(ACCESSES, seed=SEED)


def build_mm(algorithm: str):
    """A fresh registry algorithm for one golden cell."""
    return make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED)


def golden_cases():
    """Every (algorithm, workload, golden path) triple, in test order."""
    for algorithm in MM_NAMES:
        for workload in WORKLOADS:
            name = f"{algorithm.replace('+', '_')}__{workload}.jsonl"
            yield algorithm, workload, GOLDEN_DIR / name


# ------------------------------------------------- paging-failure cells
#
# RAM deliberately undersized for the key-stream working set, so the
# allocator runs out of frames and the stream fails mid-run — at least
# twice per cell (asserted at regen time). These pin the *failure*
# accounting path: the array engine must bail out of its batch kernel at
# the exact failing access with an object-identical ledger, cold and warm.
# The header meta stamps the per-access failure indices (``failures``), a
# pre-first-failure ``warm_split`` for resumed-segment tests, and the full
# final ``ledger`` — the stream rows alone cannot carry ``paging_failures``
# (it is not an evented counter).
#
# The cell geometry is shared with the ``mm:<name>+fail`` hot-loop rows
# (:data:`repro.bench.hotloop.FAILURE_MMS`), so the bench engine-identity
# gate and these goldens pin the same failing replays.

FAIL_ACCESSES = 4000
FAIL_SEED = 2  #: mm seed (the stream itself uses seed 0)


def build_failure_trace(algorithm: str) -> list[int]:
    """The deterministic failing key stream for one failure cell."""
    universe = FAILURE_MMS[algorithm]["universe"]
    return key_stream(FAIL_ACCESSES, universe, universe // 8, 50, seed=0)


def build_failure_mm(algorithm: str, engine: str = "object"):
    """A fresh undersized algorithm for one failure cell."""
    cell = FAILURE_MMS[algorithm]
    return make_mm(
        algorithm,
        cell["tlb_entries"],
        cell["ram_pages"],
        seed=FAIL_SEED,
        engine=engine,
    )


def failure_cases():
    """Every (algorithm, golden path) pair of the failure cells."""
    for algorithm in FAILURE_MMS:
        yield algorithm, GOLDEN_DIR / f"{algorithm}__fail.jsonl"


def _failure_indices(algorithm: str, trace) -> list[int]:
    """Trace indices of every paging failure, by per-access object replay
    (segmented ``run`` calls are contractually identical to one call)."""
    mm = build_failure_mm(algorithm)
    indices, prev = [], 0
    for i, page in enumerate(trace):
        mm.run([page])
        if mm.ledger.paging_failures != prev:
            prev = mm.ledger.paging_failures
            indices.append(i)
    return indices


def regenerate() -> None:
    from repro.check import record_stream, save_golden

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for algorithm, workload, path in golden_cases():
        mm = build_mm(algorithm)
        rows = record_stream(mm, build_trace(workload), warmup=WARMUP)
        save_golden(
            path,
            rows,
            algorithm=algorithm,
            meta={
                "workload": workload,
                "va_pages": VA_PAGES,
                "tlb_entries": TLB_ENTRIES,
                "ram_pages": RAM_PAGES,
                "accesses": ACCESSES,
                "warmup": WARMUP,
                "seed": SEED,
            },
        )
        print(f"wrote {path.name}: {len(rows)} rows")

    for algorithm, path in failure_cases():
        trace = build_failure_trace(algorithm)
        failures = _failure_indices(algorithm, trace)
        assert len(failures) >= 2, (
            f"{algorithm} failure cell no longer fails twice: {failures}"
        )
        mm = build_failure_mm(algorithm)
        rows = record_stream(mm, trace)
        save_golden(
            path,
            rows,
            algorithm=algorithm,
            meta={
                **FAILURE_MMS[algorithm],
                "accesses": FAIL_ACCESSES,
                "seed": FAIL_SEED,
                "failures": failures,
                # resumes with warm state but no failures yet, so the
                # resumed segment itself exercises the bailout
                "warm_split": failures[0] // 2,
                "ledger": mm.ledger.as_dict(),
            },
        )
        print(
            f"wrote {path.name}: {len(rows)} rows, "
            f"failures at {failures}"
        )


if __name__ == "__main__":
    regenerate()
