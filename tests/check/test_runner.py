"""Validated-grid runner tests: green grids, red cells, CLI exit codes."""

import pytest

from repro.check import check_grid, format_check_report
from repro.check import runner as runner_mod
from repro.cli import main
from repro.mmu import MM_NAMES, BasePageMM

GRID = dict(scale_pages=1 << 10, accesses=1200, tlb_entries=32, seed=0)


class TestCheckGrid:
    def test_small_grid_is_clean(self):
        report = check_grid(["base-page", "decoupled"], ["zipf"], **GRID)
        assert report.ok
        assert [c.algorithm for c in report.cells] == ["base-page", "decoupled"]
        assert all(c.workload == "zipf" for c in report.cells)
        assert all(c.accesses == 600 for c in report.cells)  # half warmed up
        assert report.config["algorithms"] == ["base-page", "decoupled"]
        assert report.overhead is None  # not measured by default
        assert "0 violations" in format_check_report(report)

    def test_defaults_cover_every_registered_algorithm(self):
        report = check_grid(workloads=["uniform"], **GRID)
        assert sorted({c.algorithm for c in report.cells}) == sorted(MM_NAMES)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workloads"):
            check_grid(["base-page"], ["laundry"], **GRID)

    def test_violating_cell_is_reported_not_raised(self, monkeypatch):
        class BrokenMM(BasePageMM):
            def access(self, vpn):
                super().access(vpn)
                self.ledger.tlb_hits += 1  # double-counts every request

        def broken_make_mm(name, tlb_entries, ram_pages, *, seed=None):
            return BrokenMM(tlb_entries, ram_pages)

        monkeypatch.setattr(runner_mod, "make_mm", broken_make_mm)
        report = check_grid(["base-page"], ["zipf"], **GRID)
        assert not report.ok
        (cell,) = report.violations
        assert cell.invariant == "ledger-coherence"
        assert "InvariantViolation" in cell.error
        assert "FAIL" in format_check_report(report)

    def test_overhead_is_measured_when_asked(self):
        report = check_grid(["base-page"], ["zipf"], measure_overhead=True, **GRID)
        assert report.baseline_elapsed_s is not None
        assert report.overhead > 0
        assert "validation overhead" in format_check_report(report)


class TestCheckCLI:
    ARGS = [
        "check", "--algorithms", "base-page", "--workloads", "zipf",
        "--scale", "1024", "--accesses", "1200", "--tlb", "32",
    ]

    def test_clean_grid_exits_zero(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out
        assert "base-page" in out

    def test_violation_exits_one(self, capsys, monkeypatch):
        class BrokenMM(BasePageMM):
            def access(self, vpn):
                super().access(vpn)
                self.ledger.ios += 1  # phantom IO on every access is legal…
                self.ledger.accesses += 1  # …but double-counting is not

        monkeypatch.setattr(
            runner_mod, "make_mm", lambda *a, **k: BrokenMM(32, 256)
        )
        assert main(self.ARGS) == 1
        assert "FAIL" in capsys.readouterr().out
