"""Invariant-oracle tests: clean runs stay clean, injected breaks get caught.

Two halves:

* **fuzz** — seeded random traces (zipf / uniform / markov phases) through
  every registered algorithm under :class:`ValidatingMM`: zero violations,
  and validated costs bit-identical to unvalidated ones;
* **mutation** — corrupt one structure at a time (``φ``, ``ψ``, the TLB,
  the ledger, the bucket loads) and assert the oracle reports exactly that
  break as a structured :class:`InvariantViolation`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import InvariantViolation, ValidatingMM
from repro.mmu import MM_NAMES, BasePageMM, DecoupledMM, PhysicalHugePageMM, make_mm
from repro.workloads import MarkovPhaseWorkload, UniformWorkload, ZipfWorkload

PAGES = 1 << 12
TLB = 64
RAM = 1024


def _workload(kind: str):
    if kind == "zipf":
        return ZipfWorkload(PAGES, s=1.0)
    if kind == "uniform":
        return UniformWorkload(PAGES)
    return MarkovPhaseWorkload(
        [ZipfWorkload(PAGES, s=1.0), UniformWorkload(PAGES)], mean_dwell=300
    )


class TestCleanRunsValidate:
    @pytest.mark.parametrize("workload", ["zipf", "uniform", "markov"])
    @pytest.mark.parametrize("name", MM_NAMES)
    def test_no_violations_on_real_algorithms(self, name, workload):
        trace = _workload(workload).generate(4000, seed=7)
        mm = make_mm(name, TLB, RAM, seed=11)
        validated = ValidatingMM(mm, deep_every=512)
        validated.run(trace[:2000])
        validated.reset_stats()  # warm-up boundary under validation
        validated.run(trace[2000:])
        assert validated.oracle.accesses_checked == 4000
        assert validated.oracle.deep_checks >= 2  # cadence sweeps + end-of-run

    @pytest.mark.parametrize("name", MM_NAMES)
    def test_validated_costs_are_bit_identical(self, name):
        trace = ZipfWorkload(PAGES, s=1.0).generate(3000, seed=3)
        plain = make_mm(name, TLB, RAM, seed=5)
        checked = make_mm(name, TLB, RAM, seed=5)
        plain.run(trace)
        validated = ValidatingMM(checked)
        ledger = validated.run(trace)
        assert ledger is checked.ledger  # shared, not copied
        assert ledger.as_dict() == plain.ledger.as_dict()

    def test_refuses_double_wrapping(self):
        validated = ValidatingMM(BasePageMM(TLB, RAM))
        with pytest.raises(TypeError):
            ValidatingMM(validated)

    @given(vpns=st.lists(st.integers(0, 255), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_traces_never_violate(self, vpns):
        validated = ValidatingMM(DecoupledMM(8, 256, seed=1), deep_every=64)
        validated.run(vpns)
        validated.check_invariants()


def _warm_decoupled(n: int = 1500):
    """A DecoupledMM with a populated active set, plus one placed page."""
    mm = DecoupledMM(TLB, RAM, seed=2)
    validated = ValidatingMM(mm, deep_every=0)
    validated.run(ZipfWorkload(PAGES, s=1.0).generate(n, seed=2))
    scheme = mm.system.scheme
    placed = sorted(scheme.active_set - scheme.failure_set)
    assert placed, "warm run placed no pages"
    return mm, validated, scheme, placed[0]


class TestMutationsAreCaught:
    def test_corrupted_phi_is_caught_on_access(self):
        mm, validated, scheme, vpn = _warm_decoupled()
        # move the page's frame without telling ψ: decode now disagrees
        scheme.allocator._frame_of[vpn] += 1
        with pytest.raises(InvariantViolation) as err:
            validated.access(vpn)
        assert err.value.invariant in ("decode-consistency", "phi-stability")
        assert err.value.vpn == vpn
        assert err.value.algorithm == "decoupled"
        assert "ledger" in err.value.snapshot

    def test_corrupted_psi_is_caught_by_deep_check(self):
        mm, validated, scheme, vpn = _warm_decoupled()
        # drop the stored encoding of the page's whole huge-page word
        del scheme._psi[vpn // scheme.hmax]
        with pytest.raises(InvariantViolation) as err:
            validated.check_invariants()
        assert err.value.invariant == "structural"

    def test_overfilled_tlb_is_caught(self):
        mm = PhysicalHugePageMM(8, 256, huge_page_size=16)
        validated = ValidatingMM(mm, deep_every=0)
        validated.run(UniformWorkload(PAGES).generate(800, seed=4))
        assert len(mm.tlb) == 8  # full
        mm.tlb.policy.insert(10**9, 0)  # smuggle a 9th entry past the cache
        with pytest.raises(InvariantViolation) as err:
            validated.check_invariants()
        assert err.value.invariant in ("tlb-capacity", "structural")

    def test_tampered_ledger_is_caught(self):
        mm = BasePageMM(TLB, RAM)
        validated = ValidatingMM(mm)
        original = mm.access

        def double_counting(vpn):
            original(vpn)
            mm.ledger.tlb_hits += 1

        mm.access = double_counting
        with pytest.raises(InvariantViolation) as err:
            validated.access(0)
        assert err.value.invariant == "ledger-coherence"
        assert err.value.t == 0

    def test_unquantized_io_is_caught(self):
        mm = PhysicalHugePageMM(TLB, 256, huge_page_size=16)
        validated = ValidatingMM(mm)
        original = mm.access

        def leaking_io(vpn):
            original(vpn)
            mm.ledger.ios += 1  # not a multiple of h

        mm.access = leaking_io
        with pytest.raises(InvariantViolation) as err:
            validated.access(0)
        assert err.value.invariant == "io-accounting"

    def test_overfull_bucket_is_caught(self):
        mm, validated, scheme, vpn = _warm_decoupled()
        game = scheme.allocator.game
        game._max_load = scheme.allocator.bucket_size + 3
        with pytest.raises(InvariantViolation) as err:
            validated.check_invariants()
        assert err.value.invariant == "bucket-capacity"

    def test_violation_message_carries_context(self):
        err = InvariantViolation(
            "decode-consistency", "f != phi", algorithm="decoupled", t=17, vpn=42
        )
        text = str(err)
        assert "decode-consistency" in text
        assert "t=17" in text and "vpn=42" in text and "decoupled" in text
        assert isinstance(err, AssertionError)  # pytest-friendly lineage
