"""Tests for DecoupledMM (Z as a drop-in MM algorithm) and HybridMM."""

import numpy as np
import pytest

from repro.mmu import BasePageMM, DecoupledMM, HybridMM, PhysicalHugePageMM


class TestDecoupledMM:
    def test_scheme_selection(self):
        z_ice = DecoupledMM(16, 1 << 12, scheme="iceberg", seed=0)
        z_one = DecoupledMM(16, 1 << 12, scheme="one-choice", seed=0)
        assert z_ice.params.scheme == "iceberg"
        assert z_one.params.scheme == "one-choice"
        with pytest.raises(ValueError, match="unknown scheme"):
            DecoupledMM(16, 1 << 12, scheme="greedy2")

    def test_hmax_override(self):
        z = DecoupledMM(16, 1 << 12, hmax=2, seed=0)
        assert z.hmax == 2
        with pytest.raises(ValueError, match="feasible range"):
            DecoupledMM(16, 1 << 12, hmax=10_000)

    def test_iceberg_hmax_exceeds_one_choice(self):
        P, w = 1 << 20, 64
        assert (
            DecoupledMM(16, P, scheme="iceberg").hmax
            >= DecoupledMM(16, P, scheme="one-choice").hmax
        )

    def test_ledger_is_system_ledger(self):
        z = DecoupledMM(16, 1 << 12, seed=0)
        z.access(0)
        assert z.ledger.accesses == 1
        z.reset_stats()
        assert z.ledger.accesses == 0

    def test_matches_base_page_ios_when_no_failures(self):
        """Z's IO count equals classical base-page paging on (1-δ)P frames:
        the 'none of the physical downsides' half of the headline claim."""
        P = 1 << 12
        z = DecoupledMM(32, P, seed=1)
        base = BasePageMM(32, z.params.max_pages)
        rng = np.random.default_rng(2)
        trace = rng.integers(0, 2 * P, 20_000)
        z.run(trace)
        base.run(trace)
        if z.ledger.paging_failures == 0:
            assert z.ledger.ios == base.ledger.ios

    def test_tlb_misses_match_physical_huge_pages(self):
        """Z's TLB misses equal a physical-huge-page run at h = hmax: the
        'all of the virtual benefits' half."""
        P = 1 << 12
        z = DecoupledMM(32, P, seed=3)
        h = z.hmax
        rng = np.random.default_rng(4)
        trace = rng.integers(0, P, 20_000)
        # physical comparison on the same huge-page geometry
        ram = (P // h) * h
        phys = PhysicalHugePageMM(32, ram, huge_page_size=h)
        z.run(trace)
        phys.run(trace)
        assert z.ledger.tlb_misses == phys.ledger.tlb_misses

    def test_beats_both_on_total_cost(self):
        """On a bimodal-style trace Z must dominate base pages and physical
        huge pages in total address-translation cost at moderate ε."""
        from repro.core import ATCostModel

        P = 1 << 12
        rng = np.random.default_rng(5)
        n = 40_000
        hot = rng.integers(0, P // 8, n)
        cold = rng.integers(0, 16 * P, n)
        trace = np.where(rng.random(n) < 0.999, hot, cold)

        z = DecoupledMM(16, P, seed=6)
        base = BasePageMM(16, P)
        phys = PhysicalHugePageMM(16, P, huge_page_size=64)
        for mm in (z, base, phys):
            mm.run(trace)
        model = ATCostModel(epsilon=0.05)
        z_cost = model.cost(z.ledger)
        assert z_cost <= model.cost(base.ledger)
        assert z_cost <= model.cost(phys.ledger)


class TestHybridMM:
    def test_validation(self):
        with pytest.raises(ValueError):
            HybridMM(16, 1 << 12, chunk=3)
        with pytest.raises(ValueError):
            HybridMM(16, (1 << 12) + 4, chunk=8)

    def test_coverage_multiplies(self):
        h = HybridMM(16, 1 << 12, chunk=4, seed=0)
        assert h.coverage == h.system.hmax * 4

    def test_chunk1_matches_decoupled_geometry(self):
        h = HybridMM(16, 1 << 12, chunk=1, seed=0)
        z = DecoupledMM(16, 1 << 12, seed=0)
        assert h.coverage == z.hmax

    def test_fault_costs_chunk_ios(self):
        h = HybridMM(16, 1 << 12, chunk=8, seed=0)
        h.access(0)
        assert h.ledger.ios == 8

    def test_chunk_locality_shares_fault(self):
        h = HybridMM(16, 1 << 12, chunk=8, seed=0)
        for vpn in range(8):  # same chunk
            h.access(vpn)
        assert h.ledger.ios == 8
        assert h.ledger.tlb_misses == 1

    def test_coverage_vs_amplification_tradeoff(self):
        """Bigger chunks buy coverage but pay IO amplification on sparse
        access patterns."""
        rng = np.random.default_rng(7)
        trace = rng.integers(0, 1 << 14, 15_000)  # sparse uniform
        small = HybridMM(16, 1 << 12, chunk=1, seed=8)
        big = HybridMM(16, 1 << 12, chunk=16, seed=8)
        small.run(trace)
        big.run(trace)
        assert big.coverage > small.coverage
        assert big.ledger.ios > small.ledger.ios
        assert big.ledger.tlb_misses <= small.ledger.tlb_misses
