"""Array-engine tests: kernel exactness, deep state parity, failure bailout.

The struct-of-arrays engine (:mod:`repro.mmu.array_engine`) promises
*bit-identical* results to the object engine — not just matching ledgers,
but matching replacement orders, TLB value maps, scheme bookkeeping sets,
and clocks, so that a trace can switch engines mid-stream at any segment
boundary. These tests pin that promise:

* :class:`StreamKernel` against a brute-force LRU oracle (hits, victims
  in order, final residents) across randomized small streams;
* full deep-state parity for every covered algorithm on cold, segmented,
  and warm-reset replays;
* the write-back dirty bit carried across segment boundaries;
* the paging-failure bailout: the array engine detects the failing access
  mid-segment, syncs state up to it, and the object engine resumes with
  ledgers and ``φ`` bookkeeping identical to a pure object run;
* engine selection through the registry, ``simulate``, and ``SimTask``.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.bench.hotloop import key_stream
from repro.mmu.array_engine import StreamKernel, supports, try_run
from repro.mmu.registry import ENGINES, MM_NAMES, make_mm, mm_factory
from repro.obs import SamplingProbe, TraceRecorder
from repro.sim import simulate
from repro.sim.parallel import SimTask, run_records

#: algorithms with a batch handler (everything but THP).
ARRAY_MMS = tuple(n for n in MM_NAMES if n != "thp")

TLB_ENTRIES = 64
RAM_PAGES = 1024
TRACE = np.array(
    key_stream(12_000, 1 << 12, 1 << 7, 90, seed=0), dtype=np.int64
)


def _lru_oracle(keys, prefix, capacity):
    """Reference LRU: per-access hits, victims in order, final residents."""
    od = OrderedDict((k, None) for k in prefix)
    hits, victims = [], []
    for k in keys:
        if k in od:
            od.move_to_end(k)
            hits.append(True)
        else:
            hits.append(False)
            od[k] = None
            if len(od) > capacity:
                victims.append(od.popitem(last=False)[0])
    return hits, victims, list(od)


def _state_sig(mm):
    """Every piece of observable state the engines must agree on."""
    name = type(mm).__name__
    sig = {"ledger": mm.ledger.as_dict()}
    for attr in ("tlb", "ram", "nested_tlb"):
        cache = getattr(mm, attr, None)
        if cache is not None:
            sig[attr] = (
                list(cache.policy._order),
                cache.hits,
                cache.misses,
                cache.evictions,
                cache._clock,
            )
    if hasattr(mm, "_dirty"):
        sig["dirty"] = sorted(mm._dirty)
    system = getattr(mm, "system", None)
    if system is not None:
        tlb, scheme = system.tlb, system.scheme
        sig["tlb"] = (
            list(tlb.policy._order),
            dict(tlb._values),
            tlb.hits,
            tlb.misses,
            tlb.fills,
            tlb._clock,
            tlb._last_stamp,
        )
        sig["ram"] = (
            list(system.ram.policy._order),
            system.ram.hits,
            system.ram.misses,
            system.ram.evictions,
            system.ram._clock,
        )
        sig["scheme"] = (
            sorted(scheme._tlb_resident),
            sorted(scheme._active),
            sorted(scheme._failed),
        )
        sig["psi"] = dict(scheme._psi)
    return sig


# --------------------------------------------------------------- kernel


class TestStreamKernel:
    def test_matches_oracle_on_random_streams(self):
        rng = np.random.default_rng(11)
        for trial in range(25):
            n = int(rng.integers(1, 400))
            universe = int(rng.integers(2, 60))
            cap = int(rng.integers(1, 40))
            seg = rng.integers(0, universe, n).astype(np.int64)
            r = int(rng.integers(0, min(cap, universe) + 1))
            prefix = list(dict.fromkeys(rng.permutation(universe)[:r].tolist()))
            kern = StreamKernel(seg, prefix)
            hits, victims, residents = _lru_oracle(seg.tolist(), prefix, cap)
            assert kern.hit_mask(cap)[kern.R :].tolist() == hits, trial
            assert kern.keys[kern.deaths(cap)].tolist() == victims, trial
            assert kern.final_residents(cap).tolist() == residents, trial

    def test_dense_stream_exercises_ladder_and_grid(self):
        # small universe + large n leaves thousands of ambiguous queries,
        # forcing the sliding-window ladder, the direct scan, and the
        # blocked dominance grid — every pruning tier must stay exact
        rng = np.random.default_rng(3)
        n, universe, cap = 20_000, 120, 64
        seg = rng.integers(0, universe, n).astype(np.int64)
        kern = StreamKernel(seg)
        hits, victims, _ = _lru_oracle(seg.tolist(), (), cap)
        assert kern.hit_mask(cap).tolist() == hits
        assert kern.keys[kern.deaths(cap)].tolist() == victims

    def test_residents_at_reconstructs_mid_stream_state(self):
        rng = np.random.default_rng(5)
        seg = rng.integers(0, 50, 300).astype(np.int64)
        cap = 16
        kern = StreamKernel(seg)
        for cut in (0, 77, 150, 299):
            _, _, residents = _lru_oracle(seg[:cut].tolist(), (), cap)
            assert kern.residents_at(cap, cut).tolist() == residents


# ------------------------------------------------------- engine parity


@pytest.mark.parametrize("name", ARRAY_MMS)
class TestDeepStateParity:
    def test_cold_run(self, name):
        obj = make_mm(name, TLB_ENTRIES, RAM_PAGES, seed=0)
        arr = make_mm(name, TLB_ENTRIES, RAM_PAGES, seed=0)
        obj.run(TRACE)
        assert try_run(arr, TRACE) is not None, "array engine declined"
        assert _state_sig(obj) == _state_sig(arr)

    def test_segmented_and_warm_reset(self, name):
        obj = make_mm(name, TLB_ENTRIES, RAM_PAGES, seed=0)
        arr = make_mm(name, TLB_ENTRIES, RAM_PAGES, seed=0, engine="array")
        cuts = (0, 3_337, 3_338, 9_101, 12_000)
        for a, b in zip(cuts[:-1], cuts[1:]):
            obj.run(TRACE[a:b])
            arr.run(TRACE[a:b])
            assert _state_sig(obj) == _state_sig(arr), f"segment {a}:{b}"
        obj.reset_stats()
        arr.reset_stats()
        obj.run(TRACE[:5_000])
        arr.run(TRACE[:5_000])
        assert _state_sig(obj) == _state_sig(arr)

    def test_supports(self, name):
        assert supports(make_mm(name, TLB_ENTRIES, RAM_PAGES, seed=0))


class TestWritebackDirtyCarry:
    def test_dirty_state_crosses_segment_boundaries(self):
        # a page dirtied in segment 1 but evicted in segment 2 must still
        # flush — the per-segment store sampling alone cannot see it
        obj = make_mm("physical-huge+wb", TLB_ENTRIES, RAM_PAGES, seed=0)
        arr = make_mm(
            "physical-huge+wb", TLB_ENTRIES, RAM_PAGES, seed=0, engine="array"
        )
        for a, b in ((0, 4_000), (4_000, 8_000), (8_000, 12_000)):
            obj.run(TRACE[a:b])
            arr.run(TRACE[a:b])
            assert _state_sig(obj) == _state_sig(arr), f"segment {a}:{b}"
        assert obj.ledger.extra["writebacks"] > 0


# ------------------------------------------------- paging-failure bailout


class TestPagingFailureBailout:
    """Satellite contract: a paging failure mid-segment hands control back
    to the object engine at the failing access with synchronized state."""

    def _run_pair(self, name, tlb, ram, universe, seed):
        trace = key_stream(4_000, universe, universe // 8, 50, seed=0)
        obj = make_mm(name, tlb, ram, seed=seed)
        arr = make_mm(name, tlb, ram, seed=seed, engine="array")
        obj.run(trace)
        arr.run(trace)
        return obj, arr

    def test_decoupled_failure_resumes_bit_identical(self):
        obj, arr = self._run_pair("decoupled", 32, 64, 1024, seed=2)
        assert obj.ledger.paging_failures >= 2, "config no longer fails"
        assert _state_sig(obj) == _state_sig(arr)

    def test_hybrid_failure_resumes_bit_identical(self):
        obj, arr = self._run_pair("hybrid", 32, 128, 512, seed=2)
        assert obj.ledger.paging_failures >= 2, "config no longer fails"
        assert _state_sig(obj) == _state_sig(arr)

    def test_failed_state_keeps_later_segments_identical(self):
        # once the failure set is non-empty the batch handler declines and
        # every later run() falls back to the object replay — the two
        # engines must stay in lockstep across that transition too
        trace = key_stream(4_000, 1024, 128, 50, seed=0)
        obj = make_mm("decoupled", 32, 64, seed=2)
        arr = make_mm("decoupled", 32, 64, seed=2, engine="array")
        for a, b in ((0, 2_000), (2_000, 4_000)):
            obj.run(trace[a:b])
            arr.run(trace[a:b])
            assert _state_sig(obj) == _state_sig(arr), f"segment {a}:{b}"
        assert obj.ledger.paging_failures > 0


# --------------------------------------------------- selection plumbing


class TestEngineSelection:
    def test_registry_validates_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_mm("base-page", 64, 1024, engine="simd")
        with pytest.raises(ValueError, match="unknown engine"):
            mm_factory("base-page", 64, 1024, engine="simd")

    def test_registry_sets_engine(self):
        assert make_mm("base-page", 64, 1024).engine == "object"
        assert make_mm("base-page", 64, 1024, engine="array").engine == "array"
        assert mm_factory("base-page", 64, 1024, engine="array")().engine == "array"
        assert set(ENGINES) == {"object", "array"}

    def test_thp_falls_back_to_object(self):
        obj = make_mm("thp", TLB_ENTRIES, RAM_PAGES)
        arr = make_mm("thp", TLB_ENTRIES, RAM_PAGES, engine="array")
        obj.run(TRACE[:4_000])
        arr.run(TRACE[:4_000])
        assert obj.ledger.as_dict() == arr.ledger.as_dict()

    def test_simulate_engine_override(self):
        obj = make_mm("base-page", TLB_ENTRIES, RAM_PAGES)
        arr = make_mm("base-page", TLB_ENTRIES, RAM_PAGES)
        lo = simulate(obj, TRACE, warmup=2_000)
        la = simulate(arr, TRACE, warmup=2_000, engine="array")
        assert arr.engine == "array"
        assert lo.as_dict() == la.as_dict()

    def test_simtask_engine(self):
        tasks = [
            SimTask(key=0, mm_factory=mm_factory("decoupled", 64, 1024, seed=0)),
            SimTask(
                key=1,
                mm_factory=mm_factory("decoupled", 64, 1024, seed=0),
                engine="array",
            ),
        ]
        records = run_records(tasks, trace=TRACE, jobs=1)
        assert records[0].ledger.as_dict() == records[1].ledger.as_dict()


# -------------------------------------------------------- probe contract


class TestProbeContract:
    def test_per_access_probe_forces_object_path(self):
        # TraceRecorder needs every access event; the array engine must
        # decline and the ledgers must still match the probed object run
        probed = make_mm("base-page", TLB_ENTRIES, RAM_PAGES)
        arr = make_mm("base-page", TLB_ENTRIES, RAM_PAGES, engine="array")
        lp = simulate(probed, TRACE[:3_000], probe=TraceRecorder(capacity=16))
        la = simulate(arr, TRACE[:3_000], probe=TraceRecorder(capacity=16))
        assert lp.as_dict() == la.as_dict()

    def test_batch_safe_probe_gets_one_flush(self):
        flushes = []

        class _Tap(SamplingProbe):
            def on_batch(self, t0, vpns, ledger, before):
                flushes.append((t0, len(vpns), ledger.snapshot(), before))

        mm = make_mm("base-page", TLB_ENTRIES, RAM_PAGES, engine="array")
        mm.probe = _Tap(1.0, seed=0)
        mm.run(TRACE[:3_000])
        assert len(flushes) == 1
        t0, n_vpns, after, before = flushes[0]
        assert (t0, n_vpns) == (0, 3_000)
        assert after != before
