"""Tests for the THP-style promotion baseline."""

import numpy as np
import pytest

from repro.mmu import THPStyleMM


def make(tlb=64, ram=1 << 10, h=8, util=0.9):
    return THPStyleMM(tlb, ram, huge_page_size=h, promote_utilization=util)


class TestValidation:
    def test_power_of_two(self):
        with pytest.raises(ValueError):
            THPStyleMM(8, 256, huge_page_size=6)

    def test_ram_holds_huge_page(self):
        with pytest.raises(ValueError):
            THPStyleMM(8, 4, huge_page_size=8)

    def test_utilization_range(self):
        with pytest.raises(ValueError):
            THPStyleMM(8, 256, promote_utilization=0.0)
        with pytest.raises(ValueError):
            THPStyleMM(8, 256, promote_utilization=1.5)


class TestBasePath:
    def test_fault_costs_one_io(self):
        mm = make()
        mm.access(0)
        assert mm.ledger.ios == 1
        assert mm.ledger.tlb_misses == 1

    def test_hit_is_free(self):
        mm = make()
        mm.access(0)
        mm.access(0)
        assert mm.ledger.ios == 1
        assert mm.ledger.tlb_hits == 1

    def test_no_promotion_below_threshold(self):
        mm = make(h=8, util=0.9)  # threshold 7
        for vpn in range(6):
            mm.access(vpn)
        assert mm.promoted_regions == 0
        assert mm.ledger.extra["promotions"] == 0


class TestPromotion:
    def test_promotes_at_threshold(self):
        mm = make(h=8, util=0.5)  # threshold 4
        for vpn in range(4):
            mm.access(vpn)
        assert mm.promoted_regions == 1
        assert mm.ledger.extra["promotions"] == 1
        # amplification: 4 faults + 4 fetched at promotion
        assert mm.ledger.ios == 8
        assert mm.ledger.extra["migrations"] == 4

    def test_promoted_region_shares_tlb_entry(self):
        mm = make(h=8, util=0.5)
        for vpn in range(4):
            mm.access(vpn)
        misses_before = mm.ledger.tlb_misses
        mm.access(5)  # covered by the promoted huge unit, but TLB must refill
        mm.access(6)
        mm.access(7)
        # after the huge entry is in, the rest of the region hits
        assert mm.ledger.tlb_misses <= misses_before + 1
        assert mm.ledger.ios == 8  # no further IOs: all 8 pages resident

    def test_promotion_pins_h_frames(self):
        mm = make(ram=64, h=8, util=0.5)
        for vpn in range(4):
            mm.access(vpn)
        assert mm.resident_pages == 8  # 4 hot + 4 cold pinned

    def test_full_region_without_promotion_threshold_one(self):
        mm = make(h=4, util=0.1)  # threshold 1: promote on first touch (THP-like)
        mm.access(0)
        assert mm.promoted_regions == 1
        assert mm.ledger.ios == 4  # classic THP fault amplification


class TestEvictionAndDemotion:
    def test_huge_unit_evicted_wholesale(self):
        mm = make(ram=16, h=8, util=0.5)
        for vpn in range(4):  # promote region 0 (8 frames)
            mm.access(vpn)
        for vpn in range(100, 112):  # 12 base pages force eviction
            mm.access(vpn)
        assert mm.ledger.extra["demotions"] >= 1
        # region 0's huge unit was the LRU victim; re-access refaults
        ios_before = mm.ledger.ios
        mm.access(0)
        assert mm.ledger.ios > ios_before

    def test_reaccess_after_demotion_refaults(self):
        mm = make(ram=16, h=8, util=0.9)
        for vpn in range(7):
            mm.access(vpn)  # below threshold 7? exactly 7 -> promotes
        for vpn in range(100, 116):
            mm.access(vpn)  # flush
        ios_before = mm.ledger.ios
        mm.access(0)
        assert mm.ledger.ios == ios_before + 1  # demoted: refaults as base page


class TestFragmentation:
    def test_promotion_failure_under_fragmentation(self):
        """Interleave allocations from many regions so no aligned run of h
        free frames exists when a region becomes promotable."""
        mm = make(ram=64, h=8, util=0.9)  # threshold 7
        rng = np.random.default_rng(0)
        # scatter single pages from 8 regions to fragment the frame space
        order = rng.permutation(
            [r * 8 + i for r in range(8) for i in range(7)]
        )
        for vpn in order:
            mm.access(int(vpn))
        # 56 of 64 frames in use, scattered; most promotions must have failed
        assert mm.ledger.extra["promotion_failures"] >= 1

    def test_ledger_counters_exposed(self):
        mm = make()
        d = mm.ledger.as_dict()
        for key in ("promotions", "promotion_failures", "demotions", "migrations"):
            assert key in d


class TestVsPhysicalHugePages:
    def test_thp_beats_static_huge_on_sparse_access(self):
        """Sparse accesses never reach the promotion threshold, so THP
        behaves like base pages while static huge pages amplify every
        fault."""
        from repro.mmu import PhysicalHugePageMM

        rng = np.random.default_rng(1)
        trace = (rng.integers(0, 1 << 12, 4000) * 8) % (1 << 14)  # 1 page/region
        thp = make(tlb=32, ram=1 << 10, h=8, util=0.9)
        static = PhysicalHugePageMM(32, 1 << 10, huge_page_size=8)
        thp.run(trace)
        static.run(trace)
        assert thp.ledger.ios < static.ledger.ios
