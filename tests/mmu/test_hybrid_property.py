"""Property tests for HybridMM and the ψ-update callback path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mmu import DecoupledMM, HybridMM


class TestHybridProperties:
    @given(st.lists(st.integers(0, 2000), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_invariants_and_io_quantization(self, trace):
        mm = HybridMM(8, 1 << 10, chunk=4, seed=0)
        mm.run(trace)
        mm.system.check_invariants()
        # every RAM fault moves a whole chunk
        assert mm.ledger.ios % 4 == 0

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_chunk1_equals_decoupled(self, trace):
        """chunk=1 must be behaviourally identical to DecoupledMM on the
        same geometry and seed."""
        h = HybridMM(8, 1 << 10, chunk=1, seed=3)
        z = DecoupledMM(8, 1 << 10, seed=3)
        if h.params != z.params:
            pytest.skip("parameter derivations diverged")
        h.run(trace)
        z.run(trace)
        assert h.ledger.as_dict() == z.ledger.as_dict()


class TestPsiCallbackConsistency:
    @given(st.lists(st.integers(0, 800), min_size=1, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_tlb_values_always_fresh(self, trace):
        """After any run, every TLB-resident value equals the scheme's
        current psi — the callback may never miss an update."""
        z = DecoupledMM(6, 1 << 9, seed=1)
        z.run(trace)
        sys = z.system
        for hpn in sys.tlb.resident():
            assert sys.tlb.peek(hpn) == sys.scheme.psi(hpn)
