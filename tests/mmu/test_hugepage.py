"""Tests for the physical-huge-page MM algorithm (the Section 6 simulator
semantics) and its base-page specialization."""

import numpy as np
import pytest

from repro.mmu import BasePageMM, PhysicalHugePageMM
from repro.paging import FIFOPolicy


class TestValidation:
    def test_huge_size_power_of_two(self):
        with pytest.raises(ValueError):
            PhysicalHugePageMM(16, 256, huge_page_size=3)

    def test_ram_divisible(self):
        with pytest.raises(ValueError):
            PhysicalHugePageMM(16, 250, huge_page_size=8)

    def test_ram_at_least_one_huge_frame(self):
        with pytest.raises(ValueError):
            PhysicalHugePageMM(16, 4, huge_page_size=8)


class TestAmplification:
    def test_fault_moves_h_pages(self):
        mm = PhysicalHugePageMM(16, 256, huge_page_size=8)
        mm.access(0)
        assert mm.ledger.ios == 8  # one fault, h IOs

    def test_pages_within_huge_page_share_fault(self):
        mm = PhysicalHugePageMM(16, 256, huge_page_size=8)
        for vpn in range(8):
            mm.access(vpn)
        assert mm.ledger.ios == 8  # one fault total
        assert mm.ledger.tlb_misses == 1

    def test_h1_is_classical(self):
        mm = BasePageMM(16, 256)
        for vpn in range(10):
            mm.access(vpn)
        assert mm.ledger.ios == 10
        assert mm.ledger.tlb_misses == 10

    def test_reduced_utilization(self):
        """With h=4 and RAM of 8 pages, only 2 distinct huge pages fit; 3
        hot pages in distinct huge pages must thrash."""
        mm = PhysicalHugePageMM(16, 8, huge_page_size=4)
        hot = [0, 4, 8]  # three different huge pages
        for _ in range(20):
            for vpn in hot:
                mm.access(vpn)
        # every access after warmup faults (LRU over 2 frames, 3-cycle)
        assert mm.ledger.ios >= 4 * (len(hot) * 20 - 2)

    def test_base_page_no_thrash_same_footprint(self):
        """Same hot set at h=1 fits trivially: 3 IOs total."""
        mm = BasePageMM(16, 8)
        for _ in range(20):
            for vpn in [0, 4, 8]:
                mm.access(vpn)
        assert mm.ledger.ios == 3


class TestTradeoffShape:
    def test_io_grows_and_misses_shrink_with_h(self):
        """The Figure 1 trend on a miniature bimodal trace."""
        rng = np.random.default_rng(0)
        n = 30_000
        hot = rng.integers(0, 512, n)
        cold = rng.integers(0, 1 << 15, n)
        is_hot = rng.random(n) < 0.999
        trace = np.where(is_hot, hot, cold)

        results = {}
        for h in (1, 16, 256):
            mm = PhysicalHugePageMM(64, 1 << 13, huge_page_size=h)
            mm.run(trace)
            results[h] = (mm.ledger.ios, mm.ledger.tlb_misses)
        assert results[1][0] < results[16][0] < results[256][0]
        assert results[1][1] > results[16][1] > results[256][1]


class TestBookkeeping:
    def test_accesses_counted(self):
        mm = BasePageMM(4, 16)
        mm.run([1, 2, 1])
        assert mm.ledger.accesses == 3
        assert mm.ledger.tlb_hits == 1

    def test_reset_stats_preserves_state(self):
        mm = BasePageMM(4, 16)
        mm.run([1, 2, 3])
        mm.reset_stats()
        mm.access(1)
        assert mm.ledger.ios == 0  # still cached
        assert mm.ledger.accesses == 1

    def test_custom_policies(self):
        mm = PhysicalHugePageMM(
            2, 16, huge_page_size=1, tlb_policy=FIFOPolicy(), ram_policy=FIFOPolicy()
        )
        mm.run([0, 1, 0, 2])  # FIFO TLB of 2: miss, miss, hit, miss(evicts 0)
        assert mm.ledger.tlb_misses == 3
        assert mm.ledger.tlb_hits == 1
