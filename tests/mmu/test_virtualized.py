"""Tests for the nested-translation (virtualized) MM model."""

import numpy as np
import pytest

from repro.mmu import NestedTranslationMM


def make(guest=16, host=64, ram=1 << 10, h=1, **kw):
    return NestedTranslationMM(guest, host, ram, huge_page_size=h, **kw)


class TestValidation:
    def test_huge_power_of_two(self):
        with pytest.raises(ValueError):
            make(h=3)

    def test_ram_divisible(self):
        with pytest.raises(ValueError):
            NestedTranslationMM(4, 4, 10, huge_page_size=4)


class TestWalkAccounting:
    def test_cold_miss_walk_touches(self):
        mm = make()
        mm.access(0)
        assert mm.ledger.tlb_misses == 1
        # worst case: 4 node reads + 5 host walks of 4 = 24 touches
        assert mm.ledger.extra["walk_touches"] == 24
        assert mm.ledger.extra["host_tlb_misses"] == 5

    def test_hit_costs_nothing(self):
        mm = make()
        mm.access(0)
        mm.access(0)
        assert mm.ledger.extra["walk_touches"] == 24  # unchanged
        assert mm.ledger.tlb_hits == 1

    def test_nested_tlb_absorbs_repeat_walks(self):
        """Misses on nearby pages share page-table nodes: the nested TLB
        turns later walks into mostly node reads."""
        mm = make(guest=1)  # guest TLB of 1 entry: every new page misses
        mm.access(0)
        first = mm.ledger.extra["walk_touches"]
        mm.access(1)  # same page-table path except the leaf
        second = mm.ledger.extra["walk_touches"] - first
        assert second < first
        assert second >= mm.guest_levels  # node reads are unavoidable

    def test_effective_multiplier_bounds(self):
        mm = make(guest=4, host=8)
        rng = np.random.default_rng(0)
        for vpn in rng.integers(0, 1 << 16, 4000):
            mm.access(int(vpn))
        mult = mm.effective_epsilon_multiplier
        worst = ((mm.guest_levels + 1) * (mm.host_levels + 1) - 1) / mm.guest_levels
        assert 1.0 <= mult <= worst

    def test_multiplier_default_one(self):
        assert make().effective_epsilon_multiplier == 1.0


class TestVirtualizationAmplifiesTlbValue:
    def test_bigger_nested_tlb_lowers_multiplier(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 1 << 15, 5000)
        small = make(guest=8, host=8)
        big = make(guest=8, host=512)
        for vpn in trace:
            small.access(int(vpn))
            big.access(int(vpn))
        assert big.effective_epsilon_multiplier < small.effective_epsilon_multiplier

    def test_huge_pages_cut_guest_misses(self):
        rng = np.random.default_rng(2)
        # spatially local trace
        trace = (rng.integers(0, 64, 5000) * 4 + rng.integers(0, 4, 5000)).tolist()
        flat = make(guest=8, h=1)
        huge = make(guest=8, h=16)
        for vpn in trace:
            flat.access(vpn)
            huge.access(vpn)
        assert huge.ledger.tlb_misses < flat.ledger.tlb_misses
        assert huge.ledger.extra["walk_touches"] < flat.ledger.extra["walk_touches"]

    def test_ram_amplification_preserved(self):
        mm = make(h=8, ram=64)
        mm.access(0)
        assert mm.ledger.ios == 8
