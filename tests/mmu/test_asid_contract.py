"""The first-class ASID access contract, over every registered algorithm.

``bind_asid_space`` / ``access_asid`` / ``run_asid`` / ``shootdown_asid``
live on :class:`MemoryManagementAlgorithm` itself, so every algorithm in
the registry participates in multi-tenant runs without changing its TLB
type. This pins the contract's arithmetic (power-of-two strides aligned to
translation coverage), its error surface, the ASID-0 identity, and the
shootdown/translation-span interplay.
"""

import numpy as np
import pytest

from repro.mmu.registry import MM_NAMES, make_mm
from repro._util import next_power_of_two

VA_PAGES = 300  # deliberately not a power of two
TLB_ENTRIES = 32
RAM_PAGES = 2048


def _mm(name, **kw):
    return make_mm(name, TLB_ENTRIES, RAM_PAGES, seed=0, **kw)


def _trace(n=400, pages=VA_PAGES, seed=5):
    rng = np.random.default_rng(seed)
    return rng.integers(0, pages, size=n, dtype=np.int64)


@pytest.mark.parametrize("name", MM_NAMES)
class TestBindArithmetic:
    def test_alignment_is_a_positive_power_of_two(self, name):
        align = _mm(name).translation_alignment()
        assert align >= 1
        assert next_power_of_two(align) == align

    def test_stride_covers_slice_and_alignment(self, name):
        mm = _mm(name)
        stride = mm.bind_asid_space(VA_PAGES)
        assert stride == next_power_of_two(max(VA_PAGES, mm.translation_alignment()))
        assert stride % mm.translation_alignment() == 0
        assert mm.asid_stride == stride

    def test_same_stride_rebind_is_a_noop(self, name):
        mm = _mm(name)
        stride = mm.bind_asid_space(VA_PAGES)
        assert mm.bind_asid_space(VA_PAGES) == stride
        # any va_pages rounding to the same power of two is fine too
        assert mm.bind_asid_space(stride) == stride

    def test_different_stride_rebind_rejected(self, name):
        mm = _mm(name)
        stride = mm.bind_asid_space(VA_PAGES)
        with pytest.raises(ValueError, match="already bound"):
            mm.bind_asid_space(4 * stride)


@pytest.mark.parametrize("name", MM_NAMES)
class TestAccessErrors:
    def test_access_before_bind_rejected(self, name):
        mm = _mm(name)
        with pytest.raises(RuntimeError, match="bind_asid_space"):
            mm.access_asid(0, 0)
        with pytest.raises(RuntimeError, match="bind_asid_space"):
            mm.run_asid(1, _trace(8))

    def test_negative_asid_rejected(self, name):
        mm = _mm(name)
        mm.bind_asid_space(VA_PAGES)
        with pytest.raises(ValueError, match="non-negative"):
            mm.access_asid(-1, 0)


@pytest.mark.parametrize("name", MM_NAMES)
class TestAsidZeroIdentity:
    def test_run_asid_zero_matches_plain_run(self, name):
        trace = _trace()
        plain = _mm(name)
        plain.run(trace)
        tagged = _mm(name)
        tagged.bind_asid_space(VA_PAGES)
        tagged.run_asid(0, trace)
        assert tagged.ledger.as_dict() == plain.ledger.as_dict()

    def test_nonzero_asid_offsets_by_the_stride(self, name):
        mm = _mm(name)
        stride = mm.bind_asid_space(VA_PAGES)
        mm.access_asid(3, 7)
        spans = mm.inspector().translation_spans()
        if spans is None:
            return  # algorithm opted out of span reporting
        assert spans, "an access must create at least one translation unit"
        assert all(3 * stride <= lo and hi <= 4 * stride for lo, hi in spans)


@pytest.mark.parametrize("name", MM_NAMES)
class TestShootdown:
    def test_shootdown_asid_clears_the_slice_only(self, name):
        mm = _mm(name)
        mm.bind_asid_space(VA_PAGES)
        mm.run_asid(1, _trace(300))
        mm.run_asid(2, _trace(300, seed=6))
        before = mm.ledger.as_dict()
        dropped = mm.shootdown_asid(1)
        assert dropped >= 0
        assert mm.ledger.as_dict() == before  # shootdowns are ledger-free
        spans = mm.inspector().translation_spans()
        if spans is None:
            return
        stride = mm.asid_stride
        assert all(lo // stride == 2 for lo, hi in spans)

    def test_spans_sit_inside_one_slice(self, name):
        mm = _mm(name)
        stride = mm.bind_asid_space(VA_PAGES)
        for asid in (0, 1, 5):
            mm.run_asid(asid, _trace(200, seed=asid))
        spans = mm.inspector().translation_spans()
        if spans is None:
            return
        for lo, hi in spans:
            assert lo < hi
            assert lo // stride == (hi - 1) // stride, (
                f"unit [{lo}, {hi}) straddles a slice boundary at {stride}"
            )

    def test_slice_is_cold_after_shootdown(self, name):
        mm = _mm(name)
        trace = _trace(200)
        mm.bind_asid_space(VA_PAGES)
        mm.run_asid(1, trace)
        warm_misses = mm.ledger.tlb_misses
        mm.shootdown_asid(1)
        mm.run_asid(1, trace)
        # the replay re-misses at least once: its TLB entries are gone
        assert mm.ledger.tlb_misses > warm_misses
