"""Tests for write-back accounting (the fourth huge-page cost)."""

import numpy as np
import pytest

from repro.mmu import WritebackHugePageMM


class TestDirtyTracking:
    def test_all_writes_dirty_everything(self):
        mm = WritebackHugePageMM(8, 64, huge_page_size=4, write_fraction=1.0, seed=0)
        for vpn in range(8):
            mm.access(vpn)
        assert mm.dirty_units == 2  # two huge units, both dirty

    def test_read_only_never_writes_back(self):
        mm = WritebackHugePageMM(8, 16, huge_page_size=4, write_fraction=0.0, seed=0)
        for vpn in range(0, 64, 4):  # force heavy eviction traffic
            mm.access(vpn)
        assert mm.ledger.extra["writeback_ios"] == 0
        assert mm.total_ios == mm.ledger.ios

    def test_dirty_eviction_costs_h_ios(self):
        mm = WritebackHugePageMM(8, 8, huge_page_size=8, write_fraction=1.0, seed=0)
        mm.access(0)  # unit 0 in the single frame, dirtied
        mm.access(8)  # unit 1 evicts dirty unit 0
        assert mm.ledger.extra["writebacks"] == 1
        assert mm.ledger.extra["writeback_ios"] == 8

    def test_clean_reaccess_after_flush(self):
        mm = WritebackHugePageMM(8, 8, huge_page_size=8, write_fraction=1.0, seed=0)
        mm.access(0)
        mm.access(8)  # flushes unit 0
        mm.access(0)  # unit 0 returns (evicting dirty unit 1)
        assert mm.ledger.extra["writebacks"] == 2

    def test_reset_stats_reseeds_counters(self):
        mm = WritebackHugePageMM(8, 8, huge_page_size=8, write_fraction=1.0, seed=0)
        mm.access(0)
        mm.access(8)
        mm.reset_stats()
        assert mm.ledger.extra["writeback_ios"] == 0
        mm.access(0)
        assert mm.ledger.extra["writebacks"] == 1  # counter still functional

    def test_write_fraction_validated(self):
        with pytest.raises(ValueError):
            WritebackHugePageMM(8, 64, write_fraction=1.5)


class TestWriteAmplification:
    def test_writeback_grows_with_h(self):
        """The fourth huge-page cost: write-back traffic scales with h on a
        write-heavy workload with modest locality."""
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 1 << 13, 20_000)

        def wb(h):
            mm = WritebackHugePageMM(
                64, 1 << 10, huge_page_size=h, write_fraction=0.3, seed=1
            )
            mm.run(trace)
            return mm.ledger.extra["writeback_ios"]

        assert wb(1) < wb(8) < wb(64)
