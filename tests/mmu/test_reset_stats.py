"""Regression tests: reset_stats must re-seed algorithm-specific counters.

A warm-up/measure run of THP under promotion pressure once raised KeyError
because CostLedger.reset() cleared the extra dict; this pins the fix. The
parametrized audit below extends the pin to *every* registered algorithm —
a subclass that overrides ``reset_stats`` (or forgets to register its
extras in ``_extra_defaults``) gets caught the moment it is registered.
"""

import pytest

from repro.mmu import MM_NAMES, NestedTranslationMM, THPStyleMM, make_mm
from repro.sim import simulate
from repro.workloads import BTreeLookupWorkload, ZipfWorkload


class TestResetReseedsExtras:
    def test_thp_counters_survive_reset(self):
        mm = THPStyleMM(8, 64, huge_page_size=4, promote_utilization=0.5)
        mm.run(range(8))
        mm.reset_stats()
        assert mm.ledger.extra["promotions"] == 0
        mm.run(range(100, 108))  # promotion traffic after the reset
        assert "promotion_failures" in mm.ledger.extra

    def test_nested_counters_survive_reset(self):
        mm = NestedTranslationMM(4, 4, 64)
        mm.access(0)
        mm.reset_stats()
        mm.access(99)  # walks again
        assert mm.ledger.extra["walk_touches"] > 0

    def test_thp_fragmented_warmup_measure(self):
        """The original failing scenario: THP with warm-up under a
        fragmentation-prone index workload."""
        index = BTreeLookupWorkload(50_000, fanout=64, zipf_s=0.8)
        trace = index.generate(20_000, seed=0)
        mm = THPStyleMM(64, 2048, huge_page_size=64, promote_utilization=0.75)
        ledger = simulate(mm, trace, warmup=10_000)
        mm.check_invariants()
        assert ledger.accesses == 10_000


@pytest.mark.parametrize("name", MM_NAMES)
class TestEveryAlgorithmResetsCleanly:
    """Registry-wide audit of the warm-up/measure boundary."""

    def _run(self, mm, seed):
        mm.run(ZipfWorkload(1 << 10, s=1.0).generate(600, seed=seed))

    def test_reset_zeroes_ledger_and_reseeds_extras(self, name):
        mm = make_mm(name, 32, 256, seed=0)
        ledger = mm.ledger
        defaults = dict(mm._extra_defaults)
        self._run(mm, seed=1)
        assert ledger.accesses == 600
        mm.reset_stats()
        # the ledger object must survive the reset (wrappers, metrics and
        # the decoupled system all hold references into it)
        assert mm.ledger is ledger
        snap = ledger.as_dict()
        assert snap["accesses"] == 0
        assert snap["ios"] == 0
        assert snap["tlb_misses"] == 0
        assert snap["tlb_hits"] == 0
        assert snap["decoding_misses"] == 0
        assert snap["paging_failures"] == 0
        assert ledger.extra == defaults

    def test_second_phase_runs_without_keyerrors(self, name):
        mm = make_mm(name, 32, 256, seed=0)
        self._run(mm, seed=1)
        mm.reset_stats()
        self._run(mm, seed=2)  # algorithm-specific extras must be writable
        assert mm.ledger.accesses == 600
        assert set(mm.ledger.extra) >= set(mm._extra_defaults)
