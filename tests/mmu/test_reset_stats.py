"""Regression tests: reset_stats must re-seed algorithm-specific counters.

A warm-up/measure run of THP under promotion pressure once raised KeyError
because CostLedger.reset() cleared the extra dict; this pins the fix.
"""

from repro.mmu import NestedTranslationMM, THPStyleMM
from repro.sim import simulate
from repro.workloads import BTreeLookupWorkload


class TestResetReseedsExtras:
    def test_thp_counters_survive_reset(self):
        mm = THPStyleMM(8, 64, huge_page_size=4, promote_utilization=0.5)
        mm.run(range(8))
        mm.reset_stats()
        assert mm.ledger.extra["promotions"] == 0
        mm.run(range(100, 108))  # promotion traffic after the reset
        assert "promotion_failures" in mm.ledger.extra

    def test_nested_counters_survive_reset(self):
        mm = NestedTranslationMM(4, 4, 64)
        mm.access(0)
        mm.reset_stats()
        mm.access(99)  # walks again
        assert mm.ledger.extra["walk_touches"] > 0

    def test_thp_fragmented_warmup_measure(self):
        """The original failing scenario: THP with warm-up under a
        fragmentation-prone index workload."""
        index = BTreeLookupWorkload(50_000, fanout=64, zipf_s=0.8)
        trace = index.generate(20_000, seed=0)
        mm = THPStyleMM(64, 2048, huge_page_size=64, promote_utilization=0.75)
        ledger = simulate(mm, trace, warmup=10_000)
        mm.check_invariants()
        assert ledger.accesses == 10_000
