"""Tests for the Markov-phase workload."""

import numpy as np
import pytest

from repro.workloads import (
    MarkovPhaseWorkload,
    SequentialWorkload,
    UniformWorkload,
    ZipfWorkload,
)


class TestConstruction:
    def test_requires_phases(self):
        with pytest.raises(ValueError):
            MarkovPhaseWorkload([])

    def test_transition_validated(self):
        phases = [UniformWorkload(8), UniformWorkload(8)]
        with pytest.raises(ValueError):
            MarkovPhaseWorkload(phases, transition=[[1.0]])
        with pytest.raises(ValueError):
            MarkovPhaseWorkload(phases, transition=[[0.5, 0.4], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovPhaseWorkload(phases, transition=[[-0.5, 1.5], [0.5, 0.5]])

    def test_default_transition_uniform_over_others(self):
        wl = MarkovPhaseWorkload([UniformWorkload(8)] * 3)
        assert np.allclose(np.diag(wl.transition), 0.0)
        assert np.allclose(wl.transition.sum(axis=1), 1.0)

    def test_single_phase(self):
        wl = MarkovPhaseWorkload([SequentialWorkload(16)], mean_dwell=10)
        trace = wl.generate(50, seed=0)
        assert len(trace) == 50


class TestGeneration:
    def test_length_and_range(self):
        wl = MarkovPhaseWorkload(
            [UniformWorkload(64), UniformWorkload(128)], mean_dwell=20
        )
        trace = wl.generate(2000, seed=0)
        assert len(trace) == 2000
        assert trace.min() >= 0 and trace.max() < 128
        assert wl.va_pages == 128

    def test_schedule_recorded(self):
        wl = MarkovPhaseWorkload(
            [UniformWorkload(32), UniformWorkload(32)], mean_dwell=50
        )
        wl.generate(1000, seed=1)
        starts = [s for s, _ in wl.last_schedule]
        assert starts[0] == 0
        assert starts == sorted(starts)
        assert len(starts) > 3  # several phase visits at dwell 50 / n 1000

    def test_phases_actually_alternate(self):
        # phase 0 emits only page 0; phase 1 only page 1
        class Constant(UniformWorkload):
            def __init__(self, page):
                super().__init__(page + 1)
                self._page = page

            def generate(self, n, seed=None):
                return np.full(n, self._page, dtype=np.int64)

        wl = MarkovPhaseWorkload([Constant(0), Constant(1)], mean_dwell=25)
        trace = wl.generate(2000, seed=2)
        assert set(np.unique(trace)) == {0, 1}

    def test_reproducible(self):
        wl = MarkovPhaseWorkload(
            [ZipfWorkload(256, s=1.0), UniformWorkload(256)], mean_dwell=30
        )
        np.testing.assert_array_equal(
            wl.generate(500, seed=3), wl.generate(500, seed=3)
        )


class TestPhaseShiftEffect:
    def test_phase_changes_stress_lru(self):
        """Working-set shifts at phase boundaries fault more than either
        phase alone — the classical motivation for phase-aware policies."""
        from repro.paging import LRUPolicy, PageCache

        def faults(trace, cap=64):
            cache = PageCache(cap, LRUPolicy())
            return sum(0 if cache.access(int(p)) else 1 for p in trace)

        hot_a = ZipfWorkload(4096, s=1.3, perm_seed=1)
        hot_b = ZipfWorkload(4096, s=1.3, perm_seed=2)  # disjoint hot sets
        phased = MarkovPhaseWorkload([hot_a, hot_b], mean_dwell=200)
        n = 6000
        f_a = faults(hot_a.generate(n, seed=0))
        f_b = faults(hot_b.generate(n, seed=0))
        f_mix = faults(phased.generate(n, seed=0))
        assert f_mix > max(f_a, f_b)
