"""Tests for the Figure 1b random-walk workload."""


import numpy as np
import pytest

from repro.workloads import RandomWalkWorkload


class TestConstruction:
    def test_default_out_degree_logarithmic(self):
        wl = RandomWalkWorkload(1 << 16)
        assert wl.out_degree == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkWorkload(100, alpha=0)
        with pytest.raises(ValueError):
            RandomWalkWorkload(100, out_degree=0)

    def test_paper_scaled(self):
        wl = RandomWalkWorkload.paper_scaled(1 << 16)
        assert wl.alpha == 0.01
        assert wl.ram_pages == 1 << 15  # half the VA, as 32 GB : 64 GB


class TestEdges:
    def test_shape_and_range(self):
        wl = RandomWalkWorkload(256, graph_seed=0)
        assert wl.edges.shape == (256, wl.out_degree)
        assert wl.edges.min() >= 0 and wl.edges.max() < 256

    def test_edges_cached(self):
        wl = RandomWalkWorkload(128)
        assert wl.edges is wl.edges

    def test_graph_seed_controls_structure(self):
        a = RandomWalkWorkload(256, graph_seed=1).edges
        b = RandomWalkWorkload(256, graph_seed=2).edges
        assert not np.array_equal(a, b)

    def test_pareto_skew(self):
        """Edge destinations concentrate on low-index pages (P ∝ i^-1.01)."""
        wl = RandomWalkWorkload(1 << 12, graph_seed=0)
        flat = wl.edges.ravel()
        low = (flat < (1 << 8)).mean()
        assert low > (1 << 8) / (1 << 12) * 2  # far above uniform share


class TestWalk:
    def test_trace_follows_edges(self):
        wl = RandomWalkWorkload(128, graph_seed=0)
        trace = wl.generate(500, seed=1)
        edges = wl.edges
        for cur, nxt in zip(trace, trace[1:]):
            assert nxt in edges[cur], "walk left the edge set"

    def test_reproducible(self):
        wl = RandomWalkWorkload(128, graph_seed=0)
        np.testing.assert_array_equal(wl.generate(200, seed=3), wl.generate(200, seed=3))

    def test_walk_seed_independent_of_graph(self):
        wl = RandomWalkWorkload(128, graph_seed=0)
        a = wl.generate(200, seed=1)
        b = wl.generate(200, seed=2)
        assert not np.array_equal(a, b)

    def test_visits_concentrate_like_pagerank(self):
        """The stationary mass should favour the Pareto head."""
        wl = RandomWalkWorkload(1 << 10, graph_seed=0)
        trace = wl.generate(20_000, seed=0)
        head_share = (trace < (1 << 7)).mean()
        assert head_share > ((1 << 7) / (1 << 10)) * 1.5
