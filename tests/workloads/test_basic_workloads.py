"""Tests for bimodal, zipf, uniform, sequential, strided workloads and the
shared power-law sampler."""

import numpy as np
import pytest

from repro.workloads import (
    BimodalWorkload,
    SequentialWorkload,
    StridedWorkload,
    UniformWorkload,
    ZipfWorkload,
    bounded_power_law_sampler,
)


class TestPowerLawSampler:
    def test_range(self):
        sample = bounded_power_law_sampler(100, 1.01)
        xs = sample(10_000, np.random.default_rng(0))
        assert xs.min() >= 0 and xs.max() < 100

    def test_skew_direction(self):
        sample = bounded_power_law_sampler(1000, 1.5)
        xs = sample(50_000, np.random.default_rng(1))
        assert (xs < 10).mean() > (xs >= 990).mean() * 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            bounded_power_law_sampler(10, 0.0)
        with pytest.raises(ValueError):
            bounded_power_law_sampler(0, 1.0)

    def test_near_uniform_at_tiny_exponent(self):
        """α = 0.01 (paper Fig 1b): exponent 1.01 is a heavy, almost
        log-uniform tail — top item still dominates any single other item."""
        sample = bounded_power_law_sampler(1 << 12, 1.01)
        xs = sample(100_000, np.random.default_rng(2))
        counts = np.bincount(xs, minlength=1 << 12)
        assert counts[0] > counts[-1]


class TestBimodal:
    def test_validation(self):
        with pytest.raises(ValueError):
            BimodalWorkload(10, 20)
        with pytest.raises(ValueError):
            BimodalWorkload(10, 5, p_hot=1.5)

    def test_ranges_and_mixture(self):
        wl = BimodalWorkload(1 << 16, 1 << 10, p_hot=0.99)
        trace = wl.generate(50_000, seed=0)
        assert trace.min() >= 0 and trace.max() < (1 << 16)
        hot_frac = (trace < (1 << 10)).mean()
        assert 0.985 < hot_frac  # 0.99 plus cold accesses that land hot

    def test_paper_scaled_ratios(self):
        wl = BimodalWorkload.paper_scaled(1 << 18)
        assert wl.va_pages == 1 << 18
        assert wl.hot_pages == (1 << 18) // 64
        assert wl.ram_pages == (1 << 18) // 4
        assert wl.p_hot == 0.9999

    def test_reproducible(self):
        wl = BimodalWorkload(1024, 64)
        np.testing.assert_array_equal(wl.generate(100, seed=5), wl.generate(100, seed=5))


class TestZipf:
    def test_shuffle_scatters_hot_pages(self):
        plain = ZipfWorkload(1 << 12, s=1.2, shuffle=False)
        mixed = ZipfWorkload(1 << 12, s=1.2, shuffle=True)
        t_plain = plain.generate(20_000, seed=0)
        t_mixed = mixed.generate(20_000, seed=0)
        # unshuffled hot pages cluster at low addresses
        assert np.median(t_plain) < np.median(t_mixed)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfWorkload(100, s=0)

    def test_range(self):
        t = ZipfWorkload(256, s=1.0).generate(5000, seed=1)
        assert t.min() >= 0 and t.max() < 256


class TestUniform:
    def test_coverage(self):
        t = UniformWorkload(64).generate(20_000, seed=0)
        assert set(np.unique(t)) == set(range(64))


class TestSequential:
    def test_wraps(self):
        t = SequentialWorkload(4, start=2).generate(6)
        np.testing.assert_array_equal(t, [2, 3, 0, 1, 2, 3])

    def test_start_validated(self):
        with pytest.raises(ValueError):
            SequentialWorkload(4, start=4)


class TestStrided:
    def test_stride_pattern(self):
        t = StridedWorkload(100, stride=10).generate(5)
        np.testing.assert_array_equal(t, [0, 10, 20, 30, 40])

    def test_jitter_bounded(self):
        wl = StridedWorkload(1000, stride=10, jitter=3)
        t = wl.generate(200, seed=0)
        assert ((t % 10) <= 3).all()

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            StridedWorkload(100, stride=4, jitter=4)

    def test_defeats_huge_pages(self):
        """Strides >= h make every access a new huge page: TLB coverage of
        huge pages collapses while base-page IOs are identical."""
        from repro.mmu import PhysicalHugePageMM

        wl = StridedWorkload(1 << 14, stride=64)
        trace = wl.generate(4000, seed=0)
        h1 = PhysicalHugePageMM(8, 1 << 12, huge_page_size=1)
        h64 = PhysicalHugePageMM(8, 1 << 12, huge_page_size=64)
        h1.run(trace)
        h64.run(trace)
        assert h64.ledger.tlb_misses == h1.ledger.tlb_misses  # no coverage gain
        # amplification at least 64x; the reduced-utilization thrash (RAM
        # holds only P/64 huge frames for 256 distinct huge pages) makes it
        # far worse than the bare factor
        assert h64.ledger.ios >= 64 * h1.ledger.ios
