"""Tests for the B-tree index-lookup workload."""

import numpy as np
import pytest

from repro.workloads import BTreeLookupWorkload


class TestTreeGeometry:
    def test_level_structure(self):
        wl = BTreeLookupWorkload(n_keys=1000, fanout=10, zipf_s=0)
        # leaves: 100 nodes, then 10, then 1 root
        assert wl.level_nodes == [1, 10, 100]
        assert wl.depth == 3
        assert wl.va_pages == 111

    def test_single_node_tree(self):
        wl = BTreeLookupWorkload(n_keys=5, fanout=10, zipf_s=0)
        assert wl.depth == 1
        assert wl.va_pages == 1

    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            BTreeLookupWorkload(10, fanout=1)


class TestPaths:
    def test_path_depth(self):
        wl = BTreeLookupWorkload(n_keys=1000, fanout=10, zipf_s=0)
        path = wl.pages_for_key(0)
        assert len(path) == 3
        assert path[0] == 0  # root page

    def test_path_is_root_to_leaf(self):
        wl = BTreeLookupWorkload(n_keys=1000, fanout=10, zipf_s=0)
        path = wl.pages_for_key(987)
        assert path[0] == wl.level_base[0]  # root level
        assert wl.level_base[2] <= path[2] < wl.va_pages  # leaf level
        assert path[2] == wl.level_base[2] + 98  # key 987 -> leaf 98

    def test_key_range_checked(self):
        wl = BTreeLookupWorkload(n_keys=10, fanout=4, zipf_s=0)
        with pytest.raises(ValueError):
            wl.pages_for_key(10)

    def test_adjacent_keys_share_upper_path(self):
        wl = BTreeLookupWorkload(n_keys=1000, fanout=10, zipf_s=0)
        a = wl.pages_for_key(500)
        b = wl.pages_for_key(501)
        assert a[:2] == b[:2] and a[2] == b[2]  # same leaf too (fanout 10)


class TestGeneration:
    def test_trace_is_concatenated_paths(self):
        wl = BTreeLookupWorkload(n_keys=1000, fanout=10, zipf_s=0, shuffle_keys=False)
        trace = wl.generate(9, seed=0)
        for i in range(0, 9, 3):
            lookup = trace[i : i + 3]
            assert lookup[0] == 0  # every lookup starts at the root
            assert wl.level_base[1] <= lookup[1] < wl.level_base[2]
            assert lookup[2] >= wl.level_base[2]

    def test_vectorized_matches_scalar_paths(self):
        wl = BTreeLookupWorkload(n_keys=500, fanout=8, zipf_s=0, shuffle_keys=False)
        class Fixed(BTreeLookupWorkload):
            pass

        # reconstruct the trace by hand from pages_for_key
        depth = wl.depth
        trace = wl.generate(20 * depth, seed=1)
        # regenerate with the same seed to recover the keys drawn
        rng2 = np.random.default_rng(1)
        drawn = rng2.integers(0, 500, 20)
        expected = np.concatenate([wl.pages_for_key(int(k)) for k in drawn])
        np.testing.assert_array_equal(trace, expected)

    def test_upper_levels_hot(self):
        wl = BTreeLookupWorkload(n_keys=100_000, fanout=64, zipf_s=0.9)
        trace = wl.generate(30_000, seed=0)
        root_share = (trace == 0).mean()
        assert root_share == pytest.approx(1 / wl.depth, abs=0.01)

    def test_zipf_skews_leaves(self):
        skewed = BTreeLookupWorkload(100_000, fanout=64, zipf_s=1.2, shuffle_keys=False)
        trace = skewed.generate(30_000, seed=0)
        leaves = trace[trace >= skewed.level_base[-1]]
        first_leafpages = (leaves < skewed.level_base[-1] + 16).mean()
        assert first_leafpages > 0.5  # hot head concentrated without shuffle

    def test_tlb_friendliness_of_index(self):
        """The database story: the hot index upper levels are tiny (great
        TLB locality) while leaf probes scatter — huge pages pay IO for
        the leaves without being needed for the top."""
        from repro.mmu import PhysicalHugePageMM

        wl = BTreeLookupWorkload(200_000, fanout=64, zipf_s=0.8)
        trace = wl.generate(40_000, seed=0)
        ram = 1 << 10
        base = PhysicalHugePageMM(64, ram, huge_page_size=1)
        huge = PhysicalHugePageMM(64, ram, huge_page_size=64)
        base.run(trace)
        huge.run(trace)
        assert huge.ledger.ios > 4 * base.ledger.ios  # leaf amplification
