"""Tests for trace save/load."""

import numpy as np
import pytest

from repro.workloads import load_trace, save_trace


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.npz"
        trace = np.arange(1000, dtype=np.int64)
        save_trace(path, trace, {"workload": "test", "seed": 3})
        loaded, meta = load_trace(path)
        np.testing.assert_array_equal(loaded, trace)
        assert meta == {"workload": "test", "seed": 3}

    def test_no_metadata(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, [1, 2, 3])
        loaded, meta = load_trace(path)
        np.testing.assert_array_equal(loaded, [1, 2, 3])
        assert meta == {}

    def test_rejects_2d(self, tmp_path):
        with pytest.raises(ValueError):
            save_trace(tmp_path / "t.npz", np.zeros((2, 2)))

    def test_dtype_coerced(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, np.array([1, 2], dtype=np.int32))
        loaded, _ = load_trace(path)
        assert loaded.dtype == np.int64
