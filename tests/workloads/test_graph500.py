"""Tests for the Kronecker generator, BFS, and the Figure 1c trace."""

import numpy as np

from repro.workloads import PAGE_ELEMS, Graph500Workload, KroneckerGraph
from repro.workloads.graph500 import _expand_ranges, _first_occurrence_mask


class TestExpandRanges:
    def test_simple(self):
        out = _expand_ranges(np.array([0, 10]), np.array([3, 2]))
        np.testing.assert_array_equal(out, [0, 1, 2, 10, 11])

    def test_zero_counts_skipped(self):
        out = _expand_ranges(np.array([5, 7, 20]), np.array([2, 0, 1]))
        np.testing.assert_array_equal(out, [5, 6, 20])

    def test_empty(self):
        assert len(_expand_ranges(np.array([1]), np.array([0]))) == 0

    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 100, 20)
        counts = rng.integers(0, 5, 20)
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)] or [np.empty(0)]
        )
        np.testing.assert_array_equal(_expand_ranges(starts, counts), expected)


class TestFirstOccurrence:
    def test_mask(self):
        mask = _first_occurrence_mask(np.array([3, 1, 3, 2, 1]))
        np.testing.assert_array_equal(mask, [True, True, False, True, False])


class TestKroneckerGraph:
    def test_sizes(self):
        g = KroneckerGraph(scale=8, edgefactor=8, seed=0)
        assert g.n_vertices == 256
        assert len(g.xadj) == 257
        assert g.xadj[-1] == len(g.adjncy)
        assert g.n_edges > 0

    def test_symmetric(self):
        g = KroneckerGraph(scale=6, edgefactor=8, seed=1)
        edges = set()
        for u in range(g.n_vertices):
            for e in range(g.xadj[u], g.xadj[u + 1]):
                edges.add((u, int(g.adjncy[e])))
        assert all((v, u) in edges for (u, v) in edges)

    def test_no_self_loops_or_duplicates(self):
        g = KroneckerGraph(scale=6, edgefactor=8, seed=2)
        for u in range(g.n_vertices):
            neigh = g.adjncy[g.xadj[u] : g.xadj[u + 1]].tolist()
            assert u not in neigh
            assert len(neigh) == len(set(neigh))

    def test_power_law_degrees(self):
        """Kronecker graphs are heavy-tailed: max degree far above mean."""
        g = KroneckerGraph(scale=10, edgefactor=16, seed=0)
        degrees = np.diff(g.xadj)
        assert degrees.max() > 8 * degrees.mean()

    def test_bfs_parent_validity(self):
        g = KroneckerGraph(scale=7, edgefactor=8, seed=3)
        root = int(np.argmax(np.diff(g.xadj)))  # a high-degree root
        parent = g.bfs(root)
        assert parent[root] == root
        reached = np.nonzero(parent >= 0)[0]
        assert len(reached) > 1
        for v in reached:
            if v == root:
                continue
            p = int(parent[v])
            # parent edge must exist
            assert v in g.adjncy[g.xadj[p] : g.xadj[p + 1]]

    def test_bfs_levels_shortest(self):
        """BFS distances agree with networkx shortest paths."""
        import networkx as nx

        g = KroneckerGraph(scale=6, edgefactor=8, seed=4)
        G = nx.Graph()
        G.add_nodes_from(range(g.n_vertices))
        for u in range(g.n_vertices):
            for v in g.adjncy[g.xadj[u] : g.xadj[u + 1]]:
                G.add_edge(u, int(v))
        root = int(np.argmax(np.diff(g.xadj)))
        parent = g.bfs(root)

        def depth(v):
            d = 0
            while v != root:
                v = int(parent[v])
                d += 1
            return d

        lengths = nx.single_source_shortest_path_length(G, root)
        for v in np.nonzero(parent >= 0)[0]:
            assert depth(int(v)) == lengths[int(v)]


class TestGraph500Workload:
    def test_layout_disjoint(self):
        wl = Graph500Workload(scale=8, edgefactor=8, graph_seed=0)
        assert 0 < wl._adj_base < wl._parent_base < wl.va_pages

    def test_trace_length_and_range(self):
        wl = Graph500Workload(scale=8, edgefactor=8, graph_seed=0)
        trace = wl.generate(5000, seed=0)
        assert len(trace) == 5000
        assert trace.min() >= 0 and trace.max() < wl.va_pages

    def test_trace_touches_all_regions(self):
        wl = Graph500Workload(scale=8, edgefactor=8, graph_seed=0)
        trace = wl.generate(5000, seed=0)
        assert (trace < wl._adj_base).any()  # xadj reads
        assert ((trace >= wl._adj_base) & (trace < wl._parent_base)).any()
        assert (trace >= wl._parent_base).any()  # parent probes

    def test_ram_pages_pressure(self):
        wl = Graph500Workload(scale=8, edgefactor=8)
        assert wl.ram_pages(0.99) == int(wl.footprint_pages * 0.99)
        assert wl.ram_pages(0.5) < wl.footprint_pages

    def test_reproducible(self):
        wl = Graph500Workload(scale=7, edgefactor=8, graph_seed=1)
        np.testing.assert_array_equal(
            wl.generate(2000, seed=2), wl.generate(2000, seed=2)
        )

    def test_page_elems_constant(self):
        assert PAGE_ELEMS == 512  # 4 kB / 8-byte elements
