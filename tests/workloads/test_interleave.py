"""Tests for the multi-tenant interleaved workload."""

import pytest

from repro.workloads import (
    InterleavedWorkload,
    SequentialWorkload,
    UniformWorkload,
    ZipfWorkload,
)


class TestConstruction:
    def test_requires_tenants(self):
        with pytest.raises(ValueError):
            InterleavedWorkload([])

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            InterleavedWorkload([UniformWorkload(8)], jitter=1.0)

    def test_va_is_union_of_slices(self):
        wl = InterleavedWorkload([UniformWorkload(100), UniformWorkload(50)])
        assert wl.va_pages == 200  # 2 slices of max(100, 50)


class TestIsolation:
    def test_tenants_in_disjoint_slices(self):
        wl = InterleavedWorkload(
            [UniformWorkload(64), UniformWorkload(64), UniformWorkload(64)],
            quantum=8,
        )
        trace = wl.generate(3000, seed=0)
        for i in range(3):
            sl = wl.tenant_slice(i)
            in_slice = trace[(trace >= sl.start) & (trace < sl.stop)]
            assert len(in_slice) > 0
        assert trace.max() < wl.va_pages

    def test_round_robin_quanta(self):
        wl = InterleavedWorkload(
            [SequentialWorkload(16), SequentialWorkload(16)], quantum=4
        )
        trace = wl.generate(16, seed=0)
        owners = (trace // 16).tolist()
        assert owners == [0] * 4 + [1] * 4 + [0] * 4 + [1] * 4

    def test_streams_regenerate_when_exhausted(self):
        wl = InterleavedWorkload([UniformWorkload(8)], quantum=4)
        trace = wl.generate(5000, seed=1)
        assert len(trace) == 5000

    def test_jitter_breaks_periodicity(self):
        wl = InterleavedWorkload(
            [SequentialWorkload(64), SequentialWorkload(64)],
            quantum=8,
            jitter=0.3,
        )
        trace = wl.generate(400, seed=2)
        owners = (trace // 64).tolist()
        runs = []
        cur, length = owners[0], 0
        for o in owners:
            if o == cur:
                length += 1
            else:
                runs.append(length)
                cur, length = o, 1
        assert any(r != 8 for r in runs)  # some quanta cut short


class TestSharedTlbPressure:
    def test_corunners_inflate_miss_rate(self):
        """The paper's point: co-runners shrink the effective TLB."""
        from repro.mmu import BasePageMM

        def miss_rate(n_tenants):
            wl = InterleavedWorkload(
                [ZipfWorkload(1 << 12, s=1.1, perm_seed=i) for i in range(n_tenants)],
                quantum=16,
            )
            trace = wl.generate(30_000, seed=0)
            mm = BasePageMM(64, 1 << 14)
            mm.run(trace)
            return mm.ledger.tlb_misses / mm.ledger.accesses

        assert miss_rate(1) < miss_rate(4)
