"""Tests for the command-line interface (small, fast configurations)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.panel == "a"
        assert args.tlb == 512
        assert args.jobs == 1

    def test_jobs_flag(self):
        assert build_parser().parse_args(["fig1", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(["fig1", "--jobs", "0"]).jobs == 0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--jobs", "-1"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.smoke is False
        assert args.hotloop is False
        assert args.jobs == 1
        # None = kind-dependent default (BENCH_sweep.json / BENCH_hotloop.json)
        assert args.out is None

    def test_tenants_defaults(self):
        args = build_parser().parse_args(["tenants"])
        assert args.algorithms is None  # None = all registered
        assert args.tenants == [2, 8]
        assert args.schedulers == ["round-robin"]
        assert args.quantum == 64
        assert args.validate is False

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestCommands:
    def test_params(self, capsys):
        assert main(["params", "--frames", "16384", "--w", "64"]) == 0
        out = capsys.readouterr().out
        assert "iceberg" in out and "one-choice" in out and "hmax" in out

    def test_epsilon(self, capsys):
        assert main(["epsilon"]) == 0
        out = capsys.readouterr().out
        assert "nvme-ssd" in out and "epsilon" in out

    def test_maxload_small(self, capsys):
        assert main(["maxload", "--bins", "64", "--lambdas", "4"]) == 0
        out = capsys.readouterr().out
        assert "iceberg[2]" in out

    def test_policies_small(self, capsys):
        assert main(["policies", "--capacity", "64", "--accesses", "3000"]) == 0
        out = capsys.readouterr().out
        assert "opt (offline)" in out and "lru" in out

    def test_fig1_small(self, capsys):
        assert (
            main(["fig1", "--panel", "a", "--scale", "4096",
                  "--accesses", "4000", "--tlb", "16"]) == 0
        )
        out = capsys.readouterr().out
        assert "Figure 1a" in out and "TLB misses" in out

    def test_describe(self, capsys):
        assert (
            main(["describe", "--workload", "zipf", "--pages", "4096",
                  "--accesses", "5000"]) == 0
        )
        out = capsys.readouterr().out
        assert "huge_page_density" in out and "footprint" in out

    def test_fig1_parallel_small(self, capsys):
        assert (
            main(["fig1", "--panel", "a", "--scale", "4096",
                  "--accesses", "4000", "--tlb", "16", "--jobs", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "Figure 1a" in out

    def test_bench_smoke_writes_payload(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--smoke", "--accesses", "6000",
                     "--out", "out.json"]) == 0
        out = capsys.readouterr().out
        assert "kacc/s end-to-end" in out and "out.json" in out
        payload = json.loads((tmp_path / "out.json").read_text())
        assert payload["kind"] == "bench_sweep"
        assert payload["format"] == 1
        assert payload["smoke"] is True
        assert payload["machine"]["cpu_count"] >= 1
        assert payload["machine"]["python"]
        assert payload["config"]["accesses"] == 6000
        assert len(payload["rows"]) == len(payload["config"]["sizes"])
        assert payload["accesses_per_s"] > 0

    def test_eq3_small(self, capsys):
        assert (
            main(["eq3", "--frames", "2048", "--tlb", "32",
                  "--accesses", "5000"]) == 0
        )
        out = capsys.readouterr().out
        assert "decoupled-Z" in out and "h_max" in out

    def test_tenants_small_validated(self, capsys, tmp_path):
        snap = tmp_path / "snap.json"
        assert (
            main(["tenants", "--algorithms", "base-page", "decoupled",
                  "--tenants", "3", "--accesses", "300", "--pages", "128",
                  "--tlb", "16", "--ram", "512", "--quantum", "37",
                  "--validate", "--snapshot-out", str(snap)]) == 0
        )
        out = capsys.readouterr().out
        assert "decoupled" in out and "shootdowns" in out
        assert "validated" in out
        payload = json.loads(snap.read_text())
        assert payload["counters"]["accesses"] == 2 * 3 * 300
        assert payload["meta"]["runs"] == 2 * 3  # one per tenant record

    def test_tenants_rejects_unknown_names(self):
        with pytest.raises(SystemExit, match="unknown algorithms"):
            main(["tenants", "--algorithms", "segment-table"])
        with pytest.raises(SystemExit, match="unknown schedulers"):
            main(["tenants", "--schedulers", "fifo"])

    def test_top_once_on_missing_spool(self, capsys, tmp_path):
        assert main(["top", str(tmp_path / "absent.jsonl"), "--once"]) == 0
        assert "spool is empty" in capsys.readouterr().out

    def test_fig1_heartbeat_spool_feeds_top(self, capsys, tmp_path):
        spool = tmp_path / "fig1.jsonl"
        assert (
            main(["fig1", "--panel", "a", "--scale", "4096",
                  "--accesses", "4000", "--tlb", "16", "--jobs", "2",
                  "--heartbeat-spool", str(spool),
                  "--heartbeat-interval", "1000"]) == 0
        )
        assert "Figure 1a" in capsys.readouterr().out
        assert spool.exists()
        assert main(["top", str(spool), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "done" in out
        assert "aggregate:" in out and "ETA" in out
