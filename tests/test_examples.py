"""Smoke tests: the runnable examples must actually run.

Only the fast examples execute here (each within a few seconds); the
longer sweeps (`hugepage_tradeoff`, `database_index`, `device_tlbs`,
`custom_mm_algorithm`, `ballsbins_demo`) are exercised implicitly by the
benchmark suite that covers the same code paths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": "decoupled Z",
    "decoupling_internals.py": "PAGING FAILURE",
    "virtual_memory_walkthrough.py": "nested translation",
    "workload_analysis.py": "working-set profile",
    "miss_ratio_curves.py": "TLB misses vs TLB entries",
}


@pytest.mark.parametrize("script", sorted(FAST_EXAMPLES))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr}"
    assert FAST_EXAMPLES[script] in result.stdout


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 9
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), (
            f"{script.name} lacks a module docstring"
        )
        assert "Run:" in text or "__main__" in text or "print(" in text
